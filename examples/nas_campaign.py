#!/usr/bin/env python3
"""Reproduce the paper's NAS evaluation in miniature.

Runs a subset of the NAS Parallel Benchmark proxies under every flow
control scheme at pre-post depths 100 and 1, and prints the Figure-10
degradation table plus the Table-1/Table-2 flow-control statistics.

The full campaign (all seven kernels) lives in the benchmark harness
(``pytest benchmarks/ --benchmark-only``); this example keeps to the three
most interesting kernels so it finishes in under a minute.

Run:  python examples/nas_campaign.py [kernels...]
      python examples/nas_campaign.py lu mg cg is ft bt sp   # everything
"""

import sys

from repro.analysis import Table, pct_change
from repro.cluster import run_job
from repro.workloads.nas import KERNELS

DEFAULT_KERNELS = ("lu", "mg", "cg")
SCHEMES = ("hardware", "static", "dynamic")


def main():
    kernels = sys.argv[1:] or DEFAULT_KERNELS
    for name in kernels:
        if name not in KERNELS:
            raise SystemExit(f"unknown kernel {name!r}; pick from {sorted(KERNELS)}")

    degradation = Table("Degradation going from pre-post=100 to pre-post=1 (%)",
                        list(SCHEMES))
    fc_stats = Table("Flow control statistics",
                     ["ecm_share_%", "max_buffers_dynamic", "hw_rnr_naks_pp1"])

    for name in kernels:
        k = KERNELS[name]
        print(f"running {name} ({k.nranks} ranks: {k.description}) ...",
              flush=True)
        row = []
        extras = {}
        for scheme in SCHEMES:
            base = run_job(k.build(), k.nranks, scheme, prepost=100)
            starved = run_job(k.build(), k.nranks, scheme, prepost=1)
            row.append(pct_change(starved.elapsed_ns, base.elapsed_ns))
            if scheme == "static":
                extras["ecm"] = 100.0 * base.fc.ecm_fraction
            elif scheme == "dynamic":
                extras["maxbuf"] = starved.fc.max_posted_buffers
            else:
                extras["naks"] = starved.fc.rnr_naks
        degradation.add_row(name, *row)
        fc_stats.add_row(name, extras["ecm"], extras["maxbuf"], extras["naks"])

    print()
    print(degradation.render())
    print()
    print(fc_stats.render())
    print(
        "\nReading guide (paper Figures 9-10, Tables 1-2):\n"
        "  * dynamic stays flat everywhere — it adapts the buffer pool;\n"
        "  * hardware collapses on LU/MG (RNR timeout storms, see naks);\n"
        "  * static loses the most on LU, whose one-directional sweeps\n"
        "    also force it to ship credits explicitly (ecm_share).\n"
    )


if __name__ == "__main__":
    main()
