#!/usr/bin/env python3
"""Reproduce the paper's NAS evaluation in miniature.

Runs a subset of the NAS Parallel Benchmark proxies under every flow
control scheme at pre-post depths 100 and 1, and prints the Figure-10
degradation table plus the Table-1/Table-2 flow-control statistics.

The grid goes through the campaign orchestrator (``repro.campaign``):
``--workers N`` fans the independent (kernel, scheme, prepost) cells
across worker processes, and a repeated run with ``--cache-dir`` is
served entirely from the content-addressed result cache.

The full campaign (all seven kernels) lives in the benchmark harness
(``pytest benchmarks/ --benchmark-only``) and in ``python -m repro sweep
--grid nas``; this example keeps to the three most interesting kernels so
it finishes in under a minute.

Run:  python examples/nas_campaign.py [--workers N] [kernels...]
      python examples/nas_campaign.py lu mg cg is ft bt sp   # everything
"""

import argparse

from repro.analysis import Table, pct_change
from repro.campaign import ResultCache, grids, run_cells
from repro.workloads.nas import KERNELS

DEFAULT_KERNELS = ("lu", "mg", "cg")
SCHEMES = ("hardware", "static", "dynamic")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("kernels", nargs="*", default=list(DEFAULT_KERNELS))
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for independent cells")
    parser.add_argument("--cache-dir", default=None,
                        help="optional result-cache directory (re-runs "
                             "skip completed cells)")
    args = parser.parse_args()
    for name in args.kernels:
        if name not in KERNELS:
            raise SystemExit(
                f"unknown kernel {name!r}; pick from {sorted(KERNELS)}")

    specs = grids.nas_grid(kernels=args.kernels, schemes=SCHEMES,
                           preposts=(100, 1))
    print(f"running {len(specs)} cells "
          f"({', '.join(args.kernels)} x {len(SCHEMES)} schemes x "
          f"pre-post {{100, 1}}) with {args.workers} worker(s) ...",
          flush=True)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    res = run_cells(specs, workers=args.workers, cache=cache)
    cell = {(o.spec.params["kernel"], o.spec.params["scheme"],
             o.spec.params["prepost"]): o.metrics for o in res.outcomes}
    print(f"  {res.executed} executed, {res.hits} from cache "
          f"in {res.wall_s:.1f}s")

    degradation = Table("Degradation going from pre-post=100 to pre-post=1 (%)",
                        list(SCHEMES))
    fc_stats = Table("Flow control statistics",
                     ["ecm_share_%", "max_buffers_dynamic", "hw_rnr_naks_pp1"])

    for name in args.kernels:
        row = [
            pct_change(cell[(name, scheme, 1)]["elapsed_ns"],
                       cell[(name, scheme, 100)]["elapsed_ns"])
            for scheme in SCHEMES
        ]
        degradation.add_row(name, *row)
        fc_stats.add_row(
            name,
            100.0 * cell[(name, "static", 100)]["fc"]["ecm_fraction"],
            cell[(name, "dynamic", 1)]["fc"]["max_posted_buffers"],
            cell[(name, "hardware", 1)]["fc"]["rnr_naks"],
        )

    print()
    print(degradation.render())
    print()
    print(fc_stats.render())
    print(
        "\nReading guide (paper Figures 9-10, Tables 1-2):\n"
        "  * dynamic stays flat everywhere — it adapts the buffer pool;\n"
        "  * hardware collapses on LU/MG (RNR timeout storms, see naks);\n"
        "  * static loses the most on LU, whose one-directional sweeps\n"
        "    also force it to ship credits explicitly (ecm_share).\n"
    )


if __name__ == "__main__":
    main()
