#!/usr/bin/env python3
"""Quickstart: run an MPI program on the simulated InfiniBand cluster.

Programs are Python generators; every MPI call is a ``yield from``.  This
example measures ping-pong latency under each of the paper's three flow
control schemes and shows they are indistinguishable under normal
conditions (paper Figure 2).

Run:  python examples/quickstart.py
"""

from repro.cluster import TestbedConfig, run_job
from repro.sim.units import to_us


def pingpong(mpi):
    """Rank 0 measures 100 ping-pong round trips with rank 1."""
    peer = 1 - mpi.rank
    iterations, warmup = 100, 10
    t0 = None
    for i in range(iterations + warmup):
        if i == warmup:
            t0 = mpi.now
        if mpi.rank == 0:
            yield from mpi.send(peer, size=4, tag=0)
            yield from mpi.recv(source=peer, capacity=4, tag=0)
        else:
            yield from mpi.recv(source=peer, capacity=4, tag=0)
            yield from mpi.send(peer, size=4, tag=0)
    if mpi.rank == 0:
        return (mpi.now - t0) / iterations / 2  # one-way ns
    return None


def main():
    config = TestbedConfig(nodes=2)  # two 2.4 GHz Xeon nodes, 4X IB, one switch
    print("4-byte one-way MPI latency on the simulated testbed:\n")
    for scheme in ("hardware", "static", "dynamic"):
        result = run_job(pingpong, nranks=2, scheme=scheme, prepost=100, config=config)
        print(f"  {scheme:>8} flow control: {to_us(int(result.rank_results[0])):.2f} us")
    print("\nAll three schemes are equal under normal conditions — the paper's")
    print("Figure 2.  Run examples/flow_control_comparison.py to see them")
    print("diverge when receive buffers run short.")


if __name__ == "__main__":
    main()
