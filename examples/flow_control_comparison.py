#!/usr/bin/env python3
"""Watch the three flow-control schemes diverge under buffer pressure.

A sender floods a *computing* receiver (the application-bypass window in
which no vbuf can be re-posted) with small messages, with only a handful
of receive buffers pre-posted per connection — the regime of the paper's
Figures 5-6 and 10.

* hardware  — messages bounce off the full receive queue (RNR NAK) and the
  sender idles out retry timers;
* static    — sends divert to the backlog and trickle out via explicit
  credit messages and rendezvous-fallback handshakes;
* dynamic   — the receiver notices the went-through-backlog feedback bit,
  doubles its buffer pool until the burst fits, and the flood runs free.

Run:  python examples/flow_control_comparison.py
"""

from repro.cluster import TestbedConfig, run_job
from repro.sim.units import to_us


N_MESSAGES = 400
RECEIVER_COMPUTE_NS = 8_000  # per-message "work" at the receiver


def flood(mpi):
    peer = 1 - mpi.rank
    if mpi.rank == 0:  # the fast sender
        requests = []
        for i in range(N_MESSAGES):
            req = yield from mpi.isend(peer, size=4, tag=0, payload=i)
            requests.append(req)
        yield from mpi.waitall(requests)
    else:  # the slow receiver: computes between receives
        for i in range(N_MESSAGES):
            status = yield from mpi.recv(source=0, capacity=64, tag=0)
            assert status.payload == i
            yield from mpi.compute(RECEIVER_COMPUTE_NS)


def main():
    config = TestbedConfig(nodes=2)
    print(f"{N_MESSAGES} x 4-byte flood into a busy receiver, pre-post = 2:\n")
    header = (
        f"  {'scheme':>8} {'time':>10} {'RNR NAKs':>9} {'retransmits':>12} "
        f"{'ECMs':>6} {'backlogged':>11} {'max buffers':>12}"
    )
    print(header)
    print("  " + "-" * (len(header) - 2))
    for scheme in ("hardware", "static", "dynamic"):
        r = run_job(flood, nranks=2, scheme=scheme, prepost=2, config=config)
        print(
            f"  {scheme:>8} {to_us(r.elapsed_ns):>8.0f}us {r.fc.rnr_naks:>9} "
            f"{r.fc.retransmissions:>12} {r.fc.ecm_msgs:>6} "
            f"{r.fc.backlogged_msgs:>11} {r.fc.max_posted_buffers:>12}"
        )
    print(
        "\nThe dynamic scheme converts buffer starvation into a one-time\n"
        "growth transient: it ends up fastest *and* reports how many buffers\n"
        "the pattern actually needed (the paper's Table 2 methodology)."
    )


if __name__ == "__main__":
    main()
