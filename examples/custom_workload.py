#!/usr/bin/env python3
"""Write your own MPI workload: a 2-D Jacobi stencil with halo exchange.

Demonstrates the pieces a downstream user combines:

* a generator program with non-blocking halo exchanges, collectives for
  the convergence check, and per-rank compute;
* ``buffer_id`` to let the pin-down cache amortise rendezvous pinning;
* inspecting the dynamic scheme's adaptation per *connection* afterwards
  (which neighbours needed how many buffers).

Run:  python examples/custom_workload.py
"""

from repro.cluster import TestbedConfig, run_job
from repro.core import DynamicScheme, per_connection_max_buffers
from repro.sim.units import seconds, us

GRID = 4096  # global N x N cells, double precision
ITERATIONS = 30


def jacobi(mpi):
    """1-D strip decomposition of an N x N Jacobi sweep."""
    P, rank = mpi.world_size, mpi.rank
    rows = GRID // P
    halo_bytes = GRID * 8  # one boundary row of doubles
    up = rank - 1 if rank > 0 else -1
    down = rank + 1 if rank < P - 1 else -1
    flops_per_cell = 5
    compute_ns = int(rows * GRID * flops_per_cell / 4.8)  # ~4.8 GFLOP/s Xeon

    residual_history = []
    for it in range(ITERATIONS):
        # post halo receives first, then send our boundary rows
        reqs = []
        for nbr, which in ((up, "top"), (down, "bottom")):
            if nbr >= 0:
                r = yield from mpi.irecv(source=nbr, capacity=halo_bytes,
                                         tag=it % 2, buffer_id=("halo-in", which))
                reqs.append(r)
        for nbr, which in ((up, "top"), (down, "bottom")):
            if nbr >= 0:
                r = yield from mpi.isend(nbr, size=halo_bytes, tag=it % 2,
                                         buffer_id=("halo-out", which))
                reqs.append(r)
        # interior update overlaps with the halo exchange
        yield from mpi.compute(compute_ns)
        yield from mpi.waitall(reqs)
        # global convergence check every few sweeps
        if it % 5 == 4:
            residual = yield from mpi.allreduce(size=8, value=1.0 / (it + 1),
                                                op=max)
            residual_history.append(residual)
    return residual_history


def main():
    scheme = DynamicScheme()  # the paper's adaptive scheme
    result = run_job(jacobi, nranks=8, scheme=scheme, prepost=1,
                     config=TestbedConfig(nodes=8))

    print(f"Jacobi {GRID}x{GRID}, {ITERATIONS} sweeps on 8 simulated nodes")
    print(f"  simulated wall time : {seconds(result.elapsed_ns)*1e3:.2f} ms")
    print(f"  messages sent       : {result.fc.total_msgs}")
    print(f"  residual checkpoints: {[round(r, 3) for r in result.rank_results[0]]}")

    print("\nDynamic flow control adapted each connection to its traffic:")
    grown = idle = 0
    for (rank, peer), buffers in sorted(per_connection_max_buffers(result.endpoints).items()):
        if buffers > 1:
            print(f"  rank {rank} <- {peer}: grew to {buffers} buffers")
            grown += 1
        else:
            idle += 1
    print(
        f"\n{grown} connections that actually carry traffic (halo neighbours\n"
        f"and the reduction tree) grew; the other {idle} connections of the\n"
        "all-to-all mesh stayed at a single buffer each — buffer usage\n"
        "scales with the communication graph, not the process count, which\n"
        "is the paper's scalability argument for large clusters."
    )


if __name__ == "__main__":
    main()
