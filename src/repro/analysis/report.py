"""Table and figure-series rendering for the benchmark harness.

Every bench prints the rows/series the paper reports, via these helpers,
so ``pytest benchmarks/ --benchmark-only`` output doubles as the
EXPERIMENTS.md raw data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


@dataclass
class Series:
    """One labelled curve of an x-y figure."""

    label: str
    points: List[tuple] = field(default_factory=list)

    def add(self, x, y) -> None:
        """Add a point, replacing any existing point at the same ``x``.

        Replacement (rather than silently keeping the first value, as the
        old append-only behaviour did) is what a re-run sweep cell needs:
        refreshed results overwrite the stale point.
        """
        for i, (px, _) in enumerate(self.points):
            if px == x:
                self.points[i] = (x, y)
                return
        self.points.append((x, y))

    def y_at(self, x):
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"{self.label}: no point at x={x}")

    @property
    def ys(self) -> List:
        return [y for _, y in self.points]

    def reset(self) -> None:
        """Drop all points (fresh accumulation on a reused figure)."""
        self.points.clear()


class Figure:
    """A collection of series sharing an x-axis, printable as a table."""

    def __init__(self, title: str, xlabel: str = "x", ylabel: str = "y"):
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.series: Dict[str, Series] = {}

    def series_named(self, label: str) -> Series:
        if label not in self.series:
            self.series[label] = Series(label)
        return self.series[label]

    def add(self, label: str, x, y) -> None:
        self.series_named(label).add(x, y)

    def reset(self) -> None:
        """Drop every series — a reused Figure otherwise accumulates
        points across jobs and renders stale data."""
        self.series.clear()

    def render(self, fmt: str = "{:>12.2f}") -> str:
        xs: List = []
        for s in self.series.values():
            for x, _ in s.points:
                if x not in xs:
                    xs.append(x)

        # Format every cell first, then derive each column's width from
        # its label and widest formatted value — a custom ``fmt`` width or
        # a long series label must never break header/row alignment
        # (blank cells used to be hardcoded to 12 spaces).
        columns: Dict[str, Dict] = {}
        widths: Dict[str, int] = {}
        for label, s in self.series.items():
            cells = {}
            for x in xs:
                try:
                    cells[x] = fmt.format(s.y_at(x))
                except KeyError:
                    cells[x] = ""
            columns[label] = cells
            widths[label] = max(
                [len(label)] + [len(c) for c in cells.values()]
            )
        xw = max([12, len(self.xlabel)] + [len(str(x)) for x in xs])

        lines = [f"== {self.title} ==", f"   {self.ylabel} vs {self.xlabel}"]
        header = f"{self.xlabel:>{xw}} | " + " | ".join(
            f"{label:>{widths[label]}}" for label in self.series
        )
        lines.append(header)
        lines.append("-" * len(header))
        for x in xs:
            cells = [
                f"{columns[label][x]:>{widths[label]}}"
                for label in self.series
            ]
            lines.append(f"{str(x):>{xw}} | " + " | ".join(cells))
        return "\n".join(lines)


class Table:
    """A paper-style table: named rows × named columns."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[tuple] = []

    def add_row(self, name: str, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.title}: row {name!r} has {len(values)} values, "
                f"expected {len(self.columns)}"
            )
        self.rows.append((name, values))

    def reset(self) -> None:
        """Drop all rows, keeping the title/columns."""
        self.rows.clear()

    def value(self, row: str, column: str):
        ci = self.columns.index(column)
        for name, values in self.rows:
            if name == row:
                return values[ci]
        raise KeyError(f"{self.title}: no row {row!r}")

    def render(self) -> str:
        widths = [max(12, len(c) + 2) for c in self.columns]
        name_w = max([len("app")] + [len(n) for n, _ in self.rows]) + 2
        lines = [f"== {self.title} =="]
        lines.append(
            f"{'app':<{name_w}}" + "".join(f"{c:>{w}}" for c, w in zip(self.columns, widths))
        )
        lines.append("-" * (name_w + sum(widths)))
        for name, values in self.rows:
            cells = []
            for v, w in zip(values, widths):
                if isinstance(v, float):
                    cells.append(f"{v:>{w}.2f}")
                else:
                    cells.append(f"{str(v):>{w}}")
            lines.append(f"{name:<{name_w}}" + "".join(cells))
        return "\n".join(lines)


def pct_change(new: float, old: float) -> float:
    """Percentage change, the Figure-10 metric."""
    if old == 0:
        return 0.0
    return 100.0 * (new - old) / old


def memory_table(
    cells: Iterable[Dict[str, Any]],
    title: str = "Pinned buffer memory vs rank count (Table 2 at scale)",
) -> Table:
    """Render scaling-sweep memory cells as a Table-2-shaped table:
    one row per ``scheme x connection mode``, one column per rank count,
    values in MB of pinned recv-vbuf bytes.

    Each cell is a dict with ``ranks``, ``scheme``, ``mode`` (``"mesh"``
    or ``"on-demand"``), ``pinned_bytes``, and optionally
    ``modeled=True`` for closed-form entries standing in for meshes too
    big to simulate (rendered with a trailing ``*``).
    """
    cells = list(cells)
    ranks = sorted({c["ranks"] for c in cells})
    by_key = {(c["scheme"], c["mode"], c["ranks"]): c for c in cells}
    schemes = []
    modes = []
    for c in cells:  # preserve first-seen order
        if c["scheme"] not in schemes:
            schemes.append(c["scheme"])
        if c["mode"] not in modes:
            modes.append(c["mode"])
    table = Table(title, [f"{r} ranks (MB)" for r in ranks])
    for scheme in schemes:
        for mode in modes:
            row = []
            for r in ranks:
                c = by_key.get((scheme, mode, r))
                if c is None:
                    row.append("-")
                    continue
                mb = c["pinned_bytes"] / (1024.0 * 1024.0)
                row.append(f"{mb:.2f}{'*' if c.get('modeled') else ''}")
            table.add_row(f"{scheme} {mode}", *row)
    return table


def congestion_table(
    per_dest: Dict[str, Dict[str, int]],
    title: str = "Per-destination switch congestion",
) -> Table:
    """Render a :class:`~repro.core.stats.CongestionReport`'s ``per_dest``
    map (destination LID → final-egress-port counters) as a paper-style
    table — only meaningful when the congestion subsystem was armed.

    Rows are sorted by numeric LID so reports diff cleanly.
    """
    table = Table(title, ["depth_peak_bytes", "pauses", "marks", "drops"])
    for dest in sorted(per_dest, key=int):
        row = per_dest[dest]
        table.add_row(
            f"dst {dest}",
            row.get("depth_peak_bytes", 0),
            row.get("pauses", 0),
            row.get("marks", 0),
            row.get("drops", 0),
        )
    return table
