"""Result collection, rendering and run forensics for the harness."""

from repro.analysis.report import (
    Figure,
    Series,
    Table,
    congestion_table,
    memory_table,
    pct_change,
)
from repro.analysis.timeline import (
    PairTraffic,
    fabric_utilisation,
    flow_control_timeline,
    rank_activity,
)

__all__ = [
    "Figure",
    "PairTraffic",
    "Series",
    "Table",
    "congestion_table",
    "fabric_utilisation",
    "flow_control_timeline",
    "memory_table",
    "pct_change",
    "rank_activity",
]
