"""Run forensics: turn a traced job into human-readable summaries.

Enable tracing with ``run_job(..., trace=True)`` and feed the result here:

* :func:`fabric_utilisation` — bytes/messages per directed host pair;
* :func:`rank_activity` — per-rank wait share and traffic volume;
* :func:`flow_control_timeline` — per-connection credit-stall and
  adaptation summary (where did the backlog time go?).

These are the tools used while diagnosing the reproduction itself (e.g.
"which LU connection accumulated the 63-deep queue?") and ship as part of
the library because downstream users will ask the same questions of their
own workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.analysis.report import Table
from repro.sim.units import to_us

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.job import JobResult


@dataclass
class PairTraffic:
    messages: int = 0
    payload_bytes: int = 0


def fabric_utilisation(result: "JobResult") -> Dict[Tuple[int, int], PairTraffic]:
    """(src_lid, dst_lid) → traffic, from the fabric trace records."""
    tracer = result.endpoints[0].tracer
    out: Dict[Tuple[int, int], PairTraffic] = {}
    for _, _, (src, dst, nbytes, _arrival) in tracer.records_of("fabric.tx"):
        pt = out.setdefault((src, dst), PairTraffic())
        pt.messages += 1
        pt.payload_bytes += max(0, nbytes)
    return out


def rank_activity(result: "JobResult") -> Table:
    """Per-rank wall/wait/traffic summary table."""
    table = Table(
        "Per-rank activity",
        ["finish_us", "wait_us", "wait_share_%", "sent_bytes", "recvd_bytes"],
    )
    for ep, finish in zip(result.endpoints, result.rank_finish_ns):
        share = 100.0 * ep.wait_ns / finish if finish else 0.0
        table.add_row(
            f"rank{ep.rank}",
            to_us(finish),
            to_us(ep.wait_ns),
            share,
            ep.bytes_sent,
            ep.bytes_received,
        )
    return table


def flow_control_timeline(result: "JobResult", top: int = 10) -> Table:
    """The ``top`` connections by credit-stall time: who was starved, how
    deep did the backlog get, how far did the dynamic scheme adapt."""
    rows: List[tuple] = []
    for ep in result.endpoints:
        for peer, conn in ep.connections.items():
            s = conn.stats
            rows.append(
                (
                    s.credit_stalled_ns,
                    f"{ep.rank}->{peer}",
                    s.msgs_sent,
                    s.backlogged,
                    s.rndv_fallbacks,
                    s.ecm_sent,
                    s.max_prepost,
                )
            )
    rows.sort(reverse=True)
    table = Table(
        f"Top-{top} connections by credit-stall time",
        ["stall_us", "msgs", "backlogged", "fallbacks", "ecms", "max_buffers"],
    )
    for stall, name, msgs, backlogged, fallbacks, ecms, maxb in rows[:top]:
        table.add_row(name, to_us(stall), msgs, backlogged, fallbacks, ecms, maxb)
    return table
