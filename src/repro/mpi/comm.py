"""Communicators: isolated communication contexts over rank subgroups.

A :class:`Communicator` wraps an :class:`~repro.mpi.endpoint.Endpoint`
with (a) a *context id* — the third component of the matching triple, so
traffic on different communicators can never cross-match — and (b) a
*group*: an ordered list of world ranks.  It exposes the same generator
API as the endpoint (send/recv/isend/irecv/wait/collectives), translating
group-local ranks to world ranks, which lets every collective algorithm in
:mod:`repro.mpi.collectives` run unchanged on a sub-communicator.

Context-id agreement needs no communication: ids derive deterministically
from the parent's context and a per-parent creation counter, and the MPI
standard already requires `dup`/`split` to be called collectively and in
the same order by every member.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.mpi.constants import ANY_SOURCE, WORLD_CONTEXT
from repro.mpi.endpoint import Endpoint, MPIError
from repro.mpi.request import Request, Status


class CommRevokedError(MPIError):
    """Raised by communication on a revoked communicator (ULFM's
    MPI_ERR_REVOKED): after :meth:`Communicator.revoke`, every operation
    on the communicator fails until the survivors :meth:`~Communicator.
    shrink` a fresh one."""


class Communicator:
    """A group + context view over an endpoint."""

    def __init__(self, endpoint: Endpoint, group: List[int], context: int):
        if endpoint.rank not in group:
            raise MPIError(
                f"rank {endpoint.rank} constructing a communicator it is not in"
            )
        if len(set(group)) != len(group):
            raise MPIError(f"duplicate ranks in group {group}")
        self.endpoint = endpoint
        self.group = list(group)
        self.context = context
        self.rank = self.group.index(endpoint.rank)
        self.size = len(self.group)
        self._coll_seq = endpoint._coll_seq  # shared, keyed by context
        self._next_child = 1
        self._revoked = False

    # ------------------------------------------------------------------
    # rank translation
    # ------------------------------------------------------------------
    def world_rank(self, local: int) -> int:
        if not 0 <= local < self.size:
            raise MPIError(f"rank {local} outside communicator of size {self.size}")
        return self.group[local]

    def local_rank(self, world: int) -> int:
        try:
            return self.group.index(world)
        except ValueError:
            raise MPIError(f"world rank {world} not in this communicator") from None

    # ------------------------------------------------------------------
    # point-to-point (group-local ranks; statuses translated back)
    # ------------------------------------------------------------------
    @property
    def world_size(self) -> int:
        # collectives address peers via isend/irecv of *this* object and
        # read world_size/rank for the algorithm shape.
        return self.size

    @property
    def sim(self):
        return self.endpoint.sim

    @property
    def now(self) -> int:
        return self.endpoint.now

    def isend(self, dest: int, size: int, **kwargs) -> Generator:
        if self._revoked:
            raise CommRevokedError(f"communicator ctx={self.context} is revoked")
        kwargs.setdefault("context", self.context)
        req = yield from self.endpoint.isend(self.world_rank(dest), size, **kwargs)
        return req

    def irecv(self, source: int = ANY_SOURCE, capacity: int = 0, **kwargs) -> Generator:
        if self._revoked:
            raise CommRevokedError(f"communicator ctx={self.context} is revoked")
        kwargs.setdefault("context", self.context)
        src = source if source == ANY_SOURCE else self.world_rank(source)
        req = yield from self.endpoint.irecv(src, capacity, **kwargs)
        return req

    def send(self, dest: int, size: int, **kwargs) -> Generator:
        req = yield from self.isend(dest, size, **kwargs)
        yield from self.wait(req)

    def recv(self, source: int = ANY_SOURCE, capacity: int = 0, **kwargs) -> Generator:
        req = yield from self.irecv(source, capacity, **kwargs)
        status = yield from self.wait(req)
        return status

    def wait(self, request: Request) -> Generator:
        status = yield from self.endpoint.wait(request)
        return self._translate(status)

    def waitall(self, requests: List[Request]) -> Generator:
        statuses = yield from self.endpoint.waitall(requests)
        return [self._translate(s) for s in statuses]

    def compute(self, ns: int) -> Generator:
        yield from self.endpoint.compute(ns)

    def _translate(self, status: Optional[Status]) -> Optional[Status]:
        if status is not None and status.source >= 0:
            return Status(
                source=self.local_rank(status.source),
                tag=status.tag,
                size=status.size,
                payload=status.payload,
                error=status.error,
            )
        return status

    # ------------------------------------------------------------------
    # collectives (the algorithms see this object as their "endpoint")
    # ------------------------------------------------------------------
    def barrier(self) -> Generator:
        from repro.mpi import collectives

        yield from collectives.barrier(self)

    def bcast(self, root: int, size: int, payload: Any = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.bcast(self, root, size, payload)
        return result

    def reduce(self, root: int, size: int, value: Any = None, op=None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.reduce(self, root, size, value, op)
        return result

    def allreduce(self, size: int, value: Any = None, op=None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.allreduce(self, size, value, op)
        return result

    def allgather(self, size: int, value: Any = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.allgather(self, size, value)
        return result

    def alltoall(self, size_per_peer: int, payloads: Optional[list] = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.alltoall(self, size_per_peer, payloads)
        return result

    def alltoallv(self, sizes: List[int], payloads: Optional[list] = None,
                  recv_sizes: Optional[List[int]] = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.alltoallv(self, sizes, payloads, recv_sizes)
        return result

    def gather(self, root: int, size: int, value: Any = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.gather(self, root, size, value)
        return result

    def scatter(self, root: int, size: int, values: Optional[list] = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.scatter(self, root, size, values)
        return result

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _child_context(self) -> int:
        ctx = self.context * 131 + self._next_child * 7 + 1_000_003
        self._next_child += 1
        return ctx

    def dup(self) -> Generator:
        """Collective: a new communicator with the same group but a fresh
        context (traffic on the two can never cross-match)."""
        ctx = self._child_context()
        yield from self.barrier()  # collectives must not straddle creation
        return Communicator(self.endpoint, self.group, ctx)

    def split(self, color: int, key: int = 0) -> Generator:
        """Collective: partition by ``color``; order within each new group
        by ``(key, old rank)``.  Returns None for color < 0 (MPI_UNDEFINED
        convention)."""
        pairs = yield from self.allgather(size=16, value=(color, key, self.rank))
        ctx = self._child_context() + (0 if color < 0 else color)
        if color < 0:
            return None
        members = sorted(
            (k, r) for c, k, r in pairs if c == color
        )
        group = [self.world_rank(r) for _, r in members]
        return Communicator(self.endpoint, group, ctx)

    # ------------------------------------------------------------------
    # ULFM-style fault tolerance (repro.ft)
    # ------------------------------------------------------------------
    @property
    def revoked(self) -> bool:
        return self._revoked

    def revoke(self) -> None:
        """Local half of MPI_Comm_revoke: mark the communicator unusable
        so no further operation is posted on it.  (Real ULFM floods a
        revocation token; here each survivor revokes after observing a
        PROC_FAILED status or a dead member — deterministic, no extra
        traffic.)"""
        self._revoked = True

    def failed_ranks(self) -> List[int]:
        """Group-local ranks of members the failure detector declared
        dead (empty without ``run_job(..., ft=True)``)."""
        ft = self.endpoint._ft
        if ft is None:
            return []
        return [i for i, w in enumerate(self.group) if w in ft.dead]

    def shrink(self) -> "Communicator":
        """MPI_Comm_shrink: a new communicator over the surviving members.
        Agreement needs no communication here — every survivor's detector
        converges on the same ``dead`` set (one shared FTManager), and the
        child context derives deterministically, so all survivors
        construct matching groups.  Usable on a revoked communicator (that
        is its purpose)."""
        ft = self.endpoint._ft
        dead = ft.dead if ft is not None else ()
        group = [w for w in self.group if w not in dead]
        if self.endpoint.rank not in group:
            raise MPIError(f"rank {self.endpoint.rank} shrink()ing as a dead member")
        return Communicator(self.endpoint, group, self._child_context())


def world(endpoint: Endpoint) -> Communicator:
    """MPI_COMM_WORLD for this endpoint."""
    return Communicator(endpoint, list(range(endpoint.world_size)), WORLD_CONTEXT)
