"""The MPI endpoint: one per rank, the ADI2-style device of this MPI.

An :class:`Endpoint` owns the rank's verbs resources (one CQ for every
connection, exactly like the paper's design), the pre-pinned vbuf pool, the
matching engine, the pin-down cache, the rendezvous bookkeeping and — via
:class:`~repro.mpi.connection.Connection` — all flow-control state.

All public operations are *generators* driven by the simulation kernel;
application programs call them with ``yield from``::

    def program(mpi):
        req = yield from mpi.irecv(source=1, capacity=1 << 20)
        yield from mpi.send(1, size=4)
        status = yield from mpi.wait(req)

Progress happens only inside MPI calls (the paper's user-level schemes
explicitly depend on this; the hardware scheme's "application bypass"
advantage shows up as the HCA needing no software help to *deliver*, though
buffer re-posting is always software).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Set

from repro.core.base import FlowControlScheme
from repro.ib.hca import HCA
from repro.ib.types import Opcode, QPState
from repro.ib.wr import RecvWR, SendWR, WC
from repro.mpi.buffer_pool import SendBufferPool
from repro.mpi.config import MPIConfig
from repro.mpi.connection import Connection, PendingSend
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, WORLD_CONTEXT
from repro.mpi.matching import MatchingEngine, PostedRecv
from repro.mpi.pindown_cache import PinDownCache
from repro.mpi.protocol import Header, MsgKind
from repro.mpi.rendezvous import BounceRegion, RndvRecvOp, RndvSendOp, next_op_id
from repro.mpi.request import Request, Status
from repro.ft.failures import RankFailedError
from repro.sim import AnyOf, Simulator, Timeout
from repro.sim.trace import Tracer


class MPIError(RuntimeError):
    pass


class TruncationError(MPIError):
    """A message arrived larger than the posted receive buffer."""


#: vbufs held back for control traffic (CTS/FIN/ECM) so progress-side
#: emissions can never block on the pool (which would deadlock progress).
CONTROL_RESERVE = 32


class Endpoint:
    """One MPI process endpoint."""

    def __init__(
        self,
        sim: Simulator,
        hca: HCA,
        rank: int,
        world_size: int,
        config: MPIConfig,
        scheme: FlowControlScheme,
        requested_prepost: int,
        tracer: Optional[Tracer] = None,
        connector: Optional[Callable] = None,
    ):
        if requested_prepost < 1:
            raise MPIError("requested_prepost must be >= 1")
        self.sim = sim
        self.hca = hca
        self.rank = rank
        self.world_size = world_size
        self.config = config
        self.scheme = scheme
        self.requested_prepost = requested_prepost
        self.tracer = tracer or Tracer(enabled=False)
        #: eager traffic travels by RDMA-write ring — either the legacy
        #: config switch or a scheme that owns a ring (rdma-eager).  The
        #: flag gates ring allocation at connect time and the ring-dirty
        #: arm of the progress waits.
        self._ring_mode = config.use_rdma_channel or scheme.uses_ring

        self.cq = hca.create_cq(f"mpi.cq.{rank}")
        self.pool = SendBufferPool(sim, config.send_pool_buffers, config.vbuf_bytes)
        self.matching = MatchingEngine()
        self.pindown = PinDownCache(hca)
        bounce_mr = hca.reg_mr(config.vbuf_bytes * 64)
        self.bounce = BounceRegion(bounce_mr, config.vbuf_bytes, 64)

        self.connections: Dict[int, Connection] = {}
        self._backlogged: Set[int] = set()  # peers with non-empty backlog
        #: peers whose RDMA ring holds arrived-but-unprocessed messages
        #: (dirty-flag wakeups: the progress engine only looks at these
        #: instead of scanning every connection per poll)
        self._ring_dirty: Set[int] = set()
        self._send_ctx: Dict[int, tuple] = {}
        self._ctx_ids = itertools.count(1)
        self._rndv_send: Dict[int, RndvSendOp] = {}
        self._rndv_recv: Dict[int, RndvRecvOp] = {}
        self._coll_seq: Dict[int, int] = {}  # context -> collective sequence
        #: on-demand connection setup hook (None = static full mesh)
        self._connector = connector
        #: armed waiter for RDMA-ring arrivals (the spin-loop stand-in)
        self._ring_notify = None
        self.finalized = False
        # --- fault injection (repro.faults): slow-consumer throttling ---
        #: while ``sim.now < _stall_until`` this rank neither re-posts vbufs
        #: nor returns paid credits — the starved-receiver model.
        self._stall_until = 0
        #: peer -> paid credits withheld during the stall window
        self._stall_held: Dict[int, int] = {}
        # shared immutable waitables for the fixed per-call costs (the
        # progress hot path yields these thousands of times per run)
        self._t_call = Timeout(config.call_overhead_ns)
        self._t_poll = Timeout(config.poll_overhead_ns)
        #: runtime invariant auditor (repro.check); None = disabled, and
        #: every hook site below is guarded so the disabled cost is one
        #: attribute load + None test.
        self._audit = None
        #: connection recovery manager (repro.recovery); None = disabled,
        #: same zero-cost hook pattern as the auditor.
        self._recovery = None
        #: rank-failure tolerance manager (repro.ft); None = disabled,
        #: same zero-cost hook pattern as the auditor.
        self._ft = None
        #: rank-death fault: once halted, every MPI entry point and the
        #: progress engine park forever (the process is dead; its state
        #: must stop mutating even as flushed completions hit the CQ).
        self._halted = False
        self._halt_signal = None

        # observability
        self.bytes_sent = 0
        self.bytes_received = 0
        self.wait_ns = 0

    # ------------------------------------------------------------------
    # wiring (done by the cluster builder before programs start)
    # ------------------------------------------------------------------
    def add_connection(self, peer: int, conn: Connection) -> None:
        self.connections[peer] = conn
        if self._ring_mode:
            from repro.mpi.rdma_channel import RDMAChannel

            conn.rdma_eager = True
            channel = RDMAChannel(
                self, peer, slots=self.requested_prepost,
                slot_bytes=self.config.vbuf_bytes,
            )
            channel.ring.mr.on_write = lambda addr, payload, ch=channel: ch.deposit(payload)
            conn.rx_channel = channel
        self.scheme.setup_connection(conn, self.requested_prepost)

    @staticmethod
    def wire_rdma_rings(conn_ab: Connection, conn_ba: Connection) -> None:
        """Exchange ring coordinates between the two halves of a freshly
        established connection (part of connection setup in RDMA mode)."""
        for tx, rx in ((conn_ab, conn_ba), (conn_ba, conn_ab)):
            ring = rx.rx_channel.ring
            tx.tx_ring_addr = ring.mr.addr
            tx.tx_ring_rkey = ring.mr.rkey
            tx.tx_ring_slots = ring.slots
            tx.tx_ring_next = 0

    def _post_recv_vbuf(self, conn: Connection) -> None:
        if conn.qp.state is not QPState.READY:
            # Recovery window: the QP cannot accept WQEs (post_recv raises
            # in ERROR state).  The credit for a paid message processed in
            # this window is still granted by the caller; the physical
            # buffer population is restored by the resync refill.
            return
        conn.qp.post_recv(RecvWR(wr_id=conn.peer, capacity=self.config.vbuf_bytes))
        conn.recv_posted += 1
        if self._audit is not None:
            self._audit.on_post_recv(conn)

    @property
    def now(self) -> int:
        return self.sim.now

    # ------------------------------------------------------------------
    # public API: point-to-point
    # ------------------------------------------------------------------
    def isend(
        self,
        dest: int,
        size: int,
        tag: int = 0,
        payload: Any = None,
        buffer_id: Optional[object] = None,
        context: int = WORLD_CONTEXT,
        mode: str = "standard",
    ) -> Generator:
        """Non-blocking send; returns a :class:`Request`.

        ``mode`` selects the MPI communication mode (paper §3.1: "MPI
        defines four different communication modes: Standard, Synchronous,
        Buffered, and Ready"):

        * ``"standard"`` / ``"buffered"`` — eager below the rendezvous
          threshold (this device buffers through the vbuf pool, so the two
          behave identically), rendezvous above;
        * ``"sync"`` — always rendezvous: the request cannot complete until
          the handshake proves a matching receive exists (MPI_Ssend);
        * ``"ready"`` — like standard, but the receiver *errors* if the
          message arrives unexpected (MPI_Rsend's contract).
        """
        if mode not in ("standard", "buffered", "sync", "ready"):
            raise MPIError(f"unknown send mode {mode!r}")
        self._check_peer(dest)
        if size < 0:
            raise MPIError(f"negative message size {size}")
        req = Request(self.sim, "send")
        if self._ft is not None:
            if self._ft.fail_if_dead(self, req, dest):
                return req
            self._ft.watch(self, req, dest)
        # Fast path: the connection almost always exists already; skip the
        # sub-generator (and its per-call frame) entirely when it does.
        conn = self.connections.get(dest)
        if conn is None:
            try:
                conn = yield from self._ensure_connected(dest)
            except RankFailedError:
                # dest died while the on-demand setup exchange was parked;
                # the request completes with PROC_FAILED, never hangs
                self._ft.fail_request(self, req, dest)
                return req
        self.bytes_sent += size
        if self._audit is not None:
            self._audit.on_app_send(self.rank, dest, tag, context, size)
        yield self._t_call
        if req.done:  # dest declared dead while this call was parked
            return req

        cfg = self.config
        if mode != "sync" and size <= (cfg.rndv_min_bytes or cfg.vbuf_bytes - cfg.header_bytes):
            header = Header(
                kind=MsgKind.EAGER,
                src=self.rank,
                dst=dest,
                tag=tag,
                context=context,
                size=size,
                payload=payload,
                paid=True,
                ready=(mode == "ready"),
            )
            # A non-empty backlog forces FIFO (MPI non-overtaking): new
            # sends may not jump the queue even if a credit is available.
            # A recovering connection parks everything in the backlog too —
            # its credit state is stale until the resync.
            if (
                not conn.backlog
                and not conn.recovering
                and self.scheme.try_consume_credit(conn)
            ):
                if self._audit is not None:
                    self._audit.on_consume(conn)
                if conn.rdma_eager:
                    cost = self._emit_ring(conn, header, req)
                else:
                    yield from self._await_pool(control=False)
                    if req.done:  # dest declared dead during the pool wait
                        return req
                    cost = self._emit(conn, header, "eager", req, control=False)
                yield Timeout(cost)
            else:
                self._enqueue_backlog(conn, PendingSend(header, req, self.sim.now))
                yield Timeout(self._drain(conn))
        else:
            # Rendezvous path (large messages, and every "sync" send —
            # the CTS proves the receive is matched).  Small synchronous
            # payloads ride the pre-registered bounce region instead of
            # paying a pin.
            bounce = size <= self.config.eager_max()
            if bounce:
                mr, pin_cost = None, 0
            else:
                mr, pin_cost = self.pindown.acquire(buffer_id, size)
            yield Timeout(pin_cost)
            if req.done:  # dest declared dead while pinning
                if mr is not None:
                    self.pindown.release(buffer_id, mr)
                return req
            op = RndvSendOp(
                sreq_id=next_op_id(),
                request=req,
                dst=dest,
                tag=tag,
                context=context,
                size=size,
                payload=payload,
                buffer_id=buffer_id,
                mr=mr,
                bounce=bounce,
            )
            self._rndv_send[op.sreq_id] = op
            header = Header(
                kind=MsgKind.RNDV_RTS,
                src=self.rank,
                dst=dest,
                tag=tag,
                context=context,
                size=size,
                sreq_id=op.sreq_id,
                paid=True,
            )
            if (
                not conn.backlog
                and not conn.recovering
                and self.scheme.try_consume_credit(conn)
            ):
                if self._audit is not None:
                    self._audit.on_consume(conn)
                yield from self._await_pool(control=False)
                if req.done:  # dest declared dead during the pool wait
                    return req
                cost = self._emit(conn, header, "ctl", None, control=False)
                op.rts_sent = True
                yield Timeout(cost)
            else:
                self._enqueue_backlog(conn, PendingSend(header, op, self.sim.now))
                yield Timeout(self._drain(conn))
        # Opportunistic progress poke: every MPI call advances the engine
        # (as MPICH's ADI does) — without it, a rank that only isends would
        # never see CTSs or credit updates (user-level flow control "relies
        # on communication progress", paper §4.2).  The idle case of
        # ``_poll_once`` is open-coded (same yield sequence) to skip a
        # sub-generator per send.
        yield self._t_poll
        if self.cq._entries or self._ring_dirty:
            yield from self._poll_busy()
        elif self._backlogged:
            cost = self._drain_backlogged()
            if cost:
                yield Timeout(cost)
        return req

    def irecv(
        self,
        source: int = ANY_SOURCE,
        capacity: int = 0,
        tag: int = ANY_TAG,
        buffer_id: Optional[object] = None,
        context: int = WORLD_CONTEXT,
    ) -> Generator:
        """Non-blocking receive; returns a :class:`Request`."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        req = Request(self.sim, "recv")
        if (
            self._ft is not None
            and source != ANY_SOURCE
            and self._ft.fail_if_dead(self, req, source)
        ):
            yield self._t_call
            return req
        yield self._t_call
        posted = PostedRecv(source, tag, context, capacity, req, buffer_id)
        unexpected = self.matching.post_recv(posted)
        if unexpected is not None:
            h = unexpected.header
            if self._audit is not None:
                self._audit.on_match(h)
            if h.kind is MsgKind.EAGER:
                self._check_capacity(h, capacity)
                yield Timeout(self.config.copy_ns(h.size))
                self.bytes_received += h.size
                self._complete_recv(req, h.src, h.tag, h.size, h.payload)
                if not h.via_ring:
                    # The message's vbuf was pinned while it sat unexpected;
                    # copy-out releases it now (ring slots were already
                    # freed at arrival).
                    yield Timeout(self._repost_after(self.connections[h.src], h.paid))
            else:  # RNDV_RTS
                self._check_capacity(h, capacity)
                cost = self._rndv_recv_start(h, posted)
                yield Timeout(cost)
        elif self._ft is not None and source != ANY_SOURCE:
            # nothing arrived yet: the peer's liveness now gates this
            # request, so the failure detector watches it
            self._ft.watch(self, req, source)
        # Open-coded idle _poll_once, as in isend.
        yield self._t_poll
        if self.cq._entries or self._ring_dirty:
            yield from self._poll_busy()
        elif self._backlogged:
            cost = self._drain_backlogged()
            if cost:
                yield Timeout(cost)
        return req

    def send(self, dest: int, size: int, **kwargs) -> Generator:
        """Blocking send (MPI_Send): returns once the operation finished
        locally — for eager sends that is the moment the payload is staged
        (buffered semantics); for rendezvous, the end of the handshake."""
        req = yield from self.isend(dest, size, **kwargs)
        yield from self.wait(req)

    def ssend(self, dest: int, size: int, **kwargs) -> Generator:
        """Blocking synchronous send (MPI_Ssend): completes only after the
        receiver has matched the message (forced rendezvous)."""
        req = yield from self.isend(dest, size, mode="sync", **kwargs)
        yield from self.wait(req)

    def issend(self, dest: int, size: int, **kwargs) -> Generator:
        req = yield from self.isend(dest, size, mode="sync", **kwargs)
        return req

    def rsend(self, dest: int, size: int, **kwargs) -> Generator:
        """Blocking ready send (MPI_Rsend): erroneous unless the matching
        receive is already posted at the destination."""
        req = yield from self.isend(dest, size, mode="ready", **kwargs)
        yield from self.wait(req)

    def recv(
        self,
        source: int = ANY_SOURCE,
        capacity: int = 0,
        tag: int = ANY_TAG,
        **kwargs,
    ) -> Generator:
        """Blocking receive; returns the :class:`Status`."""
        req = yield from self.irecv(source, capacity, tag, **kwargs)
        status = yield from self.wait(req)
        return status

    def wait(self, request: Request) -> Generator:
        """Block until ``request`` completes; returns its status."""
        sim = self.sim
        t0 = sim.now
        # Open-coded _progress_until(lambda: request.done): this is the
        # single hottest progress loop and the closure + predicate calls
        # are measurable.  Keep the yield sequence identical to the
        # generic loop — determinism depends on it.
        cq = self.cq
        while not request.done:
            if self._halted:
                yield self._halt_signal  # never fires: this rank is dead
            # Inline idle _poll_once (same yield sequence).
            yield self._t_poll
            if cq._entries or self._ring_dirty:
                yield from self._poll_busy()
            elif self._backlogged:
                cost = self._drain_backlogged()
                if cost:
                    yield Timeout(cost)
            if request.done:
                break
            if not cq._entries and not self._ring_ready():
                if self._ring_mode:
                    yield AnyOf([cq.wait_nonempty(), self._ring_wait()])
                else:
                    yield cq.wait_nonempty()
        self.wait_ns += sim.now - t0
        return request.status

    def waitall(self, requests: List[Request]) -> Generator:
        """Block until every request completes; returns their statuses."""
        t0 = self.now
        # The completion predicate runs after every progress step; a plain
        # ``all(r.done ...)`` rescans the whole window each time, which is
        # O(n²) over a window of n requests (the dominant cost of the
        # non-blocking bandwidth benchmark).  Requests only ever go from
        # pending to done, so tracking the done-prefix makes the total
        # predicate work O(n) without changing its value at any instant.
        n = len(requests)
        prefix = 0

        def all_done() -> bool:
            nonlocal prefix
            i = prefix
            while i < n and requests[i].done:
                i += 1
            prefix = i
            return i == n

        yield from self._progress_until(all_done)
        self.wait_ns += self.now - t0
        return [r.status for r in requests]

    def test(self, request: Request) -> Generator:
        """One progress poke; returns (done, status_or_None)."""
        yield from self._poll_once()
        return (request.done, request.status)

    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, context: int = WORLD_CONTEXT
    ) -> Generator:
        """Non-blocking probe of the unexpected queue (after one poke)."""
        yield from self._poll_once()
        h = self.matching.iprobe(source, tag, context)
        return None if h is None else Status(h.src, h.tag, h.size)

    def compute(self, ns: int) -> Generator:
        """Model local computation: burn simulated CPU time without
        progressing MPI (this is exactly the application-bypass window)."""
        if ns > 0:
            yield Timeout(int(ns))

    # ------------------------------------------------------------------
    # public API: collectives (thin delegation; see repro.mpi.collectives)
    # ------------------------------------------------------------------
    def barrier(self) -> Generator:
        from repro.mpi import collectives

        yield from collectives.barrier(self)

    def bcast(self, root: int, size: int, payload: Any = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.bcast(self, root, size, payload)
        return result

    def reduce(self, root: int, size: int, value: Any = None, op: Callable = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.reduce(self, root, size, value, op)
        return result

    def allreduce(self, size: int, value: Any = None, op: Callable = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.allreduce(self, size, value, op)
        return result

    def alltoall(self, size_per_peer: int, payloads: Optional[list] = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.alltoall(self, size_per_peer, payloads)
        return result

    def alltoallv(self, sizes: List[int], payloads: Optional[list] = None,
                  recv_sizes: Optional[List[int]] = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.alltoallv(self, sizes, payloads, recv_sizes)
        return result

    def allgather(self, size: int, value: Any = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.allgather(self, size, value)
        return result

    def gather(self, root: int, size: int, value: Any = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.gather(self, root, size, value)
        return result

    def scatter(self, root: int, size: int, values: Optional[list] = None) -> Generator:
        from repro.mpi import collectives

        result = yield from collectives.scatter(self, root, size, values)
        return result

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def finalize(self) -> Generator:
        """Quiesce: wait for all local sends to complete and backlogs to
        drain, then synchronise with every rank.  After finalize, stray
        inbound control traffic parks in posted vbufs without needing this
        rank's attention (no RNR livelock)."""
        yield from self._progress_until(self._locally_quiescent)
        if self._ft is not None:
            # With the failure detector armed, finalize must not world-
            # synchronize: a rank can enter the barrier before a death is
            # declared while another skips it after — an asymmetric hang.
            # ULFM semantics: quiesce locally, never wait on membership.
            self.finalized = True
            return
        yield from self.barrier()
        yield from self._progress_until(self._locally_quiescent)
        self.finalized = True

    def _locally_quiescent(self) -> bool:
        dead = self._ft.dead if self._ft is not None else ()
        return (
            all(
                not c.backlog
                and not c.recovering
                and not c.deferred
                and c.qp.outstanding_sends == 0
                for p, c in self.connections.items()
                if p not in dead  # severed state toward dead peers is frozen
            )
            and not self._rndv_send
            and not self._send_ctx  # every completion polled (pool released)
            and len(self.cq) == 0
        )

    # ------------------------------------------------------------------
    # progress engine
    # ------------------------------------------------------------------
    def _ring_signal_fire(self) -> None:
        if self._ring_notify is not None:
            sig, self._ring_notify = self._ring_notify, None
            sig.fire(self.sim, None)

    def _ring_wait(self):
        from repro.sim import Signal

        if self._ring_notify is None:
            self._ring_notify = Signal(f"ring.{self.rank}")
        return self._ring_notify

    def _ring_ready(self) -> bool:
        """Any RDMA-ring arrival that is next in its connection's sequence?"""
        if not self._ring_dirty:
            return False
        for peer in self._ring_dirty:
            conn = self.connections[peer]
            ch = conn.rx_channel
            if ch is not None and ch.poll_peek(conn.seq_in_expected):
                return True
        return False

    def _progress_until(self, pred: Callable[[], bool]) -> Generator:
        from repro.sim import AnyOf

        while not pred():
            if self._halted:
                yield self._halt_signal  # never fires: this rank is dead
            yield from self._poll_once()
            if pred():
                return
            if not self.cq._entries and not self._ring_ready():
                if self._ring_mode:
                    yield AnyOf([self.cq.wait_nonempty(), self._ring_wait()])
                else:
                    yield self.cq.wait_nonempty()

    def _poll_once(self) -> Generator:
        """Drain the CQ and the RDMA rings, handling each completion (and
        charging its CPU cost); drains backlogs afterwards.  Idle
        connections cost nothing: only rings flagged dirty by an RDMA
        deposit are examined."""
        if self._halted:
            return  # dead rank: resumed mid-loop by a stale wakeup
        yield self._t_poll
        # Idle fast path: nothing completed, no ring flagged dirty — the
        # common case for the opportunistic poke every MPI call performs.
        if not self.cq._entries and not self._ring_dirty:
            if self._backlogged:
                cost = self._drain_backlogged()
                if cost:
                    yield Timeout(cost)
            return
        yield from self._poll_busy()

    def _poll_busy(self) -> Generator:
        """The non-idle tail of :meth:`_poll_once` (poll overhead already
        charged by the caller)."""
        if self._halted:
            # A dead rank processes nothing: flushed completions from its
            # errored QPs must not mutate its (frozen) protocol state.
            return
        if self._stall_until > self.sim.now:
            # Fault model: a stalled (descheduled) consumer handles no
            # completions at all — arrivals pile up in the CQ, posted
            # vbufs are consumed and never replenished, and no credits
            # or rendezvous replies leave this rank until the window
            # closes.  This is the paper's slow-receiver stressor: the
            # hardware scheme's sender keeps pushing into the shrinking
            # receive queue and degenerates into RNR timeout storms,
            # while user-level senders park the overflow in the backlog.
            return
        cq = self.cq
        while True:
            progressed = False
            wcs = cq.poll(32) if cq._entries else ()
            for wc in wcs:
                progressed = True
                cost = self._handle_wc(wc)
                if cost:
                    yield Timeout(cost)
            dirty = self._ring_dirty
            if dirty:
                if len(dirty) == 1:
                    peers = tuple(dirty)
                else:
                    # connection-table order keeps multi-peer drains
                    # deterministic (matches the pre-dirty-flag full scan)
                    peers = [p for p in self.connections if p in dirty]
                for peer in peers:
                    conn = self.connections[peer]
                    ch = conn.rx_channel
                    while ch is not None:
                        h = ch.poll(conn.seq_in_expected)
                        if h is None:
                            if not ch.has_arrivals:
                                # fully drained; a blocked head (waiting on
                                # a control message in the CQ path to
                                # advance seq_in_expected) stays dirty
                                dirty.discard(peer)
                            break
                        progressed = True
                        cost = self._handle_ring_eager(conn, h)
                        if conn.cq_stash:
                            # ring progress may unpark overtaking CQ headers
                            cost += self._drain_cq_stash(conn)
                        if cost:
                            yield Timeout(cost)
            if not progressed:
                break
        if self._backlogged:
            cost = self._drain_backlogged()
            if cost:
                yield Timeout(cost)

    def _handle_wc(self, wc: WC) -> int:
        if self._halted:
            # A Timeout scheduled before this rank died can resume its
            # generator mid-CQ-drain, past _poll_busy's entry guard; the
            # remaining completions (now flushes) must not be processed.
            return 0
        if not wc.ok:
            return self._handle_error_wc(wc)
        if wc.is_recv:
            return self._handle_recv(wc)
        return self._handle_send_done(wc)

    # --- errored completions ---------------------------------------------
    def _conn_for_qp(self, qp_num: int) -> Optional[Connection]:
        for conn in self.connections.values():
            if conn.qp.qp_num == qp_num:
                return conn
        return None

    def _reclaim_error_wc(self, wc: WC) -> Optional[tuple]:
        """Undo the local bookkeeping an errored/flushed completion
        invalidates: release the send-pool vbuf for eager/control sends
        and drop the posted-recv count for flushed receives.  Returns the
        popped send context (or None), so the recovery manager can decide
        what to replay."""
        if wc.is_recv:
            conn = self._conn_for_qp(wc.qp_num)
            if conn is not None:
                conn.recv_posted -= 1
            return None
        ctx = self._send_ctx.pop(wc.wr_id, None)
        if ctx is None:
            return None
        if ctx[0] in ("eager", "ctl"):
            self.pool.release()
            if self._audit is not None:
                self._audit.on_send_done(self)
        return ctx

    def _handle_error_wc(self, wc: WC) -> int:
        """A completion with non-success status.  With a recovery manager
        installed this begins (or feeds) a QP-pair re-establishment;
        without one, the job fails promptly with a structured record —
        the pre-recovery behaviour was to leak the vbuf and hang until
        the progress watchdog tripped."""
        if self._ft is not None:
            # Rank death first: an error completion explained by a dead
            # peer is absorbed (and may *be* the detection — transport
            # retry exhaustion against a dead HCA confirms the failure).
            cost = self._ft.on_error_wc(self, wc)
            if cost is not None:
                return cost
        if self._recovery is not None:
            return self._recovery.on_error_wc(self, wc)
        self._reclaim_error_wc(wc)
        from repro.recovery.failures import ConnectionFailedError, ConnectionFailure

        conn = self._conn_for_qp(wc.qp_num)
        peer = conn.peer if conn is not None else wc.peer
        raise ConnectionFailedError(
            ConnectionFailure(
                rank=self.rank,
                peer=peer,
                scheme=self.scheme.name.value,
                epoch=conn.qp.epoch if conn is not None else 0,
                cause=wc.status.value,
                elapsed_ns=self.sim.now,
                attempts=0,
            )
        )

    # --- inbound ---------------------------------------------------------
    def _handle_recv(self, wc: WC) -> int:
        h: Header = wc.data
        conn = self.connections[h.src]
        conn.recv_posted -= 1

        if h.seq != conn.seq_in_expected:
            if conn.rx_channel is not None and h.seq > conn.seq_in_expected:
                # Cross-channel skew: the CQ (send/recv) channel and the
                # RDMA ring share one per-connection sequence space but
                # not one wire, so a control message can overtake an
                # eager write still in flight toward the ring.  Park the
                # header; the ring drain re-dispatches it the moment the
                # gap closes.  The QP itself is FIFO, so appends keep the
                # stash in sequence order.
                conn.cq_stash.append(h)
                return self.config.header_proc_ns
            raise MPIError(
                f"rank {self.rank}: out-of-order delivery from {h.src}: "
                f"seq {h.seq} != expected {conn.seq_in_expected}"
            )
        cost = self._deliver_cq(conn, h)
        if conn.cq_stash:
            cost += self._drain_cq_stash(conn)
        return cost

    def _drain_cq_stash(self, conn: Connection) -> int:
        """Deliver parked CQ headers made in-sequence by ring progress."""
        cost = 0
        while conn.cq_stash and conn.cq_stash[0].seq == conn.seq_in_expected:
            cost += self._deliver_cq(conn, conn.cq_stash.pop(0))
        return cost

    def _deliver_cq(self, conn: Connection, h: Header) -> int:
        """The in-sequence body of :meth:`_handle_recv` (the vbuf's
        ``recv_posted`` decrement already happened at poll time)."""
        cost = self.config.header_proc_ns
        conn.seq_in_expected += 1

        if self._ft is not None:
            # liveness piggyback: any delivery proves the peer is alive
            self._ft.on_heard(self.rank, conn.peer)
        if h.credits:
            self.scheme.on_credits_received(conn, h.credits)
        if self._audit is not None:
            self._audit.on_deliver(conn, h)

        # Dispatch.  ``absorbed`` is False only for unexpected eager data:
        # its payload stays parked in the vbuf until the application posts
        # the matching receive (the vbuf IS the storage — MVICH design),
        # so that buffer cannot be re-posted yet.  This is precisely how a
        # fast sender exhausts a slow receiver (paper §3.2).
        absorbed = True
        if h.kind is MsgKind.EAGER:
            posted = self.matching.arrived(h, self.sim.now)
            if posted is not None:
                if self._audit is not None:
                    self._audit.on_match(h)
                self._check_capacity(h, posted.capacity)
                cost += self.config.copy_ns(h.size)  # vbuf -> user buffer
                self.bytes_received += h.size
                self._complete_recv(posted.request, h.src, h.tag, h.size, h.payload)
            else:
                if h.ready:
                    raise MPIError(
                        f"rank {self.rank}: ready-mode message from {h.src} "
                        f"(tag {h.tag}) arrived with no matching receive "
                        "posted — MPI_Rsend contract violated"
                    )
                absorbed = False  # vbuf pinned until matched
        elif h.kind is MsgKind.RNDV_RTS:
            posted = self.matching.arrived(h, self.sim.now)
            if posted is not None:
                if self._audit is not None:
                    self._audit.on_match(h)
                self._check_capacity(h, posted.capacity)
                cost += self._rndv_recv_start(h, posted)
            # an unexpected RTS is fully parsed here; its vbuf is reusable
        elif h.kind is MsgKind.RNDV_CTS:
            cost += self._handle_cts(conn, h)
        elif h.kind is MsgKind.RNDV_FIN:
            cost += self._handle_fin(h)
        elif h.kind is MsgKind.CREDIT:
            pass  # credits already folded in above
        elif h.kind is MsgKind.RING_RESIZE:
            # switch the sender half to the peer's next-generation ring
            conn.tx_ring_addr = h.remote_addr
            conn.tx_ring_rkey = h.rkey
            conn.tx_ring_slots = h.size
            conn.tx_ring_next = 0
        else:  # pragma: no cover - exhaustive
            raise MPIError(f"unknown message kind {h.kind}")

        if absorbed:
            cost += self._repost_after(conn, h.paid)

        # Feedback hook (dynamic growth); charges posting of new buffers.
        if self._audit is not None:
            grown = self._audit.observe_recv_header(self.scheme, conn, h)
        else:
            grown = self.scheme.on_recv_header(conn, h)
        if grown:
            cost += grown * self.config.post_overhead_ns
            if self.scheme.should_send_ecm(conn):
                cost += self._emit_ecm(conn)

        if conn.backlog:
            cost += self._drain(conn)
        return cost

    def _repost_after(self, conn: Connection, paid: bool) -> int:
        """Re-post a vbuf whose message has been fully processed, granting
        the credit back for paid messages (unpaid traffic occupies the
        non-credited headroom — see protocol.Header.paid).

        The grant is decoupled from the physical repost: if dynamic growth
        already refilled the population while this message's vbuf was
        pinned in the unexpected queue, the buffer was replaced but the
        paid credit must still return.  Only an *over*-full population
        (decay contraction) swallows the credit.

        During a fault-injected receiver stall the vbuf stays consumed and
        the paid credit is withheld; :meth:`fault_release_stall` settles
        both once the window closes.
        """
        if self._stall_until > self.sim.now:
            if paid:
                self._stall_held[conn.peer] = self._stall_held.get(conn.peer, 0) + 1
            self.tracer.count("faults.stall_deferred", conn.peer)
            return self._drain(conn) if conn.backlog else 0
        cost = 0
        if conn.rdma_eager:
            # Ring mode: the WQE population is the fixed control reserve,
            # disjoint from the credit population (ring slots).  A paid
            # credit here rode a control-channel message (a rendezvous
            # RTS borrowing a slot token) and always returns — the ring
            # never decay-contracts, so there is no swallow case, and the
            # slot-count cap must not be compared against WQE counts.
            if conn.recv_posted < self.config.rdma_control_bufs:
                self._post_recv_vbuf(conn)
                cost += self.config.post_overhead_ns
            if paid:
                conn.pending_credit_return += 1
                if self._audit is not None:
                    self._audit.on_grant(conn, 1)
                if self.scheme.should_send_ecm(conn):
                    cost += self._emit_ecm(conn)
            if conn.backlog:
                cost += self._drain(conn)
            return cost
        cap = conn.prepost_target + conn.headroom
        reposted = False
        if conn.recv_posted < cap:
            self._post_recv_vbuf(conn)
            cost += self.config.post_overhead_ns
            reposted = True
        if paid:
            if reposted or conn.recv_posted == cap:
                conn.pending_credit_return += 1
                if self._audit is not None:
                    self._audit.on_grant(conn, 1)
                if self.scheme.should_send_ecm(conn):
                    cost += self._emit_ecm(conn)
            elif self._audit is not None:
                # over-full population after a decay contraction: the
                # credit is swallowed (see the docstring above)
                self._audit.on_swallow(conn)
        if conn.backlog:
            cost += self._drain(conn)
        return cost

    def _handle_cts(self, conn: Connection, h: Header) -> int:
        op = self._rndv_send.get(h.sreq_id)
        if op is None:
            raise MPIError(f"rank {self.rank}: CTS for unknown sreq {h.sreq_id}")
        op.cts_seen = True
        op.fin_rreq_id = h.rreq_id
        op.cts_remote_addr = h.remote_addr
        op.cts_rkey = h.rkey
        if op.fallback:
            conn.fallback_inflight -= 1
        ctx_id = next(self._ctx_ids)
        self._send_ctx[ctx_id] = ("rdma", conn, op, None)
        conn.qp.post_send(
            SendWR(
                wr_id=ctx_id,
                opcode=Opcode.RDMA_WRITE,
                length=op.size,
                payload=op.payload,
                remote_addr=h.remote_addr,
                rkey=h.rkey,
            )
        )
        conn.stats.msgs_sent += 1
        conn.stats.data_msgs_sent += 1
        cost = self.config.post_overhead_ns
        if op.bounce:
            cost += self.config.copy_ns(op.size)  # stage into pinned scratch
        return cost

    def _handle_fin(self, h: Header) -> int:
        op = self._rndv_recv.pop(h.rreq_id, None)
        if op is None:
            raise MPIError(f"rank {self.rank}: FIN for unknown rreq {h.rreq_id}")
        payload = op.mr.load(op.landing_addr)
        cost = 0
        if op.bounce:
            cost += self.config.copy_ns(op.size)  # bounce slot -> user buffer
        else:
            cost += self.pindown.release(op.buffer_id, op.mr)
        self.bytes_received += op.size
        self._complete_recv(op.request, op.src, op.tag, op.size, payload)
        return cost

    # --- outbound completions --------------------------------------------
    def _handle_send_done(self, wc: WC) -> int:
        ctx = self._send_ctx.pop(wc.wr_id, None)
        if ctx is None:
            raise MPIError(f"rank {self.rank}: completion for unknown ctx {wc.wr_id}")
        kind, conn, ref = ctx[0], ctx[1], ctx[2]
        cost = 0
        if kind == "ring":
            pass  # no vbuf was consumed; the request completed at emission
        elif kind in ("eager", "ctl"):
            self.pool.release()
            if self._audit is not None:
                self._audit.on_send_done(self)
        elif kind == "rdma":
            op: RndvSendOp = ref
            op.data_done = True
            cost += self._emit_fin(conn, op)
            if op.mr is not None:
                cost += self.pindown.release(op.buffer_id, op.mr)
            del self._rndv_send[op.sreq_id]
            op.request.complete(Status())
        else:  # pragma: no cover
            raise MPIError(f"unknown send ctx kind {kind}")
        return cost

    # ------------------------------------------------------------------
    # emission paths
    # ------------------------------------------------------------------
    def _pool_ok(self, control: bool) -> bool:
        floor = 0 if control else CONTROL_RESERVE
        return self.pool.free > floor

    def _await_pool(self, control: bool) -> Generator:
        while not self._pool_ok(control):
            yield from self._progress_until(lambda: self._pool_ok(control))

    def _emit(
        self,
        conn: Connection,
        header: Header,
        ctx_kind: str,
        ref: Any,
        control: bool,
    ) -> int:
        """Stage a protocol message into a vbuf and post it.  The caller
        must have verified pool availability (``_pool_ok``).  Returns CPU
        cost."""
        if self._halted or (self._ft is not None and conn.peer in self._ft.dead):
            # A dead rank emits nothing; toward a dead peer there is no
            # one to emit to (the QP is in ERROR — post_send would raise).
            # Any request this message carried was already completed with
            # PROC_FAILED by the failure manager.
            return 0
        if conn.recovering:
            # QP pair mid-re-establishment: park the emission (no vbuf, no
            # sequence number) — the manager re-emits deferred messages
            # FIFO after the un-acked replays once the QP re-arms.
            conn.deferred.append((header, ctx_kind, ref, control))
            return 0
        if not self.pool.try_acquire():
            raise MPIError(f"rank {self.rank}: vbuf pool exhausted (control reserve breached)")
        piggy = conn.take_piggyback_credits()
        header.credits += piggy
        header.seq = conn.next_seq()
        ctx_id = next(self._ctx_ids)
        self._send_ctx[ctx_id] = (ctx_kind, conn, ref, header)
        cfg = self.config
        eager = header.kind is MsgKind.EAGER
        wire = cfg.header_bytes + header.size if eager else cfg.header_bytes
        conn.qp.post_send(
            SendWR(wr_id=ctx_id, opcode=Opcode.SEND, length=wire, payload=header)
        )
        conn.stats.msgs_sent += 1
        cost = cfg.post_overhead_ns
        if eager:
            conn.stats.data_msgs_sent += 1
            cost += cfg.copy_ns(header.size)  # user -> vbuf copy
            if ref is not None:
                # Buffered-send semantics: the user buffer is reusable the
                # moment the payload is staged into the vbuf, so the send
                # request completes at emission (not at the ACK).  A send
                # that had to wait in the backlog therefore blocks its
                # MPI_Send until credits/handshake let it out — which is
                # exactly how blocking tests "get more credits through the
                # handshaking procedure" (paper §6.2.2).
                ref.complete(Status())
        if header.kind is MsgKind.CREDIT:
            conn.stats.ecm_sent += 1
            conn.stats.ecm_credits += header.credits
        else:
            conn.stats.piggybacked_credits += piggy
            if not eager:
                # Control-plane send (RTS/CTS/FIN/RING_RESIZE): counted
                # apart from data so the Figure-8 control-overhead split
                # doesn't attribute handshake traffic to data messages.
                conn.stats.ctl_msgs_sent += 1
        if self._audit is not None:
            self._audit.on_emit(conn, header, ctx_kind)
        return cost

    def _replay_emit(self, conn: Connection, header: Header, ctx_kind: str, ref: Any) -> int:
        """Re-post one un-acked protocol message after QP re-establishment
        (recovery manager only).  Unlike :meth:`_emit` the header keeps its
        original sequence number (the receiver never consumed it), carries
        no credits (pre-fault piggybacked grants are re-minted by the
        resync), and never re-completes the request — eager requests
        completed at first emission."""
        if not self.pool.try_acquire():
            raise MPIError(
                f"rank {self.rank}: vbuf pool exhausted during recovery replay"
            )
        header.credits = 0
        ctx_id = next(self._ctx_ids)
        self._send_ctx[ctx_id] = (ctx_kind, conn, ref, header)
        cfg = self.config
        eager = header.kind is MsgKind.EAGER
        wire = cfg.header_bytes + header.size if eager else cfg.header_bytes
        conn.qp.post_send(
            SendWR(wr_id=ctx_id, opcode=Opcode.SEND, length=wire, payload=header)
        )
        cost = cfg.post_overhead_ns
        if eager:
            cost += cfg.copy_ns(header.size)  # user -> vbuf staging again
        if self._audit is not None:
            self._audit.on_emit(conn, header, ctx_kind, replay=True)
        return cost

    def _replay_rdma(self, conn: Connection, op: RndvSendOp) -> int:
        """Re-post a flushed rendezvous RDMA write (recovery manager only).
        Idempotent at the receiver: the landing coordinates from the CTS
        are stable and ``mr.store`` overwrites in place."""
        ctx_id = next(self._ctx_ids)
        self._send_ctx[ctx_id] = ("rdma", conn, op, None)
        conn.qp.post_send(
            SendWR(
                wr_id=ctx_id,
                opcode=Opcode.RDMA_WRITE,
                length=op.size,
                payload=op.payload,
                remote_addr=op.cts_remote_addr,
                rkey=op.cts_rkey,
            )
        )
        return self.config.post_overhead_ns

    def _replay_ring(self, conn: Connection, header: Header) -> int:
        """Re-write a flushed ring eager message after QP re-establishment
        (recovery manager only).  The receiver's ring was re-established
        empty at slot 0, so replays land in the fresh ring in their
        original order; like :meth:`_replay_emit` the header keeps its
        original sequence number, carries no credits, and never
        re-completes the request."""
        header.credits = 0
        ctx_id = next(self._ctx_ids)
        self._send_ctx[ctx_id] = ("ring", conn, None, header)
        conn.qp.post_send(
            SendWR(
                wr_id=ctx_id,
                opcode=Opcode.RDMA_WRITE,
                length=self.config.header_bytes + header.size,
                payload=header,
                remote_addr=conn.next_ring_addr(),
                rkey=conn.tx_ring_rkey,
            )
        )
        if self._audit is not None:
            self._audit.on_emit(conn, header, "ring", replay=True)
        return self.config.post_overhead_ns + self.config.copy_ns(header.size)

    def _emit_ring(self, conn: Connection, header: Header, req) -> int:
        """Write an eager message into the peer's RDMA ring (no vbuf, no
        remote WQE).  Buffered-send semantics: the request completes at
        emission."""
        if self._halted or (self._ft is not None and conn.peer in self._ft.dead):
            return 0  # see _emit: dead rank / dead peer, nothing to post
        if conn.recovering:
            # Same parking rule as _emit: no slot, no sequence number; the
            # recovery manager re-emits deferred ring writes FIFO after
            # the un-acked replays once the fresh ring is wired.
            conn.deferred.append((header, "ring", req, False))
            return 0
        piggy = conn.take_piggyback_credits()
        header.credits += piggy
        header.seq = conn.next_seq()
        header.via_ring = True
        ctx_id = next(self._ctx_ids)
        self._send_ctx[ctx_id] = ("ring", conn, None, header)
        conn.qp.post_send(
            SendWR(
                wr_id=ctx_id,
                opcode=Opcode.RDMA_WRITE,
                length=self.config.header_bytes + header.size,
                payload=header,
                remote_addr=conn.next_ring_addr(),
                rkey=conn.tx_ring_rkey,
            )
        )
        conn.stats.msgs_sent += 1
        conn.stats.data_msgs_sent += 1
        conn.stats.piggybacked_credits += piggy
        if req is not None:
            req.complete(Status())
        if self._audit is not None:
            self._audit.on_emit(conn, header, "ring")
        return self.config.post_overhead_ns + self.config.copy_ns(header.size)

    def _handle_ring_eager(self, conn: Connection, h: Header) -> int:
        """Process one in-sequence arrival from the RDMA eager ring.

        Unlike the send/recv channel, unexpected ring messages are copied
        out of the slot immediately (the [13] design — rings must free in
        order), so the slot credit returns at processing time either way.
        """
        cost = self.config.rdma_poll_ns + self.config.header_proc_ns
        conn.seq_in_expected += 1
        if self._ft is not None:
            # liveness piggyback: any ring arrival proves the peer alive
            self._ft.on_heard(self.rank, conn.peer)
        if h.credits:
            self.scheme.on_credits_received(conn, h.credits)
        if self._audit is not None:
            self._audit.on_deliver(conn, h)

        cost += self.config.copy_ns(h.size)  # slot -> user/temp copy
        self.bytes_received += h.size
        posted = self.matching.arrived(h, self.sim.now)
        if posted is not None:
            if self._audit is not None:
                self._audit.on_match(h)
            self._check_capacity(h, posted.capacity)
            self._complete_recv(posted.request, h.src, h.tag, h.size, h.payload)
        elif h.ready:
            raise MPIError(
                f"rank {self.rank}: ready-mode message from {h.src} arrived "
                "with no matching receive posted"
            )

        # The slot itself is free the moment the copy-out lands (even when
        # a fault stall withholds the *credit* below).
        self._free_ring_slot(conn, h)

        # slot freed -> credit grant (withheld while a fault stall is on)
        if self._stall_until > self.sim.now:
            self._stall_held[conn.peer] = self._stall_held.get(conn.peer, 0) + 1
            self.tracer.count("faults.stall_deferred", conn.peer)
        else:
            conn.pending_credit_return += 1
            if self._audit is not None:
                self._audit.on_grant(conn, 1)
            if self.scheme.should_send_ecm(conn):
                cost += self._emit_ecm(conn)

        # dynamic growth: the two-sided resize (paper §7)
        if self._audit is not None:
            self._audit.observe_recv_header(self.scheme, conn, h)
        else:
            self.scheme.on_recv_header(conn, h)
        ch = conn.rx_channel
        if conn.prepost_target > ch.ring.slots:
            ring = ch.grow(conn.prepost_target)
            ring.mr.on_write = lambda addr, payload, c=ch: c.deposit(payload)
            resize = Header(
                kind=MsgKind.RING_RESIZE,
                src=self.rank,
                dst=conn.peer,
                size=ring.slots,
                remote_addr=ring.mr.addr,
                rkey=ring.mr.rkey,
                paid=False,
            )
            cost += self._emit(conn, resize, "ctl", None, control=True)

        if conn.backlog:
            cost += self._drain(conn)
        return cost

    def _free_ring_slot(self, conn: Connection, h: Header) -> None:
        """Reclaim ``h``'s ring slot after its copy-out.  Distinct from
        the credit *grant*: a fault stall withholds the grant but never
        the slot (the bytes have left the ring either way)."""
        if self._audit is not None:
            self._audit.on_ring_free(conn.rx_channel, h)

    def _emit_ecm(self, conn: Connection) -> int:
        """Explicit credit message — optimistic, never flow-controlled
        (the paper's deadlock-avoidance scheme)."""
        ecm = Header(
            kind=MsgKind.CREDIT, src=self.rank, dst=conn.peer, paid=False
        )
        return self._emit(conn, ecm, "ctl", None, control=True)

    def _emit_fin(self, conn: Connection, op: RndvSendOp) -> int:
        fin = Header(
            kind=MsgKind.RNDV_FIN,
            src=self.rank,
            dst=conn.peer,
            rreq_id=op.fin_rreq_id,
            paid=False,
        )
        return self._emit(conn, fin, "ctl", None, control=True)

    # ------------------------------------------------------------------
    # backlog / flow-control plumbing
    # ------------------------------------------------------------------
    def _enqueue_backlog(self, conn: Connection, pending: PendingSend) -> None:
        conn.backlog.append(pending)
        if self._audit is not None:
            self._audit.on_backlog_enqueue(conn, pending.header)
        conn.stats.backlogged += 1
        if pending.header.kind is not MsgKind.EAGER:
            conn.stats.ctl_backlogged += 1
        depth = len(conn.backlog)
        if depth > conn.stats.backlog_max:
            conn.stats.backlog_max = depth
        self._backlogged.add(conn.peer)

    def _drain_backlogged(self) -> int:
        cost = 0
        for peer in list(self._backlogged):
            cost += self._drain(self.connections[peer])
        return cost

    def _drain(self, conn: Connection) -> int:
        """Process the backlog FIFO: send while credits allow; with zero
        credits, push the head through the rendezvous fallback (one
        handshake at a time per connection)."""
        if conn.recovering:
            return 0  # stale credit state; the resync re-drains
        if self._halted or (self._ft is not None and conn.peer in self._ft.dead):
            return 0  # dead rank / dead peer: nothing drains (see _emit)
        cost = 0
        # Credit-less schemes only ever backlog while a connection is
        # recovering; their drain gate is the vbuf pool alone (there are
        # no credits to wait for, and no fallback to convert to).
        while (
            conn.backlog
            and (conn.credits > 0 or not self.scheme.uses_credits)
            and self._pool_ok(control=False)
        ):
            if not self.scheme.try_consume_credit(conn):  # pragma: no cover
                break
            p = conn.backlog.popleft()
            if self._audit is not None:
                self._audit.on_consume(conn)
                self._audit.on_backlog_dequeue(conn, p.header)
            p.header.went_backlog = True
            conn.stats.credit_stalled_ns += self.sim.now - p.enqueue_ns
            if p.header.kind is MsgKind.EAGER:
                if conn.rdma_eager:
                    cost += self._emit_ring(conn, p.header, p.request)
                else:
                    cost += self._emit(conn, p.header, "eager", p.request, control=False)
            else:  # RNDV_RTS
                cost += self._emit(conn, p.header, "ctl", None, control=False)
                p.request.rts_sent = True  # p.request is the RndvSendOp
        while (
            conn.backlog
            and conn.credits == 0
            and self.scheme.allows_rndv_fallback
            and conn.fallback_inflight < self.scheme.fallback_window
            and self._pool_ok(control=True)
        ):
            p = conn.backlog.popleft()
            if self._audit is not None:
                # the fallback mints a fresh unpaid RTS; the dequeued
                # header itself is never emitted
                self._audit.on_backlog_dequeue(conn, p.header, reemitted=False)
            cost += self._start_fallback(conn, p)
        if not conn.backlog:
            self._backlogged.discard(conn.peer)
        return cost

    def _start_fallback(self, conn: Connection, p: PendingSend) -> int:
        """Convert the head of the backlog to an optimistic rendezvous
        (paper §4.2: with no credits, only Rendezvous is used — its
        handshake refreshes credit state via piggybacking)."""
        conn.fallback_inflight += 1
        conn.stats.rndv_fallbacks += 1
        conn.stats.credit_stalled_ns += self.sim.now - p.enqueue_ns
        h = p.header
        if h.kind is MsgKind.EAGER:
            op = RndvSendOp(
                sreq_id=next_op_id(),
                request=p.request,
                dst=h.dst,
                tag=h.tag,
                context=h.context,
                size=h.size,
                payload=h.payload,
                buffer_id=None,
                mr=None,
                bounce=True,
                fallback=True,
            )
            self._rndv_send[op.sreq_id] = op
        else:  # an RTS that was itself backlogged: send it unpaid
            op = p.request
            op.fallback = True
        rts = Header(
            kind=MsgKind.RNDV_RTS,
            src=self.rank,
            dst=conn.peer,
            tag=h.tag,
            context=h.context,
            size=h.size,
            sreq_id=op.sreq_id,
            paid=False,
            went_backlog=True,
        )
        op.rts_sent = True
        return self._emit(conn, rts, "ctl", None, control=True)

    # ------------------------------------------------------------------
    # rendezvous receiver side
    # ------------------------------------------------------------------
    def _rndv_recv_start(self, h: Header, posted: PostedRecv) -> int:
        conn = self.connections[h.src]
        bounce = h.size <= self.config.eager_max()
        cost = 0
        if bounce:
            mr = self.bounce.mr
            addr = self.bounce.next_slot()
        else:
            mr, pin_cost = self.pindown.acquire(posted.buffer_id, h.size)
            addr = mr.addr
            cost += pin_cost
        op = RndvRecvOp(
            rreq_id=next_op_id(),
            request=posted.request,
            src=h.src,
            tag=h.tag,
            context=h.context,
            size=h.size,
            buffer_id=posted.buffer_id,
            mr=mr,
            landing_addr=addr,
            bounce=bounce,
        )
        self._rndv_recv[op.rreq_id] = op
        cts = Header(
            kind=MsgKind.RNDV_CTS,
            src=self.rank,
            dst=h.src,
            size=h.size,
            sreq_id=h.sreq_id,
            rreq_id=op.rreq_id,
            remote_addr=addr,
            rkey=mr.rkey,
            paid=False,
        )
        op.cts_sent = True
        cost += self._emit(conn, cts, "ctl", None, control=True)
        return cost

    # ------------------------------------------------------------------
    # fault-injection hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def halt(self) -> None:
        """Fault hook (rank death): freeze this rank's program for good.
        The progress loops park on a signal that never fires, stray
        timer-driven resumptions fall through emission guards, and no
        state mutates after this point — the rank is simply gone."""
        from repro.sim import Signal

        self._halted = True
        if self._halt_signal is None:
            self._halt_signal = Signal(f"halted.{self.rank}")

    def fault_stall(self, duration_ns: int) -> None:
        """Start (or extend) a receiver-stall window: the rank stops
        re-posting vbufs and withholds paid credit returns, modelling a
        slow consumer that starves the sender (paper §3.2 / Figure 10)."""
        until = self.sim.now + int(duration_ns)
        if until > self._stall_until:
            self._stall_until = until

    def fault_release_stall(self) -> int:
        """End of a stall window: refill every connection's buffer
        population and return the withheld credits, announcing them with an
        ECM so credit-blocked senders wake promptly.  Returns the number of
        credits released (0 if a longer overlapping stall is still open)."""
        if self._stall_until > self.sim.now:
            return 0
        held, self._stall_held = self._stall_held, {}
        released = 0
        for peer in sorted(self.connections):
            conn = self.connections[peer]
            conn.refill_recv_buffers()
            paid = held.get(peer, 0)
            if paid:
                conn.pending_credit_return += paid
                if self._audit is not None:
                    self._audit.on_grant(conn, paid)
                released += paid
                self.tracer.count("faults.stall_released", peer, paid)
            if (
                conn.pending_credit_return
                and self.scheme.uses_credits
                and self._pool_ok(control=True)
            ):
                self._emit_ecm(conn)
        return released

    # ------------------------------------------------------------------
    # misc helpers
    # ------------------------------------------------------------------
    def _complete_recv(self, req: Request, src: int, tag: int, size: int, payload: Any) -> None:
        req.complete(Status(source=src, tag=tag, size=size, payload=payload))

    def _check_peer(self, peer: int) -> None:
        if peer == self.rank:
            raise MPIError("self-sends are not supported by this device")
        if not 0 <= peer < self.world_size:
            raise MPIError(f"rank {peer} outside the world of {self.world_size}")
        if peer not in self.connections and self._connector is None:
            raise MPIError(f"rank {self.rank} has no connection to {peer}")

    def _ensure_connected(self, dest: int) -> Generator:
        """Return the connection to ``dest``, establishing it on demand
        when the cluster runs with lazy connection management (the send
        blocks for the CM exchange, as in MVAPICH's on-demand mode)."""
        conn = self.connections.get(dest)
        if conn is None:
            sig = self._connector(self, dest)
            if not sig.fired:
                yield sig
            conn = self.connections[dest]
        return conn

    @staticmethod
    def _check_capacity(h: Header, capacity: int) -> None:
        if capacity and h.size > capacity:
            raise TruncationError(
                f"message of {h.size} bytes into a {capacity}-byte receive"
            )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Endpoint rank={self.rank}/{self.world_size}>"
