"""Requests and statuses — the user-visible handles of non-blocking MPI.

A :class:`Request` completes at most once; waiters block on its signal via
the endpoint's progress engine.  :class:`Status` mirrors ``MPI_Status``
(source/tag/size) plus the delivered payload object, which lets tests
verify end-to-end data integrity through both protocols.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim import Signal, Simulator

_req_ids = itertools.count(1)


#: ``Status.error`` value for an operation completed against a rank the
#: failure detector declared dead (ULFM's MPI_ERR_PROC_FAILED).
PROC_FAILED = "PROC_FAILED"


@dataclass
class Status:
    """Completion information for a receive.

    ``error`` is ``None`` on success; a completed-in-error operation
    (e.g. the peer died) carries a short code such as
    :data:`PROC_FAILED` — the operation *completes* either way, it
    never hangs.
    """

    source: int = -1
    tag: int = -1
    size: int = 0
    payload: Any = None
    error: Optional[str] = None


class Request:
    """A pending non-blocking operation.

    Attributes
    ----------
    kind:
        ``"send"`` or ``"recv"`` (informational).
    done:
        Completion flag; once True, :attr:`status` is valid.
    """

    __slots__ = ("req_id", "kind", "sim", "done", "status", "_signal")

    def __init__(self, sim: Simulator, kind: str):
        self.req_id = next(_req_ids)
        self.kind = kind
        self.sim = sim
        self.done = False
        self.status: Optional[Status] = None
        self._signal: Optional[Signal] = None

    def complete(self, status: Optional[Status] = None) -> None:
        if self.done:
            raise RuntimeError(f"request {self.req_id} completed twice")
        self.done = True
        self.status = status or Status()
        if self._signal is not None:
            sig, self._signal = self._signal, None
            sig.fire(self.sim, self.status)

    def completion_signal(self) -> Signal:
        """A signal that fires when (or immediately if) the request is done.

        Used by ``MPI.wait`` — but note the progress engine must still run;
        the endpoint's wait loop interleaves polling with this signal.
        """
        if self._signal is None:
            self._signal = Signal(f"req{self.req_id}")
            if self.done:
                self._signal.fire(self.sim, self.status)
        return self._signal

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Request {self.kind} #{self.req_id} {'done' if self.done else 'pending'}>"
