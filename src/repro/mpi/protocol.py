"""Wire protocol between MPI endpoints.

Two internal protocols implement the MPI communication modes (paper §3.1):

* **Eager** — the payload rides a single SEND into a pre-posted vbuf at the
  receiver, *regardless of the receiver's state* (it may be unexpected).
* **Rendezvous** — a four-message handshake: RTS (Rendezvous Start, also
  unexpected), CTS (Reply, carries the pinned destination buffer's
  address/rkey), a zero-copy RDMA write of the data, and FIN (Finish).

Every header additionally carries the flow-control piggyback fields:
``credits`` (credit return, user-level schemes) and ``went_backlog`` (the
dynamic scheme's feedback bit).  ``paid`` records whether the sender spent
an MPI-level credit on this message — the receiver only *re-grants* a
credit for paid messages, keeping the credit ↔ buffer correspondence exact
(property-tested in ``tests/test_fc_invariants.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.mpi.constants import ANY_SOURCE, ANY_TAG


class MsgKind(enum.Enum):
    EAGER = "eager"
    RNDV_RTS = "rndv_rts"
    RNDV_CTS = "rndv_cts"
    RNDV_FIN = "rndv_fin"
    CREDIT = "credit"  # explicit credit message (ECM)
    RING_RESIZE = "ring_resize"  # RDMA eager channel grew (two-sided resize)


#: Message kinds that are *unexpected* from the receiver's point of view —
#: the sender pushes them without knowing the receiver's state (paper §3.2).
UNEXPECTED_KINDS = frozenset({MsgKind.EAGER, MsgKind.RNDV_RTS})


@dataclass
class Envelope:
    """The MPI matching triple."""

    src: int
    tag: int
    context: int

    def matches(self, source: int, tag: int, context: int) -> bool:
        if context != self.context:
            return False
        if source != ANY_SOURCE and source != self.src:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True


@dataclass(slots=True)
class Header:
    """Protocol header occupying ``MPIConfig.header_bytes`` on the wire.

    ``size`` is the full MPI message payload size (for RTS it describes the
    data to follow via RDMA, not the RTS packet itself).
    """

    kind: MsgKind
    src: int
    dst: int
    tag: int = 0
    context: int = 0
    size: int = 0
    seq: int = -1  # per-(src,dst,context) ordering number for sanity checks

    # --- flow control piggyback ---------------------------------------
    credits: int = 0
    went_backlog: bool = False
    paid: bool = True
    #: ready-mode send (MPI_Rsend): arriving unexpected is a usage error
    ready: bool = False
    #: travelled through the RDMA eager ring (no WQE was consumed)
    via_ring: bool = False

    # --- rendezvous bookkeeping ----------------------------------------
    sreq_id: int = -1  # sender-side request id (RTS → CTS correlation)
    rreq_id: int = -1  # receiver-side request id (CTS → FIN correlation)
    remote_addr: int = 0
    rkey: int = 0

    # --- payload (opaque; only eager carries data in the header's vbuf) --
    payload: Any = None

    @property
    def envelope(self) -> Envelope:
        return Envelope(self.src, self.tag, self.context)

    def matches(self, source: int, tag: int, context: int) -> bool:
        """Envelope match without materialising an :class:`Envelope` —
        the matching engine calls this once per scanned queue entry."""
        if context != self.context:
            return False
        if source != ANY_SOURCE and source != self.src:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True

    def wire_payload_bytes(self, header_bytes: int) -> int:
        """Bytes this message occupies on the wire (header + eager body)."""
        if self.kind is MsgKind.EAGER:
            return header_bytes + self.size
        return header_bytes

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{self.kind.value} {self.src}->{self.dst} tag={self.tag} "
            f"size={self.size} credits={self.credits}"
            f"{' backlog' if self.went_backlog else ''}>"
        )
