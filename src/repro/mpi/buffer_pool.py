"""The pre-pinned send-buffer pool ("vbufs").

The paper (§3.1): *"the buffer pinning and unpinning overhead is avoided by
using a pool of pre-pinned, fixed size buffers for communication"*.  Eager
payloads and all control messages are staged through these buffers; the
buffer is released when the send completes locally.

The pool is pure accounting plus a wait-list: when it runs dry the endpoint
parks on :meth:`wait_available` and the progress engine's send-completion
handler releases buffers back.  Pool exhaustion is rare (the default pool is
big) but must not deadlock — tests cover a 2-buffer pool.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.sim import Signal, Simulator


class BufferPoolError(RuntimeError):
    pass


class SendBufferPool:
    """Fixed population of pre-pinned fixed-size buffers."""

    def __init__(self, sim: Simulator, count: int, vbuf_bytes: int):
        if count < 1:
            raise BufferPoolError("pool needs at least one buffer")
        self.sim = sim
        self.capacity = count
        self.vbuf_bytes = vbuf_bytes
        self.free = count
        self._waiters: Deque[Signal] = deque()
        # observability
        self.min_free = count
        self.acquisitions = 0
        self.releases = 0
        self.exhaustion_events = 0

    def try_acquire(self) -> bool:
        """Grab one buffer; False if none free."""
        if self.free == 0:
            self.exhaustion_events += 1
            return False
        self.free -= 1
        self.acquisitions += 1
        if self.free < self.min_free:
            self.min_free = self.free
        return True

    def release(self) -> None:
        if self.free >= self.capacity:
            raise BufferPoolError("release without matching acquire")
        self.free += 1
        self.releases += 1
        # Wake exactly one parked waiter per freed buffer, in FIFO order.
        # Waking the whole wait-list here would stampede every parked
        # sender at the same instant for a single buffer (all but one
        # re-park, and the re-append scrambles the FIFO ordering).
        if self._waiters:
            self._waiters.popleft().fire(self.sim, None)

    def wait_available(self) -> Signal:
        """A signal firing once a buffer is (or already is) free.  Caller
        must still :meth:`try_acquire` afterwards (another waiter may win)."""
        sig = Signal("vbuf.free")
        if self.free > 0:
            sig.fire(self.sim, None)
        else:
            self._waiters.append(sig)
        return sig

    @property
    def in_use(self) -> int:
        return self.capacity - self.free

    @property
    def waiting(self) -> int:
        """Senders currently parked on :meth:`wait_available`."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SendBufferPool {self.free}/{self.capacity} free>"
