"""MPI implementation over the InfiniBand substrate (MPICH-ADI2 style).

The design follows the paper's §3.1: eager protocol (send/recv into
pre-pinned vbufs) for small messages, zero-copy rendezvous (RDMA write)
for large ones, a pool of pre-pinned fixed-size buffers, a pin-down cache,
per-pair Reliable Connections bound to one CQ per process, and pluggable
flow-control schemes (:mod:`repro.core`).
"""

from repro.mpi.buffer_pool import SendBufferPool
from repro.mpi.comm import CommRevokedError, Communicator, world
from repro.mpi.config import MPIConfig
from repro.mpi.connection import Connection, ConnStats, PendingSend
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, TAG_UB, WORLD_CONTEXT
from repro.mpi.endpoint import Endpoint, MPIError, TruncationError
from repro.mpi.matching import MatchingEngine, PostedRecv
from repro.mpi.pindown_cache import PinDownCache
from repro.mpi.protocol import Header, MsgKind
from repro.mpi.request import PROC_FAILED, Request, Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CommRevokedError",
    "Communicator",
    "world",
    "Connection",
    "ConnStats",
    "Endpoint",
    "Header",
    "MPIConfig",
    "MPIError",
    "MatchingEngine",
    "MsgKind",
    "PendingSend",
    "PinDownCache",
    "PostedRecv",
    "PROC_FAILED",
    "Request",
    "SendBufferPool",
    "Status",
    "TAG_UB",
    "TruncationError",
    "WORLD_CONTEXT",
]
