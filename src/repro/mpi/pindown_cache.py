"""Pin-down cache for rendezvous user buffers.

Registration (pinning) is expensive (tens of microseconds — see
``IBConfig.registration_ns``); the pin-down cache [Tezuka et al., IPPS'98]
keeps recently used registrations alive so repeated rendezvous transfers
from/to the same application buffer pay the cost once.

Buffers are identified by an application-supplied ``buffer_id`` (the
simulation's stand-in for a virtual address range).  ``None`` means "a
fresh buffer" and always misses.  The cache is LRU-bounded by total pinned
bytes; evictions deregister lazily held regions.

The cache returns the *CPU cost* the caller must burn alongside the MR, so
timing stays under the caller's control (callers are simulated processes).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.ib.hca import HCA
from repro.ib.mr import MemoryRegion
from repro.ib.types import IBConfig


class PinDownCache:
    """LRU cache of registered memory regions for one endpoint."""

    def __init__(self, hca: HCA, capacity_bytes: int = 256 * 1024 * 1024):
        self.hca = hca
        self.config: IBConfig = hca.config
        self.capacity_bytes = capacity_bytes
        self._lru: "OrderedDict[object, MemoryRegion]" = OrderedDict()
        self._pinned_bytes = 0
        # observability
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def acquire(self, buffer_id: Optional[object], nbytes: int) -> Tuple[MemoryRegion, int]:
        """Return ``(mr, cpu_ns)`` for a buffer of ``nbytes``.

        ``cpu_ns`` includes registration on a miss and any eviction
        deregistrations; it is zero on a hit.
        """
        if buffer_id is not None:
            mr = self._lru.get(buffer_id)
            if mr is not None and mr.length >= nbytes and mr.valid:
                self._lru.move_to_end(buffer_id)
                self.hits += 1
                return mr, 0
            if mr is not None:
                # Stale entry (resized buffer): drop and re-register.
                self._evict(buffer_id)

        self.misses += 1
        cost = self.config.registration_ns(nbytes)
        mr = self.hca.reg_mr(max(1, nbytes))
        if buffer_id is not None:
            self._lru[buffer_id] = mr
            self._pinned_bytes += mr.length
            cost += self._enforce_capacity()
        return mr, cost

    def release(self, buffer_id: Optional[object], mr: MemoryRegion) -> int:
        """Give back a region.  Cached regions stay pinned (that is the
        point); anonymous regions are deregistered immediately.  Returns the
        CPU cost incurred."""
        if buffer_id is not None and self._lru.get(buffer_id) is mr:
            return 0
        if mr.valid:
            self.hca.dereg_mr(mr)
            return self.config.deregistration_ns(mr.length)
        return 0

    def _enforce_capacity(self) -> int:
        cost = 0
        while self._pinned_bytes > self.capacity_bytes and len(self._lru) > 1:
            key = next(iter(self._lru))
            cost += self._evict(key)
        return cost

    def _evict(self, key: object) -> int:
        mr = self._lru.pop(key)
        self._pinned_bytes -= mr.length
        self.evictions += 1
        if mr.valid:
            self.hca.dereg_mr(mr)
            return self.config.deregistration_ns(mr.length)
        return 0

    def flush(self) -> int:
        """Drop every cached registration (e.g. at finalize)."""
        cost = 0
        for key in list(self._lru):
            cost += self._evict(key)
        return cost

    @property
    def pinned_bytes(self) -> int:
        return self._pinned_bytes

    def __len__(self) -> int:
        return len(self._lru)
