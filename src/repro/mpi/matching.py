"""MPI message matching: the posted-receive queue and the unexpected queue.

Semantics follow the MPI standard:

* receives match in **post order** against arriving messages;
* unexpected messages are kept in **arrival order** per matching class;
* wildcards ``ANY_SOURCE`` / ``ANY_TAG`` are honoured;
* the non-overtaking rule — two messages from the same sender with
  envelopes matching the same receive must be received in send order —
  falls out of the arrival-order scan because the transport below is an
  in-order reliable connection per peer.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.mpi.protocol import Header
from repro.mpi.request import Request


class PostedRecv:
    """A receive posted by the application, waiting for a message."""

    __slots__ = ("source", "tag", "context", "capacity", "request", "buffer_id")

    def __init__(
        self,
        source: int,
        tag: int,
        context: int,
        capacity: int,
        request: Request,
        buffer_id: Optional[object] = None,
    ):
        self.source = source
        self.tag = tag
        self.context = context
        self.capacity = capacity
        self.request = request
        self.buffer_id = buffer_id


class UnexpectedMsg:
    """An arrived message (eager payload or rendezvous RTS) with no matching
    posted receive yet."""

    __slots__ = ("header", "arrival_ns")

    def __init__(self, header: Header, arrival_ns: int):
        self.header = header
        self.arrival_ns = arrival_ns


class MatchingEngine:
    """Per-rank matching state."""

    def __init__(self) -> None:
        self._posted: Deque[PostedRecv] = deque()
        self._unexpected: Deque[UnexpectedMsg] = deque()
        # observability
        self.unexpected_peak = 0
        self.total_unexpected = 0

    # ------------------------------------------------------------------
    # receiver side: posting a receive
    # ------------------------------------------------------------------
    def post_recv(self, recv: PostedRecv) -> Optional[UnexpectedMsg]:
        """Try to satisfy ``recv`` from the unexpected queue; if no message
        matches, enqueue it on the posted queue and return None."""
        for i, msg in enumerate(self._unexpected):
            if msg.header.matches(recv.source, recv.tag, recv.context):
                del self._unexpected[i]
                return msg
        self._posted.append(recv)
        return None

    # ------------------------------------------------------------------
    # arrival side: matching an inbound message
    # ------------------------------------------------------------------
    def arrived(self, header: Header, now: int) -> Optional[PostedRecv]:
        """Match ``header`` against posted receives (post order); if none
        matches, store it as unexpected and return None."""
        for i, recv in enumerate(self._posted):
            if header.matches(recv.source, recv.tag, recv.context):
                del self._posted[i]
                return recv
        self._unexpected.append(UnexpectedMsg(header, now))
        self.total_unexpected += 1
        if len(self._unexpected) > self.unexpected_peak:
            self.unexpected_peak = len(self._unexpected)
        return None

    # ------------------------------------------------------------------
    # probes / introspection
    # ------------------------------------------------------------------
    def iprobe(self, source: int, tag: int, context: int) -> Optional[Header]:
        """First unexpected message matching the triple, without removing."""
        for msg in self._unexpected:
            if msg.header.matches(source, tag, context):
                return msg.header
        return None

    @property
    def posted_count(self) -> int:
        return len(self._posted)

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    def idle(self) -> bool:
        return not self._posted and not self._unexpected
