"""MPI-layer (software) configuration.

Splits cleanly from :class:`repro.ib.types.IBConfig`: everything here is a
property of the MPI implementation (MVAPICH-style ADI2 device), not of the
hardware.  The two are composed by
:class:`repro.cluster.config.TestbedConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: (memcpy_bytes_per_ns, nbytes) → ns.  Workloads reuse a handful of
#: message sizes; the cap guards adversarial size sweeps.
_COPY_NS_CACHE: dict = {}
_COPY_NS_CACHE_MAX = 1 << 16


@dataclass
class MPIConfig:
    """Software timing and protocol-shape knobs.

    Attributes
    ----------
    vbuf_bytes:
        Size of each pre-pinned communication buffer ("vbuf" in MVAPICH
        parlance).  The paper: *"In all implementations, the size of each
        pre-posted buffer is 2 KBytes."*
    header_bytes:
        Protocol header carried in every vbuf; the eager payload limit is
        ``vbuf_bytes - header_bytes``.
    send_pool_buffers:
        Shared send-side pool of pre-pinned vbufs (eager copies and control
        messages).  Senders block in progress when it runs dry.
    call_overhead_ns:
        Fixed software cost of entering an MPI point-to-point call
        (argument checking, request setup, tag-match attempt).
    post_overhead_ns:
        Cost of building a descriptor and ringing the doorbell.
    poll_overhead_ns:
        Cost of one CQ poll + completion dispatch in the progress engine.
    header_proc_ns:
        Cost of parsing a protocol header / updating credit state.
    memcpy_bytes_per_ns:
        Host memcpy bandwidth for the two eager copies (user buffer ↔
        vbuf); ~2 GB/s for the testbed's Xeons.
    rndv_min_bytes:
        Messages at or above this go through rendezvous even when credits
        are plentiful (equals the eager payload limit by default).
    """

    vbuf_bytes: int = 2048
    header_bytes: int = 64
    send_pool_buffers: int = 1024
    call_overhead_ns: int = 550
    post_overhead_ns: int = 400
    poll_overhead_ns: int = 250
    header_proc_ns: int = 150
    memcpy_bytes_per_ns: float = 2.0
    rndv_min_bytes: int = 0  # 0 → use eager_max()

    # --- RDMA-based eager channel (the companion design, [13]) ----------
    #: route eager data through per-connection RDMA rings instead of
    #: send/recv into pre-posted WQEs (default off: the paper's study is
    #: of the send/recv-based implementation)
    use_rdma_channel: bool = False
    #: receiver-side cost of discovering + dispatching one ring arrival
    #: (memory-poll flag check; cheaper than CQE processing, which is
    #: where the 6.8 us vs 7.5 us latency gap comes from)
    rdma_poll_ns: int = 700
    #: control-message vbufs posted per connection in RDMA mode (RTS/CTS/
    #: FIN/ECM/RESIZE still use send/recv; they are optimistic traffic)
    rdma_control_bufs: int = 8

    def eager_max(self) -> int:
        """Largest payload that fits an eager vbuf."""
        return self.vbuf_bytes - self.header_bytes

    def rndv_threshold(self) -> int:
        """Payload size at which the rendezvous protocol takes over."""
        return self.rndv_min_bytes or self.eager_max()

    def copy_ns(self, nbytes: int) -> int:
        """Duration of one host memcpy of ``nbytes`` (memoized — this sits
        on the per-message eager copy path)."""
        if nbytes <= 0:
            return 0
        key = (self.memcpy_bytes_per_ns, nbytes)
        ns = _COPY_NS_CACHE.get(key)
        if ns is None:
            if len(_COPY_NS_CACHE) >= _COPY_NS_CACHE_MAX:
                _COPY_NS_CACHE.clear()
            ns = _COPY_NS_CACHE[key] = max(1, int(round(nbytes / self.memcpy_bytes_per_ns)))
        return ns
