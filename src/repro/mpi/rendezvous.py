"""Rendezvous protocol bookkeeping.

The zero-copy rendezvous (paper §3.1) pins the user buffers on the fly and
moves the data with one RDMA write:

    sender                      receiver
    ------                      --------
    pin user buffer
    RTS  ─────────────────────▶ (match against posted receives)
                                pin destination buffer
         ◀───────────────────── CTS {addr, rkey}
    RDMA write data ══════════▶ (hardware, transparent)
    FIN  ─────────────────────▶ complete the receive

Small messages normally go eager, but a credit-starved connection pushes
backlogged small sends through this handshake too (*fallback mode*).  To
avoid charging a tens-of-microseconds registration for a 4-byte payload,
fallback transfers ride pre-registered *bounce slots* on both sides, paying
memcpys instead of pins — the same trick real MPI stacks use for their
R3/copy-based rendezvous path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.ib.mr import MemoryRegion
from repro.mpi.request import Request

_op_ids = itertools.count(1)


def next_op_id() -> int:
    return next(_op_ids)


@dataclass
class RndvSendOp:
    """Sender-side state of one rendezvous transfer."""

    sreq_id: int
    request: Request
    dst: int
    tag: int
    context: int
    size: int
    payload: Any
    buffer_id: Optional[object]
    mr: Optional[MemoryRegion]  # None in bounce (fallback) mode
    bounce: bool = False
    fallback: bool = False  # sent via the optimistic no-credit path
    rts_sent: bool = False
    cts_seen: bool = False
    data_done: bool = False
    fin_rreq_id: int = -1  # receiver op id, learned from the CTS
    # landing coordinates from the CTS, kept so connection recovery can
    # re-post the (idempotent) RDMA write after a QP flush
    cts_remote_addr: int = 0
    cts_rkey: int = 0

    @property
    def state(self) -> str:
        if self.data_done:
            return "fin"
        if self.cts_seen:
            return "data"
        if self.rts_sent:
            return "await_cts"
        return "init"


@dataclass
class RndvRecvOp:
    """Receiver-side state of one rendezvous transfer."""

    rreq_id: int
    request: Request
    src: int
    tag: int
    context: int
    size: int
    buffer_id: Optional[object]
    mr: MemoryRegion
    landing_addr: int
    bounce: bool = False
    cts_sent: bool = False


class BounceRegion:
    """A pre-registered scratch region carved into fixed slots, used by
    fallback-mode rendezvous so tiny transfers never pay pin costs."""

    def __init__(self, mr: MemoryRegion, slot_bytes: int, slots: int):
        self.mr = mr
        self.slot_bytes = slot_bytes
        self.slots = slots
        self._next = 0

    def next_slot(self) -> int:
        """Address of the next scratch slot (round-robin; safe because at
        most one fallback handshake is active per connection and slot count
        far exceeds the connection count)."""
        addr = self.mr.addr + self._next * self.slot_bytes
        self._next = (self._next + 1) % self.slots
        return addr
