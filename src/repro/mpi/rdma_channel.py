"""RDMA-write-based eager channel (the paper's companion design, [13]:
Liu et al., "High Performance RDMA-Based MPI Implementation over
InfiniBand", ICS'03).

Instead of SEND into a pre-posted receive WQE, each connection's eager
messages are RDMA-written into a *ring* of fixed 2 KB slots in the
receiver's registered memory.  The receiver discovers arrivals by polling
the slots' completion flags — no receive WQE, no CQE, no RNR NAK is ever
involved, and small-message latency drops by the receive-side WQE/CQE
processing (the paper quotes 6.8 µs vs the send/recv design's ~7.5 µs).

Flow control maps onto the same credit machinery the paper studies: a ring
slot *is* a credit.  The sender consumes one per eager message; the
receiver returns slots via the usual piggyback/ECM paths after copying a
message out.  The paper's §7 remark is reproduced faithfully: the dynamic
scheme "is more complicated because cooperation between both the sender
and the receiver is necessary in order to increase the number of posted
buffers" — growing means allocating a *new, larger ring* and telling the
sender to switch (a RING_RESIZE control message); messages in flight to
the old ring drain by sequence number.

Simulation note: the receiver's memory polling is modelled by a one-shot
signal fired when an RDMA-written message becomes visible — equivalent to
a sub-microsecond spin loop without flooding the event queue.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.ib.mr import MemoryRegion
from repro.sim import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.endpoint import Endpoint
    from repro.mpi.protocol import Header

# ----------------------------------------------------------------------
# Slot wire layout (the Liu design's two-flag scheme)
#
# | head flag (1B) | payload size (4B LE) | payload | tail flag (1B) |
#
# The head flag plus the size-prefix-addressed tail flag make arrival
# detection total: the poller reads the head flag, computes where the
# tail flag must sit from the size prefix, and declares the message
# visible only when both flags are set.  The layout this replaces polled
# the payload's *last byte* — undefined for a zero-length eager message
# and indistinguishable from "not yet written" when the payload happens
# to end in NUL.
# ----------------------------------------------------------------------
SLOT_HEAD_FLAG = 0xAA
SLOT_TAIL_FLAG = 0x55
_SIZE_PREFIX_BYTES = 4
SLOT_OVERHEAD_BYTES = 1 + _SIZE_PREFIX_BYTES + 1


def _payload_bytes(header: "Header") -> bytes:
    """The on-wire payload image: real bytes when the program attached
    any, otherwise ``size`` zero bytes — the maximally adversarial case
    for tail-byte polling."""
    payload = header.payload
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    return b"\x00" * header.size


def encode_slot(header: "Header") -> bytes:
    """Render the slot image an RDMA write deposits for ``header``."""
    body = _payload_bytes(header)
    return (
        bytes((SLOT_HEAD_FLAG,))
        + len(body).to_bytes(_SIZE_PREFIX_BYTES, "little")
        + body
        + bytes((SLOT_TAIL_FLAG,))
    )


def slot_message_ready(slot: bytes) -> bool:
    """Two-flag arrival detection: head flag set and the tail flag (at
    the offset the size prefix dictates) set.  Total over every payload,
    including empty and NUL-terminated ones."""
    if len(slot) < SLOT_OVERHEAD_BYTES or slot[0] != SLOT_HEAD_FLAG:
        return False
    size = int.from_bytes(slot[1 : 1 + _SIZE_PREFIX_BYTES], "little")
    tail = 1 + _SIZE_PREFIX_BYTES + size
    return len(slot) > tail and slot[tail] == SLOT_TAIL_FLAG


def tail_byte_poll(payload: bytes) -> bool:
    """The legacy detection the two-flag layout replaces: spin on the
    payload's trailing byte becoming non-zero.  Kept only so the
    regression test can demonstrate the miss — a zero-length message has
    no trailing byte and a payload ending in ``\\x00`` never reads as
    arrived."""
    return bool(payload) and payload[-1] != 0


class RingBuffer:
    """One generation of a connection's receive ring."""

    __slots__ = ("mr", "slots", "slot_bytes", "next_slot", "generation")

    def __init__(self, mr: MemoryRegion, slots: int, slot_bytes: int, generation: int):
        self.mr = mr
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.next_slot = 0
        self.generation = generation

    def next_addr(self) -> int:
        addr = self.mr.addr + self.next_slot * self.slot_bytes
        self.next_slot = (self.next_slot + 1) % self.slots
        return addr


class RDMAChannel:
    """Receiver-side state of one connection's RDMA eager channel.

    The *sender* half lives on the Connection: it just needs the current
    ring's (addr, rkey, slots) advertisement and the shared credit count.
    """

    def __init__(self, endpoint: "Endpoint", peer: int, slots: int, slot_bytes: int):
        self.endpoint = endpoint
        self.peer = peer
        self.slot_bytes = slot_bytes
        self.generation = 0
        self.ring = self._allocate(slots)
        #: arrived-but-unprocessed headers, ordered by sequence number (two
        #: ring generations can be in flight during a resize)
        self._arrived: List[Tuple[int, "Header"]] = []
        self._notify: Optional[Signal] = None
        # observability
        self.messages = 0
        self.resizes = 0
        self.reestablishments = 0
        #: arrivals the replaced tail-byte poll would never have seen
        self.tail_poll_misses = 0

    def _allocate(self, slots: int) -> RingBuffer:
        mr = self.endpoint.hca.reg_mr(max(1, slots) * self.slot_bytes)
        ring = RingBuffer(mr, slots, self.slot_bytes, self.generation)
        self.generation += 1
        return ring

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def deposit(self, header: "Header") -> None:
        """An RDMA-written eager message became visible in some slot (the
        simulator routes it here from the MR landing)."""
        # Detect the arrival through the two-flag slot image; record when
        # the replaced tail-byte poll would have spun forever instead.
        slot = encode_slot(header)
        if not slot_message_ready(slot):  # pragma: no cover - layout is total
            raise RuntimeError(f"ring slot arrival not detectable: {header!r}")
        if not tail_byte_poll(_payload_bytes(header)):
            self.tail_poll_misses += 1
        heapq.heappush(self._arrived, (header.seq, header))
        self.messages += 1
        aud = self.endpoint._audit
        if aud is not None:
            aud.on_ring_deposit(self, header)
        self.endpoint._ring_dirty.add(self.peer)
        self.endpoint._ring_signal_fire()

    def poll(self, expected_seq: int) -> Optional["Header"]:
        """Next in-sequence arrived header, if visible."""
        if self._arrived and self._arrived[0][0] == expected_seq:
            return heapq.heappop(self._arrived)[1]
        return None

    def poll_peek(self, expected_seq: int) -> bool:
        """Would :meth:`poll` return a header right now?"""
        return bool(self._arrived) and self._arrived[0][0] == expected_seq

    def wait_signal(self) -> Signal:
        """One-shot arrival notification (the spin-loop stand-in)."""
        sig = Signal(f"rdmach.{self.endpoint.rank}<-{self.peer}")
        if self._arrived:
            sig.fire(self.endpoint.sim, None)
        else:
            if self._notify is not None:
                return self._notify
            self._notify = sig
        return sig

    @property
    def has_arrivals(self) -> bool:
        return bool(self._arrived)

    # ------------------------------------------------------------------
    # dynamic growth: the two-sided resize the paper's §7 describes
    # ------------------------------------------------------------------
    def grow(self, new_slots: int) -> RingBuffer:
        """Allocate the next-generation ring (receiver side).  The old
        ring stays readable until the sender has switched; the returned
        ring's coordinates travel to the sender in a RING_RESIZE control
        message."""
        self.ring = self._allocate(new_slots)
        self.resizes += 1
        return self.ring

    def reestablish(self) -> RingBuffer:
        """Recovery: allocate a fresh ring generation after the QP
        incarnation backing the old one died.  The transport's epoch
        guard already drops in-flight writes from the dead era, so the
        new ring starts empty at slot 0; arrivals already captured in
        :attr:`_arrived` stay queued — they were delivered and will be
        processed (and their slots reported reclaimed) after resync."""
        self.ring = self._allocate(self.ring.slots)
        self.reestablishments += 1
        return self.ring

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RDMAChannel {self.endpoint.rank}<-{self.peer} "
            f"slots={self.ring.slots} gen={self.ring.generation}>"
        )
