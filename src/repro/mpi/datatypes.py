"""MPI derived datatypes: size/extent accounting for typed messages.

The simulator moves opaque payloads, so datatypes matter for the thing
they cost on a real wire: the *byte count* and (for non-contiguous types)
the *pack/unpack copies*.  A :class:`Datatype` computes both; the endpoint
helpers :func:`typed_size` and :func:`pack_cost_ns` let workloads express
"send 1000 elements of this vector type" and get a faithful wire size and
the extra memcpy a non-contiguous layout costs on each side.

Supported constructors mirror the MPI basics: predefined scalars,
``contiguous``, ``vector`` (strided blocks) and ``indexed`` (explicit
block displacements) — enough for the halo/face layouts the NAS codes use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


class DatatypeError(ValueError):
    pass


@dataclass(frozen=True)
class Datatype:
    """An MPI datatype's layout summary.

    Attributes
    ----------
    size:
        Bytes of actual data per element (what travels on the wire).
    extent:
        Memory span per element including holes (what strides in memory).
    contiguous:
        True when size == extent and there are no internal holes — such
        types transfer without a pack/unpack copy.
    name:
        For diagnostics.
    """

    size: int
    extent: int
    contiguous: bool
    name: str = "type"

    def __post_init__(self):
        if self.size < 0 or self.extent < self.size:
            raise DatatypeError(
                f"{self.name}: invalid size={self.size} extent={self.extent}"
            )

    # -- constructors ----------------------------------------------------
    @staticmethod
    def contiguous_of(count: int, base: "Datatype", name: str = "") -> "Datatype":
        """MPI_Type_contiguous."""
        if count < 0:
            raise DatatypeError("negative count")
        return Datatype(
            size=count * base.size,
            extent=count * base.extent,
            contiguous=base.contiguous,
            name=name or f"contig({count},{base.name})",
        )

    @staticmethod
    def vector_of(
        count: int, blocklength: int, stride: int, base: "Datatype", name: str = ""
    ) -> "Datatype":
        """MPI_Type_vector: ``count`` blocks of ``blocklength`` elements,
        block starts ``stride`` elements apart."""
        if count < 0 or blocklength < 0:
            raise DatatypeError("negative count/blocklength")
        if count > 0 and abs(stride) < blocklength and count > 1:
            raise DatatypeError("overlapping vector blocks")
        size = count * blocklength * base.size
        if count == 0:
            extent = 0
        else:
            extent = ((count - 1) * abs(stride) + blocklength) * base.extent
        contiguous = base.contiguous and (count <= 1 or stride == blocklength)
        return Datatype(size, extent, contiguous,
                        name or f"vector({count},{blocklength},{stride})")

    @staticmethod
    def indexed_of(
        blocks: Sequence[Tuple[int, int]], base: "Datatype", name: str = ""
    ) -> "Datatype":
        """MPI_Type_indexed: (blocklength, displacement) pairs, in base
        elements."""
        if not blocks:
            return Datatype(0, 0, True, name or "indexed(empty)")
        size = sum(bl for bl, _ in blocks) * base.size
        spans: List[Tuple[int, int]] = sorted(
            (disp, disp + bl) for bl, disp in blocks
        )
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            if s2 < e1:
                raise DatatypeError("overlapping indexed blocks")
        extent = (spans[-1][1] - min(s for s, _ in spans)) * base.extent
        contiguous = (
            base.contiguous
            and all(e == s2 for (_, e), (s2, _) in zip(spans, spans[1:]))
        )
        return Datatype(size, extent, contiguous, name or f"indexed({len(blocks)})")


# -- predefined scalars --------------------------------------------------
BYTE = Datatype(1, 1, True, "MPI_BYTE")
CHAR = Datatype(1, 1, True, "MPI_CHAR")
INT = Datatype(4, 4, True, "MPI_INT")
FLOAT = Datatype(4, 4, True, "MPI_FLOAT")
DOUBLE = Datatype(8, 8, True, "MPI_DOUBLE")
COMPLEX16 = Datatype(16, 16, True, "MPI_DOUBLE_COMPLEX")


def typed_size(count: int, datatype: Datatype) -> int:
    """Wire bytes for ``count`` elements of ``datatype``."""
    if count < 0:
        raise DatatypeError("negative count")
    return count * datatype.size


def pack_cost_ns(count: int, datatype: Datatype, memcpy_bytes_per_ns: float) -> int:
    """Extra CPU cost of packing ``count`` elements before transfer (zero
    for contiguous layouts; one gather memcpy otherwise)."""
    if datatype.contiguous:
        return 0
    nbytes = typed_size(count, datatype)
    if nbytes <= 0:
        return 0
    return max(1, int(round(nbytes / memcpy_bytes_per_ns)))
