"""Collective operations layered on point-to-point (as MPICH-1.2-era MPICH
did — there is no hardware multicast here).

Algorithms:

* ``barrier`` — dissemination (⌈log2 P⌉ rounds, works for any P);
* ``bcast`` — binomial tree;
* ``reduce`` — binomial tree (reversed), with an optional combining op on
  real payloads;
* ``allreduce`` — reduce + bcast for non-powers-of-two, recursive doubling
  otherwise;
* ``allgather`` — ring;
* ``alltoall`` / ``alltoallv`` — pairwise exchange (XOR schedule when P is
  a power of two, rotation otherwise) — the NAS IS/FT communication
  workhorse;
* ``gather`` / ``scatter`` — linear at the root (faithful to the era).

Each collective draws a fresh tag from the endpoint's per-context sequence
so concurrent collectives on different "phases" cannot cross-match.
Payload combination is optional: pass real values and an ``op`` to compute;
omit them to move bytes only (the NAS proxies do the latter).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, TYPE_CHECKING

from repro.mpi.constants import COLL_TAG_BASE

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.endpoint import Endpoint


def _coll_tag(ep: "Endpoint") -> int:
    """Fresh tag for one collective.  The sequence is per *context* so
    interleaved collectives on different communicators (whose members may
    have performed different numbers of prior collectives) still agree on
    the tag within each communicator."""
    context = getattr(ep, "context", 0)
    seq = ep._coll_seq.get(context, 0)
    ep._coll_seq[context] = seq + 1
    return COLL_TAG_BASE + seq


def _hypercube_rounds(size: int) -> int:
    rounds = 0
    while (1 << rounds) < size:
        rounds += 1
    return rounds


# ----------------------------------------------------------------------
# barrier: dissemination
# ----------------------------------------------------------------------
def barrier(ep: "Endpoint") -> Generator:
    """Dissemination barrier: round k exchanges with rank ± 2^k."""
    size, rank = ep.world_size, ep.rank
    if size == 1:
        return
    tag = _coll_tag(ep)
    for k in range(_hypercube_rounds(size)):
        dist = 1 << k
        dst = (rank + dist) % size
        src = (rank - dist) % size
        rreq = yield from ep.irecv(source=src, capacity=8, tag=tag)
        sreq = yield from ep.isend(dst, size=4, tag=tag)
        yield from ep.waitall([rreq, sreq])


# ----------------------------------------------------------------------
# broadcast: binomial tree
# ----------------------------------------------------------------------
def bcast(ep: "Endpoint", root: int, size_bytes: int, payload: Any = None) -> Generator:
    """Binomial-tree broadcast; returns the payload at every rank."""
    P, rank = ep.world_size, ep.rank
    if P == 1:
        return payload
    tag = _coll_tag(ep)
    rel = (rank - root) % P  # root-relative rank
    value = payload
    # Receive from parent (highest set bit of rel).
    if rel != 0:
        mask = 1
        while mask <= rel:
            mask <<= 1
        mask >>= 1
        parent = (rel - mask + root) % P
        status = yield from ep.recv(source=parent, capacity=size_bytes, tag=tag,
                                    buffer_id=("bcast", tag))
        value = status.payload
    # Send to children.
    mask = 1
    while mask <= rel:
        mask <<= 1
    while mask < P:
        if rel + mask < P:
            child = (rel + mask + root) % P
            yield from ep.send(child, size=size_bytes, tag=tag, payload=value,
                               buffer_id=("bcast", tag))
        mask <<= 1
    return value


# ----------------------------------------------------------------------
# reduce: binomial tree toward the root
# ----------------------------------------------------------------------
def reduce(
    ep: "Endpoint",
    root: int,
    size_bytes: int,
    value: Any = None,
    op: Optional[Callable[[Any, Any], Any]] = None,
) -> Generator:
    """Binomial reduction; returns the combined value at the root (None
    elsewhere).  ``op`` defaults to a pairing placeholder when values are
    supplied, making data-flow verifiable in tests."""
    P, rank = ep.world_size, ep.rank
    if P == 1:
        return value
    tag = _coll_tag(ep)
    combine = op or (lambda a, b: (a, b))
    rel = (rank - root) % P
    acc = value
    mask = 1
    while mask < P:
        if rel & mask:
            parent = (rel - mask + root) % P
            yield from ep.send(parent, size=size_bytes, tag=tag, payload=acc,
                               buffer_id=("reduce", tag))
            return None
        partner = rel + mask
        if partner < P:
            status = yield from ep.recv(
                source=(partner + root) % P, capacity=size_bytes, tag=tag,
                buffer_id=("reduce", tag),
            )
            if acc is not None or status.payload is not None:
                acc = combine(acc, status.payload)
        mask <<= 1
    return acc


# ----------------------------------------------------------------------
# allreduce
# ----------------------------------------------------------------------
def allreduce(
    ep: "Endpoint",
    size_bytes: int,
    value: Any = None,
    op: Optional[Callable[[Any, Any], Any]] = None,
) -> Generator:
    """Recursive doubling when P is a power of two, reduce+bcast otherwise."""
    P, rank = ep.world_size, ep.rank
    if P == 1:
        return value
    if P & (P - 1):  # not a power of two
        acc = yield from reduce(ep, 0, size_bytes, value, op)
        result = yield from bcast(ep, 0, size_bytes, acc)
        return result
    tag = _coll_tag(ep)
    combine = op or (lambda a, b: (a, b))
    acc = value
    mask = 1
    while mask < P:
        partner = rank ^ mask
        rreq = yield from ep.irecv(source=partner, capacity=size_bytes, tag=tag,
                                   buffer_id=("allred", tag, mask))
        sreq = yield from ep.isend(partner, size=size_bytes, tag=tag, payload=acc,
                                   buffer_id=("allred", tag, mask))
        statuses = yield from ep.waitall([rreq, sreq])
        other = statuses[0].payload
        if acc is not None or other is not None:
            acc = combine(acc, other) if rank < partner else combine(other, acc)
        mask <<= 1
    return acc


# ----------------------------------------------------------------------
# allgather: ring
# ----------------------------------------------------------------------
def allgather(ep: "Endpoint", size_bytes: int, value: Any = None) -> Generator:
    """Ring allgather; returns the list of every rank's value."""
    P, rank = ep.world_size, ep.rank
    result: List[Any] = [None] * P
    result[rank] = value
    if P == 1:
        return result
    tag = _coll_tag(ep)
    right = (rank + 1) % P
    left = (rank - 1) % P
    carry = value
    carry_rank = rank
    for _ in range(P - 1):
        rreq = yield from ep.irecv(source=left, capacity=size_bytes, tag=tag,
                                   buffer_id=("ag", tag))
        sreq = yield from ep.isend(right, size=size_bytes, tag=tag,
                                   payload=(carry_rank, carry), buffer_id=("ag", tag))
        statuses = yield from ep.waitall([rreq, sreq])
        got = statuses[0].payload
        if got is not None:
            carry_rank, carry = got
            result[carry_rank] = carry
        else:
            carry_rank, carry = left, None
    return result


# ----------------------------------------------------------------------
# alltoall(v): pairwise exchange
# ----------------------------------------------------------------------
def alltoall(
    ep: "Endpoint", size_per_peer: int, payloads: Optional[List[Any]] = None
) -> Generator:
    """Pairwise-exchange all-to-all of equal blocks; returns received blocks
    indexed by source rank."""
    sizes = [size_per_peer] * ep.world_size
    result = yield from alltoallv(ep, sizes, payloads)
    return result


def alltoallv(
    ep: "Endpoint",
    sizes: List[int],
    payloads: Optional[List[Any]] = None,
    recv_sizes: Optional[List[int]] = None,
) -> Generator:
    """Pairwise-exchange all-to-all with per-destination sizes.

    ``sizes[d]`` is the number of bytes this rank sends to rank ``d``
    (``sizes[rank]`` is kept locally); ``recv_sizes[s]`` bounds what rank
    ``s`` sends here (MPI_Alltoallv's separate recvcounts — defaults to
    ``sizes``, the symmetric case).  Returns a list indexed by source.
    """
    P, rank = ep.world_size, ep.rank
    if len(sizes) != P:
        raise ValueError(f"sizes must have {P} entries, got {len(sizes)}")
    if recv_sizes is None:
        recv_sizes = sizes
    elif len(recv_sizes) != P:
        raise ValueError(f"recv_sizes must have {P} entries, got {len(recv_sizes)}")
    result: List[Any] = [None] * P
    result[rank] = payloads[rank] if payloads else None
    if P == 1:
        return result
    tag = _coll_tag(ep)
    power_of_two = (P & (P - 1)) == 0
    for step in range(1, P):
        if power_of_two:
            partner = rank ^ step
        else:
            partner = (rank + step) % P
            recv_from = (rank - step) % P
        if power_of_two:
            recv_from = partner
        # Non-power-of-two rotation sends to (rank+step), receives from
        # (rank-step); power-of-two XOR pairs both directions.
        rreq = yield from ep.irecv(
            source=recv_from, capacity=recv_sizes[recv_from], tag=tag,
            buffer_id=("a2a", tag, step),
        )
        sreq = yield from ep.isend(
            partner,
            size=sizes[partner],
            tag=tag,
            payload=payloads[partner] if payloads else None,
            buffer_id=("a2a", tag, step),
        )
        statuses = yield from ep.waitall([rreq, sreq])
        result[recv_from] = statuses[0].payload
    return result


# ----------------------------------------------------------------------
# gather / scatter: linear
# ----------------------------------------------------------------------
def gather(ep: "Endpoint", root: int, size_bytes: int, value: Any = None) -> Generator:
    """Linear gather; returns the list at the root, None elsewhere."""
    P, rank = ep.world_size, ep.rank
    tag = _coll_tag(ep)
    if rank != root:
        yield from ep.send(root, size=size_bytes, tag=tag, payload=value)
        return None
    result: List[Any] = [None] * P
    result[root] = value
    reqs = []
    for src in range(P):
        if src != root:
            r = yield from ep.irecv(source=src, capacity=size_bytes, tag=tag)
            reqs.append((src, r))
    for src, r in reqs:
        status = yield from ep.wait(r)
        result[src] = status.payload
    return result


def scatter(
    ep: "Endpoint", root: int, size_bytes: int, values: Optional[List[Any]] = None
) -> Generator:
    """Linear scatter; returns this rank's piece."""
    P, rank = ep.world_size, ep.rank
    tag = _coll_tag(ep)
    if rank == root:
        reqs = []
        for dst in range(P):
            if dst != root:
                r = yield from ep.isend(
                    dst, size=size_bytes, tag=tag,
                    payload=values[dst] if values else None,
                )
                reqs.append(r)
        yield from ep.waitall(reqs)
        return values[root] if values else None
    status = yield from ep.recv(source=root, capacity=size_bytes, tag=tag)
    return status.payload
