"""MPI-style constants."""

from __future__ import annotations

#: Wildcard source for receives.
ANY_SOURCE = -1

#: Wildcard tag for receives.
ANY_TAG = -1

#: Upper bound for user tags; collectives use the space above it.
TAG_UB = 1 << 20

#: Context id of the world communicator.
WORLD_CONTEXT = 0

#: Internal tag base for collective operations (outside the user range).
COLL_TAG_BASE = TAG_UB + 1
