"""Per-peer connection state.

One :class:`Connection` exists for every ordered pair of ranks (the paper's
MPI sets up a Reliable Connection between every two processes during
``MPI_Init``).  It owns the QP and both halves of the flow-control state:

**sender half** — ``credits`` (how many more unexpected messages this rank
may push to the peer), the FIFO ``backlog`` of sends that found no credit,
and the rendezvous-fallback latch;

**receiver half** — ``prepost_target`` (how many vbufs this rank keeps
posted for the peer; *the* scalability quantity the paper studies),
``recv_posted``, and ``pending_credit_return`` (credits accumulated for the
peer, shipped by piggyback or explicit credit message).

The flow-control schemes in :mod:`repro.core` manipulate exactly these
fields; the endpoint and progress engine are scheme-agnostic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from repro.ib.qp import QueuePair
from repro.ib.types import QPState
from repro.mpi.protocol import Header

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.endpoint import Endpoint


@dataclass
class PendingSend:
    """A backlogged send operation (paper §4.2: the backlog queue)."""

    header: Header
    request: Any = None  # Request for eager; RndvSendOp for RTS
    enqueue_ns: int = 0


@dataclass
class ConnStats:
    """Per-connection observability, aggregated into the paper's tables."""

    msgs_sent: int = 0  # every MPI-level message incl. control
    data_msgs_sent: int = 0  # eager payloads + rendezvous transfers
    ctl_msgs_sent: int = 0  # handshake control plane: RTS/CTS/FIN/RESIZE
    ecm_sent: int = 0  # explicit credit messages (Table 1)
    backlogged: int = 0  # sends that went through the backlog
    ctl_backlogged: int = 0  # of which control-plane (backlogged RTSs)
    backlog_max: int = 0  # high-water backlog depth (robustness metric)
    rndv_fallbacks: int = 0  # small sends converted to rendezvous
    max_prepost: int = 0  # high-water prepost_target (Table 2)
    credit_stalled_ns: int = 0  # cumulative head-of-backlog wait
    piggybacked_credits: int = 0
    ecm_credits: int = 0


class Connection:
    """State for one directed rank→rank link (shared by both directions:
    each rank owns its endpoint's Connection object to the peer)."""

    def __init__(self, endpoint: "Endpoint", peer: int, qp: QueuePair):
        self.endpoint = endpoint
        self.peer = peer
        self.qp = qp

        # --- sender half ---
        self.credits = 0
        self.backlog: Deque[PendingSend] = deque()
        self.fallback_inflight = 0  # outstanding optimistic handshakes
        self.seq_out = 0

        # --- receiver half ---
        self.prepost_target = 0
        self.headroom = 0  # extra non-credited buffers (set by the scheme)

        # --- RDMA eager channel (None unless MPIConfig.use_rdma_channel) ---
        self.rdma_eager = False
        self.tx_ring_addr = 0  # peer ring coordinates (sender half)
        self.tx_ring_rkey = 0
        self.tx_ring_slots = 0
        self.tx_ring_next = 0
        self.rx_channel = None  # RDMAChannel (receiver half)
        self.recv_posted = 0
        self.pending_credit_return = 0
        self.seq_in_expected = 0
        #: CQ headers that overtook an in-flight ring write (the two
        #: channels share one sequence space but not one wire); parked in
        #: seq order until the ring drain closes the gap
        self.cq_stash: List[Header] = []

        # --- recovery (inert unless a RecoveryManager is installed) ---
        #: True while the underlying QP pair is being re-established; new
        #: emissions park in ``deferred`` instead of touching the QP
        self.recovering = False
        #: (header, ctx_kind, ref, control) tuples parked during recovery,
        #: re-emitted FIFO (after replays) once the QP re-arms
        self.deferred: Deque[tuple] = deque()

        self.stats = ConnStats()

    # ------------------------------------------------------------------
    # sender-half helpers
    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        s = self.seq_out
        self.seq_out += 1
        return s

    def take_piggyback_credits(self) -> int:
        """All pending return-credits ride the next outgoing message."""
        c = self.pending_credit_return
        self.pending_credit_return = 0
        return c

    # ------------------------------------------------------------------
    # receiver-half helpers
    # ------------------------------------------------------------------
    def set_prepost_target(self, n: int) -> None:
        self.prepost_target = n
        if n > self.stats.max_prepost:
            self.stats.max_prepost = n

    def reset_stats(self) -> None:
        """Fresh counters for a new job on a reused cluster."""
        self.stats = ConnStats()
        self.stats.max_prepost = self.prepost_target

    def refill_recv_buffers(self) -> int:
        """Post receive vbufs up to the budget; returns how many were
        posted (the endpoint charges the CPU cost).

        In RDMA-channel mode the "buffers" governed by credits are ring
        slots, not WQEs; the posted WQEs only serve optimistic control
        traffic and stay at a small fixed budget.
        """
        if self.endpoint._stall_until > self.endpoint.sim.now:
            return 0  # receiver stalled (fault injection): no reposts
        if self.qp.state is not QPState.READY:
            # Recovery window: the QP cannot accept WQEs (post_recv would
            # raise in ERROR state).  The resync refill restores the
            # population once the QP is re-armed.
            return 0
        if self.rdma_eager:
            budget = self.endpoint.config.rdma_control_bufs
        else:
            budget = self.prepost_target + self.headroom
        posted = 0
        while self.recv_posted < budget:
            self.endpoint._post_recv_vbuf(self)
            posted += 1
        return posted

    def next_ring_addr(self) -> int:
        """Sender half: the next slot address in the peer's current ring."""
        addr = self.tx_ring_addr + self.tx_ring_next * self.endpoint.config.vbuf_bytes
        self.tx_ring_next = (self.tx_ring_next + 1) % max(1, self.tx_ring_slots)
        return addr

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Conn {self.endpoint.rank}->{self.peer} credits={self.credits} "
            f"backlog={len(self.backlog)} prepost={self.prepost_target} "
            f"pending_ret={self.pending_credit_return}>"
        )
