"""On-demand connection management (paper §7 / [Wu et al., Cluster'02]).

The paper's conclusion: *"Our proposed dynamic flow control scheme can be
combined with on-demand connection setup to further improve the
scalability of MPI implementations."*  This module implements that
combination: instead of wiring a full O(P²) Reliable-Connection mesh at
``MPI_Init`` (with pre-posted buffers on every connection), queue pairs
are created lazily when two processes first communicate.

The connection-manager exchange (REQ/REP/RTU over the subnet's management
datagrams, plus the RESET→INIT→RTR→RTS transitions on both QPs) is
modelled as a fixed latency, charged to the first sender, during which the
send blocks — exactly the MVAPICH on-demand behaviour.

With ``run_job(..., on_demand=True)``, unused rank pairs cost *zero*
buffers and zero QP state; combine with the dynamic scheme and total
buffer memory scales with the application's communication graph rather
than with P².
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.mpi.connection import Connection
from repro.sim import Signal
from repro.sim.units import us

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.builder import Cluster
    from repro.mpi.endpoint import Endpoint

#: Default connection-establishment latency: a 3-way CM exchange across
#: the fabric plus two QP state-machine walks (era measurements put full
#: on-demand setup in the few-hundred-µs range).
DEFAULT_SETUP_NS = us(250)


class ConnectionManager:
    """Lazily wires RC connections between endpoint pairs.

    Teardown-aware: a pair the recovery subsystem gave up on
    (:meth:`teardown`, called from ``RecoveryManager._fail``) is fully
    forgotten — its memoized setup signal *and* both endpoints'
    ``Connection`` objects — so a later ``request()`` re-runs the CM
    exchange instead of handing back a fired signal for a dead pair.
    """

    def __init__(self, cluster: "Cluster", setup_ns: int = DEFAULT_SETUP_NS):
        self.cluster = cluster
        self.setup_ns = setup_ns
        self._pending: Dict[Tuple[int, int], Signal] = {}
        #: unordered pairs wired so far (observability)
        self.established = 0
        #: pairs dismantled after a permanent connection loss
        self.torn_down = 0
        #: stale fired signals dropped by :meth:`request`'s self-heal
        self.invalidated = 0

    def request(self, endpoint: "Endpoint", peer: int) -> Signal:
        """Start (or join) connection setup between ``endpoint.rank`` and
        ``peer``; returns a signal fired once both directions exist."""
        pair = (min(endpoint.rank, peer), max(endpoint.rank, peer))
        sig = self._pending.get(pair)
        if sig is not None:
            if not sig.fired or pair[1] in self.cluster.endpoints[pair[0]].connections:
                return sig
            # Fired memo but the connections are gone: the pair was torn
            # down behind our back (a teardown path that bypassed
            # :meth:`teardown`).  Forget the stale signal and re-establish
            # — a one-shot Signal cannot be re-fired.
            self.invalidated += 1
            del self._pending[pair]
        sig = Signal(f"cm.{pair}")
        self._pending[pair] = sig
        self.cluster.sim.schedule(self.setup_ns, self._establish, pair, sig)
        return sig

    def teardown(self, rank_a: int, rank_b: int) -> None:
        """Dismantle the pair's connection state after a permanent loss
        (recovery attempt budget exhausted): drop both directions'
        ``Connection`` objects and the fired setup signal, so the next
        ``request()`` for the pair starts a fresh CM exchange."""
        pair = (min(rank_a, rank_b), max(rank_a, rank_b))
        a = self.cluster.endpoints[pair[0]]
        b = self.cluster.endpoints[pair[1]]
        had = a.connections.pop(pair[1], None)
        b.connections.pop(pair[0], None)
        self._pending.pop(pair, None)
        if had is not None:
            self.torn_down += 1

    def _establish(self, pair: Tuple[int, int], sig: Signal) -> None:
        a = self.cluster.endpoints[pair[0]]
        b = self.cluster.endpoints[pair[1]]
        if pair[1] not in a.connections:  # idempotence guard
            qp_ab = a.hca.create_qp(a.cq)
            qp_ba = b.hca.create_qp(b.cq)
            qp_ab.connect(b.hca.lid, qp_ba.qp_num)
            qp_ba.connect(a.hca.lid, qp_ab.qp_num)
            a.add_connection(b.rank, Connection(a, b.rank, qp_ab))
            b.add_connection(a.rank, Connection(b, a.rank, qp_ba))
            if a._ring_mode:
                from repro.mpi.endpoint import Endpoint

                Endpoint.wire_rdma_rings(
                    a.connections[b.rank], b.connections[a.rank]
                )
            self.established += 1
        sig.fire(self.cluster.sim, None)

    def total_posted_buffers(self) -> int:
        """Receive vbufs currently posted across every live connection —
        the memory-scaling metric of the paper's conclusion."""
        return sum(
            conn.recv_posted
            for ep in self.cluster.endpoints
            for conn in ep.connections.values()
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ConnectionManager established={self.established}>"
