"""On-demand connection management (paper §7 / [Wu et al., Cluster'02]).

The paper's conclusion: *"Our proposed dynamic flow control scheme can be
combined with on-demand connection setup to further improve the
scalability of MPI implementations."*  This module implements that
combination: instead of wiring a full O(P²) Reliable-Connection mesh at
``MPI_Init`` (with pre-posted buffers on every connection), queue pairs
are created lazily when two processes first communicate.

The connection-manager exchange (REQ/REP/RTU over the subnet's management
datagrams, plus the RESET→INIT→RTR→RTS transitions on both QPs) is
modelled as a fixed latency, charged to the first sender, during which the
send blocks — exactly the MVAPICH on-demand behaviour.

With ``run_job(..., on_demand=True)``, unused rank pairs cost *zero*
buffers and zero QP state; combine with the dynamic scheme and total
buffer memory scales with the application's communication graph rather
than with P².
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.mpi.connection import Connection
from repro.recovery.failures import ConnectionFailedError, ConnectionFailure
from repro.recovery.policy import RecoveryPolicy
from repro.sim import Signal
from repro.sim.units import us

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.builder import Cluster
    from repro.mpi.endpoint import Endpoint

#: Default connection-establishment latency: a 3-way CM exchange across
#: the fabric plus two QP state-machine walks (era measurements put full
#: on-demand setup in the few-hundred-µs range).
DEFAULT_SETUP_NS = us(250)


class _SetupChaos:
    """Knobs for control-plane chaos on the CM exchange: the unreliable
    management datagrams may lose the REQ/REP/RTU (whole-exchange loss
    with ``loss_prob``) or crawl (uniform extra delay up to ``delay_ns``),
    and the requester retries on timeout with the recovery policy's
    exponential-backoff schedule."""

    __slots__ = ("loss_prob", "delay_ns", "policy", "seed")

    def __init__(self, loss_prob: float, delay_ns: int, policy, seed: int):
        if not 0.0 <= loss_prob < 1.0:
            raise ValueError("cm chaos: loss_prob must be in [0, 1)")
        if delay_ns < 0:
            raise ValueError("cm chaos: delay_ns must be >= 0")
        self.loss_prob = loss_prob
        self.delay_ns = int(delay_ns)
        self.policy = policy
        self.seed = seed

    def rng(self, pair: Tuple[int, int], attempt: int) -> random.Random:
        """Per-(pair, attempt) RNG: deterministic, decorrelated across
        pairs (same keying idiom as the recovery backoff jitter)."""
        return random.Random(
            self.seed * 1_000_003 + pair[0] * 1009 + pair[1] * 131 + attempt
        )


class ConnectionManager:
    """Lazily wires RC connections between endpoint pairs.

    Teardown-aware: a pair the recovery subsystem gave up on
    (:meth:`teardown`, called from ``RecoveryManager._fail``) is fully
    forgotten — its memoized setup signal *and* both endpoints'
    ``Connection`` objects — so a later ``request()`` re-runs the CM
    exchange instead of handing back a fired signal for a dead pair.
    """

    def __init__(self, cluster: "Cluster", setup_ns: int = DEFAULT_SETUP_NS):
        self.cluster = cluster
        self.setup_ns = setup_ns
        self._pending: Dict[Tuple[int, int], Signal] = {}
        self._chaos: Optional[_SetupChaos] = None
        #: unordered pairs wired so far (observability)
        self.established = 0
        #: pairs dismantled after a permanent connection loss
        self.torn_down = 0
        #: stale fired signals dropped by :meth:`request`'s self-heal
        self.invalidated = 0
        #: chaos counters: exchanges lost, retried, given up on
        self.setup_lost = 0
        self.setup_retries = 0
        self.setup_failures = 0

    def configure_chaos(
        self,
        loss_prob: float = 0.0,
        delay_ns: int = 0,
        policy: Optional[RecoveryPolicy] = None,
        seed: int = 0,
    ) -> None:
        """Arm control-plane chaos: every CM exchange may be lost with
        ``loss_prob`` or delayed uniformly in ``[0, delay_ns)``; the
        requester times out and retries with ``policy``'s exponential
        backoff, surfacing ``ConnectionFailedError`` (cause
        ``cm-setup-timeout``) once the attempt budget is spent.  With the
        manager unarmed (the default) the setup path is byte-identical to
        the chaos-free implementation."""
        self._chaos = _SetupChaos(loss_prob, delay_ns, policy or RecoveryPolicy(), seed)

    def request(self, endpoint: "Endpoint", peer: int) -> Signal:
        """Start (or join) connection setup between ``endpoint.rank`` and
        ``peer``; returns a signal fired once both directions exist."""
        pair = (min(endpoint.rank, peer), max(endpoint.rank, peer))
        sig = self._pending.get(pair)
        if sig is not None:
            if not sig.fired or pair[1] in self.cluster.endpoints[pair[0]].connections:
                return sig
            # Fired memo but the connections are gone: the pair was torn
            # down behind our back (a teardown path that bypassed
            # :meth:`teardown`).  Forget the stale signal and re-establish
            # — a one-shot Signal cannot be re-fired.
            self.invalidated += 1
            del self._pending[pair]
        sig = Signal(f"cm.{pair}")
        self._pending[pair] = sig
        if self._chaos is None:
            self.cluster.sim.schedule(self.setup_ns, self._establish, pair, sig)
        else:
            self._attempt(pair, sig, 1)
        return sig

    # ------------------------------------------------------ chaos plumbing
    def _attempt(self, pair: Tuple[int, int], sig: Signal, attempt: int) -> None:
        """One chaotic CM exchange: maybe lost, maybe slow, always
        guarded by a timeout that either retries or gives up."""
        chaos = self._chaos
        rng = chaos.rng(pair, attempt)
        sim = self.cluster.sim
        tracer = self.cluster.tracer
        lost = chaos.loss_prob > 0.0 and rng.random() < chaos.loss_prob
        extra = rng.randrange(chaos.delay_ns) if chaos.delay_ns else 0
        if lost:
            self.setup_lost += 1
            tracer.count("cm.setup_lost", pair)
        else:
            sim.schedule(self.setup_ns + extra, self._establish, pair, sig)
        # The timeout covers the worst-case chaotic exchange plus the
        # attempt's backoff share, so an establish in flight always wins
        # the race against its own timer.
        pol = chaos.policy
        backoff = min(
            pol.max_delay_ns, int(pol.base_delay_ns * pol.backoff_factor ** (attempt - 1))
        )
        if pol.jitter_ns:
            backoff += rng.randrange(pol.jitter_ns)
        sim.schedule(
            self.setup_ns + chaos.delay_ns + backoff,
            self._setup_timeout, pair, sig, attempt,
        )

    def _setup_timeout(self, pair: Tuple[int, int], sig: Signal, attempt: int) -> None:
        if sig.fired or self._pending.get(pair) is not sig:
            return  # establish won the race, or the pair was torn down
        chaos = self._chaos
        if chaos is None or attempt >= chaos.policy.max_attempts:
            self.setup_failures += 1
            self.cluster.tracer.count("cm.setup_failed", pair)
            del self._pending[pair]
            a = self.cluster.endpoints[pair[0]]
            sig.fail(self.cluster.sim, ConnectionFailedError(ConnectionFailure(
                rank=pair[0],
                peer=pair[1],
                scheme=a.scheme.name.value,
                epoch=0,  # the pair never came up
                cause="cm-setup-timeout",
                elapsed_ns=self.cluster.sim.now,
                attempts=attempt,
            )))
            return
        self.setup_retries += 1
        self.cluster.tracer.count("cm.setup_retry", pair)
        self._attempt(pair, sig, attempt + 1)

    def teardown(self, rank_a: int, rank_b: int) -> None:
        """Dismantle the pair's connection state after a permanent loss
        (recovery attempt budget exhausted): drop both directions'
        ``Connection`` objects and the fired setup signal, so the next
        ``request()`` for the pair starts a fresh CM exchange."""
        pair = (min(rank_a, rank_b), max(rank_a, rank_b))
        a = self.cluster.endpoints[pair[0]]
        b = self.cluster.endpoints[pair[1]]
        had = a.connections.pop(pair[1], None)
        b.connections.pop(pair[0], None)
        self._pending.pop(pair, None)
        if had is not None:
            self.torn_down += 1

    def _establish(self, pair: Tuple[int, int], sig: Signal) -> None:
        if sig.fired:
            # A duplicate exchange under chaos (slow attempt raced its own
            # retry), or the failure detector failed the signal because one
            # end died mid-setup.  A one-shot Signal cannot re-fire.
            return
        a = self.cluster.endpoints[pair[0]]
        b = self.cluster.endpoints[pair[1]]
        if pair[1] not in a.connections:  # idempotence guard
            qp_ab = a.hca.create_qp(a.cq)
            qp_ba = b.hca.create_qp(b.cq)
            qp_ab.connect(b.hca.lid, qp_ba.qp_num)
            qp_ba.connect(a.hca.lid, qp_ab.qp_num)
            a.add_connection(b.rank, Connection(a, b.rank, qp_ab))
            b.add_connection(a.rank, Connection(b, a.rank, qp_ba))
            if a._ring_mode:
                from repro.mpi.endpoint import Endpoint

                Endpoint.wire_rdma_rings(
                    a.connections[b.rank], b.connections[a.rank]
                )
            self.established += 1
        sig.fire(self.cluster.sim, None)

    def total_posted_buffers(self) -> int:
        """Receive vbufs currently posted across every live connection —
        the memory-scaling metric of the paper's conclusion."""
        return sum(
            conn.recv_posted
            for ep in self.cluster.endpoints
            for conn in ep.connections.values()
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ConnectionManager established={self.established}>"
