"""Job launching: run an MPI program (one generator per rank) to completion
and collect results.

A *program* is ``Callable[[Endpoint], Generator]``; the runner spawns one
simulated process per rank, runs the event loop until every rank returns,
and packages timing plus flow-control statistics into a :class:`JobResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Union

from repro.cluster.builder import Cluster
from repro.cluster.config import TestbedConfig
from repro.core import FlowControlReport, FlowControlScheme, collect_report, make_scheme
from repro.core.base import SchemeName
from repro.mpi.endpoint import Endpoint
from repro.sim.units import seconds, to_us

Program = Callable[[Endpoint], Generator]

#: Hard event ceiling for any single job — a livelock detector, far above
#: what the largest NAS proxy needs.
MAX_JOB_EVENTS = 300_000_000


@dataclass
class JobResult:
    """Everything the benchmark harness needs from one run."""

    scheme: str
    nranks: int
    prepost: int
    elapsed_ns: int
    rank_results: List[Any]
    rank_finish_ns: List[int]
    fc: FlowControlReport
    endpoints: List[Endpoint] = field(repr=False, default_factory=list)
    #: the cluster's tracer (counters incl. ``faults.*``), for robustness
    #: reports — populated whether or not record-tracing was enabled
    tracer: Any = field(repr=False, default=None)
    #: unordered pairs wired by the connection manager (None = static mesh)
    connections_established: Optional[int] = None
    #: the runtime invariant auditor, when the job ran with ``audit=``
    audit: Any = field(repr=False, default=None)
    #: structured per-pair connection-loss records (repro.recovery).  Empty
    #: on success; populated instead of raising/hanging when a QP pair is
    #: lost for good (recovery disabled, or its attempt budget exhausted)
    failures: List[Any] = field(default_factory=list)
    #: the recovery manager, when the job ran with ``recovery=``
    recovery: Any = field(repr=False, default=None)
    #: the failure-tolerance manager (heartbeat failure detector), when
    #: the job ran with ``ft=``; ``failures`` then also carries
    #: :class:`repro.ft.RankFailure` records for ranks declared dead
    ft: Any = field(repr=False, default=None)
    #: :class:`repro.core.stats.CongestionReport` when the cluster ran
    #: with the switch congestion subsystem armed; ``None`` otherwise
    congestion: Any = field(default=None)
    #: :class:`repro.core.memory.MemoryReport` — per-scheme pinned-vbuf /
    #: QP / CQ byte accounting (the Table-2 quantity, in bytes)
    memory: Any = field(repr=False, default=None)

    @property
    def completed(self) -> bool:
        return not self.failures

    @property
    def elapsed_us(self) -> float:
        return to_us(self.elapsed_ns)

    @property
    def elapsed_s(self) -> float:
        return seconds(self.elapsed_ns)

    def fc_dict(self) -> Dict[str, Any]:
        """Flow-control statistics as a plain JSON-serialisable dict.

        This is the shape campaign workers ship back across process
        boundaries (``repro.campaign``): every ``FlowControlReport``
        field plus the derived ``ecm_fraction``.
        """
        from dataclasses import asdict

        d = asdict(self.fc)
        d["ecm_fraction"] = self.fc.ecm_fraction
        return d


def run_job(
    program: Program,
    nranks: int,
    scheme: Union[str, SchemeName, FlowControlScheme],
    prepost: int,
    config: Optional[TestbedConfig] = None,
    finalize: bool = True,
    trace: bool = False,
    on_demand: Optional[bool] = None,
    max_events: int = MAX_JOB_EVENTS,
    faults: Optional[Any] = None,
    audit: Union[bool, Any] = False,
    recovery: Union[bool, Any] = False,
    ft: Union[bool, Any] = False,
    cm_chaos: Optional[Dict[str, Any]] = None,
    cluster: Optional[Cluster] = None,
) -> JobResult:
    """Build a cluster, run ``program`` on every rank, return the result.

    Parameters
    ----------
    program:
        ``program(mpi_endpoint)`` generator; its return value lands in
        ``JobResult.rank_results``.
    scheme:
        A scheme name (``"hardware" | "static" | "dynamic"``) or a
        pre-built :class:`FlowControlScheme` (for custom parameters).
    prepost:
        Receive vbufs pre-posted per connection — the paper's central
        experimental variable.
    on_demand:
        Establish connections lazily on first communication instead of a
        full mesh at init (the paper's suggested scalability combination;
        see repro.cluster.on_demand).  Left at ``None``, jobs with at
        least ``TestbedConfig.on_demand_threshold`` ranks go on-demand
        automatically; an explicit ``True``/``False`` always wins.
    finalize:
        Append an ``mpi.finalize()`` after the program (recommended; keeps
        statistics exact and guards against in-flight stragglers).
    faults:
        A :class:`repro.faults.FaultPlan` (or declarative spec dict) of
        deterministic fault events to inject while the job runs.
    audit:
        ``True`` to run under a fresh :class:`repro.check.Auditor`, or a
        pre-built auditor instance.  Invariant violations raise
        :class:`repro.check.InvariantViolation`; the attached auditor is
        returned on ``JobResult.audit``.
    recovery:
        ``True`` to install a :class:`repro.recovery.RecoveryManager`
        (default policy), or a :class:`repro.recovery.RecoveryPolicy` for
        custom backoff/attempt budgets.  Without it a fatal completion
        surfaces as a structured record on ``JobResult.failures``.
    ft:
        ``True`` to install a :class:`repro.ft.FTManager` (heartbeat
        failure detector + ULFM-style error propagation), or a
        :class:`repro.ft.FTConfig` for custom detection timing.  Rank
        deaths (``FaultPlan.rank_death``) then complete pending requests
        with ``Status.error == PROC_FAILED`` and surface as structured
        :class:`repro.ft.RankFailure` records instead of hanging the job.
    cm_chaos:
        Keyword dict for
        :meth:`repro.cluster.on_demand.ConnectionManager.configure_chaos`
        (``loss_prob`` / ``delay_ns`` / ``policy`` / ``seed``) — lose or
        delay on-demand setup exchanges; requires an on-demand cluster.
    cluster:
        Reuse an already-launched cluster instead of building a fresh one
        (the scheme/nranks must match what it was launched with).  Its
        observability counters are reset so the result reports this job
        only.
    """
    if not isinstance(scheme, FlowControlScheme):
        scheme = make_scheme(scheme)

    if cluster is None:
        cluster = Cluster(config, trace=trace)
        endpoints = cluster.launch(nranks, scheme, prepost, on_demand=on_demand)
    else:
        endpoints = cluster.endpoints
        if not endpoints:
            raise RuntimeError("reused cluster was never launched")
        if len(endpoints) != nranks:
            raise ValueError(
                f"reused cluster has {len(endpoints)} ranks, job wants {nranks}"
            )
        if endpoints[0].scheme.name is not scheme.name:
            raise ValueError(
                f"reused cluster runs scheme {endpoints[0].scheme.name.value!r}, "
                f"job wants {scheme.name.value!r}"
            )
        scheme = endpoints[0].scheme  # the live policy object, not a clone
        cluster.reset_stats()

    auditor = None
    if audit:
        from repro.check import Auditor

        auditor = audit if not isinstance(audit, bool) else Auditor()
        auditor.attach(cluster)
    elif cluster.auditor is not None:
        # a prior audited job on this cluster left hooks armed — disarm
        cluster.auditor = None
        for ep in endpoints:
            ep._audit = None
        if cluster.fabric.congestion is not None:
            cluster.fabric.congestion.audit = None

    recovery_mgr = None
    if recovery:
        from repro.recovery import RecoveryManager, RecoveryPolicy

        policy = recovery if isinstance(recovery, RecoveryPolicy) else None
        recovery_mgr = RecoveryManager(cluster, policy).install()
    elif cluster.recovery is not None:
        # a prior recovered job on this cluster left hooks armed — disarm
        cluster.recovery = None
        for ep in endpoints:
            ep._recovery = None

    ft_mgr = None
    if ft:
        from repro.ft import FTConfig, FTManager

        ft_cfg = ft if isinstance(ft, FTConfig) else None
        ft_mgr = FTManager(cluster, ft_cfg).install()
    elif cluster.ft is not None:
        # a prior failure-tolerant job on this cluster left hooks armed
        cluster.ft = None
        for ep in endpoints:
            ep._ft = None

    if cm_chaos is not None:
        if cluster.cm is None:
            raise ValueError(
                "cm_chaos needs an on-demand cluster (run_job(..., on_demand=True))"
            )
        cluster.cm.configure_chaos(**cm_chaos)

    if faults is not None:
        from repro.faults import FaultInjector, FaultPlan

        if isinstance(faults, dict):
            faults = FaultPlan.from_spec(faults)
        FaultInjector(cluster, faults).install()
    elif cluster.fabric.fault is not None:
        # a prior faulted job on this cluster left its fault state armed —
        # disarm, like the auditor/recovery hooks above (already-scheduled
        # begin/end transitions mutate the orphaned state harmlessly)
        cluster.fabric.fault = None

    finish_ns = [0] * nranks
    t0 = cluster.sim.now  # non-zero on reused clusters

    def wrap(ep: Endpoint) -> Generator:
        result = yield from program(ep)
        if finalize:
            yield from ep.finalize()
        finish_ns[ep.rank] = cluster.sim.now - t0
        return result

    procs = [cluster.sim.spawn(wrap(ep), name=f"rank{ep.rank}") for ep in endpoints]

    from repro.ft.failures import RankFailedError
    from repro.recovery.failures import ConnectionFailedError

    expected = (ConnectionFailedError, RankFailedError)
    failures: List[Any] = []
    seen_failures: set = set()

    def record_failure(f: Any) -> None:
        # Both ends of a lost pair (and every survivor of a rank death)
        # report the same event; dedup on the record's stable identity
        # instead of scanning the list per insert.
        key = f.dedup_key()
        if key not in seen_failures:
            seen_failures.add(key)
            failures.append(f)

    try:
        cluster.sim.run(max_events=cluster.sim.events_executed + max_events)
    except expected as exc:
        record_failure(exc.failure)

    if ft_mgr is not None:
        # Dead ranks' programs are parked on a never-firing signal, not
        # hung — terminate them so the liveness check below covers the
        # *survivors* (the acceptance criterion: zero hung ranks).
        dead_ranks = ft_mgr.dead | ft_mgr.injected
        if any(procs[r].alive for r in dead_ranks):
            for r in sorted(dead_ranks):
                procs[r].kill()
            cluster.sim.run(
                max_events=cluster.sim.events_executed + 4 * len(dead_ranks) + 4
            )
        for f in ft_mgr.failures:
            record_failure(f)

    for p in procs:
        if isinstance(p.failure, expected):
            record_failure(p.failure.failure)
    if recovery_mgr is not None:
        for f in recovery_mgr.failures:
            record_failure(f)

    failed = [p for p in procs if p.failure is not None
              and not isinstance(p.failure, expected)]
    if failed:
        raise failed[0].failure
    rank_only = bool(failures) and all(
        f.dedup_key()[0] == "rank" for f in failures
    )
    if not failures or rank_only:
        hung = [p for p in procs if p.alive]
        if hung:
            raise RuntimeError(
                f"deadlock: ranks {[p.name for p in hung]} never finished "
                f"(sim time {cluster.sim.now} ns)"
            )
        if auditor is not None and not failures:
            auditor.final_check(expect_quiescent=finalize)

    cong_state = cluster.fabric.congestion
    if cong_state is not None:
        from repro.core.stats import collect_congestion_report

        cong_report = collect_congestion_report(cong_state)
    else:
        cong_report = None

    from repro.core.memory import collect_memory_report

    return JobResult(
        scheme=scheme.name.value,
        nranks=nranks,
        prepost=prepost,
        elapsed_ns=max(finish_ns),
        rank_results=[p.result for p in procs],
        rank_finish_ns=finish_ns,
        fc=collect_report(endpoints),
        endpoints=endpoints,
        tracer=cluster.tracer,
        connections_established=(cluster.cm.established if cluster.cm else None),
        audit=auditor,
        failures=failures,
        recovery=recovery_mgr,
        ft=ft_mgr,
        congestion=cong_report,
        memory=collect_memory_report(endpoints, cluster.config),
    )
