"""Testbed configuration: the simulated counterpart of the paper's cluster.

The paper's testbed (§6.1): 8 SuperMicro SUPER P4DL6 nodes, dual 2.4 GHz
Xeons, Mellanox InfiniHost MT23108 4X HCAs on PCI-X 64/133, one InfiniScale
MT43132 8-port switch, Linux RH 7.2.

:class:`TestbedConfig` composes the hardware model (:class:`IBConfig`) with
the MPI software model (:class:`MPIConfig`) and the cluster shape.  The
defaults are calibrated (``tests/test_calibration.py``) to the paper's two
anchor numbers: ≈7.5 µs 4-byte MPI latency for the send/recv-based
implementation and ≈860 MB/s peak large-message bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ib.types import IBConfig
from repro.mpi.config import MPIConfig


@dataclass
class TestbedConfig:
    """Everything needed to build a simulated cluster.

    Attributes
    ----------
    nodes:
        Number of physical nodes (each with one HCA); the paper uses 8.
    ib:
        Hardware timing model.
    mpi:
        MPI software timing model.
    seed:
        Seed for any stochastic workload elements (compute jitter).  The
        simulator itself is deterministic; this seeds workload RNGs.
    """

    #: keep pytest from collecting this dataclass as a test class
    __test__ = False

    nodes: int = 8
    ib: IBConfig = field(default_factory=IBConfig)
    mpi: MPIConfig = field(default_factory=MPIConfig)
    seed: int = 20040426  # IPPS 2004 conference date

    #: "crossbar" = the testbed's single InfiniScale switch;
    #: "fat-tree" = two-level leaf/spine for larger simulated clusters.
    topology: str = "crossbar"
    leaf_ports: int = 8  # hosts per leaf switch (fat-tree only)
    spines: int = 2  # spine switches (fat-tree only)

    def with_(self, **kwargs) -> "TestbedConfig":
        """Functional update (``cfg.with_(nodes=4)``)."""
        return replace(self, **kwargs)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.topology not in ("crossbar", "fat-tree"):
            raise ValueError(f"unknown topology {self.topology!r}")
