"""Testbed configuration: the simulated counterpart of the paper's cluster.

The paper's testbed (§6.1): 8 SuperMicro SUPER P4DL6 nodes, dual 2.4 GHz
Xeons, Mellanox InfiniHost MT23108 4X HCAs on PCI-X 64/133, one InfiniScale
MT43132 8-port switch, Linux RH 7.2.

:class:`TestbedConfig` composes the hardware model (:class:`IBConfig`) with
the MPI software model (:class:`MPIConfig`) and the cluster shape.  The
defaults are calibrated (``tests/test_calibration.py``) to the paper's two
anchor numbers: ≈7.5 µs 4-byte MPI latency for the send/recv-based
implementation and ≈860 MB/s peak large-message bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.ib.types import IBConfig
from repro.mpi.config import MPIConfig


@dataclass
class TestbedConfig:
    """Everything needed to build a simulated cluster.

    Attributes
    ----------
    nodes:
        Number of physical nodes (each with one HCA); the paper uses 8.
    ib:
        Hardware timing model.
    mpi:
        MPI software timing model.
    seed:
        Seed for any stochastic workload elements (compute jitter).  The
        simulator itself is deterministic; this seeds workload RNGs.
    """

    #: keep pytest from collecting this dataclass as a test class
    __test__ = False

    nodes: int = 8
    ib: IBConfig = field(default_factory=IBConfig)
    mpi: MPIConfig = field(default_factory=MPIConfig)
    seed: int = 20040426  # IPPS 2004 conference date

    #: "crossbar" = the testbed's single InfiniScale switch;
    #: "fat-tree" = multi-level leaf/spine(/core) for larger clusters.
    topology: str = "crossbar"
    leaf_ports: int = 8  # hosts per leaf switch (fat-tree only)
    spines: int = 2  # spine switches, per pod when levels=3 (fat-tree only)
    levels: int = 2  # fat-tree tiers: 2 = leaf/spine, 3 = pod/core
    pod_leaves: Optional[int] = None  # leaves per pod (3-level only)
    cores: Optional[int] = None  # core switches (3-level only)

    #: With ``on_demand`` unspecified, jobs at or above this many ranks
    #: establish connections lazily instead of wiring the full O(P²)
    #: mesh at init — the paper's suggested scalability combination,
    #: made the default at scale.  The paper-scale experiments (8–64
    #: ranks) stay on the full mesh, bit-identical to before.
    on_demand_threshold: int = 128

    def with_(self, **kwargs) -> "TestbedConfig":
        """Functional update (``cfg.with_(nodes=4)``)."""
        return replace(self, **kwargs)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.topology not in ("crossbar", "fat-tree"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.levels not in (2, 3):
            raise ValueError(f"fat tree supports 2 or 3 levels, not {self.levels}")
        if self.topology == "fat-tree" and self.levels == 3:
            if not self.pod_leaves or not self.cores:
                raise ValueError(
                    "a 3-level fat tree needs pod_leaves and cores set"
                )
        if self.on_demand_threshold < 2:
            raise ValueError("on_demand_threshold must be >= 2")


def fat_tree_shape(nodes: int) -> Dict[str, Any]:
    """Canonical fat-tree shape for a rank count — the scaling ladder's
    topology policy (``repro scaling`` / ``campaign.grids.scaling_grid``).

    Up to 128 nodes a two-level leaf/spine tree with 2:1 oversubscription
    suffices; 1,024 nodes needs the three-level pod topology (64 leaves
    of 16 hosts, 8 pods x 8 leaves, 8 spines per pod, 16 cores).
    """
    if nodes < 1:
        raise ValueError("need at least one node")
    if nodes <= 128:
        leaf_ports = 8 if nodes <= 64 else 16
        return dict(topology="fat-tree", leaf_ports=leaf_ports,
                    spines=max(1, nodes // (2 * leaf_ports)))
    if nodes <= 512:
        return dict(topology="fat-tree", leaf_ports=16,
                    spines=max(2, nodes // 32))
    return dict(topology="fat-tree", levels=3, leaf_ports=16,
                pod_leaves=8, spines=8,
                cores=max(8, nodes // 64))
