"""Cluster construction: fabric, HCAs, endpoints, and the QP mesh.

``MPI_Init`` in the paper's implementation sets up a Reliable Connection
between every two processes and binds all queues to a single CQ per
process; :meth:`Cluster.launch` reproduces that wiring.  Rank placement is
block-cyclic over nodes: with 16 ranks on 8 nodes, ranks *r* and *r + 8*
share a node (the paper runs BT/SP this way), and their traffic takes the
HCA loopback path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cluster.config import TestbedConfig
from repro.core.base import FlowControlScheme
from repro.ib.fabric import Fabric
from repro.ib.hca import HCA
from repro.mpi.connection import Connection
from repro.mpi.endpoint import Endpoint
from repro.sim import Simulator
from repro.sim.trace import Tracer


class Cluster:
    """A simulated cluster ready to run MPI jobs."""

    def __init__(self, config: Optional[TestbedConfig] = None, trace: bool = False):
        self.config = config or TestbedConfig()
        self.sim = Simulator()
        self.tracer = Tracer(enabled=trace)
        if self.config.topology == "fat-tree":
            from repro.ib.fattree import FatTreeFabric

            self.fabric = FatTreeFabric(
                self.sim, self.config.ib, self.tracer,
                leaf_ports=self.config.leaf_ports, spines=self.config.spines,
                levels=self.config.levels,
                pod_leaves=self.config.pod_leaves, cores=self.config.cores,
            )
        else:
            self.fabric = Fabric(self.sim, self.config.ib, self.tracer)
        if self.config.ib.congestion is not None:
            from repro.congestion import CongestionState

            self.fabric.congestion = CongestionState(
                self.sim, self.fabric, self.config.ib.congestion, self.tracer
            )
        self.hcas: List[HCA] = [
            HCA(self.sim, self.fabric, lid, self.config.ib, self.tracer)
            for lid in range(self.config.nodes)
        ]
        self.endpoints: List[Endpoint] = []
        self.cm = None  # set when launched with on_demand=True
        self.auditor = None  # repro.check.Auditor, when attached
        self.recovery = None  # repro.recovery.RecoveryManager, when installed
        self.ft = None  # repro.ft.FTManager, when installed

    # ------------------------------------------------------------------
    def node_of_rank(self, rank: int) -> int:
        """Block-cyclic placement: rank r lives on node r mod nodes."""
        return rank % self.config.nodes

    def launch(
        self,
        nranks: int,
        scheme: FlowControlScheme,
        prepost: int,
        on_demand: Optional[bool] = None,
    ) -> List[Endpoint]:
        """Create ``nranks`` endpoints and wire their connections.

        ``on_demand=False``: the paper's MPI_Init behaviour — a full
        all-to-all RC mesh with pre-posted buffers on every connection.
        With ``on_demand=True``, connections are established lazily by a
        :class:`~repro.cluster.on_demand.ConnectionManager` when two ranks
        first communicate (available afterwards as ``cluster.cm``).  Left
        unspecified (``None``), jobs at or above
        ``TestbedConfig.on_demand_threshold`` ranks go on-demand
        automatically — a 1,024-rank mesh would wire ~1M QP pairs.
        """
        if self.endpoints:
            raise RuntimeError("cluster already launched")
        if nranks < 1:
            raise ValueError("need at least one rank")
        if on_demand is None:
            on_demand = nranks >= self.config.on_demand_threshold

        connector = None
        if on_demand:
            from repro.cluster.on_demand import ConnectionManager

            self.cm = ConnectionManager(self)
            connector = self.cm.request

        for rank in range(nranks):
            hca = self.hcas[self.node_of_rank(rank)]
            ep = Endpoint(
                sim=self.sim,
                hca=hca,
                rank=rank,
                world_size=nranks,
                config=self.config.mpi,
                scheme=scheme,
                requested_prepost=prepost,
                tracer=self.tracer,
                connector=connector,
            )
            self.endpoints.append(ep)

        if on_demand:
            return self.endpoints

        # Full QP mesh: one RC connection per ordered pair, all bound to
        # the per-process CQ (paper §3.1).
        qps: Dict[tuple, object] = {}
        for a in self.endpoints:
            for b in self.endpoints:
                if a.rank != b.rank:
                    qps[(a.rank, b.rank)] = a.hca.create_qp(a.cq)
        for (i, j), qp in qps.items():
            peer_qp = qps[(j, i)]
            qp.connect(self.endpoints[j].hca.lid, peer_qp.qp_num)
        for a in self.endpoints:
            for b in self.endpoints:
                if a.rank != b.rank:
                    conn = Connection(a, b.rank, qps[(a.rank, b.rank)])
                    a.add_connection(b.rank, conn)
        if self.endpoints and self.endpoints[0]._ring_mode:
            for a in self.endpoints:
                for b in self.endpoints:
                    if a.rank < b.rank:
                        Endpoint.wire_rdma_rings(
                            a.connections[b.rank], b.connections[a.rank]
                        )
        return self.endpoints

    def reset_stats(self) -> None:
        """Zero the observability counters between jobs on a reused
        cluster (see :func:`repro.core.stats.reset_counters`)."""
        from repro.core.stats import reset_counters

        reset_counters(self.endpoints, congestion=self.fabric.congestion)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Cluster nodes={self.config.nodes} ranks={len(self.endpoints)}>"
