"""Cluster modelling: testbed configuration, cluster building, job running."""

from repro.cluster.builder import Cluster
from repro.cluster.config import TestbedConfig
from repro.cluster.job import JobResult, Program, run_job

__all__ = ["Cluster", "JobResult", "Program", "TestbedConfig", "run_job"]
