"""Cluster modelling: testbed configuration, cluster building, job running."""

from repro.cluster.builder import Cluster
from repro.cluster.config import TestbedConfig, fat_tree_shape
from repro.cluster.job import JobResult, Program, run_job

__all__ = ["Cluster", "JobResult", "Program", "TestbedConfig",
           "fat_tree_shape", "run_job"]
