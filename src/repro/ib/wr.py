"""Work requests and work completions (the descriptor types of the verbs
interface).

A :class:`SendWR` describes an outbound operation (channel-semantics SEND or
memory-semantics RDMA write/read); a :class:`RecvWR` describes where an
inbound SEND's payload may land.  Completions are reported as :class:`WC`
entries on a completion queue.  ``context`` fields are opaque to the IB
layer — the MPI implementation stores its protocol headers there.

These are hand-written ``__slots__`` classes rather than dataclasses: a WC
is allocated for every signalled completion and a SendWR for every posted
send, so the dataclass ``__init__``/``__post_init__`` indirection was
measurable on the hot path.  Construction stays keyword-compatible with
the previous dataclass signatures.
"""

from __future__ import annotations

from typing import Any

from repro.ib.types import Opcode, WCStatus


class SendWR:
    """An outbound work request.

    Parameters
    ----------
    wr_id:
        Caller cookie returned in the matching completion.
    opcode:
        SEND consumes a remote receive WQE; RDMA_WRITE/RDMA_READ do not.
    length:
        Payload bytes.
    payload:
        Opaque data object delivered to the remote side (SEND) or written
        into the remote MR (RDMA_WRITE).
    remote_addr, rkey:
        Target region for RDMA operations (must be within a registered MR
        at the responder or the op completes with REMOTE_ACCESS_ERROR).
    signaled:
        When False, no completion entry is generated on success (errors
        always complete).  MPI uses unsignalled sends for some control
        traffic to cut CQ pressure.
    """

    __slots__ = (
        "wr_id",
        "opcode",
        "length",
        "payload",
        "remote_addr",
        "rkey",
        "signaled",
        "msn",
        "rnr_tries",
        "xport_tries",
    )

    def __init__(
        self,
        wr_id: Any,
        opcode: Opcode,
        length: int,
        payload: Any = None,
        remote_addr: int = 0,
        rkey: int = 0,
        signaled: bool = True,
    ):
        if length < 0:
            raise ValueError(f"negative WR length {length}")
        if rkey == 0 and (opcode is Opcode.RDMA_WRITE or opcode is Opcode.RDMA_READ):
            raise ValueError(f"{opcode.value} requires an rkey")
        self.wr_id = wr_id
        self.opcode = opcode
        self.length = length
        self.payload = payload
        self.remote_addr = remote_addr
        self.rkey = rkey
        self.signaled = signaled
        # transport bookkeeping (assigned by the QP; not caller-visible)
        self.msn = -1
        self.rnr_tries = 0
        self.xport_tries = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SendWR(wr_id={self.wr_id!r}, opcode={self.opcode!r}, "
            f"length={self.length!r}, payload={self.payload!r}, "
            f"remote_addr={self.remote_addr!r}, rkey={self.rkey!r}, "
            f"signaled={self.signaled!r})"
        )


class RecvWR:
    """An inbound buffer descriptor.

    ``capacity`` bounds the SEND payload that may land here; an overlong
    message completes with LOCAL_LENGTH_ERROR at the receiver (and the
    sender sees a remote error), mirroring IBA semantics.
    """

    __slots__ = ("wr_id", "capacity")

    def __init__(self, wr_id: Any, capacity: int):
        if capacity < 0:
            raise ValueError(f"negative recv capacity {capacity}")
        self.wr_id = wr_id
        self.capacity = capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecvWR(wr_id={self.wr_id!r}, capacity={self.capacity!r})"


class WC:
    """A work completion.

    Attributes
    ----------
    wr_id:
        Cookie of the completed work request.
    opcode:
        For receive completions this is the opcode of the *remote* op
        (always SEND here, since RDMA bypasses receive WQEs).
    byte_len:
        Payload bytes transferred.
    data:
        For receive completions, the delivered payload object.
    qp_num / peer:
        Identify the connection the completion belongs to.
    is_recv:
        Distinguishes receive-side completions from send-side ones.
    """

    __slots__ = (
        "wr_id",
        "status",
        "opcode",
        "byte_len",
        "data",
        "qp_num",
        "peer",
        "is_recv",
    )

    def __init__(
        self,
        wr_id: Any,
        status: WCStatus,
        opcode: Opcode,
        byte_len: int = 0,
        data: Any = None,
        qp_num: int = -1,
        peer: int = -1,
        is_recv: bool = False,
    ):
        self.wr_id = wr_id
        self.status = status
        self.opcode = opcode
        self.byte_len = byte_len
        self.data = data
        self.qp_num = qp_num
        self.peer = peer
        self.is_recv = is_recv

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WC(wr_id={self.wr_id!r}, status={self.status!r}, "
            f"opcode={self.opcode!r}, byte_len={self.byte_len!r}, "
            f"qp_num={self.qp_num!r}, peer={self.peer!r}, "
            f"is_recv={self.is_recv!r})"
        )
