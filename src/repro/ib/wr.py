"""Work requests and work completions (the descriptor types of the verbs
interface).

A :class:`SendWR` describes an outbound operation (channel-semantics SEND or
memory-semantics RDMA write/read); a :class:`RecvWR` describes where an
inbound SEND's payload may land.  Completions are reported as :class:`WC`
entries on a completion queue.  ``context`` fields are opaque to the IB
layer — the MPI implementation stores its protocol headers there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.ib.types import Opcode, WCStatus


@dataclass(slots=True)
class SendWR:
    """An outbound work request.

    Parameters
    ----------
    wr_id:
        Caller cookie returned in the matching completion.
    opcode:
        SEND consumes a remote receive WQE; RDMA_WRITE/RDMA_READ do not.
    length:
        Payload bytes.
    payload:
        Opaque data object delivered to the remote side (SEND) or written
        into the remote MR (RDMA_WRITE).
    remote_addr, rkey:
        Target region for RDMA operations (must be within a registered MR
        at the responder or the op completes with REMOTE_ACCESS_ERROR).
    signaled:
        When False, no completion entry is generated on success (errors
        always complete).  MPI uses unsignalled sends for some control
        traffic to cut CQ pressure.
    """

    wr_id: Any
    opcode: Opcode
    length: int
    payload: Any = None
    remote_addr: int = 0
    rkey: int = 0
    signaled: bool = True

    # transport bookkeeping (assigned by the QP; not caller-visible)
    msn: int = field(default=-1, repr=False)
    rnr_tries: int = field(default=0, repr=False)
    xport_tries: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"negative WR length {self.length}")
        if self.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_READ) and self.rkey == 0:
            raise ValueError(f"{self.opcode.value} requires an rkey")


@dataclass(slots=True)
class RecvWR:
    """An inbound buffer descriptor.

    ``capacity`` bounds the SEND payload that may land here; an overlong
    message completes with LOCAL_LENGTH_ERROR at the receiver (and the
    sender sees a remote error), mirroring IBA semantics.
    """

    wr_id: Any
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"negative recv capacity {self.capacity}")


@dataclass(slots=True)
class WC:
    """A work completion.

    Attributes
    ----------
    wr_id:
        Cookie of the completed work request.
    opcode:
        For receive completions this is the opcode of the *remote* op
        (always SEND here, since RDMA bypasses receive WQEs).
    byte_len:
        Payload bytes transferred.
    data:
        For receive completions, the delivered payload object.
    qp_num / peer:
        Identify the connection the completion belongs to.
    is_recv:
        Distinguishes receive-side completions from send-side ones.
    """

    wr_id: Any
    status: WCStatus
    opcode: Opcode
    byte_len: int = 0
    data: Any = None
    qp_num: int = -1
    peer: int = -1
    is_recv: bool = False

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS
