"""The wire: host links, a crossbar switch, and contention.

Topology matches the paper's testbed: every node's HCA connects by one 4X
link to a single InfiniScale-style crossbar (8 ports there; any port count
here).  The model is *virtual cut-through* at message granularity:

* each unidirectional link keeps a ``busy_until`` time; a message reserves
  the link FIFO-fashion for its serialisation time ``wire_bytes / rate``;
* the switch adds a fixed pipeline delay per traversal;
* the message's last byte reaches the destination HCA at
  ``max(output-port free, head arrival) + serialisation``.

Acknowledgements and NAKs travel the same fixed-latency path but, being a
few dozen bytes, are not charged link occupancy (they ride header gaps),
which keeps the event count per message low.

Same-node traffic (two ranks per node in the 16-process runs) takes an HCA
loopback path: no switch hop, bandwidth limited by the host bus.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappush
from typing import Any, Callable, Deque, Dict, Optional

from repro.ib.types import IBConfig
from repro.sim import Simulator
from repro.sim.engine import _MASK, _SHIFT
from repro.sim.trace import Tracer
from repro.sim.units import transfer_ns


class FabricError(RuntimeError):
    pass


class _DeliveryTrain:
    """Burst-batched data deliveries to one destination LID.

    The fabric still assigns every in-flight message its exact
    ``(arrival, seq)`` key at transmit time, but only the *head* of this
    FIFO occupies an agenda entry; when it fires, the next message re-arms
    the agenda under its own original key.  Execution is therefore
    bit-identical to scheduling each message individually — same events,
    same count, same ``(time, seq)`` order — while agenda occupancy per
    destination drops from one entry per in-flight message to one per
    train.  Messages whose arrival would break the FIFO's monotonicity
    (a fault window adding latency, loopback traffic interleaved with
    switched traffic) split the burst and take a direct agenda entry
    instead (see :meth:`Fabric.transmit`).
    """

    __slots__ = ("sim", "deliver", "q", "fire")

    def __init__(self, sim: Simulator, deliver: Callable):
        self.sim = sim
        self.deliver = deliver
        self.q: Deque[tuple] = deque()  # (arrival, seq, message), armed iff non-empty
        self.fire = self._fire  # prebound: re-armed once per delivery

    def _fire(self) -> None:
        q = self.q
        message = q.popleft()[2]
        # Re-arm before delivering: the delivery callback can transmit new
        # messages, and the armed-iff-non-empty invariant must hold then.
        if q:
            head = q[0]
            t = head[0]
            sim = self.sim
            entry = (t, head[1], self.fire, ())
            idx = t >> _SHIFT
            if idx <= sim._cur:
                insort(sim._active, entry, sim._head)
                sim._count += 1
            elif idx < sim._limit:
                sim._buckets[idx & _MASK].append(entry)
                sim._count += 1
            else:
                heappush(sim._over, entry)
        self.deliver(message)


class _ControlTrain:
    """Burst-batched control deliveries (ACK/NAK/credit) to one LID —
    same original-key re-arming scheme as :class:`_DeliveryTrain`, but
    each queued packet carries its own callback."""

    __slots__ = ("sim", "q", "fire")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.q: Deque[tuple] = deque()  # (arrival, seq, callback, args)
        self.fire = self._fire

    def _fire(self) -> None:
        q = self.q
        _, _, callback, args = q.popleft()
        if q:
            head = q[0]
            t = head[0]
            sim = self.sim
            entry = (t, head[1], self.fire, ())
            idx = t >> _SHIFT
            if idx <= sim._cur:
                insort(sim._active, entry, sim._head)
                sim._count += 1
            elif idx < sim._limit:
                sim._buckets[idx & _MASK].append(entry)
                sim._count += 1
            else:
                heappush(sim._over, entry)
        callback(*args)


class Fabric:
    """Single-switch IBA subnet with per-link FIFO contention."""

    def __init__(self, sim: Simulator, config: IBConfig, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.config = config
        self.tracer = tracer or Tracer(enabled=False)
        # busy_until per unidirectional link, keyed by LID
        self._up_busy: Dict[int, int] = {}
        self._down_busy: Dict[int, int] = {}
        self._lids: Dict[int, Any] = {}  # lid -> HCA (deliver target)
        self._deliver_cb: Dict[int, Callable] = {}  # lid -> HCA._deliver, prebound
        # Per-destination burst trains: one armed agenda entry per train
        # instead of one per in-flight message (see _DeliveryTrain).
        self._trains: Dict[int, _DeliveryTrain] = {}
        self._ctrains: Dict[int, _ControlTrain] = {}
        # Per-size timing caches.  A fabric is built per job from a frozen
        # view of the config (nothing mutates IBConfig once traffic flows),
        # and real workloads reuse a handful of message sizes thousands of
        # times, so (wire bytes, serialisation ns) become one dict hit.
        self._ser_cache: Dict[int, tuple] = {}  # payload -> (wire, ser)
        self._lo_cache: Dict[int, int] = {}  # payload -> loopback ser
        self._ctrl_remote_ns: Optional[int] = None
        #: Optional :class:`repro.faults.injector.FabricFaultState`.  Left
        #: ``None`` on healthy runs so the hot path pays one identity check.
        self.fault = None
        #: Optional :class:`repro.congestion.CongestionState`.  When armed,
        #: transmits route through per-egress-port queues (PFC/ECN) instead
        #: of the busy-until path math below; ``None`` (the default) keeps
        #: the baseline model bit-identical at the cost of one check.
        self.congestion = None
        # observability
        self.messages_sent = 0
        self.payload_bytes = 0
        self.wire_bytes = 0
        self.control_msgs = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def attach(self, lid: int, hca: Any) -> None:
        """Connect an HCA at ``lid``.  The HCA must expose
        ``_deliver(message)`` for inbound traffic."""
        if lid in self._lids:
            raise FabricError(f"LID {lid} already attached")
        self._lids[lid] = hca
        self._deliver_cb[lid] = hca._deliver
        self._trains[lid] = _DeliveryTrain(self.sim, hca._deliver)
        self._ctrains[lid] = _ControlTrain(self.sim)
        self._up_busy[lid] = 0
        self._down_busy[lid] = 0

    def hca_at(self, lid: int) -> Any:
        try:
            return self._lids[lid]
        except KeyError:
            raise FabricError(f"no HCA at LID {lid}") from None

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _schedule_delivery(self, at: int, callback: Callable, arg: Any) -> None:
        """``sim.call_at(at, callback, arg)`` open-coded against the kernel
        internals — every message and every control packet passes through
        here, and the call frame + ``*args`` packing were measurable.
        ``at`` is already integral and ``>= now`` by construction."""
        sim = self.sim
        seq = sim._seq = sim._seq + 1
        if at == sim.now:
            sim._now_q.append((seq, callback, (arg,)))
            return
        idx = at >> _SHIFT
        if idx <= sim._cur:
            insort(sim._active, (at, seq, callback, (arg,)), sim._head)
            sim._count += 1
        elif idx < sim._limit:
            sim._buckets[idx & _MASK].append((at, seq, callback, (arg,)))
            sim._count += 1
        else:
            heappush(sim._over, (at, seq, callback, (arg,)))

    def _enqueue_data(self, dst_lid: int, arrival: int, message: Any) -> None:
        """Hand a data message to ``dst_lid``'s delivery train (or split
        the burst with a direct agenda entry when ``arrival`` breaks the
        train's FIFO monotonicity).  The message's ``(arrival, seq)`` key
        is fixed here, at transmit time, whichever path it takes."""
        sim = self.sim
        seq = sim._seq = sim._seq + 1
        train = self._trains[dst_lid]
        q = train.q
        if q:
            if arrival >= q[-1][0]:
                q.append((arrival, seq, message))
                return
            # burst split: out-of-order arrival goes straight to the agenda
            entry = (arrival, seq, train.deliver, (message,))
        else:
            q.append((arrival, seq, message))
            entry = (arrival, seq, train.fire, ())
        idx = arrival >> _SHIFT
        if idx <= sim._cur:
            insort(sim._active, entry, sim._head)
            sim._count += 1
        elif idx < sim._limit:
            sim._buckets[idx & _MASK].append(entry)
            sim._count += 1
        else:
            heappush(sim._over, entry)

    def transmit(self, src_lid: int, dst_lid: int, payload_bytes: int, message: Any) -> int:
        """Inject a message; returns (and schedules delivery at) the arrival
        time of its last byte at the destination HCA.

        Must be called from within a simulation event at the moment the
        source HCA finishes staging the message (DMA complete).
        """
        cfg = self.config
        if dst_lid not in self._lids:
            raise FabricError(f"no HCA at LID {dst_lid}")
        now = self.sim.now
        self.messages_sent += 1
        self.payload_bytes += max(0, payload_bytes)

        if src_lid == dst_lid:
            # HCA-internal loopback: no switch, host-bus limited.
            ser = self._lo_cache.get(payload_bytes)
            if ser is None:
                ser = transfer_ns(cfg.wire_bytes(payload_bytes), cfg.pci_bytes_per_ns)
                self._lo_cache[payload_bytes] = ser
            arrival = now + cfg.loopback_ns + ser
            self._enqueue_data(dst_lid, arrival, message)
            return arrival

        extra = 0
        fault = self.fault
        if fault is not None:
            verdict = fault.on_data(src_lid, dst_lid, payload_bytes)
            if verdict is None:
                return now  # lost on the wire: never reaches the far HCA
            extra, scale = verdict
        else:
            scale = 0

        cached = self._ser_cache.get(payload_bytes)
        if cached is None:
            wire = cfg.wire_bytes(payload_bytes)
            ser = transfer_ns(wire, cfg.effective_bytes_per_ns())
            cached = self._ser_cache[payload_bytes] = (wire, ser)
        wire, ser = cached
        self.wire_bytes += wire
        if scale:
            ser = max(1, int(ser * scale))  # degraded-link serialisation

        cong = self.congestion
        if cong is not None:
            # Congested path: per-egress-port queues own the timing from
            # here (store-and-forward, pause frames, ECN).  Delivery comes
            # back through _enqueue_data when the last port drains.
            cong.inject(src_lid, dst_lid, wire, ser, message, extra)
            self.tracer.record(now, "fabric.tx", src_lid, dst_lid,
                               payload_bytes, -1)
            return now

        # host -> switch link (FIFO)
        start_up = max(now, self._up_busy[src_lid])
        self._up_busy[src_lid] = start_up + ser
        head_at_output = start_up + cfg.link_prop_ns + cfg.switch_delay_ns

        # switch -> host link (FIFO, cut-through from head arrival)
        start_down = max(head_at_output, self._down_busy[dst_lid])
        self._down_busy[dst_lid] = start_down + ser

        arrival = start_down + ser + cfg.link_prop_ns + extra
        # Open-coded _enqueue_data (this is the per-message hot path).
        # Switched arrivals to one LID are monotone by construction —
        # _down_busy[dst] is FIFO — so the common case is a plain append
        # onto the armed train; only fault-window ``extra`` latency or a
        # loopback/switched mix ever splits the burst.
        sim = self.sim
        seq = sim._seq = sim._seq + 1
        train = self._trains[dst_lid]
        q = train.q
        if q and arrival >= q[-1][0]:
            q.append((arrival, seq, message))
        else:
            if q:
                entry = (arrival, seq, train.deliver, (message,))
            else:
                q.append((arrival, seq, message))
                entry = (arrival, seq, train.fire, ())
            idx = arrival >> _SHIFT
            if idx <= sim._cur:
                insort(sim._active, entry, sim._head)
                sim._count += 1
            elif idx < sim._limit:
                sim._buckets[idx & _MASK].append(entry)
                sim._count += 1
            else:
                heappush(sim._over, entry)
        self.tracer.record(now, "fabric.tx", src_lid, dst_lid, payload_bytes, arrival)
        return arrival

    # ------------------------------------------------------------------
    # control path (ACK / NAK / credit updates)
    # ------------------------------------------------------------------
    def control_path_ns(self, src_lid: int, dst_lid: int) -> int:
        """Fixed latency of a small control packet from src to dst."""
        cfg = self.config
        if src_lid == dst_lid:
            return cfg.loopback_ns
        ns = self._ctrl_remote_ns
        if ns is None:
            ser = transfer_ns(cfg.ack_bytes, cfg.link_rate.bytes_per_ns)
            ns = self._ctrl_remote_ns = 2 * cfg.link_prop_ns + cfg.switch_delay_ns + ser
        return ns

    def send_control(
        self, src_lid: int, dst_lid: int, callback: Callable, *args: Any
    ) -> int:
        """Deliver a control packet (uncontended fixed-latency path)."""
        self.control_msgs += 1
        sim = self.sim
        extra = 0
        fault = self.fault
        if fault is not None:
            extra = fault.on_control(src_lid, dst_lid)
            if extra is None:
                return sim.now  # link down: ACK/NAK/credit update lost
        arrival = sim.now + self.control_path_ns(src_lid, dst_lid) + extra
        # Per-ACK/credit-update hot path: burst-batched per destination.
        # On a single crossbar every remote pair shares one control
        # latency, so arrivals per LID are monotone and the train almost
        # never splits (loopback/remote mixes and fat-tree hop-count
        # differences fall back to a direct agenda entry).
        seq = sim._seq = sim._seq + 1
        if arrival == sim.now:
            sim._now_q.append((seq, callback, args))
            return arrival
        train = self._ctrains[dst_lid]
        q = train.q
        if q and arrival >= q[-1][0]:
            q.append((arrival, seq, callback, args))
            return arrival
        if q:
            entry = (arrival, seq, callback, args)
        else:
            q.append((arrival, seq, callback, args))
            entry = (arrival, seq, train.fire, ())
        idx = arrival >> _SHIFT
        if idx <= sim._cur:
            insort(sim._active, entry, sim._head)
            sim._count += 1
        elif idx < sim._limit:
            sim._buckets[idx & _MASK].append(entry)
            sim._count += 1
        else:
            heappush(sim._over, entry)
        return arrival

    def idle(self) -> bool:
        """True when no link reservation extends past the current time."""
        now = self.sim.now
        return all(b <= now for b in self._up_busy.values()) and all(
            b <= now for b in self._down_busy.values()
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Fabric lids={sorted(self._lids)} msgs={self.messages_sent}>"
