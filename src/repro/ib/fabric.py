"""The wire: host links, a crossbar switch, and contention.

Topology matches the paper's testbed: every node's HCA connects by one 4X
link to a single InfiniScale-style crossbar (8 ports there; any port count
here).  The model is *virtual cut-through* at message granularity:

* each unidirectional link keeps a ``busy_until`` time; a message reserves
  the link FIFO-fashion for its serialisation time ``wire_bytes / rate``;
* the switch adds a fixed pipeline delay per traversal;
* the message's last byte reaches the destination HCA at
  ``max(output-port free, head arrival) + serialisation``.

Acknowledgements and NAKs travel the same fixed-latency path but, being a
few dozen bytes, are not charged link occupancy (they ride header gaps),
which keeps the event count per message low.

Same-node traffic (two ranks per node in the 16-process runs) takes an HCA
loopback path: no switch hop, bandwidth limited by the host bus.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Dict, Optional

from repro.ib.types import IBConfig
from repro.sim import Simulator
from repro.sim.engine import ScheduledEvent
from repro.sim.trace import Tracer
from repro.sim.units import transfer_ns


class FabricError(RuntimeError):
    pass


class Fabric:
    """Single-switch IBA subnet with per-link FIFO contention."""

    def __init__(self, sim: Simulator, config: IBConfig, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.config = config
        self.tracer = tracer or Tracer(enabled=False)
        # busy_until per unidirectional link, keyed by LID
        self._up_busy: Dict[int, int] = {}
        self._down_busy: Dict[int, int] = {}
        self._lids: Dict[int, Any] = {}  # lid -> HCA (deliver target)
        self._deliver_cb: Dict[int, Callable] = {}  # lid -> HCA._deliver, prebound
        # Per-size timing caches.  A fabric is built per job from a frozen
        # view of the config (nothing mutates IBConfig once traffic flows),
        # and real workloads reuse a handful of message sizes thousands of
        # times, so (wire bytes, serialisation ns) become one dict hit.
        self._ser_cache: Dict[int, tuple] = {}  # payload -> (wire, ser)
        self._lo_cache: Dict[int, int] = {}  # payload -> loopback ser
        self._ctrl_remote_ns: Optional[int] = None
        #: Optional :class:`repro.faults.injector.FabricFaultState`.  Left
        #: ``None`` on healthy runs so the hot path pays one identity check.
        self.fault = None
        # observability
        self.messages_sent = 0
        self.payload_bytes = 0
        self.wire_bytes = 0
        self.control_msgs = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def attach(self, lid: int, hca: Any) -> None:
        """Connect an HCA at ``lid``.  The HCA must expose
        ``_deliver(message)`` for inbound traffic."""
        if lid in self._lids:
            raise FabricError(f"LID {lid} already attached")
        self._lids[lid] = hca
        self._deliver_cb[lid] = hca._deliver
        self._up_busy[lid] = 0
        self._down_busy[lid] = 0

    def hca_at(self, lid: int) -> Any:
        try:
            return self._lids[lid]
        except KeyError:
            raise FabricError(f"no HCA at LID {lid}") from None

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _schedule_delivery(self, at: int, callback: Callable, arg: Any) -> None:
        """``sim.call_at(at, callback, arg)`` open-coded against the kernel
        internals — every packet and every control message passes through
        here, and the call frame + ``*args`` packing were measurable.
        ``at`` is already integral and ``>= now`` by construction."""
        sim = self.sim
        seq = sim._seq = sim._seq + 1
        if at == sim.now:
            sim._now_q.append((seq, callback, (arg,)))
            return
        free = sim._free
        if free:
            ev = free.pop()
            ev.time = at
            ev.seq = seq
            ev.callback = callback
            ev.args = (arg,)
        else:
            ev = ScheduledEvent(at, seq, callback, (arg,))
            ev._pooled = True
        heappush(sim._heap, (at, seq, ev))

    def transmit(self, src_lid: int, dst_lid: int, payload_bytes: int, message: Any) -> int:
        """Inject a message; returns (and schedules delivery at) the arrival
        time of its last byte at the destination HCA.

        Must be called from within a simulation event at the moment the
        source HCA finishes staging the message (DMA complete).
        """
        cfg = self.config
        if dst_lid not in self._lids:
            raise FabricError(f"no HCA at LID {dst_lid}")
        now = self.sim.now
        self.messages_sent += 1
        self.payload_bytes += max(0, payload_bytes)

        if src_lid == dst_lid:
            # HCA-internal loopback: no switch, host-bus limited.
            ser = self._lo_cache.get(payload_bytes)
            if ser is None:
                ser = transfer_ns(cfg.wire_bytes(payload_bytes), cfg.pci_bytes_per_ns)
                self._lo_cache[payload_bytes] = ser
            arrival = now + cfg.loopback_ns + ser
            self._schedule_delivery(arrival, self._deliver_cb[dst_lid], message)
            return arrival

        extra = 0
        fault = self.fault
        if fault is not None:
            verdict = fault.on_data(src_lid, dst_lid, payload_bytes)
            if verdict is None:
                return now  # lost on the wire: never reaches the far HCA
            extra, scale = verdict
        else:
            scale = 0

        cached = self._ser_cache.get(payload_bytes)
        if cached is None:
            wire = cfg.wire_bytes(payload_bytes)
            ser = transfer_ns(wire, cfg.effective_bytes_per_ns())
            cached = self._ser_cache[payload_bytes] = (wire, ser)
        wire, ser = cached
        self.wire_bytes += wire
        if scale:
            ser = max(1, int(ser * scale))  # degraded-link serialisation

        # host -> switch link (FIFO)
        start_up = max(now, self._up_busy[src_lid])
        self._up_busy[src_lid] = start_up + ser
        head_at_output = start_up + cfg.link_prop_ns + cfg.switch_delay_ns

        # switch -> host link (FIFO, cut-through from head arrival)
        start_down = max(head_at_output, self._down_busy[dst_lid])
        self._down_busy[dst_lid] = start_down + ser

        arrival = start_down + ser + cfg.link_prop_ns + extra
        # Open-coded _schedule_delivery (this is the per-packet hot path;
        # arrival > now always: ser >= 1 and link_prop_ns >= 0).
        sim = self.sim
        seq = sim._seq = sim._seq + 1
        free = sim._free
        if free:
            ev = free.pop()
            ev.time = arrival
            ev.seq = seq
            ev.callback = self._deliver_cb[dst_lid]
            ev.args = (message,)
        else:
            ev = ScheduledEvent(arrival, seq, self._deliver_cb[dst_lid], (message,))
            ev._pooled = True
        heappush(sim._heap, (arrival, seq, ev))
        self.tracer.record(now, "fabric.tx", src_lid, dst_lid, payload_bytes, arrival)
        return arrival

    # ------------------------------------------------------------------
    # control path (ACK / NAK / credit updates)
    # ------------------------------------------------------------------
    def control_path_ns(self, src_lid: int, dst_lid: int) -> int:
        """Fixed latency of a small control packet from src to dst."""
        cfg = self.config
        if src_lid == dst_lid:
            return cfg.loopback_ns
        ns = self._ctrl_remote_ns
        if ns is None:
            ser = transfer_ns(cfg.ack_bytes, cfg.link_rate.bytes_per_ns)
            ns = self._ctrl_remote_ns = 2 * cfg.link_prop_ns + cfg.switch_delay_ns + ser
        return ns

    def send_control(
        self, src_lid: int, dst_lid: int, callback: Callable, *args: Any
    ) -> int:
        """Deliver a control packet (uncontended fixed-latency path)."""
        self.control_msgs += 1
        sim = self.sim
        extra = 0
        fault = self.fault
        if fault is not None:
            extra = fault.on_control(src_lid, dst_lid)
            if extra is None:
                return sim.now  # link down: ACK/NAK/credit update lost
        arrival = sim.now + self.control_path_ns(src_lid, dst_lid) + extra
        # Open-coded call_at (per-ACK/credit-update hot path).
        seq = sim._seq = sim._seq + 1
        if arrival == sim.now:
            sim._now_q.append((seq, callback, args))
            return arrival
        free = sim._free
        if free:
            ev = free.pop()
            ev.time = arrival
            ev.seq = seq
            ev.callback = callback
            ev.args = args
        else:
            ev = ScheduledEvent(arrival, seq, callback, args)
            ev._pooled = True
        heappush(sim._heap, (arrival, seq, ev))
        return arrival

    def idle(self) -> bool:
        """True when no link reservation extends past the current time."""
        now = self.sim.now
        return all(b <= now for b in self._up_busy.values()) and all(
            b <= now for b in self._down_busy.values()
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Fabric lids={sorted(self._lids)} msgs={self.messages_sent}>"
