"""The wire: host links, a crossbar switch, and contention.

Topology matches the paper's testbed: every node's HCA connects by one 4X
link to a single InfiniScale-style crossbar (8 ports there; any port count
here).  The model is *virtual cut-through* at message granularity:

* each unidirectional link keeps a ``busy_until`` time; a message reserves
  the link FIFO-fashion for its serialisation time ``wire_bytes / rate``;
* the switch adds a fixed pipeline delay per traversal;
* the message's last byte reaches the destination HCA at
  ``max(output-port free, head arrival) + serialisation``.

Acknowledgements and NAKs travel the same fixed-latency path but, being a
few dozen bytes, are not charged link occupancy (they ride header gaps),
which keeps the event count per message low.

Same-node traffic (two ranks per node in the 16-process runs) takes an HCA
loopback path: no switch hop, bandwidth limited by the host bus.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.ib.types import IBConfig
from repro.sim import Simulator
from repro.sim.trace import Tracer
from repro.sim.units import transfer_ns


class FabricError(RuntimeError):
    pass


class Fabric:
    """Single-switch IBA subnet with per-link FIFO contention."""

    def __init__(self, sim: Simulator, config: IBConfig, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.config = config
        self.tracer = tracer or Tracer(enabled=False)
        # busy_until per unidirectional link, keyed by LID
        self._up_busy: Dict[int, int] = {}
        self._down_busy: Dict[int, int] = {}
        self._lids: Dict[int, Any] = {}  # lid -> HCA (deliver target)
        # observability
        self.messages_sent = 0
        self.payload_bytes = 0
        self.wire_bytes = 0
        self.control_msgs = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def attach(self, lid: int, hca: Any) -> None:
        """Connect an HCA at ``lid``.  The HCA must expose
        ``_deliver(message)`` for inbound traffic."""
        if lid in self._lids:
            raise FabricError(f"LID {lid} already attached")
        self._lids[lid] = hca
        self._up_busy[lid] = 0
        self._down_busy[lid] = 0

    def hca_at(self, lid: int) -> Any:
        try:
            return self._lids[lid]
        except KeyError:
            raise FabricError(f"no HCA at LID {lid}") from None

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def transmit(self, src_lid: int, dst_lid: int, payload_bytes: int, message: Any) -> int:
        """Inject a message; returns (and schedules delivery at) the arrival
        time of its last byte at the destination HCA.

        Must be called from within a simulation event at the moment the
        source HCA finishes staging the message (DMA complete).
        """
        cfg = self.config
        if dst_lid not in self._lids:
            raise FabricError(f"no HCA at LID {dst_lid}")
        now = self.sim.now
        self.messages_sent += 1
        self.payload_bytes += max(0, payload_bytes)

        if src_lid == dst_lid:
            # HCA-internal loopback: no switch, host-bus limited.
            ser = transfer_ns(cfg.wire_bytes(payload_bytes), cfg.pci_bytes_per_ns)
            arrival = now + cfg.loopback_ns + ser
            self.sim.schedule_at(arrival, self._lids[dst_lid]._deliver, message)
            return arrival

        wire = cfg.wire_bytes(payload_bytes)
        self.wire_bytes += wire
        ser = transfer_ns(wire, cfg.effective_bytes_per_ns())

        # host -> switch link (FIFO)
        start_up = max(now, self._up_busy[src_lid])
        self._up_busy[src_lid] = start_up + ser
        head_at_output = start_up + cfg.link_prop_ns + cfg.switch_delay_ns

        # switch -> host link (FIFO, cut-through from head arrival)
        start_down = max(head_at_output, self._down_busy[dst_lid])
        self._down_busy[dst_lid] = start_down + ser

        arrival = start_down + ser + cfg.link_prop_ns
        self.sim.schedule_at(arrival, self._lids[dst_lid]._deliver, message)
        self.tracer.record(now, "fabric.tx", src_lid, dst_lid, payload_bytes, arrival)
        return arrival

    # ------------------------------------------------------------------
    # control path (ACK / NAK / credit updates)
    # ------------------------------------------------------------------
    def control_path_ns(self, src_lid: int, dst_lid: int) -> int:
        """Fixed latency of a small control packet from src to dst."""
        cfg = self.config
        if src_lid == dst_lid:
            return cfg.loopback_ns
        ser = transfer_ns(cfg.ack_bytes, cfg.link_rate.bytes_per_ns)
        return 2 * cfg.link_prop_ns + cfg.switch_delay_ns + ser

    def send_control(
        self, src_lid: int, dst_lid: int, callback: Callable, *args: Any
    ) -> int:
        """Deliver a control packet (uncontended fixed-latency path)."""
        self.control_msgs += 1
        arrival = self.sim.now + self.control_path_ns(src_lid, dst_lid)
        self.sim.schedule_at(arrival, callback, *args)
        return arrival

    def idle(self) -> bool:
        """True when no link reservation extends past the current time."""
        now = self.sim.now
        return all(b <= now for b in self._up_busy.values()) and all(
            b <= now for b in self._down_busy.values()
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Fabric lids={sorted(self._lids)} msgs={self.messages_sent}>"
