"""Memory regions and the per-HCA registration table.

InfiniBand requires every communication buffer to be *registered* (pinned
and translated) before use.  The simulator models registration as a timed
verb (cost charged by the caller — see ``IBConfig.registration_ns``) and
enforces protection: an RDMA operation must present the region's ``rkey``
and stay within bounds, otherwise the responder raises a remote access
error, exactly the failure mode a bad rendezvous exchange would produce.

Addresses are simulated: each :class:`RegistrationTable` hands out ranges
from a per-node bump allocator.  Data content is an opaque Python object
stored per-region (enough to verify zero-copy delivery end to end).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class MRError(RuntimeError):
    """Local misuse of the registration API."""


class RemoteAccessError(RuntimeError):
    """Raised (responder side) when an RDMA op fails protection checks."""


class MemoryRegion:
    """A registered, pinned buffer.

    Attributes
    ----------
    addr, length:
        The simulated virtual address range.
    lkey, rkey:
        Local / remote protection keys.  ``rkey`` must be quoted by remote
        RDMA initiators.
    """

    __slots__ = ("addr", "length", "lkey", "rkey", "valid", "_data", "on_write")

    def __init__(self, addr: int, length: int, lkey: int, rkey: int):
        self.addr = addr
        self.length = length
        self.lkey = lkey
        self.rkey = rkey
        self.valid = True
        self._data: Dict[int, Any] = {}
        #: optional callback(addr, payload) fired when an RDMA write lands
        #: — how polling-based consumers (the RDMA eager channel) observe
        #: one-sided arrivals in the simulation.
        self.on_write = None

    def contains(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.addr + self.length

    # -- simulated data movement ---------------------------------------
    def store(self, addr: int, payload: Any) -> None:
        """Deposit ``payload`` at ``addr`` (RDMA write landing)."""
        self._data[addr - self.addr] = payload
        if self.on_write is not None:
            self.on_write(addr, payload)

    def load(self, addr: int) -> Any:
        """Fetch whatever was stored at ``addr`` (RDMA read source)."""
        return self._data.get(addr - self.addr)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MR addr={self.addr:#x} len={self.length} rkey={self.rkey}>"


class RegistrationTable:
    """Per-HCA table of registered regions, keyed by rkey.

    The table also implements the simulated address-space allocator; MPI's
    pin-down cache sits on top of this (``repro.mpi.pindown_cache``).
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._next_addr = 0x1000_0000 + node_id * 0x1_0000_0000
        self._next_key = node_id * 1_000_000 + 1
        self._by_rkey: Dict[int, MemoryRegion] = {}
        self.registered_bytes = 0
        self.peak_registered_bytes = 0

    def register(self, length: int) -> MemoryRegion:
        """Allocate an address range and register it.  Timing is *not*
        charged here — callers must burn ``IBConfig.registration_ns`` CPU
        time themselves (the MPI layer does)."""
        if length <= 0:
            raise MRError(f"cannot register {length} bytes")
        addr = self._next_addr
        self._next_addr += (length + 0xFFF) & ~0xFFF  # page align
        lkey = self._next_key
        rkey = self._next_key + 500_000
        self._next_key += 1
        mr = MemoryRegion(addr, length, lkey, rkey)
        self._by_rkey[rkey] = mr
        self.registered_bytes += length
        self.peak_registered_bytes = max(
            self.peak_registered_bytes, self.registered_bytes
        )
        return mr

    def deregister(self, mr: MemoryRegion) -> None:
        if not mr.valid:
            raise MRError("double deregistration")
        mr.valid = False
        del self._by_rkey[mr.rkey]
        self.registered_bytes -= mr.length

    def check_remote(self, rkey: int, addr: int, length: int) -> MemoryRegion:
        """Responder-side protection check for an inbound RDMA operation."""
        mr = self._by_rkey.get(rkey)
        if mr is None or not mr.valid:
            raise RemoteAccessError(f"unknown rkey {rkey}")
        if not mr.contains(addr, length):
            raise RemoteAccessError(
                f"rkey {rkey}: [{addr:#x},+{length}) outside MR"
            )
        return mr

    def __len__(self) -> int:
        return len(self._by_rkey)
