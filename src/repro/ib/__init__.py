"""InfiniBand substrate: verbs-level objects over the simulated fabric.

Public surface mirrors the slice of the IBA verbs the paper's MPI uses:

* :class:`Fabric` + :class:`HCA` — subnet and adapters,
* :class:`QueuePair` (RC service) with :meth:`post_send` / :meth:`post_recv`,
* :class:`CompletionQueue` with poll / blocking-wait,
* :class:`MemoryRegion` registration with protection keys,
* work request/completion types :class:`SendWR`, :class:`RecvWR`, :class:`WC`,
* :class:`IBConfig` — every hardware timing knob in one dataclass.

See ``repro.ib.qp`` for the RC reliability model (RNR NAK, retry timer,
replay) that the hardware-based flow control scheme depends on.
"""

from repro.ib.cq import CompletionQueue, CQOverflow
from repro.ib.fabric import Fabric, FabricError
from repro.ib.fattree import FatTreeFabric
from repro.ib.hca import HCA
from repro.ib.mr import MemoryRegion, MRError, RegistrationTable, RemoteAccessError
from repro.ib.qp import QPError, QueuePair
from repro.ib.types import INFINITE_RETRY, IBConfig, LinkRate, Opcode, QPState, WCStatus
from repro.ib.wr import WC, RecvWR, SendWR

__all__ = [
    "CQOverflow",
    "CompletionQueue",
    "Fabric",
    "FabricError",
    "FatTreeFabric",
    "HCA",
    "IBConfig",
    "INFINITE_RETRY",
    "LinkRate",
    "MRError",
    "MemoryRegion",
    "Opcode",
    "QPError",
    "QPState",
    "QueuePair",
    "RecvWR",
    "RegistrationTable",
    "RemoteAccessError",
    "SendWR",
    "WC",
    "WCStatus",
]
