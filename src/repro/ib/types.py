"""Core InfiniBand types, enums and the hardware timing configuration.

The constants model a Mellanox InfiniHost MT23108 4X HCA on a PCI-X
64-bit/133 MHz bus behind an InfiniScale MT43132 switch — the paper's
testbed.  All timing knobs live in :class:`IBConfig` so the calibration
tests and ablation benches can sweep them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.units import gbps_to_bytes_per_ns, us


class Opcode(enum.Enum):
    """Transport operations a work request can carry."""

    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"


class WCStatus(enum.Enum):
    """Completion status codes (subset of the IBA verbs set)."""

    SUCCESS = "success"
    LOCAL_LENGTH_ERROR = "local_length_error"
    LOCAL_PROTECTION_ERROR = "local_protection_error"
    REMOTE_ACCESS_ERROR = "remote_access_error"
    RNR_RETRY_EXCEEDED = "rnr_retry_exceeded"
    RETRY_EXCEEDED = "retry_exceeded"  # transport (ACK-timeout) retries spent
    WR_FLUSH_ERROR = "wr_flush_error"


class QPState(enum.Enum):
    """Simplified queue-pair state machine (RESET→RTS as one step here;
    connection management is done at cluster build time)."""

    RESET = "reset"
    READY = "ready"  # RTR+RTS combined
    ERROR = "error"


class LinkRate(enum.Enum):
    """IBA link signalling rates (Gbit/s, 8b/10b encoded)."""

    X1 = 2.5
    X4 = 10.0
    X12 = 30.0

    @property
    def bytes_per_ns(self) -> float:
        # table lookup: this sits on the fabric's per-message path
        return _LINK_BYTES_PER_NS[self]


_LINK_BYTES_PER_NS = {rate: gbps_to_bytes_per_ns(rate.value) for rate in LinkRate}

#: Sentinel meaning "retry forever" for RNR retries (what the paper's MPI
#: sets to guarantee reliability under the hardware-based scheme).
INFINITE_RETRY = -1

#: (payload_bytes, mtu_bytes) → packet count.  Shared across configs; the
#: cap guards against unbounded growth under adversarial size sweeps.
_SEG_PLAN_CACHE: dict = {}
_SEG_PLAN_CACHE_MAX = 1 << 16


@dataclass(slots=True)
class IBConfig:
    """Hardware timing model.  Defaults are calibrated so that the simulated
    testbed reproduces the paper's ~7.5 µs small-message MPI latency and
    ~860 MB/s peak bandwidth (see ``tests/test_calibration.py``).

    Attributes
    ----------
    link_rate:
        Host and switch link rate.  4X (10 Gbit/s signalling → 1 byte/ns
        payload) matches the testbed.
    mtu_bytes:
        Path MTU.  Messages are segmented into MTU packets for wire-byte
        accounting (per-packet headers), though the simulator moves whole
        messages per event.
    rnr_timer_ns:
        Receiver-not-ready retry delay.  The IBA encodes discrete values
        from 10 µs to 655 ms; InfiniHost-era MPI setups sat near the low
        end.  This knob single-handedly decides how badly the
        hardware-based scheme collapses when receivers are starved
        (ablated in ``benchmarks/test_ablation_rnr_timer.py``).
    rnr_retry_count:
        Number of RNR retries before the QP errors out;
        :data:`INFINITE_RETRY` retries forever.
    rnr_backoff_factor:
        Multiplier applied to ``rnr_timer_ns`` on every *consecutive* RNR
        NAK for the same message (1.0 = the IBA's fixed timer).  Values
        above 1.0 turn the fixed wait into exponential backoff, trading
        recovery latency for retransmission-storm suppression — the knob
        ``benchmarks/test_ablation_rnr_timer.py`` re-examines the paper's
        RNR-timer sensitivity claim under.
    rnr_backoff_max_ns:
        Ceiling for the backed-off wait (IBA's encodable maximum is
        655 ms; the default cap is far below that so backoff stays inside
        benchmark timescales).
    e2e_credit_updates:
        When True the responder sends unsolicited credit-update ACKs as
        soon as new receive WQEs are posted, letting a blocked requester
        resume without waiting for the RNR timer.  The paper's hardware
        (and hence the default here) does *not* do this — the observed
        LU/MG collapse in Figure 10 depends on timer-driven recovery.
    """

    # --- wire ---------------------------------------------------------
    link_rate: LinkRate = LinkRate.X4
    link_prop_ns: int = 100
    switch_delay_ns: int = 200
    mtu_bytes: int = 1024
    pkt_header_bytes: int = 40  # LRH + BTH + iCRC/vCRC
    ack_bytes: int = 30

    # --- host interface (PCI-X 64/133: ~1064 MB/s raw, ~0.9 effective) --
    pci_bytes_per_ns: float = 0.9
    dma_startup_ns: int = 350

    # --- HCA engines ---------------------------------------------------
    hca_send_wqe_ns: int = 2700  # doorbell + WQE fetch + processing
    hca_recv_wqe_ns: int = 2500  # WQE consume + CQE generation
    hca_rdma_rx_ns: int = 1500  # inbound RDMA write: DMA placement only
    ack_gen_ns: int = 200
    ack_proc_ns: int = 200
    loopback_ns: int = 250  # same-HCA QP-to-QP path (two ranks per node)

    # --- reliability ---------------------------------------------------
    rnr_timer_ns: int = us(320)
    rnr_retry_count: int = INFINITE_RETRY
    rnr_backoff_factor: float = 1.0
    rnr_backoff_max_ns: int = us(10_000)
    max_inflight_msgs: int = 128  # requester pipelining window per QP
    e2e_credit_updates: bool = False

    # --- memory registration (pin-down) --------------------------------
    page_bytes: int = 4096
    reg_base_ns: int = us(25)
    reg_per_page_ns: int = 400
    dereg_base_ns: int = us(15)

    # --- queues ---------------------------------------------------------
    sq_depth: int = 512
    rq_depth: int = 4096
    cq_depth: int = 65536

    # --- switch congestion (repro.congestion) ---------------------------
    #: Optional :class:`repro.congestion.CongestionConfig`.  When set, the
    #: cluster builder installs per-egress-port queue models (finite
    #: buffers, PFC pause frames, ECN/DCQCN rate control) on the fabric;
    #: ``None`` keeps the baseline straight-line path model bit-identical.
    congestion: "object | None" = None

    def wire_bytes(self, payload_bytes: int) -> int:
        """Payload size → on-the-wire size including per-MTU-packet headers.

        A zero-length message (pure header, e.g. a credit probe) still costs
        one packet header.  Segmentation plans are memoized per
        ``(size, mtu)`` — real workloads reuse a handful of message sizes
        thousands of times, so the hot path is one dict hit.
        """
        if payload_bytes <= 0:
            return self.pkt_header_bytes
        key = (payload_bytes, self.mtu_bytes)
        packets = _SEG_PLAN_CACHE.get(key)
        if packets is None:
            if len(_SEG_PLAN_CACHE) >= _SEG_PLAN_CACHE_MAX:
                _SEG_PLAN_CACHE.clear()
            packets = _SEG_PLAN_CACHE[key] = -(-payload_bytes // self.mtu_bytes)
        return payload_bytes + packets * self.pkt_header_bytes

    def effective_bytes_per_ns(self) -> float:
        """The injection bottleneck: min(host bus, link)."""
        return min(self.pci_bytes_per_ns, self.link_rate.bytes_per_ns)

    def registration_ns(self, nbytes: int) -> int:
        """Cost of pinning + registering ``nbytes`` (charged to the caller's
        CPU, as the verbs call is synchronous)."""
        pages = max(1, -(-nbytes // self.page_bytes))
        return self.reg_base_ns + pages * self.reg_per_page_ns

    def deregistration_ns(self, nbytes: int) -> int:
        pages = max(1, -(-nbytes // self.page_bytes))
        return self.dereg_base_ns + pages * (self.reg_per_page_ns // 4)


@dataclass(slots=True)
class PathTimes:
    """Pre-computed fixed latencies for a fabric path (derived from
    :class:`IBConfig` by the fabric builder; kept separate so multi-switch
    topologies can extend it)."""

    fixed_ns: int = 0  # propagation + switching, head latency
    ack_path_ns: int = 0  # full ACK/NAK return path incl. generation
    hops: int = 2
    loopback: bool = False
