"""Reliable Connection queue pairs.

This module is the transport heart of the substrate.  Each QP implements
both halves of the IBA RC protocol at message granularity:

**Requester** — WQEs posted to the send queue are injected in order by the
HCA send engine, up to a pipelining window.  Each message carries a message
sequence number (MSN).  A send completes (CQE) when its acknowledgement
returns.  If the responder had no receive WQE, the requester receives an
RNR NAK, freezes the QP for the configured RNR timer, then *replays* every
unacknowledged message from the NAK point — exactly the
timeout-and-retransmit behaviour the paper's hardware-based flow control
scheme leans on.

**Responder** — accepts only the expected MSN (late/duplicate packets from
a replay era are dropped), consumes a receive WQE per SEND, never consumes
one for RDMA, and acknowledges with a piggybacked advertisement of its
remaining receive-WQE count (the IBA end-to-end flow-control credit field).

The requester uses the advertised credits to gate SEND injection: with zero
known credits it keeps at most one probe message outstanding rather than
blasting the full window into a NAK storm.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, Optional

from repro.ib.mr import RemoteAccessError
from repro.ib.types import INFINITE_RETRY, Opcode, QPState, WCStatus
from repro.ib.wr import WC, RecvWR, SendWR

if TYPE_CHECKING:  # pragma: no cover
    from repro.ib.cq import CompletionQueue
    from repro.ib.hca import HCA


class QPError(RuntimeError):
    pass


class _Message:
    """What actually crosses the fabric (one per MPI-level message)."""

    __slots__ = (
        "src_lid",
        "src_qpn",
        "dst_lid",
        "dst_qpn",
        "opcode",
        "msn",
        "length",
        "payload",
        "remote_addr",
        "rkey",
        "is_read_response",
        "read_wr_msn",
        "epoch",
    )

    def __init__(self, qp: "QueuePair", wr: SendWR):
        self.src_lid = qp.hca.lid
        self.src_qpn = qp.qp_num
        self.dst_lid = qp.remote_lid
        self.dst_qpn = qp.remote_qpn
        self.opcode = wr.opcode
        self.msn = wr.msn
        self.length = wr.length
        self.payload = wr.payload
        self.remote_addr = wr.remote_addr
        self.rkey = wr.rkey
        self.is_read_response = False
        self.read_wr_msn = -1
        self.epoch = qp.epoch


class QueuePair:
    """One end of a reliable connection.

    Created via :meth:`repro.ib.hca.HCA.create_qp`; wire up with
    :meth:`connect` before posting.
    """

    def __init__(
        self,
        hca: "HCA",
        qp_num: int,
        send_cq: "CompletionQueue",
        recv_cq: "CompletionQueue",
        sq_depth: int,
        rq_depth: int,
    ):
        self.hca = hca
        self.qp_num = qp_num
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.sq_depth = sq_depth
        self.rq_depth = rq_depth
        self.state = QPState.RESET
        self.remote_lid = -1
        self.remote_qpn = -1
        self._peer_qp: Optional["QueuePair"] = None  # resolved lazily
        #: connection incarnation — bumped by :meth:`reset` so in-flight
        #: messages and control callbacks from a pre-fault era are
        #: recognisably stale (MSNs restart at 0 per epoch, so without the
        #: stamp an old ACK could acknowledge a new message)
        self.epoch = 0
        # IBConfig is frozen once traffic flows; snapshot the window so the
        # injectability probe (twice per pumped WQE) and the post_recv hot
        # path skip the attribute-chain walk.
        self._max_inflight = hca.config.max_inflight_msgs
        self._e2e_credit_updates = hca.config.e2e_credit_updates

        # --- requester state ---
        self._sq: Deque[SendWR] = deque()  # waiting to inject (incl. replays)
        self._inflight: Dict[int, SendWR] = {}  # msn -> WR, awaiting ACK
        self._next_msn = 0
        self._rnr_waiting = False
        self._rnr_timer_ev = None
        self._credit_est: Optional[int] = None  # None = unknown/unlimited
        self._credit_est_msn = -1  # freshness of the estimate
        self._sends_inflight = 0

        # --- responder state ---
        self._rq: Deque[RecvWR] = deque()
        self._expected_msn = 0
        self._advertised_zero = False  # last ack advertised 0 credits

        # --- fault-mode transport reliability (armed by repro.faults) ---
        # An ideal fabric never loses a message, so the seed transport has
        # no ACK-timeout machinery; with a FaultInjector installed, wire
        # drops are possible and the QP runs a real RC local-ACK-timeout
        # timer: no requester progress for a full period means the oldest
        # unacked message was lost, so replay from it (bounded retries).
        self._xport_enabled = False
        self._xport_timeout_ns = 0
        self._xport_limit = INFINITE_RETRY
        self._xport_timer = None
        self._xport_acks = 0  # requester progress marker (ACKs absorbed)
        self._xport_seen = 0  # progress at the last timer expiry
        #: fault mode: re-acknowledge stale duplicates (their ACK was lost
        #: on the wire) instead of dropping them silently
        self.reack_stale = False

        # --- observability ---
        self.rnr_naks_received = 0
        self.rnr_naks_sent = 0
        self.retransmissions = 0
        self.messages_sent = 0
        self.messages_delivered = 0

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def connect(self, remote_lid: int, remote_qpn: int) -> None:
        if self.state is not QPState.RESET:
            raise QPError(f"QP {self.qp_num}: connect() in state {self.state}")
        self.remote_lid = remote_lid
        self.remote_qpn = remote_qpn
        self._peer_qp = None
        self.state = QPState.READY

    def force_error(self) -> None:
        """Recovery teardown: transition to ERROR and flush outstanding
        work with ``WR_FLUSH_ERROR`` completions.  Idempotent — a QP that
        already errored out (and flushed) is left alone, so the recovery
        manager can call this on both ends of a pair without caring which
        one detected the fault."""
        if self.state is QPState.ERROR:
            return
        self.state = QPState.ERROR
        self._flush()

    def reset(self) -> None:
        """ERROR → RESET (the verbs modify-QP step that precedes
        re-establishment).  Clears every per-incarnation transport
        artifact — MSN counters, credit estimate, RNR/ACK-timeout timers —
        and bumps :attr:`epoch` so anything still in flight from the old
        incarnation is dropped by the epoch guards.  Fault-mode transport
        settings (:meth:`enable_transport_retry`) survive, as they model
        static QP attributes."""
        if self.state is not QPState.ERROR:
            raise QPError(f"QP {self.qp_num}: reset() in state {self.state}")
        if self._rnr_timer_ev is not None:  # defensive; _flush cancels these
            self._rnr_timer_ev.cancel()
            self._rnr_timer_ev = None
        if self._xport_timer is not None:
            self._xport_timer.cancel()
            self._xport_timer = None
        self.state = QPState.RESET
        self.epoch += 1
        self._sq.clear()
        self._inflight.clear()
        self._next_msn = 0
        self._rnr_waiting = False
        self._credit_est = None
        self._credit_est_msn = -1
        self._sends_inflight = 0
        self._rq.clear()
        self._expected_msn = 0
        self._advertised_zero = False
        self._xport_acks = 0
        self._xport_seen = 0

    def set_initial_credit_estimate(self, credits: Optional[int]) -> None:
        """Seed the requester's view of remote receive WQEs (the consumer
        knows how many buffers it pre-posted on the other side)."""
        self._credit_est = credits

    def _peer(self) -> "QueuePair":
        # Resolved once and cached: the remote end of an RC connection
        # never changes after connect() (which resets the cache).  The
        # two-dict chase sat on the per-message ACK path.
        peer = self._peer_qp
        if peer is None:
            peer = self._peer_qp = self.hca.fabric.hca_at(self.remote_lid).qp(
                self.remote_qpn
            )
        return peer

    # ------------------------------------------------------------------
    # verbs: posting
    # ------------------------------------------------------------------
    def post_send(self, wr: SendWR) -> None:
        if self.state is not QPState.READY:
            raise QPError(f"QP {self.qp_num}: post_send in state {self.state}")
        if len(self._sq) + len(self._inflight) >= self.sq_depth:
            raise QPError(f"QP {self.qp_num}: send queue overflow (depth {self.sq_depth})")
        self._sq.append(wr)
        self.hca._kick(self)

    def post_recv(self, wr: RecvWR) -> None:
        if self.state is QPState.ERROR:
            raise QPError(f"QP {self.qp_num}: post_recv in ERROR state")
        if len(self._rq) >= self.rq_depth:
            raise QPError(f"QP {self.qp_num}: receive queue overflow")
        self._rq.append(wr)
        if (
            self._e2e_credit_updates
            and self._advertised_zero
            and self.state is QPState.READY
        ):
            # Unsolicited credit-update ACK (optional hardware feature; off
            # by default to match the paper's InfiniHost behaviour).
            self._advertised_zero = False
            self.hca.fabric.send_control(
                self.hca.lid,
                self.remote_lid,
                self._peer()._on_credit_update,
                len(self._rq),
                self.epoch,
            )

    @property
    def posted_recvs(self) -> int:
        return len(self._rq)

    @property
    def outstanding_sends(self) -> int:
        return len(self._sq) + len(self._inflight)

    # ------------------------------------------------------------------
    # requester: injection (driven by the HCA send engine)
    # ------------------------------------------------------------------
    def _next_injectable(self) -> Optional[SendWR]:
        """Return the WR the HCA engine may inject now, or None.

        Honours: QP state, RNR freeze, the pipelining window and the
        end-to-end credit gate for SEND opcodes.
        """
        if self.state is not QPState.READY or self._rnr_waiting or not self._sq:
            return None
        if len(self._inflight) >= self._max_inflight:
            return None
        wr = self._sq[0]
        if wr.opcode is Opcode.SEND and self._credit_est is not None:
            if self._credit_est <= 0 and self._sends_inflight >= 1:
                return None  # one probe at a time when starved
        return wr

    def _take_injectable(self) -> Optional[SendWR]:
        wr = self._next_injectable()
        if wr is None:
            return None
        self._sq.popleft()
        if wr.msn < 0:
            wr.msn = self._next_msn
            self._next_msn += 1
        else:
            self.retransmissions += 1
            self.hca.tracer.count("ib.retransmission", (self.hca.lid, self.remote_lid))
        self._inflight[wr.msn] = wr
        if wr.opcode is Opcode.SEND:
            self._sends_inflight += 1
            if self._credit_est is not None:
                self._credit_est -= 1
        if self._xport_enabled and self._xport_timer is None:
            self._xport_seen = self._xport_acks
            self._xport_timer = self.hca.sim.schedule(
                self._xport_timeout_ns, self._xport_expire
            )
        return wr

    def _make_message(self, wr: SendWR) -> _Message:
        self.messages_sent += 1
        return _Message(self, wr)

    # ------------------------------------------------------------------
    # requester: acknowledgement handling
    # ------------------------------------------------------------------
    def _on_ack(self, msn: int, advertised: int, epoch: int = 0) -> None:
        if epoch != self.epoch:
            return  # ACK from a pre-recovery incarnation (MSNs restarted)
        wr = self._inflight.pop(msn, None)
        if wr is None:
            return  # duplicate / stale ACK from a replay era
        self._xport_acks += 1
        if wr.opcode is Opcode.SEND:
            self._sends_inflight -= 1
        if msn > self._credit_est_msn:
            self._credit_est_msn = msn
            if self._credit_est is not None:
                # The gate is opt-in (hardware-based flow control sets an
                # initial estimate); credits advertised net of our own
                # still-inflight sends.
                self._credit_est = advertised - self._sends_inflight
        wr.rnr_tries = 0  # type: ignore[attr-defined]
        if wr.signaled and wr.opcode is not Opcode.RDMA_READ:
            self.send_cq.push(
                WC(
                    wr_id=wr.wr_id,
                    status=WCStatus.SUCCESS,
                    opcode=wr.opcode,
                    byte_len=wr.length,
                    qp_num=self.qp_num,
                    peer=self.remote_lid,
                )
            )
        self.hca._kick(self)

    def _on_credit_update(self, advertised: int, epoch: int = 0) -> None:
        if epoch != self.epoch:
            return
        if self._credit_est is not None:
            self._credit_est = advertised - self._sends_inflight
            self.hca._kick(self)

    def _on_rnr_nak(self, msn: int, epoch: int = 0) -> None:
        if epoch != self.epoch:
            return
        if msn not in self._inflight or self._rnr_waiting:
            return  # duplicate NAK for a message already being replayed
        self.rnr_naks_received += 1
        self.hca.tracer.count("ib.rnr_nak", (self.hca.lid, self.remote_lid))
        if self._credit_est is not None:
            self._credit_est = 0
            self._credit_est_msn = max(self._credit_est_msn, msn - 1)

        wr = self._inflight[msn]
        tries = getattr(wr, "rnr_tries", 0) + 1
        wr.rnr_tries = tries  # type: ignore[attr-defined]
        cfg = self.hca.config
        if cfg.rnr_retry_count != INFINITE_RETRY and tries > cfg.rnr_retry_count:
            del self._inflight[msn]
            if wr.opcode is Opcode.SEND:
                self._sends_inflight -= 1
            self._fatal(wr, WCStatus.RNR_RETRY_EXCEEDED)
            return

        delay = cfg.rnr_timer_ns
        if cfg.rnr_backoff_factor != 1.0 and tries > 1:
            # Exponential backoff on consecutive NAKs for the same message;
            # rnr_tries resets to 0 on any ACK, so one delivered message
            # snaps the wait back to the base timer.
            delay = min(
                int(delay * cfg.rnr_backoff_factor ** (tries - 1)),
                cfg.rnr_backoff_max_ns,
            )
        self._rnr_waiting = True
        self._rnr_timer_ev = self.hca.sim.schedule(delay, self._rnr_expire, msn)

    def _rnr_expire(self, nak_msn: int) -> None:
        self._rnr_waiting = False
        self._rnr_timer_ev = None
        # Replay every unacked message from the NAK point, in MSN order.
        replay = sorted(
            (m for m in self._inflight if m >= nak_msn), reverse=True
        )
        for msn in replay:
            wr = self._inflight.pop(msn)
            if wr.opcode is Opcode.SEND:
                self._sends_inflight -= 1
                if self._credit_est is not None:
                    self._credit_est += 1
            self._sq.appendleft(wr)
        # Allow one probe even with zero estimated credits (handled by the
        # injection gate).
        self.hca._kick(self)

    # ------------------------------------------------------------------
    # requester: transport (ACK timeout) retries — fault mode only
    # ------------------------------------------------------------------
    def enable_transport_retry(self, timeout_ns: int, retry_limit: int) -> None:
        """Arm the RC local-ACK-timeout timer (used by ``repro.faults``
        when the fabric may drop messages or acknowledgements).  With
        ``retry_limit = INFINITE_RETRY`` the QP replays forever; otherwise
        the oldest message errors out with ``WCStatus.RETRY_EXCEEDED``
        after ``retry_limit`` fruitless timeout periods."""
        self._xport_enabled = True
        self._xport_timeout_ns = int(timeout_ns)
        self._xport_limit = retry_limit
        self.reack_stale = True

    def _xport_expire(self) -> None:
        self._xport_timer = None
        if self.state is not QPState.READY or not self._inflight:
            return  # re-armed on the next injection
        if self._rnr_waiting or self._xport_acks != self._xport_seen:
            # RNR recovery is already driving a replay, or ACKs arrived
            # during the period — keep watching, don't retransmit.
            self._xport_seen = self._xport_acks
            self._xport_timer = self.hca.sim.schedule(
                self._xport_timeout_ns, self._xport_expire
            )
            return
        # A full timeout with zero progress: the oldest unacked message (or
        # its ACK) was lost on the wire.  Retry accounting is per-WR.
        oldest = min(self._inflight)
        wr = self._inflight[oldest]
        tries = wr.xport_tries + 1
        wr.xport_tries = tries
        self.hca.tracer.count(
            "faults.transport_timeout", (self.hca.lid, self.remote_lid)
        )
        if self._xport_limit != INFINITE_RETRY and tries > self._xport_limit:
            del self._inflight[oldest]
            if wr.opcode is Opcode.SEND:
                self._sends_inflight -= 1
            self._fatal(wr, WCStatus.RETRY_EXCEEDED)
            return
        # Replay every unacked message in MSN order (go-back-N: later
        # messages were discarded by the responder's in-order filter).
        for msn in sorted(self._inflight, reverse=True):
            w = self._inflight.pop(msn)
            if w.opcode is Opcode.SEND:
                self._sends_inflight -= 1
                if self._credit_est is not None:
                    self._credit_est += 1
            self._sq.appendleft(w)
        self._xport_seen = self._xport_acks
        self._xport_timer = self.hca.sim.schedule(
            self._xport_timeout_ns, self._xport_expire
        )
        self.hca._kick(self)

    def _on_read_response(self, msg: _Message) -> None:
        wr = self._inflight.pop(msg.read_wr_msn, None)
        if wr is None:
            return
        self._xport_acks += 1
        if wr.signaled:
            self.send_cq.push(
                WC(
                    wr_id=wr.wr_id,
                    status=WCStatus.SUCCESS,
                    opcode=Opcode.RDMA_READ,
                    byte_len=msg.length,
                    data=msg.payload,
                    qp_num=self.qp_num,
                    peer=self.remote_lid,
                )
            )
        self.hca._kick(self)

    def _on_remote_error(self, msn: int, status: WCStatus, epoch: int = 0) -> None:
        if epoch != self.epoch:
            return
        wr = self._inflight.pop(msn, None)
        if wr is None:
            return
        self._fatal(wr, status)

    def _fatal(self, wr: SendWR, status: WCStatus) -> None:
        """Complete ``wr`` with an error and flush the QP."""
        self.state = QPState.ERROR
        self.send_cq.push(
            WC(
                wr_id=wr.wr_id,
                status=status,
                opcode=wr.opcode,
                qp_num=self.qp_num,
                peer=self.remote_lid,
            )
        )
        self._flush()

    def _flush(self) -> None:
        """Cancel timers and flush both work queues with WR_FLUSH_ERROR
        completions (the QP is already in ERROR state)."""
        if self._rnr_timer_ev is not None:
            self._rnr_timer_ev.cancel()
            self._rnr_timer_ev = None
        if self._xport_timer is not None:
            self._xport_timer.cancel()
            self._xport_timer = None
        for pending in list(self._inflight.values()) + list(self._sq):
            self.send_cq.push(
                WC(
                    wr_id=pending.wr_id,
                    status=WCStatus.WR_FLUSH_ERROR,
                    opcode=pending.opcode,
                    qp_num=self.qp_num,
                    peer=self.remote_lid,
                )
            )
        self._inflight.clear()
        self._sq.clear()
        for rwr in self._rq:
            self.recv_cq.push(
                WC(
                    wr_id=rwr.wr_id,
                    status=WCStatus.WR_FLUSH_ERROR,
                    opcode=Opcode.SEND,
                    qp_num=self.qp_num,
                    peer=self.remote_lid,
                    is_recv=True,
                )
            )
        self._rq.clear()

    # ------------------------------------------------------------------
    # responder: inbound message handling (called by the HCA)
    # ------------------------------------------------------------------
    def _receive(self, msg: _Message) -> None:
        if self.state is not QPState.READY:
            return  # drops on dead QPs
        if msg.epoch != self.epoch:
            return  # in-flight data from a pre-recovery incarnation
        if msg.is_read_response:
            self._on_read_response(msg)
            return
        if msg.msn != self._expected_msn:
            # Stale duplicate from a replay era (msn < expected) or an
            # out-of-order packet after a NAK (msn > expected): discard.
            # In fault mode a stale duplicate means the original *ACK* was
            # lost on the wire — re-acknowledge it, or the requester's
            # transport timer replays forever.
            if self.reack_stale and msg.msn < self._expected_msn:
                if msg.opcode is Opcode.RDMA_READ:
                    try:
                        mr = self.hca.mrs.check_remote(
                            msg.rkey, msg.remote_addr, msg.length
                        )
                    except RemoteAccessError:
                        return
                    self.hca._respond_read(self, msg, mr)
                else:
                    self._ack(msg)
            return

        if msg.opcode is Opcode.SEND:
            if not self._rq:
                self.rnr_naks_sent += 1
                self.hca.tracer.count("ib.rnr_nak_sent", (self.hca.lid, msg.src_lid))
                self._advertised_zero = True
                self.hca.fabric.send_control(
                    self.hca.lid,
                    msg.src_lid,
                    self._peer()._on_rnr_nak,
                    msg.msn,
                    self.epoch,
                )
                return
            rwr = self._rq[0]
            if msg.length > rwr.capacity:
                self._rq.popleft()
                self._expected_msn += 1
                self.recv_cq.push(
                    WC(
                        wr_id=rwr.wr_id,
                        status=WCStatus.LOCAL_LENGTH_ERROR,
                        opcode=Opcode.SEND,
                        byte_len=msg.length,
                        qp_num=self.qp_num,
                        peer=msg.src_lid,
                        is_recv=True,
                    )
                )
                self.state = QPState.ERROR
                self.hca.fabric.send_control(
                    self.hca.lid,
                    msg.src_lid,
                    self._peer()._on_remote_error,
                    msg.msn,
                    WCStatus.REMOTE_ACCESS_ERROR,
                    self.epoch,
                )
                return
            self._rq.popleft()
            self._expected_msn += 1
            self.hca._complete_recv(self, msg, rwr)
        elif msg.opcode is Opcode.RDMA_WRITE:
            try:
                mr = self.hca.mrs.check_remote(msg.rkey, msg.remote_addr, msg.length)
            except RemoteAccessError:
                self._expected_msn += 1
                self.hca.fabric.send_control(
                    self.hca.lid,
                    msg.src_lid,
                    self._peer()._on_remote_error,
                    msg.msn,
                    WCStatus.REMOTE_ACCESS_ERROR,
                    self.epoch,
                )
                return
            mr.store(msg.remote_addr, msg.payload)
            self._expected_msn += 1
            self.messages_delivered += 1
            self._ack(msg)
        elif msg.opcode is Opcode.RDMA_READ:
            try:
                mr = self.hca.mrs.check_remote(msg.rkey, msg.remote_addr, msg.length)
            except RemoteAccessError:
                self._expected_msn += 1
                self.hca.fabric.send_control(
                    self.hca.lid,
                    msg.src_lid,
                    self._peer()._on_remote_error,
                    msg.msn,
                    WCStatus.REMOTE_ACCESS_ERROR,
                    self.epoch,
                )
                return
            self._expected_msn += 1
            self.hca._respond_read(self, msg, mr)
        else:  # pragma: no cover - exhaustive enum
            raise QPError(f"unknown opcode {msg.opcode}")

    # ------------------------------------------------------------------
    # introspection (used by repro.check)
    # ------------------------------------------------------------------
    def check_invariants(self) -> list:
        """Structural self-audit; returns a list of problem strings
        (empty when healthy).  Cheap — called at end of audited runs."""
        problems = []
        if self.outstanding_sends > self.sq_depth:
            problems.append(
                f"QP {self.qp_num}: {self.outstanding_sends} outstanding "
                f"sends exceed sq_depth {self.sq_depth}"
            )
        for msn in self._inflight:
            if msn >= self._next_msn:
                problems.append(
                    f"QP {self.qp_num}: inflight msn {msn} >= next_msn "
                    f"{self._next_msn}"
                )
        sends = sum(
            1 for wr in self._inflight.values() if wr.opcode is Opcode.SEND
        )
        if self._sends_inflight != sends:
            problems.append(
                f"QP {self.qp_num}: _sends_inflight={self._sends_inflight} "
                f"but {sends} SEND WRs are inflight"
            )
        if len(self._rq) > self.rq_depth:
            problems.append(
                f"QP {self.qp_num}: {len(self._rq)} posted recvs exceed "
                f"rq_depth {self.rq_depth}"
            )
        if self.state is QPState.ERROR and (self._sq or self._inflight):
            problems.append(
                f"QP {self.qp_num}: ERROR state with unflushed work queues"
            )
        return problems

    def _ack(self, msg: _Message) -> None:
        advertised = len(self._rq)
        self._advertised_zero = advertised == 0
        self.hca.fabric.send_control(
            self.hca.lid,
            msg.src_lid,
            self._peer()._on_ack,
            msg.msn,
            advertised,
            self.epoch,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<QP {self.qp_num}@{self.hca.lid}->{self.remote_qpn}@{self.remote_lid} "
            f"{self.state.value} sq={len(self._sq)} inflight={len(self._inflight)} "
            f"rq={len(self._rq)}>"
        )
