"""The Host Channel Adapter.

Owns queue pairs, completion queues and the registration table for one
node, and models the two serialised engines of an InfiniHost-class adapter:

* the **send engine** drains send WQEs from ready QPs round-robin.  Each
  WQE costs doorbell + WQE-fetch + DMA-startup time on the engine; the
  payload's serialisation is then charged on the wire by the fabric
  (cut-through — engine and wire overlap across messages);
* the **receive engine** turns accepted inbound messages into completions
  after per-WQE processing time (payload DMA overlaps with reception and is
  already covered by the arrival time).

The HCA is where channel semantics (SEND consumes a receive WQE, payload
copied to the posted buffer) and memory semantics (RDMA bypasses the
receive queue entirely) diverge — see ``QueuePair._receive`` for the
protocol side.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.ib.cq import CompletionQueue
from repro.ib.fabric import Fabric
from repro.ib.mr import MemoryRegion, RegistrationTable
from repro.ib.qp import QueuePair, _Message
from repro.ib.types import IBConfig, Opcode, WCStatus
from repro.ib.wr import WC, RecvWR
from repro.sim import Simulator
from repro.sim.trace import Tracer
from repro.sim.units import transfer_ns


class HCA:
    """One adapter, attached to the fabric at ``lid``."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        lid: int,
        config: Optional[IBConfig] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.lid = lid
        self.config = config or fabric.config
        self.tracer = tracer or fabric.tracer
        self.mrs = RegistrationTable(lid)
        self._qps: Dict[int, QueuePair] = {}
        self._next_qpn = lid * 10_000 + 1
        self._ready: Deque[QueuePair] = deque()
        self._in_ready: set = set()
        self._send_busy = 0
        self._pump_scheduled = False
        self._recv_busy = 0
        #: receive-engine burst FIFO: (service_done_ns, msg) in arrival
        #: order.  One armed agenda event services the whole burst head-to
        #: -tail instead of one heap entry per in-flight packet.
        self._rx_fifo: Deque[tuple] = deque()
        self._rx_armed = False
        # These go onto the agenda once per message; prebinding avoids a
        # bound-method allocation per scheduling.
        self._pump = self._pump
        self._rx_service = self._rx_service
        #: (timeout_ns, retry_limit) once a FaultInjector arms transport
        #: retries; QPs created afterwards (on-demand connections) inherit.
        self.fault_transport = None
        #: set by :meth:`kill` (rank-death fault): both engines stop for
        #: good and inbound packets vanish — the adapter answers nothing.
        self.dead = False
        fabric.attach(lid, self)

    # ------------------------------------------------------------------
    # resource creation (verbs)
    # ------------------------------------------------------------------
    def create_cq(self, name: str = "") -> CompletionQueue:
        return CompletionQueue(
            self.sim, depth=self.config.cq_depth, name=name or f"cq@{self.lid}"
        )

    def create_qp(
        self,
        send_cq: CompletionQueue,
        recv_cq: Optional[CompletionQueue] = None,
    ) -> QueuePair:
        qpn = self._next_qpn
        self._next_qpn += 1
        qp = QueuePair(
            self,
            qpn,
            send_cq,
            recv_cq or send_cq,
            sq_depth=self.config.sq_depth,
            rq_depth=self.config.rq_depth,
        )
        self._qps[qpn] = qp
        if self.fault_transport is not None:
            qp.enable_transport_retry(*self.fault_transport)
        return qp

    def qp(self, qpn: int) -> QueuePair:
        return self._qps[qpn]

    def reg_mr(self, length: int) -> MemoryRegion:
        """Register ``length`` bytes.  The *caller* must burn
        ``config.registration_ns(length)`` of CPU time — the MPI layer's
        pin-down path does."""
        return self.mrs.register(length)

    def dereg_mr(self, mr: MemoryRegion) -> None:
        self.mrs.deregister(mr)

    def pause(self, duration_ns: int) -> None:
        """Fault hook: freeze both engines for ``duration_ns``.  In-flight
        wire traffic still lands (the adapter's input buffering absorbs it);
        service resumes once the busy horizons pass."""
        resume = self.sim.now + int(duration_ns)
        if resume > self._send_busy:
            self._send_busy = resume
        if resume > self._recv_busy:
            self._recv_busy = resume

    def kill(self) -> None:
        """Fault hook (rank death): the adapter dies outright.  Every
        owned QP goes to ERROR with its outstanding work flushed; the
        send and receive engines stop permanently; packets arriving from
        the wire are absorbed without ACK, NAK, or completion.  Peers
        observe pure silence — detecting it is the failure detector's
        job, not the transport's."""
        if self.dead:
            return
        self.dead = True
        for qp in list(self._qps.values()):
            qp.force_error()

    # ------------------------------------------------------------------
    # send engine
    # ------------------------------------------------------------------
    def _kick(self, qp: QueuePair) -> None:
        """A QP may have become injectable; enqueue it and poke the engine."""
        if self.dead:
            return
        if qp.qp_num not in self._in_ready and qp._next_injectable() is not None:
            self._ready.append(qp)
            self._in_ready.add(qp.qp_num)
        self._schedule_pump()

    def _schedule_pump(self) -> None:
        if self._pump_scheduled or not self._ready:
            return
        at = max(self.sim.now, self._send_busy)
        self._pump_scheduled = True
        self.sim.call_at(at, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self.dead:
            return
        now = self.sim.now
        if self._send_busy > now:
            self._schedule_pump()
            return
        # Round-robin: find the first currently-eligible ready QP.
        for _ in range(len(self._ready)):
            qp = self._ready.popleft()
            self._in_ready.discard(qp.qp_num)
            wr = qp._take_injectable()
            if wr is None:
                continue  # re-kicked when it becomes eligible again
            if qp._next_injectable() is not None:
                self._ready.append(qp)
                self._in_ready.add(qp.qp_num)
            cost = self.config.hca_send_wqe_ns + self.config.dma_startup_ns
            self._send_busy = now + cost
            # Build the message now (the WR is final once taken) and put
            # the fabric hand-off itself on the agenda — one event, no
            # intermediate _inject frame.
            msg = qp._make_message(wr)
            self.sim.call_later(
                cost, self.fabric.transmit, self.lid, qp.remote_lid, wr.length, msg
            )
            self._schedule_pump()
            return

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _deliver(self, msg: _Message) -> None:
        """Last byte arrived on the wire.  The packet sits in the adapter's
        input buffering until the receive engine services it — crucially,
        the receive-WQE lookup (and hence any RNR NAK decision) happens at
        *engine service time*, not wire-arrival time, so line-rate bursts
        released by head-of-line blocking do not spuriously NAK as long as
        software keeps re-posting at the engine's pace."""
        if self.dead:
            return  # dead adapter: the packet vanishes, nothing answers
        start = max(self.sim.now, self._recv_busy)
        if msg.opcode is Opcode.RDMA_WRITE or msg.is_read_response:
            cost = self.config.hca_rdma_rx_ns  # no WQE consume, no CQE
        else:
            cost = self.config.hca_recv_wqe_ns
        done = start + cost
        self._recv_busy = done
        self._rx_fifo.append((done, msg))
        if not self._rx_armed:
            self._rx_armed = True
            self.sim.call_at(done, self._rx_service)

    def _rx_service(self) -> None:
        """Service the head of the receive-engine FIFO (one event per
        message, re-armed before protocol processing so burst arrivals keep
        their engine-service order)."""
        done, msg = self._rx_fifo.popleft()
        if self._rx_fifo:
            self._rx_armed = True
            self.sim.call_at(self._rx_fifo[0][0], self._rx_service)
        else:
            self._rx_armed = False
        self._rx_process(msg)

    def _rx_process(self, msg: _Message) -> None:
        if self.dead:
            return  # packets queued before death are never serviced
        qp = self._qps.get(msg.dst_qpn)
        if qp is None:
            return  # packet to a destroyed QP: silently dropped
        qp._receive(msg)

    def _complete_recv(self, qp: QueuePair, msg: _Message, rwr: RecvWR) -> None:
        """SEND accepted: engine time is already paid, complete now."""
        qp.messages_delivered += 1
        qp.recv_cq.push(
            WC(
                wr_id=rwr.wr_id,
                status=WCStatus.SUCCESS,
                opcode=Opcode.SEND,
                byte_len=msg.length,
                data=msg.payload,
                qp_num=qp.qp_num,
                peer=msg.src_lid,
                is_recv=True,
            )
        )
        qp._ack(msg)

    def _respond_read(self, qp: QueuePair, msg: _Message, mr) -> None:
        """Stream RDMA-read data back to the requester."""
        if self.dead:
            return
        response = _Message.__new__(_Message)
        response.src_lid = self.lid
        response.src_qpn = qp.qp_num
        response.dst_lid = msg.src_lid
        response.dst_qpn = msg.src_qpn
        response.opcode = Opcode.RDMA_READ
        response.msn = -1
        response.length = msg.length
        response.payload = mr.load(msg.remote_addr)
        response.remote_addr = 0
        response.rkey = 0
        response.is_read_response = True
        response.read_wr_msn = msg.msn
        response.epoch = msg.epoch  # stale-epoch requests get stale responses
        start = max(self.sim.now, self._send_busy)
        cost = self.config.hca_send_wqe_ns + self.config.dma_startup_ns
        self._send_busy = start + cost
        self.sim.call_at(
            start + cost, self.fabric.transmit, self.lid, msg.src_lid, msg.length, response
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HCA lid={self.lid} qps={len(self._qps)}>"
