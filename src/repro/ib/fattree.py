"""Multi-level fat-tree fabric — the topology of the large clusters the
paper's introduction targets ("in the order of 1,000 to 10,000 nodes").

The single-crossbar :class:`~repro.ib.fabric.Fabric` models the paper's
8-port InfiniScale testbed; this subclass scales past one switch.

Two-level (``levels=2``, the default): hosts attach to *leaf* switches
(``leaf_ports`` hosts each), and every leaf has one uplink to each of
``spines`` spine switches.

Three-level (``levels=3``): leaves are grouped into *pods* of
``pod_leaves`` leaves; each pod has its own ``spines`` spine switches,
and every spine has one uplink to each of ``cores`` core switches.
Intra-pod traffic turns around at a pod spine; inter-pod traffic ascends
host→leaf→spine→core and descends core→spine→leaf→host.

Routing is the standard d-mod-k scheme generalized across tiers: the
spine index is ``dst_lid % spines`` (in the source pod on the way up and
the destination pod on the way down — the same index, so the route is
symmetric about the core) and the core is ``dst_lid % cores``.  All
choices depend only on the destination, so every flow stays ordered.

Every traversed link carries FIFO busy-until contention; switch hops add
pipeline latency.  :meth:`path_links` enumerates the interior links of a
path as stable keys — the congestion subsystem keys its egress-port
queues on them, and ``link_msgs`` counts per-link data messages for hop
accounting (``tests/test_fattree_property.py``).

This keeps every transport/MPI layer byte-for-byte identical — only path
latency and contention change — so flow-control experiments can be re-run
on big simulated clusters unchanged (see
``tests/test_fattree.py::test_dynamic_scheme_on_64_rank_fat_tree``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.ib.fabric import Fabric, FabricError
from repro.ib.types import IBConfig
from repro.sim import Simulator
from repro.sim.trace import Tracer
from repro.sim.units import transfer_ns

#: Interior-link keys (see :meth:`FatTreeFabric.path_links`):
#: ``("up", leaf, spine)`` leaf→spine, ``("sdown", spine, leaf)``
#: spine→leaf, ``("sup", spine, core)`` spine→core, ``("cdown", core,
#: spine)`` core→spine.  Spine ids are global (``pod * spines + index``)
#: so two pods' uplinks never alias.
LinkKey = Tuple


class FatTreeFabric(Fabric):
    """Hosts → leaves → spines (→ cores), FIFO contention per link."""

    def __init__(
        self,
        sim: Simulator,
        config: IBConfig,
        tracer: Optional[Tracer] = None,
        leaf_ports: int = 8,
        spines: int = 2,
        levels: int = 2,
        pod_leaves: Optional[int] = None,
        cores: Optional[int] = None,
    ):
        super().__init__(sim, config, tracer)
        if leaf_ports < 1 or spines < 1:
            raise FabricError("fat tree needs >=1 leaf port and >=1 spine")
        if levels not in (2, 3):
            raise FabricError(f"fat tree supports 2 or 3 levels, not {levels}")
        if levels == 3:
            if not pod_leaves or pod_leaves < 1:
                raise FabricError("3-level fat tree needs pod_leaves >= 1")
            if not cores or cores < 1:
                raise FabricError("3-level fat tree needs cores >= 1")
        else:
            pod_leaves = None  # one implicit pod spanning every leaf
            cores = None
        self.leaf_ports = leaf_ports
        self.spines = spines  # per pod when levels == 3
        self.levels = levels
        self.pod_leaves = pod_leaves
        self.cores = cores
        #: busy-until horizon per interior unidirectional link
        self._link_busy: Dict[LinkKey, int] = {}
        #: (src, dst) -> interior link tuple, memoized (paths are static)
        self._path_cache: Dict[Tuple[int, int], tuple] = {}
        # observability
        self.cross_leaf_msgs = 0
        self.cross_pod_msgs = 0
        #: data messages per traversed link, host links included
        #: (``("hup", lid)`` host→leaf, ``("down", lid)`` leaf→host)
        self.link_msgs: Dict[LinkKey, int] = {}

    # ------------------------------------------------------------------
    # topology arithmetic
    # ------------------------------------------------------------------
    def leaf_of(self, lid: int) -> int:
        return lid // self.leaf_ports

    def pod_of(self, leaf: int) -> int:
        return leaf // self.pod_leaves if self.pod_leaves else 0

    def _spine_for(self, dst_lid: int) -> int:
        """Pod-local spine index — d-mod-k: deterministic, in-order."""
        return dst_lid % self.spines

    def _core_for(self, dst_lid: int) -> int:
        return dst_lid % self.cores

    # ------------------------------------------------------------------
    # path enumeration
    # ------------------------------------------------------------------
    def path_links(self, src_lid: int, dst_lid: int) -> tuple:
        """The interior links a ``src→dst`` data message traverses, as
        stable keys, in traversal order.  Host access links are not
        included (they are per-endpoint, keyed by LID alone).  Empty for
        same-leaf (and loopback) traffic."""
        key = (src_lid, dst_lid)
        path = self._path_cache.get(key)
        if path is None:
            path = self._path_cache[key] = self._build_links(src_lid, dst_lid)
        return path

    def _build_links(self, src_lid: int, dst_lid: int) -> tuple:
        src_leaf, dst_leaf = self.leaf_of(src_lid), self.leaf_of(dst_lid)
        if src_leaf == dst_leaf:
            return ()
        idx = self._spine_for(dst_lid)
        if self.levels == 2:
            return (("up", src_leaf, idx), ("sdown", idx, dst_leaf))
        src_pod, dst_pod = self.pod_of(src_leaf), self.pod_of(dst_leaf)
        s_src = src_pod * self.spines + idx
        if src_pod == dst_pod:
            return (("up", src_leaf, s_src), ("sdown", s_src, dst_leaf))
        core = self._core_for(dst_lid)
        s_dst = dst_pod * self.spines + idx
        return (
            ("up", src_leaf, s_src),
            ("sup", s_src, core),
            ("cdown", core, s_dst),
            ("sdown", s_dst, dst_leaf),
        )

    # ------------------------------------------------------------------
    def transmit(self, src_lid: int, dst_lid: int, payload_bytes: int, message: Any) -> int:
        cfg = self.config
        if dst_lid not in self._lids:
            raise FabricError(f"no HCA at LID {dst_lid}")
        now = self.sim.now
        self.messages_sent += 1
        self.payload_bytes += max(0, payload_bytes)

        if src_lid == dst_lid:
            ser = transfer_ns(cfg.wire_bytes(payload_bytes), cfg.pci_bytes_per_ns)
            arrival = now + cfg.loopback_ns + ser
            self._enqueue_data(dst_lid, arrival, message)
            return arrival

        extra = 0
        fault = self.fault
        if fault is not None:
            verdict = fault.on_data(src_lid, dst_lid, payload_bytes)
            if verdict is None:
                return now  # lost on the wire
            extra, scale = verdict
        else:
            scale = 0

        wire = cfg.wire_bytes(payload_bytes)
        self.wire_bytes += wire
        ser = transfer_ns(wire, cfg.effective_bytes_per_ns())
        if scale:
            ser = max(1, int(ser * scale))
        links = self.path_links(src_lid, dst_lid)
        if links:
            self.cross_leaf_msgs += 1
            if len(links) == 4:
                self.cross_pod_msgs += 1

        cong = self.congestion
        if cong is not None:
            # Congested path: the shared interior egress queues (one
            # PortQueue per port, however many routes share it) own the
            # timing; see repro.congestion.switch.
            cong.inject(src_lid, dst_lid, wire, ser, message, extra)
            self.tracer.record(now, "fabric.tx", src_lid, dst_lid,
                               payload_bytes, -1)
            return now

        lm = self.link_msgs
        lm[("hup", src_lid)] = lm.get(("hup", src_lid), 0) + 1
        # host -> leaf
        start = max(now, self._up_busy[src_lid])
        self._up_busy[src_lid] = start + ser
        head = start + cfg.link_prop_ns + cfg.switch_delay_ns

        # interior tiers (leaf->spine[->core->spine]->leaf)
        busy = self._link_busy
        hop_ns = cfg.link_prop_ns + cfg.switch_delay_ns
        for link in links:
            t = max(head, busy.get(link, 0))
            busy[link] = t + ser
            lm[link] = lm.get(link, 0) + 1
            head = t + hop_ns

        # leaf -> host
        lm[("down", dst_lid)] = lm.get(("down", dst_lid), 0) + 1
        start_down = max(head, self._down_busy[dst_lid])
        self._down_busy[dst_lid] = start_down + ser
        arrival = start_down + ser + cfg.link_prop_ns + extra
        self._enqueue_data(dst_lid, arrival, message)
        self.tracer.record(now, "fabric.tx", src_lid, dst_lid, payload_bytes, arrival)
        return arrival

    # ------------------------------------------------------------------
    def control_path_ns(self, src_lid: int, dst_lid: int) -> int:
        cfg = self.config
        if src_lid == dst_lid:
            return cfg.loopback_ns
        ser = transfer_ns(cfg.ack_bytes, cfg.link_rate.bytes_per_ns)
        # switches on the path: 1 same-leaf, 3 through a spine, 5 through
        # a core — one more than the interior link count
        hops = 1 + len(self.path_links(src_lid, dst_lid))
        return (hops + 1) * cfg.link_prop_ns + hops * cfg.switch_delay_ns + ser

    def __repr__(self) -> str:  # pragma: no cover
        shape = f"leaf_ports={self.leaf_ports} spines={self.spines}"
        if self.levels == 3:
            shape += f" pod_leaves={self.pod_leaves} cores={self.cores}"
        return (
            f"<FatTreeFabric lids={len(self._lids)} levels={self.levels} "
            f"{shape}>"
        )
