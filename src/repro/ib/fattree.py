"""Two-level fat-tree fabric — the topology of the large clusters the
paper's introduction targets ("in the order of 1,000 to 10,000 nodes").

The single-crossbar :class:`~repro.ib.fabric.Fabric` models the paper's
8-port InfiniScale testbed; this subclass scales past one switch: hosts
attach to *leaf* switches (``leaf_ports`` hosts each), and every leaf has
one uplink to each of ``spines`` spine switches.

Routing is the standard d-mod-k scheme: traffic within a leaf crosses only
that leaf; cross-leaf traffic ascends on the uplink chosen by
``dst_lid % spines`` (deterministic, so a flow stays ordered) and descends
to the destination leaf.  All four traversed links (host-up, leaf-up,
spine-down, host-down) carry FIFO busy-until contention; switch hops add
pipeline latency.

This keeps every transport/MPI layer byte-for-byte identical — only path
latency and contention change — so flow-control experiments can be re-run
on big simulated clusters unchanged (see
``tests/test_fattree.py::test_dynamic_scheme_on_64_rank_fat_tree``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.ib.fabric import Fabric, FabricError
from repro.ib.types import IBConfig
from repro.sim import Simulator
from repro.sim.trace import Tracer
from repro.sim.units import transfer_ns


class FatTreeFabric(Fabric):
    """Hosts → leaf switches → spine switches, FIFO contention per link."""

    def __init__(
        self,
        sim: Simulator,
        config: IBConfig,
        tracer: Optional[Tracer] = None,
        leaf_ports: int = 8,
        spines: int = 2,
    ):
        super().__init__(sim, config, tracer)
        if leaf_ports < 1 or spines < 1:
            raise FabricError("fat tree needs >=1 leaf port and >=1 spine")
        self.leaf_ports = leaf_ports
        self.spines = spines
        # busy-until per inter-switch unidirectional link
        self._leaf_up: Dict[Tuple[int, int], int] = {}  # (leaf, spine)
        self._leaf_down: Dict[Tuple[int, int], int] = {}  # (spine, leaf)
        # observability
        self.cross_leaf_msgs = 0

    # ------------------------------------------------------------------
    def leaf_of(self, lid: int) -> int:
        return lid // self.leaf_ports

    def _spine_for(self, dst_lid: int) -> int:
        return dst_lid % self.spines  # d-mod-k: deterministic, in-order

    # ------------------------------------------------------------------
    def transmit(self, src_lid: int, dst_lid: int, payload_bytes: int, message: Any) -> int:
        cfg = self.config
        if dst_lid not in self._lids:
            raise FabricError(f"no HCA at LID {dst_lid}")
        now = self.sim.now
        self.messages_sent += 1
        self.payload_bytes += max(0, payload_bytes)

        if src_lid == dst_lid:
            ser = transfer_ns(cfg.wire_bytes(payload_bytes), cfg.pci_bytes_per_ns)
            arrival = now + cfg.loopback_ns + ser
            self._enqueue_data(dst_lid, arrival, message)
            return arrival

        extra = 0
        fault = self.fault
        if fault is not None:
            verdict = fault.on_data(src_lid, dst_lid, payload_bytes)
            if verdict is None:
                return now  # lost on the wire
            extra, scale = verdict
        else:
            scale = 0

        wire = cfg.wire_bytes(payload_bytes)
        self.wire_bytes += wire
        ser = transfer_ns(wire, cfg.effective_bytes_per_ns())
        if scale:
            ser = max(1, int(ser * scale))
        src_leaf, dst_leaf = self.leaf_of(src_lid), self.leaf_of(dst_lid)

        cong = self.congestion
        if cong is not None:
            # Congested path: the shared leaf-up / spine-down egress
            # queues (one PortQueue per port, however many routes share
            # it) own the timing; see repro.congestion.switch.
            if src_leaf != dst_leaf:
                self.cross_leaf_msgs += 1
            cong.inject(src_lid, dst_lid, wire, ser, message, extra)
            self.tracer.record(now, "fabric.tx", src_lid, dst_lid,
                               payload_bytes, -1)
            return now

        # host -> leaf
        start = max(now, self._up_busy[src_lid])
        self._up_busy[src_lid] = start + ser
        head = start + cfg.link_prop_ns + cfg.switch_delay_ns

        if src_leaf != dst_leaf:
            self.cross_leaf_msgs += 1
            spine = self._spine_for(dst_lid)
            # leaf -> spine
            up_key = (src_leaf, spine)
            t = max(head, self._leaf_up.get(up_key, 0))
            self._leaf_up[up_key] = t + ser
            head = t + cfg.link_prop_ns + cfg.switch_delay_ns
            # spine -> destination leaf
            down_key = (spine, dst_leaf)
            t = max(head, self._leaf_down.get(down_key, 0))
            self._leaf_down[down_key] = t + ser
            head = t + cfg.link_prop_ns + cfg.switch_delay_ns

        # leaf -> host
        start_down = max(head, self._down_busy[dst_lid])
        self._down_busy[dst_lid] = start_down + ser
        arrival = start_down + ser + cfg.link_prop_ns + extra
        self._enqueue_data(dst_lid, arrival, message)
        self.tracer.record(now, "fabric.tx", src_lid, dst_lid, payload_bytes, arrival)
        return arrival

    # ------------------------------------------------------------------
    def control_path_ns(self, src_lid: int, dst_lid: int) -> int:
        cfg = self.config
        if src_lid == dst_lid:
            return cfg.loopback_ns
        ser = transfer_ns(cfg.ack_bytes, cfg.link_rate.bytes_per_ns)
        hops = 1 if self.leaf_of(src_lid) == self.leaf_of(dst_lid) else 3
        return (hops + 1) * cfg.link_prop_ns + hops * cfg.switch_delay_ns + ser

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FatTreeFabric lids={len(self._lids)} leaf_ports={self.leaf_ports} "
            f"spines={self.spines}>"
        )
