"""Completion queues.

A CQ collects :class:`~repro.ib.wr.WC` entries from any number of QPs
(the paper's MPI associates *all* of a process's send and receive queues
with a single CQ, and so does ``repro.mpi``).  Consumers poll; a blocked
consumer can wait on :meth:`wait_nonempty`, which hands out a one-shot
:class:`~repro.sim.waitables.Signal` re-armed on each wait — the simulation
analogue of the verbs completion-channel / ``ibv_req_notify_cq`` pattern.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.ib.wr import WC
from repro.sim import Signal, Simulator


class CQOverflow(RuntimeError):
    """The CQ filled up — a fatal programming error in the consumer."""


class CompletionQueue:
    """A FIFO of work completions with blocking-wait support."""

    def __init__(self, sim: Simulator, depth: int = 65536, name: str = "cq"):
        self.sim = sim
        self.depth = depth
        self.name = name
        self._entries: Deque[WC] = deque()
        self._notify: Optional[Signal] = None
        #: total completions ever pushed (observability)
        self.total_completions = 0

    # ------------------------------------------------------------------
    # producer side (QPs)
    # ------------------------------------------------------------------
    def push(self, wc: WC) -> None:
        if len(self._entries) >= self.depth:
            raise CQOverflow(f"{self.name}: more than {self.depth} outstanding CQEs")
        self._entries.append(wc)
        self.total_completions += 1
        if self._notify is not None:
            sig, self._notify = self._notify, None
            sig.fire(self.sim, None)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def poll(self, max_entries: int = 0) -> List[WC]:
        """Drain up to ``max_entries`` completions (0 = all)."""
        if max_entries <= 0 or max_entries >= len(self._entries):
            out = list(self._entries)
            self._entries.clear()
            return out
        return [self._entries.popleft() for _ in range(max_entries)]

    def poll_one(self) -> Optional[WC]:
        return self._entries.popleft() if self._entries else None

    def wait_nonempty(self) -> Signal:
        """Return a signal that fires when the CQ has (or already has) an
        entry.  Each call arms a fresh signal, so the usual loop is::

            while not done:
                for wc in cq.poll():
                    handle(wc)
                if not done:
                    yield cq.wait_nonempty()
        """
        sig = Signal(f"{self.name}.notify")
        if self._entries:
            sig.fire(self.sim, None)
        else:
            if self._notify is not None:
                # Coalesce: chain onto the existing armed signal.
                return self._notify
            self._notify = sig
        return sig

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CQ {self.name} pending={len(self._entries)}>"
