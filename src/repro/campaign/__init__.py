"""Parallel sweep campaigns with content-addressed result caching.

The scaling layer every experiment runs on:

* :class:`JobSpec` — one declarative sweep cell (kind + params), keyed by
  a stable hash of its spec and the ``repro`` source fingerprint;
* :func:`run_cells` — the orchestrator: cache lookups, JSONL
  checkpoint/resume, in-process or ``ProcessPoolExecutor`` execution,
  and the ``check=True`` bit-identical determinism gate;
* :mod:`~repro.campaign.grids` — the named figure/table campaigns behind
  ``python -m repro sweep``.
"""

from repro.campaign.cache import MemoryCache, ResultCache
from repro.campaign.cells import CELL_KINDS, cell_kind, latency_metrics, run_cell
from repro.campaign.grids import GRIDS, build_grid
from repro.campaign.runner import (
    CampaignError,
    CampaignResult,
    CellOutcome,
    CheckFailure,
    run_cells,
)
from repro.campaign.spec import JobSpec, canonical_json, code_version, make_record

__all__ = [
    "CELL_KINDS",
    "CampaignError",
    "CampaignResult",
    "CellOutcome",
    "CheckFailure",
    "GRIDS",
    "JobSpec",
    "MemoryCache",
    "ResultCache",
    "build_grid",
    "canonical_json",
    "cell_kind",
    "code_version",
    "latency_metrics",
    "make_record",
    "run_cell",
    "run_cells",
]
