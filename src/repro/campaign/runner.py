"""The sweep orchestrator: fan independent cells across worker processes.

``run_cells`` takes a list of :class:`JobSpec` cells and completes every
one of them, in one of three ways:

* served from the content-addressed result cache (``cache=``),
* served from a previous campaign's JSONL checkpoint (``resume=``),
* executed — in-process when ``workers <= 1`` (exactly the sequential
  CLI path), or on a ``ProcessPoolExecutor`` otherwise.

Executed records are checkpointed as they complete (cache + JSONL
append), so an interrupted or crashed campaign resumes without redoing
finished cells.  ``check=True`` re-runs every cell that was *not* freshly
computed in this process and fails unless the stored record is
bit-identical — the determinism gate that lets cached/parallel results
stand in for the sequential path.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.cells import run_cell
from repro.campaign.spec import JobSpec, canonical_json, make_record

#: How a cell's record was obtained this campaign.
SOURCES = ("run", "worker", "cache", "resume", "failed", "skipped")


class CampaignError(RuntimeError):
    """A cell failed (and ``strict=True``)."""


class CheckFailure(CampaignError):
    """``check=True`` found records that an in-process re-run contradicts."""

    def __init__(self, mismatches: List[Dict[str, Any]]):
        self.mismatches = mismatches
        cells = ", ".join(m["label"] for m in mismatches[:5])
        super().__init__(
            f"{len(mismatches)} cell(s) are not bit-identical to an "
            f"in-process run: {cells}"
        )


@dataclass
class CellOutcome:
    """One cell's fate within a campaign."""

    spec: JobSpec
    source: str
    record: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    wall_s: float = 0.0

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def metrics(self) -> Dict[str, Any]:
        if self.record is None:
            raise CampaignError(
                f"cell {self.spec.label()} has no result ({self.source}"
                + (f": {self.error}" if self.error else "")
                + ")"
            )
        return self.record["metrics"]


@dataclass
class CampaignResult:
    """All outcomes, in input-spec order."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    interrupted: bool = False
    check_failures: List[Dict[str, Any]] = field(default_factory=list)
    wall_s: float = 0.0

    def _count(self, *sources: str) -> int:
        # Duplicate grid cells share one CellOutcome; count executions
        # (distinct outcomes), not appearances in the outcome list.
        return sum(1 for o in self._unique() if o.source in sources)

    def _unique(self) -> List[CellOutcome]:
        seen: set = set()
        unique = []
        for o in self.outcomes:
            if id(o) not in seen:
                seen.add(id(o))
                unique.append(o)
        return unique

    @property
    def executed(self) -> int:
        return self._count("run", "worker")

    @property
    def hits(self) -> int:
        return self._count("cache", "resume")

    @property
    def failures(self) -> List[CellOutcome]:
        return [o for o in self._unique() if o.source == "failed"]

    def metrics(self) -> List[Dict[str, Any]]:
        return [o.metrics for o in self.outcomes]

    def records(self) -> Dict[str, Dict[str, Any]]:
        return {
            o.key: o.record for o in self.outcomes if o.record is not None
        }


Progress = Callable[[CellOutcome, int, int], None]


def _worker_execute(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level worker entry point (must be picklable)."""
    spec = JobSpec.from_dict(spec_dict)
    return make_record(spec, run_cell(spec))


def _load_checkpoint(path: pathlib.Path) -> Dict[str, Dict[str, Any]]:
    """Read a JSONL artifact, tolerating a torn trailing line."""
    records: Dict[str, Dict[str, Any]] = {}
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return records
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue  # interrupted mid-append; the cell just re-runs
        if isinstance(rec, dict) and "key" in rec and "metrics" in rec:
            records[rec["key"]] = rec
    return records


def run_cells(
    specs: Sequence[JobSpec],
    *,
    workers: int = 1,
    cache: Any = None,
    jsonl_path: Optional[os.PathLike] = None,
    resume: bool = False,
    check: bool = False,
    strict: bool = True,
    progress: Optional[Progress] = None,
    stop_after: Optional[int] = None,
) -> CampaignResult:
    """Complete every cell of a campaign; see the module docstring.

    Parameters
    ----------
    workers:
        ``<= 1`` runs cells sequentially in this process (the reference
        path); ``> 1`` fans misses across a process pool.
    cache:
        A :class:`~repro.campaign.cache.ResultCache` /
        :class:`~repro.campaign.cache.MemoryCache`; completed records are
        written back as they arrive.
    jsonl_path:
        Campaign artifact.  Executed records are appended live (the
        checkpoint); on completion the file is atomically rewritten with
        every record in input order.
    resume:
        Serve cells recorded in an existing ``jsonl_path`` instead of
        re-running them.
    check:
        After completion, re-run every cached/resumed/worker-produced
        record in-process and require bit-identical results.
    strict:
        Raise on the first failed cell (and on check mismatches) instead
        of collecting them on the result.
    stop_after:
        Stop launching new cells after this many executions — an
        interruption hook for checkpoint/resume tests.
    """
    t_start = time.monotonic()
    result = CampaignResult()
    jsonl = pathlib.Path(jsonl_path) if jsonl_path is not None else None
    checkpoint = _load_checkpoint(jsonl) if (resume and jsonl) else {}

    outcomes: List[CellOutcome] = []
    by_key: Dict[str, CellOutcome] = {}
    pending: List[CellOutcome] = []
    for spec in specs:
        key = spec.key
        if key in by_key:  # duplicate cell in the grid: one execution
            outcomes.append(by_key[key])
            continue
        record = checkpoint.get(key)
        source = "resume"
        if record is None and cache is not None:
            record = cache.get(key)
            source = "cache"
        out = CellOutcome(spec=spec, source=source if record else "pending",
                          record=record)
        by_key[key] = out
        outcomes.append(out)
        if record is None:
            pending.append(out)
    result.outcomes = outcomes

    total = len(pending)
    done = 0
    append_fh = None
    if jsonl is not None:
        jsonl.parent.mkdir(parents=True, exist_ok=True)
        append_fh = open(jsonl, "a" if resume else "w")

    def commit(out: CellOutcome, record: Dict[str, Any], wall: float,
               source: str) -> None:
        nonlocal done
        out.record = record
        out.source = source
        out.wall_s = wall
        done += 1
        if cache is not None:
            cache.put(out.key, record)
        if append_fh is not None:
            append_fh.write(json.dumps(record, sort_keys=True) + "\n")
            append_fh.flush()
        if progress is not None:
            progress(out, done, total)

    def fail(out: CellOutcome, err: BaseException) -> None:
        nonlocal done
        out.source = "failed"
        out.error = f"{type(err).__name__}: {err}"
        done += 1
        if progress is not None:
            progress(out, done, total)
        if strict:
            if append_fh is not None:
                append_fh.close()
            raise CampaignError(
                f"cell {out.spec.label()} failed: {out.error}"
            ) from err

    try:
        if workers <= 1:
            for out in pending:
                if stop_after is not None and done >= stop_after:
                    out.source = "skipped"
                    result.interrupted = True
                    continue
                t0 = time.monotonic()
                try:
                    record = make_record(out.spec, run_cell(out.spec))
                except Exception as err:
                    fail(out, err)
                    continue
                commit(out, record, time.monotonic() - t0, "run")
        elif pending:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                launched: Dict[Any, tuple] = {}
                for out in pending:
                    if stop_after is not None and len(launched) >= stop_after:
                        out.source = "skipped"
                        result.interrupted = True
                        continue
                    fut = pool.submit(
                        _worker_execute,
                        {"kind": out.spec.kind, "params": out.spec.params},
                    )
                    launched[fut] = (out, time.monotonic())
                not_done = set(launched)
                while not_done:
                    finished, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for fut in finished:
                        out, t0 = launched[fut]
                        err = fut.exception()
                        if err is not None:
                            fail(out, err)
                            continue
                        commit(out, fut.result(),
                               time.monotonic() - t0, "worker")
    finally:
        if append_fh is not None:
            append_fh.close()

    if check:
        mismatches = []
        for out in result.outcomes:
            if out.source not in ("cache", "resume", "worker"):
                continue
            expected = make_record(out.spec, run_cell(out.spec))
            if canonical_json(expected) != canonical_json(out.record):
                mismatches.append({
                    "key": out.key,
                    "label": out.spec.label(),
                    "source": out.source,
                    "stored": out.record,
                    "recomputed": expected,
                })
                # Overwrite the contradicted record so later campaigns
                # serve the verified in-process result, not the bad one.
                if cache is not None and out.key in cache:
                    cache.put(out.key, expected)
        result.check_failures = mismatches
        if mismatches and strict:
            raise CheckFailure(mismatches)

    # Final artifact: deterministic input order, one record per line.
    if jsonl is not None and not result.interrupted:
        complete = [o.record for o in result.outcomes if o.record is not None]
        tmp = jsonl.with_suffix(jsonl.suffix + f".tmp.{os.getpid()}")
        with open(tmp, "w") as fh:
            for rec in complete:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        os.replace(tmp, jsonl)

    result.wall_s = time.monotonic() - t_start
    return result
