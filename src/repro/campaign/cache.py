"""Content-addressed result caches for sweep campaigns.

Two interchangeable implementations: :class:`ResultCache` persists one
JSON file per cell key on disk (survives interruption, shared across
campaigns and processes), :class:`MemoryCache` holds records for one
session (the benchmark suite's within-run dedupe).  Keys are the
:attr:`repro.campaign.spec.JobSpec.key` hashes, so a cache never needs
explicit invalidation — code or spec changes simply miss.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Iterator, Optional

_KEY_HEX = set("0123456789abcdef")


class ResultCache:
    """Disk-backed cache: ``<root>/<key>.json`` per completed cell."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = pathlib.Path(root)

    def _path(self, key: str) -> pathlib.Path:
        if not key or set(key) - _KEY_HEX:
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)  # malformed keys raise, outside the net below
        try:
            with open(path) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # A torn write from an interrupted campaign is a miss, not an
            # error — the cell simply re-runs and overwrites it.
            return None

    def put(self, key: str, record: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as fh:
            json.dump(record, fh, sort_keys=True)
        os.replace(tmp, path)  # atomic: readers see old, torn-free, or new

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return iter(())
        return (p.stem for p in self.root.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())


class MemoryCache:
    """In-process cache with the same interface (one pytest session)."""

    def __init__(self) -> None:
        self._store: Dict[str, Dict[str, Any]] = {}

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._store.get(key)

    def put(self, key: str, record: Dict[str, Any]) -> None:
        self._store[key] = record

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def keys(self):
        return iter(self._store)

    def __len__(self) -> int:
        return len(self._store)
