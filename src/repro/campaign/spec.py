"""Declarative sweep cells and their content-addressed identity.

A campaign is a list of :class:`JobSpec` cells — plain ``kind`` +
JSON-serialisable ``params`` — so cells can cross process boundaries
(``ProcessPoolExecutor`` workers), be persisted to JSONL artifacts, and
be keyed for the result cache.  A cell's cache key is a stable hash of
its *full* spec plus a fingerprint of the ``repro`` source tree, so any
code change invalidates every cached result automatically.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Fingerprint of the installed ``repro`` package sources.

    A content hash (not mtimes) over every ``*.py`` file, so two checkouts
    of the same code share a cache while any edit — even to a module a
    cell never imports — starts a fresh one.  Conservative on purpose:
    a stale cached result is a silent wrong answer, an invalidated one
    merely costs a re-run.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = pathlib.Path(repro.__file__).parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(path.relative_to(root).as_posix().encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _CODE_VERSION = h.hexdigest()[:16]
    return _CODE_VERSION


def canonical_json(value: Any) -> str:
    """The one serialisation used for hashing, artifacts and comparisons."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobSpec:
    """One independent sweep cell: a workload kind plus its parameters."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze the parameters into a plain dict and fail fast on
        # anything that cannot survive a JSON round-trip (a spec that
        # cannot be serialised cannot be cached or shipped to a worker).
        object.__setattr__(self, "params", dict(self.params))
        canonical_json(self.params)

    def canonical(self) -> str:
        return canonical_json({"kind": self.kind, "params": self.params})

    @property
    def key(self) -> str:
        """Content-addressed identity: spec hash x code fingerprint."""
        h = hashlib.sha256()
        h.update(self.canonical().encode())
        h.update(b"|")
        h.update(code_version().encode())
        return h.hexdigest()

    @property
    def short_key(self) -> str:
        return self.key[:12]

    def label(self) -> str:
        """Compact human-readable cell description for progress lines."""
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.kind} {parts}" if parts else self.kind

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(kind=data["kind"], params=data.get("params", {}))


def make_record(spec: JobSpec, metrics: Dict[str, Any]) -> Dict[str, Any]:
    """The persisted/cached result of one cell.

    Deliberately excludes wall-clock time and hostnames: a record must be
    bit-identical no matter where or how fast the cell ran, so ``--check``
    can compare worker output against an in-process re-run byte-for-byte.
    """
    return {
        "key": spec.key,
        "kind": spec.kind,
        "params": spec.params,
        "code_version": code_version(),
        "metrics": metrics,
    }
