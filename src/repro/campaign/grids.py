"""Named sweep grids: the paper's figure/table campaigns as cell lists.

Each builder expands a figure's experimental grid (scheme x size/window x
pre-post x seed x scenario) into :class:`JobSpec` cells with defaults
matching the ``benchmarks/`` suite exactly, so a ``repro sweep`` artifact
is cell-for-cell comparable with the pytest figure output.  ``GRIDS``
maps the names accepted by ``python -m repro sweep --grid``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional

from repro.campaign.spec import JobSpec

SCHEMES = ("hardware", "static", "dynamic")

#: the paper's three plus the beyond-the-paper RDMA-write ring-buffer
#: eager scheme — the default axis for the sweeps that are ours rather
#: than the paper's (scaling)
EXTENDED_SCHEMES = SCHEMES + ("rdma-eager",)

#: The bandwidth figures' window axis (Figures 3-8).
BW_WINDOWS = (1, 2, 4, 8, 16, 32, 64, 100)

#: The latency figure's message-size axis (Figure 2).
LATENCY_SIZES = (4, 16, 64, 256, 1024, 4096, 16384)


def latency_grid(
    schemes: Iterable[str] = SCHEMES,
    sizes: Iterable[int] = LATENCY_SIZES,
    iterations: int = 50,
    prepost: int = 100,
) -> List[JobSpec]:
    return [
        JobSpec("latency", {"scheme": scheme, "size": size,
                            "iterations": iterations, "prepost": prepost})
        for scheme in schemes
        for size in sizes
    ]


def bandwidth_grid(
    schemes: Iterable[str] = SCHEMES,
    size: int = 4,
    windows: Iterable[int] = BW_WINDOWS,
    repetitions: int = 10,
    blocking: bool = True,
    prepost: int = 100,
) -> List[JobSpec]:
    return [
        JobSpec("bandwidth", {"scheme": scheme, "size": size,
                              "window": window, "repetitions": repetitions,
                              "blocking": blocking, "prepost": prepost})
        for scheme in schemes
        for window in windows
    ]


def nas_grid(
    kernels: Optional[Iterable[str]] = None,
    schemes: Iterable[str] = SCHEMES,
    preposts: Iterable[int] = (100, 1),
) -> List[JobSpec]:
    from repro.workloads.nas import KERNEL_ORDER

    return [
        JobSpec("nas", {"kernel": kernel, "scheme": scheme,
                        "prepost": prepost})
        for prepost in preposts
        for kernel in (kernels if kernels is not None else KERNEL_ORDER)
        for scheme in schemes
    ]


def chaos_grid(
    scenarios: Optional[Iterable[str]] = None,
    schemes: Iterable[str] = SCHEMES,
    seed: int = 7,
    prepost: Optional[int] = None,
    recovery: bool = False,
    congestion: Optional[str] = None,
    ft: bool = False,
) -> List[JobSpec]:
    from repro.faults import SCENARIOS

    names = list(scenarios) if scenarios is not None else sorted(SCENARIOS)
    specs = []
    for name in names:
        # Resolve the scenario's default depth now so a cell's key never
        # depends on how the depth was spelled.
        depth = SCENARIOS[name].prepost if prepost is None else prepost
        for scheme in schemes:
            params = {"scenario": name, "scheme": scheme,
                      "seed": seed, "prepost": depth}
            if recovery:
                # only keyed when on, so pre-recovery cache keys stay valid
                params["recovery"] = True
            if congestion is not None:
                # likewise: only keyed when the subsystem is armed
                params["congestion"] = congestion
            if ft:
                # likewise: pre-ft cache keys stay valid
                params["ft"] = True
            specs.append(JobSpec("chaos", params))
    return specs


#: The incast campaign's congestion-scheme axis.
CONGESTION_MODES = ("pfc", "ecn", "both")


def incast_grid(
    scenarios: Iterable[str] = ("incast-n1", "hotspot-skew", "victim-flow"),
    schemes: Iterable[str] = SCHEMES,
    modes: Iterable[str] = CONGESTION_MODES,
    seed: int = 7,
) -> List[JobSpec]:
    """Congestion scenarios x congestion modes x flow-control schemes."""
    specs = []
    for name in scenarios:
        for mode in modes:
            specs.extend(chaos_grid(scenarios=[name], schemes=schemes,
                                    seed=seed, congestion=mode))
    return specs


#: The scaling sweep's rank ladder — the paper's "order of 1,000 nodes".
RANK_LADDER = (64, 256, 1024)

#: Above this, the full-mesh arm is reported from the closed-form model
#: instead of simulated: a 1,024-rank mesh is ~1M live QP pairs.
MESH_MAX_RANKS = 256


def scaling_grid(
    ranks: Iterable[int] = RANK_LADDER,
    schemes: Iterable[str] = EXTENDED_SCHEMES,
    modes: Iterable[str] = ("mesh", "on-demand"),
    prepost: int = 1,
    iterations: int = 3,
    mesh_max_ranks: int = MESH_MAX_RANKS,
) -> List[JobSpec]:
    """Ranks x schemes x {mesh, on-demand} ring exchange on the canonical
    fat-tree for each rank count (:func:`repro.cluster.fat_tree_shape`;
    three-level at 1,024).  Mesh cells above ``mesh_max_ranks`` are
    dropped — ``repro scaling`` fills those table entries from the
    closed-form mesh model instead."""
    return [
        JobSpec("ring", {"nodes": r, "scheme": scheme, "prepost": prepost,
                         "iterations": iterations,
                         "on_demand": mode == "on-demand"})
        for r in ranks
        for scheme in schemes
        for mode in modes
        if not (mode == "mesh" and r > mesh_max_ranks)
    ]


class Grid(NamedTuple):
    description: str
    build: object  # Callable[..., List[JobSpec]]


def _fig(size: int, prepost: int, blocking: bool):
    def build(**overrides) -> List[JobSpec]:
        params = dict(size=size, prepost=prepost, blocking=blocking)
        params.update(overrides)
        return bandwidth_grid(**params)

    return build


GRIDS: Dict[str, Grid] = {
    "fig2": Grid("latency sweep, Figure 2 (21 cells)",
                 lambda **kw: latency_grid(**kw)),
    "fig3": Grid("BW 4B pre-post=100 blocking, Figure 3 (24 cells)",
                 _fig(4, 100, True)),
    "fig4": Grid("BW 4B pre-post=100 non-blocking, Figure 4 (24 cells)",
                 _fig(4, 100, False)),
    "fig5": Grid("BW 4B pre-post=10 blocking, Figure 5 (24 cells)",
                 _fig(4, 10, True)),
    "fig6": Grid("BW 4B pre-post=10 non-blocking, Figure 6 (24 cells)",
                 _fig(4, 10, False)),
    "fig7": Grid("BW 32K pre-post=10 blocking, Figure 7 (24 cells)",
                 _fig(32 * 1024, 10, True)),
    "fig8": Grid("BW 32K pre-post=10 non-blocking, Figure 8 (24 cells)",
                 _fig(32 * 1024, 10, False)),
    "fig3-smoke": Grid(
        "small Figure-3 grid for CI smoke (9 cells)",
        lambda **kw: bandwidth_grid(**{**dict(size=4, prepost=100,
                                              blocking=True,
                                              windows=(1, 4, 16)), **kw}),
    ),
    "nas": Grid("NAS kernels x schemes x pre-post {100,1}; Figures 9-10, "
                "Tables 1-2 (42 cells)",
                lambda **kw: nas_grid(**kw)),
    "chaos": Grid("fault scenarios x schemes robustness sweep (30 cells)",
                  lambda **kw: chaos_grid(**kw)),
    "incast": Grid("congestion scenarios x {pfc,ecn,both} x schemes "
                   "(27 cells)",
                   lambda **kw: incast_grid(**kw)),
    "scaling": Grid("ranks 64-1024 x all four schemes x {mesh, on-demand} "
                    "ring on fat-trees (20 cells)",
                    lambda **kw: scaling_grid(**kw)),
}


def build_grid(name: str, **overrides) -> List[JobSpec]:
    try:
        grid = GRIDS[name]
    except KeyError:
        raise ValueError(
            f"unknown grid {name!r} (know {', '.join(sorted(GRIDS))})"
        ) from None
    return grid.build(**{k: v for k, v in overrides.items() if v is not None})
