"""Executable sweep-cell kinds and their metric extraction.

Every campaign cell maps a :class:`~repro.campaign.spec.JobSpec` kind to
a function ``params -> metrics`` that builds the workload, runs it via
:func:`repro.cluster.run_job`, and reduces the :class:`JobResult` to a
plain JSON-serialisable dict.  Workers re-import this module, so the
registry must stay importable without side effects, and metrics must be
derived purely from the (deterministic) simulation — never from wall
clocks — so a worker's record is bit-identical to an in-process run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from repro.campaign.spec import JobSpec
from repro.cluster import TestbedConfig, run_job
from repro.cluster.job import JobResult
from repro.sim.units import to_us

CELL_KINDS: Dict[str, Callable[[Mapping[str, Any]], Dict[str, Any]]] = {}


def cell_kind(name: str):
    def register(fn):
        CELL_KINDS[name] = fn
        return fn

    return register


def run_cell(spec: JobSpec) -> Dict[str, Any]:
    """Execute one cell in the current process and return its metrics."""
    try:
        fn = CELL_KINDS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown cell kind {spec.kind!r} (know {sorted(CELL_KINDS)})"
        ) from None
    return fn(spec.params)


def latency_metrics(result: JobResult) -> Dict[str, Any]:
    """Reduce a latency run to metrics, preserving fractional nanoseconds.

    The ping-pong program averages over ``2 * iterations`` one-way trips,
    so the per-trip latency is almost never a whole nanosecond; truncating
    it (the old CLI's ``int(...)``) loses sub-microsecond resolution.
    """
    one_way_ns = float(result.rank_results[0])
    return {
        "latency_ns": one_way_ns,
        "latency_us": to_us(one_way_ns),
        "elapsed_ns": result.elapsed_ns,
    }


@cell_kind("latency")
def _latency_cell(p: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.workloads import latency_program

    r = run_job(
        latency_program(p["size"], iterations=p["iterations"]),
        2,
        p["scheme"],
        prepost=p["prepost"],
        config=TestbedConfig(nodes=2),
    )
    return latency_metrics(r)


@cell_kind("bandwidth")
def _bandwidth_cell(p: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.workloads import bandwidth_program

    r = run_job(
        bandwidth_program(
            p["size"],
            p["window"],
            repetitions=p["repetitions"],
            blocking=p["blocking"],
        ),
        2,
        p["scheme"],
        prepost=p["prepost"],
        config=TestbedConfig(nodes=2),
    )
    bw = r.rank_results[0]
    return {
        "mbps": bw.mbps,
        "bytes_moved": bw.bytes_moved,
        "transfer_ns": bw.elapsed_ns,
        "elapsed_ns": r.elapsed_ns,
    }


@cell_kind("nas")
def _nas_cell(p: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.workloads.nas import KERNELS

    try:
        kernel = KERNELS[p["kernel"]]
    except KeyError:
        raise ValueError(
            f"unknown NAS kernel {p['kernel']!r} (know {sorted(KERNELS)})"
        ) from None
    r = run_job(kernel.build(), kernel.nranks, p["scheme"], prepost=p["prepost"])
    return {
        "elapsed_ns": r.elapsed_ns,
        "elapsed_s": r.elapsed_s,
        "nranks": kernel.nranks,
        "fc": r.fc_dict(),
    }


@cell_kind("chaos")
def _chaos_cell(p: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.faults.scenarios import chaos_cell

    return chaos_cell(
        p["scenario"], p["scheme"], seed=p["seed"], prepost=p["prepost"],
        recovery=p.get("recovery", False),
        congestion=p.get("congestion"),
        ft=p.get("ft", False),
    )


@cell_kind("ring")
def _ring_cell(p: Mapping[str, Any]) -> Dict[str, Any]:
    """The scaling experiment's ring exchange on a fat-tree cluster.

    The tree shape comes from :func:`repro.cluster.fat_tree_shape` —
    two-level up to a few hundred ranks, the three-level pod topology at
    1,024 — and the metrics carry the memory model's byte counts so the
    sweep can render the Table-2-at-scale story.
    """
    from repro.cluster import fat_tree_shape

    nodes = p["nodes"]
    iterations = p["iterations"]
    cfg = TestbedConfig(nodes=nodes, **fat_tree_shape(nodes))

    def ring(mpi):
        nxt = (mpi.rank + 1) % mpi.world_size
        prv = (mpi.rank - 1) % mpi.world_size
        for i in range(iterations):
            rreq = yield from mpi.irecv(source=prv, capacity=4096, tag=i)
            yield from mpi.send(nxt, size=1024, tag=i)
            yield from mpi.wait(rreq)

    r = run_job(ring, nodes, p["scheme"], prepost=p["prepost"], config=cfg,
                on_demand=p["on_demand"], finalize=False)
    connections = (
        r.connections_established
        if r.connections_established is not None
        else nodes * (nodes - 1) // 2
    )
    posted = sum(
        c.recv_posted for ep in r.endpoints for c in ep.connections.values()
    )
    mem = r.memory
    return {
        "connections": connections,
        "posted_buffers": posted,
        "elapsed_ns": r.elapsed_ns,
        "elapsed_us": r.elapsed_us,
        "pinned_bytes": mem.vbuf_pinned_bytes,
        "ring_bytes": mem.ring_bytes,
        "qp_bytes": mem.qp_bytes,
        "total_bytes": mem.total_bytes,
        "per_rank_peak_bytes": mem.per_rank_peak_bytes,
    }
