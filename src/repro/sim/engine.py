"""The event loop at the heart of the simulator.

The :class:`Simulator` owns a binary-heap agenda of :class:`ScheduledEvent`
entries.  Each entry is ``(time, seq, callback)``; ``seq`` is a global
monotonically increasing integer so that events scheduled for the same
nanosecond fire in scheduling order.  This determinism is load-bearing: the
whole reproduction relies on bit-identical replays for its regression tests.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from repro.sim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


class ScheduledEvent:
    """A cancellable entry on the simulator agenda.

    Instances are returned by :meth:`Simulator.schedule`; calling
    :meth:`cancel` before the event fires removes its effect (the heap entry
    is lazily discarded).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<ScheduledEvent t={self.time} seq={self.seq}{state}>"


class Simulator:
    """Deterministic discrete-event simulator with an integer-ns clock.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer` receiving kernel events.
        When omitted a no-op tracer is used (the hot path stays cheap).
    """

    def __init__(self, tracer: Optional[Tracer] = None):
        self.now: int = 0
        self._heap: List[ScheduledEvent] = []
        self._seq: int = 0
        self._running = False
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: number of events executed so far (cancelled events excluded)
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable, *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` ``delay`` nanoseconds from now.

        ``delay`` must be a non-negative integer; fractional delays indicate
        a calibration bug upstream and are rejected to protect determinism.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.schedule_at(self.now + int(delay), callback, *args)

    def schedule_at(self, time: int, callback: Callable, *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is {self.now})"
            )
        self._seq += 1
        ev = ScheduledEvent(int(time), self._seq, callback, args)
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "") -> "Process":
        """Start a coroutine process; it takes its first step immediately
        (well: at the current simulated instant, after the current event)."""
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self.schedule(0, proc._step, None, None)
        return proc

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Execute events until the agenda empties.

        Parameters
        ----------
        until:
            Stop once the clock would pass this absolute time.  The clock is
            left at ``until``.
        max_events:
            Safety valve for tests: abort with :class:`SimulationError`
            after this many events (a livelock detector).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            while heap:
                ev = heapq.heappop(heap)
                if ev.cancelled:
                    continue
                if until is not None and ev.time > until:
                    heapq.heappush(heap, ev)
                    self.now = until
                    return
                self.now = ev.time
                self.events_executed += 1
                if max_events is not None and self.events_executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely livelock"
                    )
                ev.callback(*ev.args)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def peek(self) -> Optional[int]:
        """Time of the next non-cancelled event, or ``None`` if idle."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={len(self._heap)}>"
