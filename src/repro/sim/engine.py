"""The event loop at the heart of the simulator.

The :class:`Simulator` owns a binary-heap agenda plus a same-instant FIFO.
Heap entries are ``(time, seq, event)`` tuples; ``seq`` is a global
monotonically increasing integer so that events scheduled for the same
nanosecond fire in scheduling order.  This determinism is load-bearing: the
whole reproduction relies on bit-identical replays for its regression tests
(see ``tests/test_determinism_replay.py``), so every fast path below must
preserve the exact ``(time, seq)`` execution order and the value of
:attr:`Simulator.events_executed`.

Hot-path design notes
---------------------
* Heap entries are plain tuples, ordered by their leading ``(time, seq)``
  ints at C speed; ``seq`` is unique, so the third element never takes part
  in a comparison.
* Fire-and-forget scheduling (:meth:`Simulator.call_soon`,
  :meth:`call_later`, :meth:`call_at`) returns no cancellation handle and
  draws :class:`ScheduledEvent` records from a free list, recycling them
  after they fire.  :meth:`schedule`/:meth:`schedule_at` always allocate a
  fresh event so a caller-held handle can never alias a recycled one.
* Zero-delay events land on a deque (``call_soon``) instead of the heap —
  the dominant self-scheduling pattern of the progress engine costs O(1).
* Cancelled heap entries are discarded lazily; when they outnumber live
  ones the heap is compacted in one pass (see :meth:`_note_cancel`).
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional

from repro.sim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


def _as_int_ns(value: Any, what: str) -> int:
    """Validate an integral nanosecond quantity.

    Fractional delays indicate a calibration bug upstream and are rejected
    to protect determinism (truncating them silently would let two runs
    diverge depending on float rounding upstream).
    """
    if type(value) is int:
        return value
    if isinstance(value, int):  # bool / IntEnum / numpy-style integrals
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise SimulationError(
        f"non-integral {what} {value!r}: the clock is integer nanoseconds; "
        "round explicitly at the call site (see repro.sim.units)"
    )


class ScheduledEvent:
    """A cancellable entry on the simulator agenda.

    Instances are returned by :meth:`Simulator.schedule`; calling
    :meth:`cancel` before the event fires removes its effect (the heap entry
    is lazily discarded).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim", "_pooled")

    def __init__(self, time: int, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: back-ref for cancellation accounting; cleared once popped
        self._sim: Optional["Simulator"] = None
        #: free-list events never escape the kernel and may be recycled
        self._pooled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<ScheduledEvent t={self.time} seq={self.seq}{state}>"


#: cap on the ScheduledEvent free list (bounds idle memory, far above the
#: number of simultaneously pending pooled events in any workload)
_POOL_MAX = 4096

#: compact the heap once at least this many cancelled entries accumulate
#: *and* they outnumber the live ones
_COMPACT_MIN = 64


class Simulator:
    """Deterministic discrete-event simulator with an integer-ns clock.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer` receiving kernel events.
        When omitted a no-op tracer is used (the hot path stays cheap).
    """

    def __init__(self, tracer: Optional[Tracer] = None):
        self.now: int = 0
        self._heap: List[tuple] = []  # (time, seq, ScheduledEvent)
        self._now_q: Deque[tuple] = deque()  # FIFO of (seq, callback, args) at t == now
        self._seq: int = 0
        self._running = False
        self._free: List[ScheduledEvent] = []  # ScheduledEvent free list
        self._cancelled_pending = 0  # cancelled entries still in the heap
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: number of events executed so far (cancelled events excluded)
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable, *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` ``delay`` nanoseconds from now.

        ``delay`` must be a non-negative integer; fractional delays are
        rejected with :class:`SimulationError` to protect determinism.
        Returns a cancellable handle.
        """
        if type(delay) is not int:
            delay = _as_int_ns(delay, "delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self._push_handle(self.now + delay, callback, args)

    def schedule_at(self, time: int, callback: Callable, *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute simulated ``time`` (an
        integer; fractional times raise :class:`SimulationError`)."""
        if type(time) is not int:
            time = _as_int_ns(time, "time")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is {self.now})"
            )
        return self._push_handle(time, callback, args)

    def _push_handle(self, time: int, callback: Callable, args: tuple) -> ScheduledEvent:
        self._seq += 1
        ev = ScheduledEvent(time, self._seq, callback, args)
        ev._sim = self
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    # --- fire-and-forget fast paths -----------------------------------
    def call_soon(self, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at the current instant, after every event
        already scheduled for it.  Equivalent to ``schedule(0, ...)`` minus
        the cancellation handle and the heap traffic."""
        self._seq += 1
        self._now_q.append((self._seq, callback, args))

    def call_later(self, delay: int, callback: Callable, *args: Any) -> None:
        """``schedule(delay, ...)`` without a cancellation handle; pending
        state is drawn from the event free list and recycled after firing.
        (The push is open-coded — this is the single hottest scheduling
        entry point, fed by every ``Timeout`` yield.)"""
        if type(delay) is not int:
            delay = _as_int_ns(delay, "delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        seq = self._seq = self._seq + 1
        if delay == 0:
            self._now_q.append((seq, callback, args))
            return
        time = self.now + delay
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.callback = callback
            ev.args = args
        else:
            ev = ScheduledEvent(time, seq, callback, args)
            ev._pooled = True
        heapq.heappush(self._heap, (time, seq, ev))

    def call_at(self, time: int, callback: Callable, *args: Any) -> None:
        """``schedule_at(time, ...)`` without a cancellation handle."""
        if type(time) is not int:
            time = _as_int_ns(time, "time")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is {self.now})"
            )
        seq = self._seq = self._seq + 1
        if time == self.now:
            self._now_q.append((seq, callback, args))
            return
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.callback = callback
            ev.args = args
        else:
            ev = ScheduledEvent(time, seq, callback, args)
            ev._pooled = True
        heapq.heappush(self._heap, (time, seq, ev))

    # --- cancellation accounting --------------------------------------
    def _note_cancel(self) -> None:
        """A pending handle was cancelled; compact the heap when cancelled
        entries dominate (lazy-cancel would otherwise let pathological
        schedule/cancel churn grow the heap without bound)."""
        self._cancelled_pending += 1
        heap = self._heap
        if (
            self._cancelled_pending >= _COMPACT_MIN
            and self._cancelled_pending * 2 > len(heap)
        ):
            # In place: run() holds a local binding to this list across
            # callbacks, so the object identity must survive compaction.
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "") -> "Process":
        """Start a coroutine process; it takes its first step immediately
        (well: at the current simulated instant, after the current event)."""
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self.call_soon(proc._step, None, None)
        return proc

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Execute events until the agenda empties.

        Parameters
        ----------
        until:
            Stop once the clock would pass this absolute time.  The clock is
            left at ``until``.
        max_events:
            Safety valve for tests: abort with :class:`SimulationError`
            after this many events (a livelock detector).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heappop = heapq.heappop
        now_q = self._now_q
        popleft = now_q.popleft
        free = self._free
        heap = self._heap  # compaction is in-place, so this binding is stable
        # Infinity sentinels keep the per-event checks to one C-level
        # comparison each instead of an ``is not None`` branch plus one.
        limit = max_events if max_events is not None else float("inf")
        stop = until if until is not None else float("inf")
        executed = self.events_executed
        now = self.now  # local mirror; only this loop advances the clock
        # The event loop churns short-lived objects (events, headers, WCs)
        # that the cyclic collector scans over and over without freeing
        # anything refcounting doesn't already handle; pausing it for the
        # duration is worth ~5% wall time.  Restored even on error.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                # Same-instant FIFO first, unless a heap entry at the same
                # time holds an older seq (scheduled before the FIFO entry).
                if now_q:
                    entry = now_q[0]
                    if not heap or heap[0][0] > now or heap[0][1] > entry[0]:
                        popleft()
                        executed += 1
                        if executed > limit:
                            self.events_executed = executed
                            raise SimulationError(
                                f"exceeded max_events={max_events}; likely livelock"
                            )
                        entry[1](*entry[2])
                        continue
                if not heap:
                    break
                time, _seq, ev = heappop(heap)
                if ev.cancelled:
                    ev._sim = None
                    self._cancelled_pending -= 1
                    continue
                if time > stop:
                    heapq.heappush(heap, (time, ev.seq, ev))
                    self.now = until
                    return
                self.now = now = time
                executed += 1
                if executed > limit:
                    self.events_executed = executed
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely livelock"
                    )
                ev.callback(*ev.args)
                # Pooled events never carried a handle (``_sim`` stays
                # None); handle-backed ones must drop theirs so a late
                # cancel() cannot corrupt the cancellation accounting.
                if ev._pooled:
                    if len(free) < _POOL_MAX:
                        ev.callback = None
                        ev.args = ()
                        free.append(ev)
                else:
                    ev._sim = None
            if until is not None and until > self.now:
                self.now = until
        finally:
            self.events_executed = executed
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def every(self, interval_ns: int, callback: Callable[[], bool]) -> None:
        """Run ``callback()`` every ``interval_ns`` until it returns falsy.

        The callback decides its own lifetime: returning a truthy value
        re-arms the timer, returning falsy lets the chain die so the agenda
        can drain (a perpetual periodic event would keep :meth:`run` alive
        forever).  Used by the runtime invariant auditor's progress
        watchdog (``repro.check``), which disarms itself whenever no MPI
        work is pending and is re-armed by the next application send.
        """
        if type(interval_ns) is not int:
            interval_ns = _as_int_ns(interval_ns, "interval")
        if interval_ns <= 0:
            raise SimulationError(f"every() needs a positive interval, got {interval_ns}")

        def tick() -> None:
            if callback():
                self.call_later(interval_ns, tick)

        self.call_later(interval_ns, tick)

    def peek(self) -> Optional[int]:
        """Time of the next non-cancelled event, or ``None`` if idle."""
        if self._now_q:
            return self.now
        heap = self._heap
        while heap and heap[0][2].cancelled:
            _, _, ev = heapq.heappop(heap)
            ev._sim = None
            self._cancelled_pending -= 1
        return heap[0][0] if heap else None

    @property
    def _pending(self) -> int:
        return len(self._heap) + len(self._now_q)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self._pending}>"
