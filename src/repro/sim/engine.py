"""The event loop at the heart of the simulator.

The :class:`Simulator` owns a **calendar-queue agenda** plus a same-instant
FIFO.  Agenda entries are plain tuples led by ``(time, seq)``; ``seq`` is a
global monotonically increasing integer so that events scheduled for the
same nanosecond fire in scheduling order.  This determinism is load-bearing:
the whole reproduction relies on bit-identical replays for its regression
tests (see ``tests/test_determinism_replay.py``), so every fast path below
must preserve the exact ``(time, seq)`` execution order and the value of
:attr:`Simulator.events_executed`.

Calendar-queue layout (kernel v3)
---------------------------------
The agenda is a ring of ``_NBUCKETS`` buckets, each covering a
``2**_SHIFT`` ns *epoch* of the integer clock (``epoch = time >> _SHIFT``).
An entry whose epoch falls inside the ring window ``[_cur, _cur +
_NBUCKETS)`` is **appended unsorted** to its bucket — O(1), no heap
sift — and the bucket is sorted once (C timsort over tuples) when its epoch
becomes *active*.  Entries beyond the window (ACK timeouts, RNR backoff,
watchdog timers — the far-future tail) go to a small binary-heap overflow
tier and migrate into their bucket when the ring reaches their epoch.

The active bucket is consumed through an index (:attr:`_head`) rather than
popped, so draining it is O(1) per event with no memmove.  A push landing in
the active epoch (or, after ``run(until=...)`` parked the clock mid-epoch,
an earlier one) is insorted into the active bucket's un-consumed suffix —
rare, and the bucket only ever holds the few entries of one ~4 µs window.
The near-future-heavy schedule distribution our fabric produces (HCA
pipeline delays, serialisation times, progress-engine polls — almost all
within a few µs) makes schedule/pop O(1) amortised, versus O(log n) heap
sifts over an agenda that grows with rank count.

Hot-path design notes
---------------------
* Agenda entries are plain tuples ordered by their leading ``(time, seq)``
  ints at C speed; ``seq`` is unique, so later elements never take part in
  a comparison — which permits *mixed* entry shapes: fire-and-forget
  events are raw ``(time, seq, callback, args)`` 4-tuples (no event object
  at all), cancellable handles are ``(time, seq, ScheduledEvent)``
  3-tuples, distinguished at dispatch by ``len``.
* Zero-delay events land on a deque (``call_soon``) instead of the agenda —
  the dominant self-scheduling pattern of the progress engine costs O(1).
* Cancelled agenda entries are discarded lazily; when they outnumber live
  ones the whole agenda is compacted in one pass (see :meth:`_compact`),
  which recomputes the cancellation counter exactly — it is therefore
  idempotent and the counter can never go negative (each cancelled entry
  is physically discarded exactly once, by the run loop, ``peek``, or the
  compaction itself).
* ``run(max_events=...)`` checks the budget *before* consuming an entry:
  when it raises, every counted event actually ran and the would-be-next
  entry is still on the agenda, so post-mortem state tells the truth.
"""

from __future__ import annotations

import gc
from bisect import insort
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Deque, Generator, List, Optional

from repro.sim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


def _as_int_ns(value: Any, what: str) -> int:
    """Validate an integral nanosecond quantity.

    Fractional delays indicate a calibration bug upstream and are rejected
    to protect determinism (truncating them silently would let two runs
    diverge depending on float rounding upstream).
    """
    if type(value) is int:
        return value
    if isinstance(value, int):  # bool / IntEnum / numpy-style integrals
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise SimulationError(
        f"non-integral {what} {value!r}: the clock is integer nanoseconds; "
        "round explicitly at the call site (see repro.sim.units)"
    )


class ScheduledEvent:
    """A cancellable entry on the simulator agenda.

    Instances are returned by :meth:`Simulator.schedule`; calling
    :meth:`cancel` before the event fires removes its effect (the agenda
    entry is lazily discarded).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: int, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: back-ref for cancellation accounting; cleared once discarded
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<ScheduledEvent t={self.time} seq={self.seq}{state}>"


#: log2 of the bucket width: 4096 ns epochs.  Almost every fabric/HCA delay
#: (serialisation, pipeline, polls) is well under one epoch, so pushes are
#: plain appends into the first few ring slots.
_SHIFT = 12

#: ring size (power of two).  Window = 256 * 4096 ns ≈ 1.05 ms, which keeps
#: RNR base timers (~320 µs) in-ring; only long backoff/watchdog timers hit
#: the overflow heap.
_NBUCKETS = 256
_MASK = _NBUCKETS - 1

#: compact the agenda once at least this many cancelled entries accumulate
#: *and* they outnumber the live ones
_COMPACT_MIN = 64


class Simulator:
    """Deterministic discrete-event simulator with an integer-ns clock.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer` receiving kernel events.
        When omitted a no-op tracer is used (the hot path stays cheap).
    """

    __slots__ = (
        "now",
        "_buckets",
        "_cur",
        "_limit",
        "_active",
        "_head",
        "_count",
        "_over",
        "_now_q",
        "_seq",
        "_running",
        "_cancelled_pending",
        "tracer",
        "events_executed",
    )

    def __init__(self, tracer: Optional[Tracer] = None):
        self.now: int = 0
        # --- calendar-queue agenda (see module docstring) ---
        self._buckets: List[List[tuple]] = [[] for _ in range(_NBUCKETS)]
        self._cur: int = 0  # epoch of the active bucket
        self._limit: int = _NBUCKETS  # first epoch beyond the ring window
        self._active: List[tuple] = self._buckets[0]  # == _buckets[_cur & _MASK]
        self._head: int = 0  # consume index into the active bucket
        self._count: int = 0  # un-consumed entries across all ring buckets
        self._over: List[tuple] = []  # far-future overflow (binary heap)
        self._now_q: Deque[tuple] = deque()  # FIFO of (seq, callback, args) at t == now
        self._seq: int = 0
        self._running = False
        self._cancelled_pending = 0  # cancelled entries still on the agenda
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: number of events executed so far (cancelled events excluded)
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable, *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` ``delay`` nanoseconds from now.

        ``delay`` must be a non-negative integer; fractional delays are
        rejected with :class:`SimulationError` to protect determinism.
        Returns a cancellable handle.
        """
        if type(delay) is not int:
            delay = _as_int_ns(delay, "delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self._push_handle(self.now + delay, callback, args)

    def schedule_at(self, time: int, callback: Callable, *args: Any) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute simulated ``time`` (an
        integer; fractional times raise :class:`SimulationError`)."""
        if type(time) is not int:
            time = _as_int_ns(time, "time")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is {self.now})"
            )
        return self._push_handle(time, callback, args)

    def _push_handle(self, time: int, callback: Callable, args: tuple) -> ScheduledEvent:
        seq = self._seq = self._seq + 1
        ev = ScheduledEvent(time, seq, callback, args)
        ev._sim = self
        self._insert(time, (time, seq, ev))
        return ev

    def _insert(self, time: int, entry: tuple) -> None:
        """Place ``entry`` (led by ``(time, seq)``) on the agenda.

        Hot call sites (``call_later``, the Timeout resume in process.py,
        the fabric delivery trains) open-code this body; keep them in sync.
        """
        idx = time >> _SHIFT
        if idx <= self._cur:
            # Active epoch — or, after run(until=) parked the clock
            # mid-epoch, an earlier one; either way the active bucket is
            # the front of the agenda and full-key insort keeps it ordered.
            insort(self._active, entry, self._head)
            self._count += 1
        elif idx < self._limit:
            self._buckets[idx & _MASK].append(entry)
            self._count += 1
        else:
            heappush(self._over, entry)

    # --- fire-and-forget fast paths -----------------------------------
    def call_soon(self, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at the current instant, after every event
        already scheduled for it.  Equivalent to ``schedule(0, ...)`` minus
        the cancellation handle and the agenda traffic."""
        self._seq += 1
        self._now_q.append((self._seq, callback, args))

    def call_later(self, delay: int, callback: Callable, *args: Any) -> None:
        """``schedule(delay, ...)`` without a cancellation handle; the entry
        is a bare 4-tuple, no event object at all.  (The insert is
        open-coded — this is the single hottest scheduling entry point,
        fed by every ``Timeout`` yield.)"""
        if type(delay) is not int:
            delay = _as_int_ns(delay, "delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        seq = self._seq = self._seq + 1
        if delay == 0:
            self._now_q.append((seq, callback, args))
            return
        time = self.now + delay
        idx = time >> _SHIFT
        if idx <= self._cur:
            insort(self._active, (time, seq, callback, args), self._head)
            self._count += 1
        elif idx < self._limit:
            self._buckets[idx & _MASK].append((time, seq, callback, args))
            self._count += 1
        else:
            heappush(self._over, (time, seq, callback, args))

    def call_at(self, time: int, callback: Callable, *args: Any) -> None:
        """``schedule_at(time, ...)`` without a cancellation handle."""
        if type(time) is not int:
            time = _as_int_ns(time, "time")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is {self.now})"
            )
        seq = self._seq = self._seq + 1
        if time == self.now:
            self._now_q.append((seq, callback, args))
            return
        idx = time >> _SHIFT
        if idx <= self._cur:
            insort(self._active, (time, seq, callback, args), self._head)
            self._count += 1
        elif idx < self._limit:
            self._buckets[idx & _MASK].append((time, seq, callback, args))
            self._count += 1
        else:
            heappush(self._over, (time, seq, callback, args))

    # --- bucket rotation ----------------------------------------------
    def _advance(self) -> bool:
        """Rotate to the next non-empty epoch; False when the agenda is
        empty.  Precondition: the active bucket is fully consumed."""
        active = self._active
        if active:
            active.clear()
        self._head = 0
        over = self._over
        cur = self._cur
        if self._count == 0:
            if not over:
                return False
            # Ring empty: jump straight to the overflow head's epoch.
            cur = over[0][0] >> _SHIFT
        else:
            # Some ring bucket is non-empty, so this scan terminates within
            # _NBUCKETS steps; it also stops at the overflow head's epoch
            # so far-future entries migrate before anything later runs.
            buckets = self._buckets
            oe = (over[0][0] >> _SHIFT) if over else -1
            cur += 1
            while not buckets[cur & _MASK]:
                if cur == oe:
                    break
                cur += 1
        self._cur = cur
        self._limit = cur + _NBUCKETS
        b = self._buckets[cur & _MASK]
        if over:
            count = self._count
            while over and (over[0][0] >> _SHIFT) <= cur:
                b.append(heappop(over))
                count += 1
            self._count = count
        if len(b) > 1:
            b.sort()
        self._active = b
        return True

    # --- cancellation accounting --------------------------------------
    def _note_cancel(self) -> None:
        """A pending handle was cancelled; compact the agenda when
        cancelled entries dominate (lazy-cancel would otherwise let
        pathological schedule/cancel churn grow the agenda without
        bound)."""
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= _COMPACT_MIN
            and self._cancelled_pending * 2 > self._count + len(self._over)
        ):
            self._compact()

    def _compact(self) -> None:
        """Remove every cancelled entry from the agenda in one pass.

        Recomputes ``_count`` and zeroes ``_cancelled_pending`` from what
        is actually present, so it is idempotent and safe to call at any
        instant — including between ``peek()`` discards, which share the
        same per-entry accounting (one decrement where an entry is
        physically dropped, never anywhere else).  Bucket lists are
        filtered in place: ``run()`` holds a local binding to the active
        bucket across callbacks, and only its un-consumed suffix (from
        ``_head``) is touched, so the consume index stays valid.
        """
        cur_slot = self._cur & _MASK
        active = self._active
        head = self._head
        live = []
        append = live.append
        for e in active[head:]:
            if len(e) == 3 and e[2].cancelled:
                e[2]._sim = None
            else:
                append(e)
        active[head:] = live
        count = len(live)
        for slot, b in enumerate(self._buckets):
            if slot == cur_slot or not b:
                continue
            kept = []
            append = kept.append
            for e in b:
                if len(e) == 3 and e[2].cancelled:
                    e[2]._sim = None
                else:
                    append(e)
            if len(kept) != len(b):
                b[:] = kept
            count += len(kept)
        self._count = count
        over = self._over
        if over:
            kept = []
            append = kept.append
            for e in over:
                if len(e) == 3 and e[2].cancelled:
                    e[2]._sim = None
                else:
                    append(e)
            if len(kept) != len(over):
                over[:] = kept
                heapify(over)
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "") -> "Process":
        """Start a coroutine process; it takes its first step immediately
        (well: at the current simulated instant, after the current event)."""
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self.call_soon(proc._step, None, None)
        return proc

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Execute events until the agenda empties.

        Parameters
        ----------
        until:
            Stop once the clock would pass this absolute time.  The clock is
            left at ``until``.
        max_events:
            Safety valve for tests: abort with :class:`SimulationError`
            after this many events (a livelock detector).  The check runs
            *before* an entry is consumed, so on raise exactly
            ``max_events`` callbacks have run, ``events_executed`` equals
            ``max_events``, and the next-due entry is still on the agenda.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        now_q = self._now_q
        popleft = now_q.popleft
        advance = self._advance
        # Infinity sentinels keep the per-event checks to one C-level
        # comparison each instead of an ``is not None`` branch plus one.
        limit = max_events if max_events is not None else float("inf")
        stop = until if until is not None else float("inf")
        executed = self.events_executed
        now = self.now  # local mirror; only this loop advances the clock
        # The event loop churns short-lived objects (events, headers, WCs)
        # that the cyclic collector scans over and over without freeing
        # anything refcounting doesn't already handle; pausing it for the
        # duration is worth ~5% wall time.  Restored even on error.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                # Same-instant FIFO first, unless an agenda entry at the
                # same time holds an older seq (scheduled before the FIFO
                # entry).  Agenda entries at t == now can only live in the
                # active bucket (every other tier holds later epochs), so
                # an exhausted active bucket means the FIFO entry runs.
                # _head/_active are re-read every iteration: a callback may
                # insort ahead of the consume index or trigger compaction.
                if now_q:
                    fe = now_q[0]
                    active = self._active
                    i = self._head
                    if (
                        i == len(active)
                        or (e := active[i])[0] > now
                        or e[1] > fe[0]
                    ):
                        if executed >= limit:
                            self.events_executed = executed
                            raise SimulationError(
                                f"exceeded max_events={max_events}; likely livelock"
                            )
                        popleft()
                        executed += 1
                        fe[1](*fe[2])
                        continue
                    # else: e is the agenda head and wins; fall through
                else:
                    active = self._active
                    i = self._head
                    if i == len(active):
                        if not advance():
                            break
                        # advance() only returns True with a non-empty
                        # active bucket (it migrates or finds an entry).
                        active = self._active
                        i = 0
                    e = active[i]
                time = e[0]
                if len(e) == 3:
                    ev = e[2]
                    if ev.cancelled:
                        self._head = i + 1
                        self._count -= 1
                        self._cancelled_pending -= 1
                        ev._sim = None
                        continue
                    if time > stop:
                        self.now = until
                        return
                    if executed >= limit:
                        self.events_executed = executed
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely livelock"
                        )
                    self._head = i + 1
                    self._count -= 1
                    self.now = now = time
                    executed += 1
                    ev.callback(*ev.args)
                    # Drop the back-ref so a late cancel() cannot corrupt
                    # the cancellation accounting.
                    ev._sim = None
                else:
                    if time > stop:
                        self.now = until
                        return
                    if executed >= limit:
                        self.events_executed = executed
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely livelock"
                        )
                    self._head = i + 1
                    self._count -= 1
                    self.now = now = time
                    executed += 1
                    e[2](*e[3])
            if until is not None and until > self.now:
                self.now = until
                # The ring is empty here (advance() returned False), but
                # _cur still names the last consumed epoch.  Fast-forward
                # it to the parked clock so a later schedule at t == now
                # lands in the *active* bucket — the now-FIFO arbitration
                # above relies on same-instant agenda entries living there.
                cur = until >> _SHIFT
                if cur > self._cur:
                    self._cur = cur
                    self._limit = cur + _NBUCKETS
                    self._active = self._buckets[cur & _MASK]
                    self._head = 0
        finally:
            self.events_executed = executed
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def every(self, interval_ns: int, callback: Callable[[], bool]) -> None:
        """Run ``callback()`` every ``interval_ns`` until it returns falsy.

        The callback decides its own lifetime: returning a truthy value
        re-arms the timer, returning falsy lets the chain die so the agenda
        can drain (a perpetual periodic event would keep :meth:`run` alive
        forever).  Used by the runtime invariant auditor's progress
        watchdog (``repro.check``), which disarms itself whenever no MPI
        work is pending and is re-armed by the next application send.
        """
        if type(interval_ns) is not int:
            interval_ns = _as_int_ns(interval_ns, "interval")
        if interval_ns <= 0:
            raise SimulationError(f"every() needs a positive interval, got {interval_ns}")

        def tick() -> None:
            if callback():
                self.call_later(interval_ns, tick)

        self.call_later(interval_ns, tick)

    def peek(self) -> Optional[int]:
        """Time of the next non-cancelled event, or ``None`` if idle."""
        if self._now_q:
            return self.now
        while True:
            active = self._active
            i = self._head
            if i == len(active):
                if not self._advance():
                    return None
                continue
            e = active[i]
            if len(e) == 3 and e[2].cancelled:
                self._head = i + 1
                self._count -= 1
                self._cancelled_pending -= 1
                e[2]._sim = None
                continue
            return e[0]

    @property
    def _pending(self) -> int:
        return len(self._now_q) + self._count + len(self._over)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self._pending}>"
