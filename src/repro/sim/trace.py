"""Lightweight instrumentation: counters and an optional event trace.

Every layer of the stack reports into a :class:`Tracer` (one per simulated
cluster).  The benchmark harness reads counters such as
``"fc.ecm_sent"`` or ``"ib.rnr_nak"`` to build the paper's tables; the
record stream is only populated when tracing is explicitly enabled so the
simulation hot path stays allocation-free by default.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named family of integer counters keyed by an arbitrary hashable
    label (for per-connection statistics use ``(src, dst)`` tuples)."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: Dict[Any, int] = defaultdict(int)

    def add(self, key: Any = None, amount: int = 1) -> None:
        self.values[key] += amount

    def get(self, key: Any = None) -> int:
        return self.values.get(key, 0)

    def total(self) -> int:
        return sum(self.values.values())

    def max(self) -> int:
        return max(self.values.values()) if self.values else 0

    def items(self) -> Iterable[Tuple[Any, int]]:
        return self.values.items()

    def snapshot(self) -> Dict[Any, int]:
        """A plain (non-default) dict copy of the per-key values — safe to
        serialise, diff, or mutate without touching the live counter."""
        return dict(self.values)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name} total={self.total()}>"


class Gauge:
    """Tracks a current value and its high-water mark per key."""

    __slots__ = ("name", "values", "peaks")

    def __init__(self, name: str):
        self.name = name
        self.values: Dict[Any, int] = defaultdict(int)
        self.peaks: Dict[Any, int] = defaultdict(int)

    def set(self, key: Any, value: int) -> None:
        self.values[key] = value
        if value > self.peaks[key]:
            self.peaks[key] = value

    def adjust(self, key: Any, delta: int) -> None:
        self.set(key, self.values[key] + delta)

    def get(self, key: Any) -> int:
        return self.values.get(key, 0)

    def peak(self, key: Any = None) -> int:
        if key is not None:
            return self.peaks.get(key, 0)
        return max(self.peaks.values()) if self.peaks else 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Gauge {self.name} peak={self.peak()}>"


class Tracer:
    """Aggregates counters/gauges and (optionally) a raw event log.

    Parameters
    ----------
    enabled:
        When False (the default for production runs) :meth:`record` is a
        no-op; counters always work.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.records: List[Tuple[int, str, tuple]] = []

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            c = self.counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            g = self.gauges[name] = Gauge(name)
            return g

    def count(self, name: str, key: Any = None, amount: int = 1) -> None:
        self.counter(name).add(key, amount)

    def record(self, time: int, kind: str, *detail: Any) -> None:
        if self.enabled:
            self.records.append((time, kind, detail))

    def records_of(self, kind: str) -> List[Tuple[int, str, tuple]]:
        return [r for r in self.records if r[1] == kind]

    def summary(self) -> Dict[str, int]:
        """Total of every counter — convenient for assertions and reports."""
        return {name: c.total() for name, c in sorted(self.counters.items())}

    def __iter__(self):
        """Iterate counters in sorted-name order.

        Registration order depends on which layer fired first, which can
        differ between schemes/runs; sorted iteration keeps chaos reports
        and baseline-file diffs stable.
        """
        for name in sorted(self.counters):
            yield self.counters[name]

    def snapshot(self) -> Dict[str, Dict[Any, int]]:
        """Per-key values of every counter, sorted by counter name."""
        return {c.name: c.snapshot() for c in self}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Tracer counters={len(self.counters)} records={len(self.records)}>"
