"""Things a simulated process can ``yield`` on.

A *waitable* implements ``_block(sim, process)``: the kernel calls it when a
process yields the object, and the waitable later resumes the process via
``process._resume(value, exc)``.  Besides :class:`Timeout`, the workhorse is
:class:`Signal` — a one-shot event used throughout the stack for completion
notification (CQ arrivals, request completion, credit arrival, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.process import Process


class Waitable:
    """Interface for yieldable objects.  Subclasses override ``_block``."""

    def _block(self, sim: "Simulator", process: "Process") -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Resume the yielding process after ``delay`` nanoseconds.

    ``yield Timeout(0)`` is a valid "re-schedule me after the current event
    cascade" idiom and is used by progress loops to avoid starving peers.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = int(delay)

    def _block(self, sim: "Simulator", process: "Process") -> None:
        sim.call_later(self.delay, process._resume, None, None)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay})"


class Signal(Waitable):
    """A one-shot broadcast event carrying an optional value.

    Any number of processes may wait on the same signal; :meth:`fire` wakes
    them all (in wait order, at the current instant).  Waiting on an
    already-fired signal resumes immediately with the stored value.  A signal
    may also carry an exception via :meth:`fail`, which re-raises inside each
    waiter — this is how the stack propagates fatal transport errors into
    blocked MPI calls.
    """

    __slots__ = ("name", "fired", "value", "exc", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self.fired = False
        self.value: Any = None
        self.exc: Optional[BaseException] = None
        self._waiters: List["Process"] = []

    def _block(self, sim: "Simulator", process: "Process") -> None:
        if self.fired:
            sim.call_soon(process._resume, self.value, self.exc)
        else:
            self._waiters.append(process)

    def fire(self, sim: "Simulator", value: Any = None) -> None:
        """Mark the signal fired and wake every waiter."""
        if self.fired:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            sim.call_soon(proc._resume, value, None)

    def fail(self, sim: "Simulator", exc: BaseException) -> None:
        """Mark the signal fired with an exception; waiters re-raise it."""
        if self.fired:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.exc = exc
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            sim.call_soon(proc._resume, None, exc)

    def __repr__(self) -> str:  # pragma: no cover
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"<Signal {self.name!r} {state}>"


class AllOf(Waitable):
    """Wait until *all* child signals have fired; value is the list of child
    values in the order given."""

    def __init__(self, children: Sequence[Signal]):
        self.children = list(children)

    def _block(self, sim: "Simulator", process: "Process") -> None:
        remaining = [c for c in self.children if not c.fired]
        state = {"count": len(remaining)}
        if state["count"] == 0:
            sim.call_soon(process._resume, [c.value for c in self.children], None)
            return

        def on_child(value: Any, parent: "Process" = process) -> None:
            state["count"] -= 1
            if state["count"] == 0:
                parent._resume([c.value for c in self.children], None)

        for child in remaining:
            child._waiters.append(_CallbackWaiter(on_child))


class AnyOf(Waitable):
    """Wait until *any* child signal fires; value is ``(index, value)`` of
    the first child to fire.  Late children are ignored (their resume hits a
    dead callback waiter)."""

    def __init__(self, children: Sequence[Signal]):
        self.children = list(children)

    def _block(self, sim: "Simulator", process: "Process") -> None:
        for i, child in enumerate(self.children):
            if child.fired:
                sim.call_soon(process._resume, (i, child.value), None)
                return
        state = {"done": False}

        def make_cb(index: int):
            def on_child(value: Any, parent: "Process" = process) -> None:
                if not state["done"]:
                    state["done"] = True
                    parent._resume((index, value), None)

            return on_child

        for i, child in enumerate(self.children):
            child._waiters.append(_CallbackWaiter(make_cb(i)))


class _CallbackWaiter:
    """Adapter letting plain callbacks sit in a Signal's waiter list."""

    __slots__ = ("_cb",)

    def __init__(self, cb):
        self._cb = cb

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if exc is not None:
            raise exc
        self._cb(value)
