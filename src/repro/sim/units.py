"""Unit helpers.

Everything in the simulator is integer nanoseconds and bytes.  These helpers
keep calibration code readable and centralise the (rounding) conversions.
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

KIB = 1024
MIB = 1024 * 1024


def us(value: float) -> int:
    """Microseconds → integer nanoseconds."""
    return int(round(value * NS_PER_US))


def ms(value: float) -> int:
    """Milliseconds → integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def seconds(ns: int) -> float:
    """Integer nanoseconds → float seconds (for reporting only)."""
    return ns / NS_PER_S


def to_us(ns: int) -> float:
    """Integer nanoseconds → float microseconds (for reporting only)."""
    return ns / NS_PER_US


def mb_per_s(ns: int, nbytes: int) -> float:
    """Throughput in the paper's unit (10^6 bytes per second).

    The original figures use MillionBytes/s as was conventional for
    micro-benchmarks of the era.
    """
    if ns <= 0:
        return 0.0
    return (nbytes / 1e6) / (ns / NS_PER_S)


def transfer_ns(nbytes: int, bytes_per_ns: float) -> int:
    """Serialisation delay of ``nbytes`` at ``bytes_per_ns``, ≥ 1 ns for any
    non-empty transfer (zero-duration transfers would break link FIFOs)."""
    if nbytes <= 0:
        return 0
    return max(1, int(round(nbytes / bytes_per_ns)))


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Link signalling rate in Gbit/s → payload bytes per nanosecond.

    InfiniBand uses 8b/10b encoding, so a 10 Gbit/s (4X) link carries
    8 Gbit/s = 1 byte/ns of data.
    """
    return gbps * 0.8 / 8.0
