"""Discrete-event simulation kernel.

A minimal, dependency-free DES kernel in the style of SimPy, specialised for
this reproduction:

* the clock is an **integer nanosecond** counter — event ordering is exact
  and runs are bit-reproducible;
* simulated actors are plain Python generators ("processes") that ``yield``
  *waitables* (:class:`Timeout`, :class:`Signal`, another :class:`Process`,
  :class:`AllOf`, :class:`AnyOf`);
* ties are broken by a monotonically increasing sequence number, so two runs
  of the same program produce identical event orders.

Example
-------
>>> from repro.sim import Simulator, Timeout
>>> sim = Simulator()
>>> def hello():
...     yield Timeout(1000)
...     return sim.now
>>> proc = sim.spawn(hello())
>>> sim.run()
>>> proc.result
1000
"""

from repro.sim.engine import ScheduledEvent, Simulator
from repro.sim.process import Process, ProcessKilled
from repro.sim.trace import Counter, Tracer
from repro.sim.waitables import AllOf, AnyOf, Signal, Timeout, Waitable

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Process",
    "ProcessKilled",
    "ScheduledEvent",
    "Signal",
    "Simulator",
    "Timeout",
    "Tracer",
    "Waitable",
]
