"""Coroutine processes driven by the simulation kernel.

A process wraps a Python generator.  Each ``yield`` hands a
:class:`~repro.sim.waitables.Waitable` to the kernel; when it fires, the
generator is resumed with the waitable's value.  ``return value`` inside the
generator becomes :attr:`Process.result`, and a finished process is itself a
waitable (join semantics), so programs compose with ``yield from`` for
sub-routines and ``yield other_process`` for fork/join.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator, List, Optional

from repro.sim.engine import _MASK, _SHIFT
from repro.sim.waitables import Timeout, Waitable

#: shared resume-args tuple — every Timeout wakeup resumes with (None, None)
_NONE2 = (None, None)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class ProcessKilled(Exception):
    """Injected into a generator by :meth:`Process.kill`."""


class ProcessFailed(RuntimeError):
    """Raised in a joiner when the joined process died with an exception."""

    def __init__(self, process: "Process", cause: BaseException):
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.cause = cause


class Process(Waitable):
    """A running simulated activity.

    Attributes
    ----------
    alive:
        True until the generator returns, raises, or is killed.
    result:
        The generator's return value once finished.
    failure:
        The exception that terminated the generator, if any.  Unhandled
        process failures are re-raised from :meth:`Simulator.run` via the
        joiners; a process nobody joins re-raises immediately so errors are
        never silently dropped.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        self.sim = sim
        self.gen = generator
        self.name = name or getattr(generator, "__name__", "proc")
        self.alive = True
        self.result: Any = None
        self.failure: Optional[BaseException] = None
        self._joiners: List[Process] = []
        self._join_cbs: List[Any] = []
        # Hot path: bind once.  ``_resume`` is scheduled tens of thousands
        # of times per run; shadowing the methods with instance attributes
        # avoids a bound-method allocation per wakeup, and ``_send`` skips
        # one attribute chain per step.  ``_step`` is the same function —
        # the alive guard is folded in (a dead process ignores stale
        # wakeups either way, and one wrapper frame per event adds up).
        self._send = generator.send
        self._resume = self._resume
        self._step = self._resume

    # ------------------------------------------------------------------
    # kernel interface
    # ------------------------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self.alive:
            return
        try:
            if exc is None:
                item = self._send(value)
            else:
                item = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except ProcessKilled:
            self._finish(None, None)
            return
        except BaseException as err:  # noqa: BLE001 - must capture any failure
            self._finish(None, err)
            return
        # Timeout is by far the most common waitable (every modelled CPU
        # cost); its wakeup is open-coded against the kernel internals —
        # equivalent to ``sim.call_later(delay, self._resume, None, None)``
        # minus two call frames.  Timeout.__init__ validated the delay.
        if item.__class__ is Timeout:
            sim = self.sim
            delay = item.delay
            seq = sim._seq = sim._seq + 1
            if delay == 0:
                sim._now_q.append((seq, self._resume, _NONE2))
            else:
                # Open-coded Simulator._insert of a bare 4-tuple entry.
                t = sim.now + delay
                idx = t >> _SHIFT
                if idx <= sim._cur:
                    insort(sim._active, (t, seq, self._resume, _NONE2), sim._head)
                    sim._count += 1
                elif idx < sim._limit:
                    sim._buckets[idx & _MASK].append((t, seq, self._resume, _NONE2))
                    sim._count += 1
                else:
                    heappush(sim._over, (t, seq, self._resume, _NONE2))
            return
        if not isinstance(item, Waitable):
            self._finish(
                None,
                TypeError(
                    f"process {self.name!r} yielded non-waitable {item!r}"
                ),
            )
            return
        item._block(self.sim, self)

    _step = _resume

    def _finish(self, result: Any, failure: Optional[BaseException]) -> None:
        self.alive = False
        self.result = result
        self.failure = failure
        joiners, self._joiners = self._joiners, []
        cbs, self._join_cbs = self._join_cbs, []
        if failure is not None and not joiners and not cbs:
            # Nobody is listening: surface the error now rather than letting
            # the simulation silently continue in a corrupt state.
            raise failure
        for joiner in joiners:
            if failure is not None:
                self.sim.call_soon(joiner._resume, None, ProcessFailed(self, failure))
            else:
                self.sim.call_soon(joiner._resume, result, None)
        for cb in cbs:
            self.sim.call_soon(cb, self)

    # ------------------------------------------------------------------
    # waitable interface (join)
    # ------------------------------------------------------------------
    def _block(self, sim: "Simulator", process: "Process") -> None:
        if not self.alive:
            if self.failure is not None:
                sim.call_soon(process._resume, None, ProcessFailed(self, self.failure))
            else:
                sim.call_soon(process._resume, self.result, None)
        else:
            self._joiners.append(process)

    def on_exit(self, callback) -> None:
        """Register ``callback(process)`` to run when this process ends."""
        if not self.alive:
            self.sim.call_soon(callback, self)
        else:
            self._join_cbs.append(callback)

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Terminate the process at its next resumption point."""
        if self.alive:
            self.sim.call_soon(self._resume, None, ProcessKilled())

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"
