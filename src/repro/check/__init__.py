"""Runtime verification for the flow-control reproduction.

``repro.check`` holds the pluggable invariant auditor (credit
conservation, buffer leases, backlog FIFO, matching order, progress
watchdog — see :mod:`repro.check.auditor`) and the cross-scheme
differential fuzz harness (:mod:`repro.check.fuzz`, driven by
``python -m repro fuzz``).
"""

from repro.check.auditor import Auditor, InvariantViolation

__all__ = ["Auditor", "InvariantViolation"]
