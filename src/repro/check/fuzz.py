"""Cross-scheme differential fuzzing.

The paper's central semantic claim is that its three flow-control schemes
differ *only* in buffer management: any MPI program must observe the same
delivered messages under hardware RNR-retry, static credits and dynamic
growth.  This module turns that claim into a randomized test: seeded
workload specs (message size/tag/pattern mix, optionally a fault plan) are
run under every scheme with the runtime :class:`~repro.check.Auditor`
armed, and the runs must produce **identical delivered-message multisets
with zero invariant violations**.

Everything is deterministic given the spec: workloads are generated from
``random.Random(seed)``, fault plans carry their own seed, and the DES
kernel is deterministic — so any failure replays exactly from its spec.
On failure the driver shrinks the workload (ddmin over the message list,
then per-message size minimization) and writes a replay artifact that
``python -m repro fuzz --replay FILE`` reproduces.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.check.auditor import Auditor, InvariantViolation
from repro.cluster.config import TestbedConfig
from repro.cluster.job import run_job
from repro.core import make_scheme
from repro.faults import FaultPlan
from repro.mpi.protocol import ANY_TAG
from repro.sim.units import us

SPEC_VERSION = 1

#: evaluation order — every workload runs under all three
DEFAULT_SCHEMES = ("hardware", "static", "dynamic")

#: the three plus the RDMA-write ring-buffer eager scheme — the
#: differential claim extends to it: ring-slot accounting must be
#: delivery-equivalent to credit accounting under every fault scenario
EXTENDED_SCHEMES = DEFAULT_SCHEMES + ("rdma-eager",)

#: fault scenarios the fuzzer cycles through (None = healthy fabric).
#: ``link-down`` runs with the connection recovery subsystem installed: a
#: link outage outlives a finite transport retry budget, the QP pairs go
#: fatal, and the recovered runs must still agree across schemes.
#: ``rank-death`` runs with the failure detector (``ft=True``): a victim
#: rank (a pure receiver, so no survivor's delivery depends on its racy
#: in-flight sends) dies mid-run, and the *survivors'* delivered
#: multisets must still agree across schemes.
SCENARIOS = (None, "receiver-stall", "lossy-window", "link-down")

#: the rank-death arm is opt-in (``--scenarios ... rank-death``): its
#: comparison covers survivors only, a weaker claim than the default arms
FUZZ_SCENARIOS = SCENARIOS + ("rank-death",)

#: message-size ladder, eager-weighted (eager_max is 1984 with the default
#: 2 KB vbuf / 64 B header split; 2000+ goes rendezvous)
_SIZES = (4, 4, 64, 64, 512, 1000, 1900, 1984, 2000, 4096, 50_000)


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------
def generate_spec(seed: int, scenario: Optional[str] = None,
                  on_demand: bool = False) -> Dict[str, Any]:
    """One self-contained workload spec, deterministic in ``seed``.

    With ``on_demand`` the workload runs under lazy connection
    establishment (``run_job(..., on_demand=True)``) so the differential
    comparator also covers the CM exchange path; the flag is part of the
    spec, so replay artifacts reproduce it.
    """
    rng = random.Random(seed)
    nranks = rng.choice((2, 2, 3, 4))
    if scenario == "rank-death":
        # at least two survivors, so survivor-to-survivor traffic exists
        # for the differential comparison
        nranks = max(nranks, 3)
    prepost = rng.choice((1, 2, 5, 16))
    ecm_threshold = rng.choice((1, 5, 16))
    nmsgs = rng.randrange(4, 41)
    messages = []
    for _ in range(nmsgs):
        src = rng.randrange(nranks)
        dst = rng.randrange(nranks - 1)
        if dst >= src:
            dst += 1  # never self-send
        messages.append([src, dst, rng.randrange(4), rng.choice(_SIZES)])
    faults = None
    victim = None
    if scenario == "receiver-stall":
        faults = (
            FaultPlan(seed=seed)
            .receiver_stall(
                rank=rng.randrange(nranks),
                at_ns=us(5),
                duration_ns=us(rng.randrange(200, 1001)),
            )
            .to_spec()
        )
    elif scenario == "lossy-window":
        faults = (
            FaultPlan(seed=seed)
            .drop_window(
                at_ns=us(20),
                duration_ns=us(rng.randrange(100, 301)),
                probability=rng.uniform(0.05, 0.2),
            )
            .to_spec()
        )
    elif scenario == "link-down":
        # An outage longer than the finite go-back-N budget (40 us timeout,
        # 3 retries): every QP pair crossing the link goes fatal and must
        # be re-established by the recovery subsystem.
        faults = (
            FaultPlan(
                seed=seed, transport_timeout_ns=us(40), transport_retry_limit=3
            )
            .link_flap(
                lid=rng.randrange(nranks),
                at_ns=us(30),
                duration_ns=us(rng.randrange(300, 801)),
            )
            .to_spec()
        )
    elif scenario == "rank-death":
        # The victim must send nothing: a message in flight *from* a
        # dying rank is delivered or lost depending on scheme-specific
        # timing, which would be a delivery mismatch by construction.
        # Survivors' traffic among themselves is the differential claim;
        # sends *to* the victim exercise PROC_FAILED completion (force
        # one rendezvous-size send so at least one blocks on the corpse).
        victim = rng.randrange(nranks)
        for m in messages:
            if m[0] == victim:
                m[0] = rng.choice(
                    [r for r in range(nranks) if r != victim and r != m[1]]
                )
        src = rng.choice([r for r in range(nranks) if r != victim])
        messages.append([src, victim, rng.randrange(4), 50_000])
        faults = (
            FaultPlan(seed=seed)
            .rank_death(rank=victim, at_ns=us(40))
            .to_spec()
        )
    elif scenario is not None:
        raise ValueError(
            f"unknown fuzz scenario {scenario!r} (know {FUZZ_SCENARIOS})"
        )
    return {
        "version": SPEC_VERSION,
        "seed": seed,
        "nranks": nranks,
        "prepost": prepost,
        "ecm_threshold": ecm_threshold,
        "scenario": scenario,
        "recovery": scenario == "link-down",
        "ft": scenario == "rank-death",
        "victim": victim,
        "on_demand": on_demand,
        "faults": faults,
        "messages": messages,
    }


def build_program(spec: Dict[str, Any]):
    """Turn a spec into a per-rank generator program.

    Every rank posts receives for its inbound messages (in a seeded
    shuffled order, one quarter of them *deferred* until after the sends
    to exercise the unexpected queue), issues its sends in spec order,
    and waits for everything.  Each rank returns its delivered tuples
    ``(source, tag, size, uid)``.

    Tag discipline: per (src, dst) pair the receives are either *all*
    wildcard or *all* specific-tag — mixing the two on one pair can
    strand a specific-tag receive behind a wildcard that stole its
    message (legal MPI, but then delivery depends on arrival order and
    the program may deadlock; the fuzzer wants scheme differences, not
    program races).
    """
    messages: List[list] = [list(m) for m in spec["messages"]]
    spec_seed = int(spec["seed"])

    # capacity: a posted recv must fit whichever same-pair message the
    # matcher hands it, so budget for the pair's largest
    pair_max: Dict[Tuple[int, int], int] = {}
    for src, dst, _tag, size in messages:
        key = (src, dst)
        if size > pair_max.get(key, 0):
            pair_max[key] = size

    def program(ep) -> Generator:
        rank = ep.rank
        rng = random.Random(spec_seed * 1_000_003 + rank)
        inbound = [
            (uid, m) for uid, m in enumerate(messages) if m[1] == rank
        ]
        rng.shuffle(inbound)
        wildcard_sources = {
            src
            for src in sorted({m[0] for _, m in inbound})
            if rng.random() < 0.25
        }
        recv_plan = []
        for uid, (src, _dst, tag, _size) in inbound:
            use_any = src in wildcard_sources
            recv_plan.append((src, ANY_TAG if use_any else tag, pair_max[(src, rank)]))
        n_defer = len(recv_plan) // 4
        early, late = recv_plan[: len(recv_plan) - n_defer], recv_plan[len(recv_plan) - n_defer:]

        requests = []
        recv_reqs = []
        for src, tag, cap in early:
            r = yield from ep.irecv(source=src, capacity=cap, tag=tag)
            recv_reqs.append(r)
        for uid, m in enumerate(messages):
            if m[0] == rank:
                r = yield from ep.isend(
                    m[1], m[3], tag=m[2], payload=("uid", uid)
                )
                requests.append(r)
        for src, tag, cap in late:
            r = yield from ep.irecv(source=src, capacity=cap, tag=tag)
            recv_reqs.append(r)
        statuses = yield from ep.waitall(requests + recv_reqs)

        delivered = []
        for st in statuses[len(requests):]:
            uid = st.payload[1] if isinstance(st.payload, tuple) else None
            delivered.append((st.source, st.tag, st.size, uid))
        return delivered

    return program


# ----------------------------------------------------------------------
# running one spec under one scheme
# ----------------------------------------------------------------------
def run_spec(spec: Dict[str, Any], scheme_name: str) -> Dict[str, Any]:
    """Run the spec's workload under ``scheme_name`` with the auditor
    armed.  Returns ``{"ok": True, "delivered": [...]}`` or a structured
    failure record (``kind`` is ``"violation"`` for auditor hits, else
    the exception type name)."""
    kwargs: Dict[str, Any] = {}
    if scheme_name in ("static", "dynamic"):
        kwargs["ecm_threshold"] = int(spec.get("ecm_threshold", 5))
    scheme = make_scheme(scheme_name, **kwargs)
    faults = FaultPlan.from_spec(spec["faults"]) if spec.get("faults") else None
    auditor = Auditor()
    nranks = int(spec["nranks"])
    recovery: Any = False
    if spec.get("recovery"):
        from repro.recovery import RecoveryPolicy

        # generous attempt budget: the fuzzer probes resync correctness,
        # not budget exhaustion (tests/test_recovery.py covers that)
        recovery = RecoveryPolicy(max_attempts=12, seed=int(spec["seed"]))
    try:
        result = run_job(
            build_program(spec),
            nranks,
            scheme,
            prepost=int(spec["prepost"]),
            config=TestbedConfig(nodes=nranks),
            faults=faults,
            audit=auditor,
            recovery=recovery,
            ft=bool(spec.get("ft", False)),
            on_demand=bool(spec.get("on_demand", False)),
        )
    except InvariantViolation as v:
        return {
            "ok": False,
            "kind": "violation",
            "invariant": v.invariant,
            "detail": str(v),
            "audit": auditor.summary(),
        }
    except Exception as exc:  # deadlock, QP error, livelock ceiling, ...
        return {
            "ok": False,
            "kind": type(exc).__name__,
            "detail": str(exc),
            "audit": auditor.summary(),
        }
    unexpected = [
        f for f in result.failures
        if not (spec.get("ft") and f.dedup_key()[0] == "rank")
    ]
    if unexpected:
        # a QP pair was lost for good (recovery attempt budget exhausted)
        f = unexpected[0]
        return {
            "ok": False,
            "kind": "connection-failure",
            "detail": str(f),
            "audit": auditor.summary(),
        }
    # under rank-death the victim's result slot is None (its program was
    # killed); the differential claim covers the survivors' deliveries
    delivered = sorted(
        list(t)
        for per_rank in result.rank_results
        if per_rank is not None
        for t in per_rank
    )
    return {
        "ok": True,
        "delivered": delivered,
        "violations": len(auditor.violations),
        "hook_calls": auditor.hook_calls,
        "elapsed_ns": result.elapsed_ns,
    }


def compare_schemes(
    spec: Dict[str, Any], schemes: Sequence[str] = DEFAULT_SCHEMES
) -> Dict[str, Any]:
    """Run the spec under every scheme; failure = any non-ok run, or any
    delivered-multiset divergence from the first scheme's."""
    results = {name: run_spec(spec, name) for name in schemes}
    failure = None
    for name in schemes:
        r = results[name]
        if not r["ok"]:
            failure = {"kind": r["kind"], "scheme": name, "detail": r["detail"]}
            break
    if failure is None:
        base = results[schemes[0]]["delivered"]
        for name in schemes[1:]:
            if results[name]["delivered"] != base:
                failure = {
                    "kind": "delivery-mismatch",
                    "scheme": name,
                    "detail": (
                        f"{name} delivered {len(results[name]['delivered'])} "
                        f"messages, {schemes[0]} delivered {len(base)} "
                        "(or same count, different multiset)"
                    ),
                }
                break
    return {"results": results, "failure": failure}


def delivered_digest(comparison: Dict[str, Any]) -> str:
    """Canonical hash of every scheme's outcome — the determinism token
    the ``--check`` rerun compares."""
    canon = {
        name: (r["delivered"] if r["ok"] else [r["kind"], r["detail"]])
        for name, r in comparison["results"].items()
    }
    blob = json.dumps(canon, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def _same_failure(spec: Dict[str, Any], schemes: Sequence[str], kind: str) -> bool:
    failure = compare_schemes(spec, schemes)["failure"]
    return failure is not None and failure["kind"] == kind


def shrink(
    spec: Dict[str, Any],
    schemes: Sequence[str],
    kind: str,
    max_reruns: int = 200,
) -> Tuple[Dict[str, Any], int]:
    """Minimize ``spec["messages"]`` while the same failure ``kind``
    reproduces: ddmin-style chunk removal, then single-message removal,
    then stepping each message down the size ladder.  Returns the
    minimized spec and the number of reruns spent."""
    reruns = 0
    best = dict(spec)

    def attempt(candidate_msgs: List[list]) -> bool:
        nonlocal reruns, best
        if reruns >= max_reruns or not candidate_msgs:
            return False
        trial = dict(best)
        trial["messages"] = candidate_msgs
        reruns += 1
        if _same_failure(trial, schemes, kind):
            best = trial
            return True
        return False

    # 1. chunk halving
    chunk = max(1, len(best["messages"]) // 2)
    while chunk >= 1 and reruns < max_reruns:
        msgs = best["messages"]
        i, removed_any = 0, False
        while i < len(best["messages"]) and reruns < max_reruns:
            msgs = best["messages"]
            candidate = msgs[:i] + msgs[i + chunk:]
            if candidate and attempt(candidate):
                removed_any = True  # same index now holds the next chunk
            else:
                i += chunk
        chunk = chunk // 2 if (chunk > 1 or not removed_any) else chunk
        if chunk == 0:
            break
        if not removed_any and chunk == 1:
            break

    # 2. size-ladder minimization per surviving message
    ladder = sorted(set(_SIZES))
    i = 0
    while i < len(best["messages"]) and reruns < max_reruns:
        msgs = [list(m) for m in best["messages"]]
        size = msgs[i][3]
        shrunk = False
        for smaller in ladder:
            if smaller >= size:
                break
            candidate = [list(m) for m in msgs]
            candidate[i][3] = smaller
            if attempt(candidate):
                shrunk = True
                break
        if not shrunk:
            i += 1
    return best, reruns


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def run_fuzz(
    seed: int,
    runs: int,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scenarios: Sequence[Optional[str]] = SCENARIOS,
    out_dir: str = "fuzz-failures",
    max_shrink: int = 200,
    on_demand: bool = False,
    log=print,
) -> Dict[str, Any]:
    """``runs`` seeded workloads, each run under every scheme.  Failures
    are shrunk and written to ``out_dir`` as replay artifacts.  With
    ``on_demand`` every workload runs under lazy connection setup."""
    summary: Dict[str, Any] = {
        "seed": seed,
        "runs": runs,
        "schemes": list(schemes),
        "digests": [],
        "failures": [],
    }
    for k in range(runs):
        scenario = scenarios[k % len(scenarios)] if scenarios else None
        spec = generate_spec(seed + k, scenario, on_demand=on_demand)
        comparison = compare_schemes(spec, schemes)
        digest = delivered_digest(comparison)
        summary["digests"].append(digest)
        failure = comparison["failure"]
        if failure is None:
            if log:
                log(
                    f"run {k}: seed={seed + k} scenario={scenario or 'none'} "
                    f"nranks={spec['nranks']} prepost={spec['prepost']} "
                    f"msgs={len(spec['messages'])} ok digest={digest}"
                )
            continue
        if log:
            log(
                f"run {k}: seed={seed + k} FAILED "
                f"[{failure['kind']} under {failure['scheme']}] — shrinking"
            )
        minimized, reruns = shrink(spec, schemes, failure["kind"], max_shrink)
        artifact = {
            "version": SPEC_VERSION,
            "schemes": list(schemes),
            "failure": failure,
            "spec": minimized,
            "original_message_count": len(spec["messages"]),
            "shrink_reruns": reruns,
        }
        path = None
        if out_dir:
            import os

            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"fuzz-seed{seed + k}.json")
            with open(path, "w") as fh:
                json.dump(artifact, fh, indent=2, sort_keys=True)
        summary["failures"].append(
            {
                "run": k,
                "seed": seed + k,
                "kind": failure["kind"],
                "scheme": failure["scheme"],
                "minimized_messages": len(minimized["messages"]),
                "artifact": path,
            }
        )
        if log:
            log(
                f"run {k}: minimized to {len(minimized['messages'])} "
                f"message(s) in {reruns} rerun(s)"
                + (f", artifact {path}" if path else "")
            )
    return summary


def replay(artifact: Dict[str, Any], log=print) -> Dict[str, Any]:
    """Re-run a failure artifact's spec; returns the fresh comparison."""
    schemes = artifact.get("schemes", DEFAULT_SCHEMES)
    comparison = compare_schemes(artifact["spec"], schemes)
    failure = comparison["failure"]
    if log:
        if failure is None:
            log("replay: workload now passes under every scheme")
        else:
            log(
                f"replay: reproduced [{failure['kind']} under "
                f"{failure['scheme']}]: {failure['detail']}"
            )
    return comparison
