"""Runtime invariant auditor (the executable spec of the paper's §3-§4).

The :class:`Auditor` subscribes to guarded hooks in the MPI endpoint, the
buffer pool and the flow-control schemes and validates, *while a job runs*:

(a) **credit conservation** per directed rank pair — for every pair
    ``(s, r)`` under a credit-based scheme, the tokens governing the
    ``s -> r`` paid traffic are conserved::

        conn_sr.credits               # available at the sender
      + consumed_unsent[(s, r)]       # consumed, emission pending (isend
                                      #   may yield for a vbuf in between)
      + inflight_paid[(s, r)]         # paid headers posted, not delivered
      + ungranted[(s, r)]             # delivered, grant still pending
                                      #   (unexpected vbuf pinned / receiver
                                      #   stalled by fault injection)
      + conn_rs.pending_credit_return # granted, waiting to ride a message
      + inflight_credits[(s, r)]      # riding an r -> s header back to s
      ==
        conn_rs.prepost_target        # the configured pool (grows under
                                      #   the dynamic scheme, which mints
                                      #   matching credits atomically)
      + pending_swallow[(s, r)]       # decay debt: target was lowered, the
                                      #   excess credits die on their next
                                      #   pass through the receiver

(b) **buffer-lease tracking** — every send vbuf acquired by an emission is
    released by exactly one completion (no leak, no double release), and
    the receive population never exceeds its budget (no double-post);

(c) **backlog FIFO order** and *went-through-backlog* bit correctness — a
    shadow queue mirrors every connection's backlog; dequeues must pop the
    shadow head, the feedback bit must be set exactly on messages that
    passed through the backlog (or the unpaid RTS minted by the rendezvous
    fallback for one);

(d) **matching order and completeness** per (src, dst, context, tag) — MPI
    non-overtaking governs the *matching* order, so the sequence of
    matched message sizes must be a prefix of the sent sizes (completion
    order may legally invert for mixed eager/rendezvous traffic);

(e) a **progress watchdog** — while MPI work is pending, some hook must
    fire within ``quiet_bound_ns`` of simulated time, else the job is
    flagged as deadlocked/starved (fault windows extend the bound).

The auditor is *pluggable and zero-cost when disabled*: every hook site is
guarded by ``if self._audit is not None`` and the default is ``None``
(verified against ``BENCH_perf.json`` by the PR-1 perf harness).  Enable
it with ``run_job(..., audit=True)`` or attach an instance for custom
settings.  Watchdog ticks are ordinary agenda events: they shift sequence
numbers but mutate no simulation state, so an audited run computes the
same results — only the golden *event counts* differ, which is why the
auditor defaults to off.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.connection import Connection
    from repro.mpi.endpoint import Endpoint
    from repro.mpi.protocol import Header

from repro.mpi.protocol import MsgKind

#: watchdog granularity: how often the pending-work probe runs
DEFAULT_WATCHDOG_INTERVAL_NS = 1_000_000  # 1 ms of simulated time
#: longest hook-quiet stretch tolerated while work is pending
DEFAULT_QUIET_BOUND_NS = 5_000_000  # 5 ms — far above any healthy stall


class InvariantViolation(AssertionError):
    """A runtime invariant failed.

    Subclasses ``AssertionError`` so test harnesses treat it as a failed
    assertion, and carries structured fields for the fuzz shrinker.
    """

    def __init__(self, invariant: str, detail: str, time_ns: int,
                 pair: Optional[Tuple[int, int]] = None):
        self.invariant = invariant
        self.detail = detail
        self.time_ns = time_ns
        self.pair = pair
        where = f" pair {pair[0]}->{pair[1]}" if pair else ""
        super().__init__(f"[{invariant}]{where} at t={time_ns}ns: {detail}")


class Auditor:
    """Validates flow-control invariants during a run via endpoint hooks.

    Parameters
    ----------
    strict:
        Raise :class:`InvariantViolation` at the point of detection
        (default).  When False, violations are only recorded in
        :attr:`violations` — useful for harvesting multiple failures.
    watchdog_interval_ns / quiet_bound_ns:
        Progress-watchdog cadence and tolerance (simulated time).  The
        watchdog arms itself on the first application send and disarms
        whenever no MPI work is pending, so an audited agenda still
        drains.
    """

    def __init__(
        self,
        strict: bool = True,
        watchdog_interval_ns: int = DEFAULT_WATCHDOG_INTERVAL_NS,
        quiet_bound_ns: int = DEFAULT_QUIET_BOUND_NS,
    ):
        self.strict = strict
        self.watchdog_interval_ns = watchdog_interval_ns
        self.quiet_bound_ns = quiet_bound_ns
        self.violations: List[InvariantViolation] = []
        self._sim = None
        self._endpoints: List["Endpoint"] = []
        self._uses_credits = False
        # --- (a) credit-conservation ledger, keyed by directed pair ---
        self._consumed_unsent: Dict[tuple, int] = defaultdict(int)
        self._inflight_paid: Dict[tuple, int] = defaultdict(int)
        self._ungranted: Dict[tuple, int] = defaultdict(int)
        self._inflight_credits: Dict[tuple, int] = defaultdict(int)
        self._pending_swallow: Dict[tuple, int] = defaultdict(int)
        #: directed pairs mid connection-recovery: the conservation sum is
        #: meaningless between teardown and resync, so checks are paused
        #: (repro.recovery re-seeds the ledgers and lifts the suspension)
        self._suspended: Set[tuple] = set()
        # --- (b) send-buffer leases, per rank ---
        self._lease: Dict[int, int] = defaultdict(int)
        # --- (c) backlog shadows, keyed by (rank, peer) ---
        self._shadow: Dict[tuple, Deque[int]] = defaultdict(deque)
        self._dequeued: Set[int] = set()
        # --- (d) per-key sent / matched size sequences ---
        self._sent_seq: Dict[tuple, List[int]] = defaultdict(list)
        self._matched_seq: Dict[tuple, List[int]] = defaultdict(list)
        self._total_sent = 0
        self._total_matched = 0
        # --- (e) watchdog ---
        self._wd_armed = False
        self._last_progress_ns = 0
        self._fault_grace_until = 0
        #: ranks declared dead by the failure detector: their frozen
        #: credit/backlog state is exempt from every liveness check
        self._dead: Set[int] = set()
        # --- (f) switch-congestion invariants (repro.congestion) ---
        self._congestion = None  # the fabric's CongestionState, when armed
        self._xoff_open: Dict[tuple, int] = defaultdict(int)
        self.xoff_total = 0
        self.xon_total = 0
        # --- (g) RDMA ring-slot conservation, keyed by directed pair ---
        #: slots deposited but not yet copied out (in-flight + free +
        #: unreclaimed == ring size follows from the credit ledger; the
        #: occupancy count bounds the deposited share directly)
        self._ring_occupancy: Dict[tuple, int] = defaultdict(int)
        #: highest sequence number freed per pair (FIFO reclamation)
        self._ring_last_freed: Dict[tuple, int] = {}
        #: total hook invocations (observability; overhead accounting)
        self.hook_calls = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, cluster) -> "Auditor":
        """Subscribe to every endpoint of a launched cluster.  Re-attaching
        (cluster reuse) resets all tracked state."""
        if not cluster.endpoints:
            raise RuntimeError("attach() needs a launched cluster")
        self._sim = cluster.sim
        self._endpoints = list(cluster.endpoints)
        self._uses_credits = self._endpoints[0].scheme.uses_credits
        for store in (
            self._consumed_unsent, self._inflight_paid, self._ungranted,
            self._inflight_credits, self._pending_swallow, self._lease,
            self._shadow, self._sent_seq, self._matched_seq,
            self._ring_occupancy, self._ring_last_freed,
        ):
            store.clear()
        self._dequeued.clear()
        self._suspended.clear()
        self._total_sent = self._total_matched = 0
        self._wd_armed = False
        self._last_progress_ns = cluster.sim.now
        self._dead.clear()
        for ep in self._endpoints:
            ep._audit = self
        self._xoff_open.clear()
        self.xoff_total = self.xon_total = 0
        self._congestion = cluster.fabric.congestion
        if self._congestion is not None:
            self._congestion.audit = self
        cluster.auditor = self
        return self

    def note_fault_plan(self, plan) -> None:
        """Fault windows legitimately suppress progress (receiver stalls,
        link flaps); extend the watchdog's tolerance past the plan."""
        end = plan.end_ns
        if end is not None:
            grace = end + self.quiet_bound_ns
            if grace > self._fault_grace_until:
                self._fault_grace_until = grace

    def extend_grace(self, until_ns: int) -> None:
        """Recovery backoff windows suppress progress like fault windows
        do; the recovery manager pushes the watchdog tolerance past them."""
        if until_ns + self.quiet_bound_ns > self._fault_grace_until:
            self._fault_grace_until = until_ns + self.quiet_bound_ns

    def note_rank_dead(self, rank: int) -> None:
        """The failure detector declared ``rank`` dead: its connections'
        frozen state (unmatched sends, severed backlogs, flushed QPs) is
        permanent and must not read as pending work or a stuck pair."""
        self._dead.add(rank)

    # ------------------------------------------------------------------
    # recovery integration (repro.recovery)
    # ------------------------------------------------------------------
    def on_recovery_begin(self, a: int, b: int) -> None:
        """QP pair (a, b) is being torn down: conservation for both
        directions is indeterminate until the resync re-seeds it."""
        self.hook_calls += 1
        self._progress()
        self._suspended.add((a, b))
        self._suspended.add((b, a))

    def on_recovery_resync(
        self,
        s: int,
        r: int,
        consumed_unsent: int,
        inflight_paid: int,
        ungranted: int,
        inflight_credits: int,
    ) -> None:
        """The manager rebuilt ``s -> r`` credit state for the new epoch;
        seed the ledger to match and resume checking the direction."""
        self.hook_calls += 1
        key = (s, r)
        self._consumed_unsent[key] = consumed_unsent
        self._inflight_paid[key] = inflight_paid
        self._ungranted[key] = ungranted
        self._inflight_credits[key] = inflight_credits
        self._suspended.discard(key)
        if self._uses_credits:
            self._check_pair(s, r)

    def pending_swallow(self, s: int, r: int) -> int:
        """Outstanding decay-contraction debt for ``s -> r`` (the resync
        formula must mint that many fewer credits)."""
        return self._pending_swallow[(s, r)]

    # ------------------------------------------------------------------
    # violation plumbing
    # ------------------------------------------------------------------
    def _violate(self, invariant: str, detail: str,
                 pair: Optional[Tuple[int, int]] = None) -> None:
        v = InvariantViolation(invariant, detail, self._sim.now, pair)
        self.violations.append(v)
        if self.strict:
            raise v

    # ------------------------------------------------------------------
    # (a) the credit-conservation ledger
    # ------------------------------------------------------------------
    def _check_pair(self, s: int, r: int) -> None:
        """Audit the token pool governing ``s -> r`` paid traffic."""
        if (s, r) in self._suspended:
            return  # mid-recovery: resynced and re-checked at re-arm
        if s in self._dead or r in self._dead:
            return  # severed pair: tokens died with the rank
        conn_sr = self._endpoints[s].connections.get(r)
        conn_rs = self._endpoints[r].connections.get(s)
        if conn_sr is None or conn_rs is None:
            return  # on-demand connection not (fully) established yet
        key = (s, r)
        lhs = (
            conn_sr.credits
            + self._consumed_unsent[key]
            + self._inflight_paid[key]
            + self._ungranted[key]
            + conn_rs.pending_credit_return
            + self._inflight_credits[key]
        )
        rhs = conn_rs.prepost_target + self._pending_swallow[key]
        if lhs != rhs:
            self._violate(
                "credit-conservation",
                f"pool accounts for {lhs} credits, configured pool is {rhs} "
                f"(sender={conn_sr.credits} consumed_unsent="
                f"{self._consumed_unsent[key]} inflight_paid="
                f"{self._inflight_paid[key]} ungranted={self._ungranted[key]} "
                f"pending_return={conn_rs.pending_credit_return} "
                f"inflight_credits={self._inflight_credits[key]} "
                f"target={conn_rs.prepost_target} "
                f"swallow_debt={self._pending_swallow[key]})",
                pair=(s, r),
            )

    def check_all_pairs(self) -> None:
        if not self._uses_credits:
            return
        for ep in self._endpoints:
            for peer in ep.connections:
                self._check_pair(ep.rank, peer)

    # ------------------------------------------------------------------
    # hooks called from Endpoint (guarded: only when the auditor is on)
    # ------------------------------------------------------------------
    def on_consume(self, conn: "Connection") -> None:
        """A credit was consumed at the sender; its paid header may not be
        emitted until a vbuf is available (the isend yield gap)."""
        self.hook_calls += 1
        if not self._uses_credits:
            return
        key = (conn.endpoint.rank, conn.peer)
        self._consumed_unsent[key] += 1
        self._check_pair(*key)

    def on_emit(self, conn: "Connection", header: "Header", ctx_kind: str,
                replay: bool = False) -> None:
        self.hook_calls += 1
        self._progress()
        e, p = conn.endpoint.rank, conn.peer
        # (b) send-buffer lease: "eager"/"ctl" emissions hold one vbuf each
        if ctx_kind in ("eager", "ctl"):
            self._lease[e] += 1
            pool = conn.endpoint.pool
            if self._lease[e] != pool.in_use:
                self._violate(
                    "buffer-lease",
                    f"rank {e}: {self._lease[e]} leased send vbufs but the "
                    f"pool reports {pool.in_use} in use",
                )
        # (c) backlog FIFO / went_backlog bit — skipped for a recovery
        # replay: the header passed these checks at its first emission and
        # its backlog passage was consumed then
        if not replay:
            hid = id(header)
            if header.went_backlog:
                if hid in self._dequeued:
                    self._dequeued.discard(hid)
                elif not (header.kind is MsgKind.RNDV_RTS and not header.paid):
                    # the rendezvous fallback mints a fresh unpaid RTS for
                    # the dequeued message; anything else claiming the bit
                    # without passing through the backlog is lying to the
                    # receiver
                    self._violate(
                        "backlog-feedback-bit",
                        f"{e}->{p}: {header.kind.name} seq={header.seq} "
                        "carries went_backlog but never passed through the "
                        "backlog",
                        pair=(e, p),
                    )
            elif header.paid and self._shadow[(e, p)]:
                self._violate(
                    "backlog-fifo",
                    f"{e}->{p}: paid {header.kind.name} seq={header.seq} "
                    f"overtook {len(self._shadow[(e, p)])} backlogged send(s)",
                    pair=(e, p),
                )
        # (a) ledger movements
        if self._uses_credits:
            if header.paid:
                key = (e, p)
                self._consumed_unsent[key] -= 1
                if self._consumed_unsent[key] < 0:
                    self._violate(
                        "credit-conservation",
                        f"{e}->{p}: paid {header.kind.name} emitted without "
                        "a consumed credit",
                        pair=key,
                    )
                self._inflight_paid[key] += 1
                self._check_pair(*key)
            if header.credits:
                # credits granted by e for p->e traffic, riding back to p
                key = (p, e)
                self._inflight_credits[key] += header.credits
                self._check_pair(*key)

    def on_deliver(self, conn: "Connection", header: "Header") -> None:
        """A header from ``conn.peer`` was delivered at ``conn.endpoint``
        (called after any carried credits were folded into the scheme)."""
        self.hook_calls += 1
        self._progress()
        if not self._uses_credits:
            return
        r, s = conn.endpoint.rank, conn.peer
        if header.credits:
            key = (r, s)
            self._inflight_credits[key] -= header.credits
            if self._inflight_credits[key] < 0:
                self._violate(
                    "credit-conservation",
                    f"{s}->{r}: header delivered {header.credits} credits "
                    "that were never shipped",
                    pair=key,
                )
            self._check_pair(*key)
        if header.paid:
            key = (s, r)
            self._inflight_paid[key] -= 1
            if self._inflight_paid[key] < 0:
                self._violate(
                    "credit-conservation",
                    f"{s}->{r}: paid {header.kind.name} delivered but never "
                    "emitted as paid",
                    pair=key,
                )
            self._ungranted[key] += 1
            self._check_pair(*key)

    def on_grant(self, conn: "Connection", n: int) -> None:
        """``conn.endpoint`` granted ``n`` paid credits back to the peer
        (``pending_credit_return`` was just incremented by ``n``)."""
        self.hook_calls += 1
        self._progress()
        if not self._uses_credits or n == 0:
            return
        r, s = conn.endpoint.rank, conn.peer
        key = (s, r)
        self._ungranted[key] -= n
        if self._ungranted[key] < 0:
            self._violate(
                "credit-conservation",
                f"{s}->{r}: granted {n} credit(s) with only "
                f"{self._ungranted[key] + n} delivered-but-ungranted",
                pair=key,
            )
        self._check_pair(*key)

    def on_swallow(self, conn: "Connection") -> None:
        """A paid credit died at the receiver: the population is over-full
        after a decay contraction, so the grant is withheld forever."""
        self.hook_calls += 1
        if not self._uses_credits:
            return
        r, s = conn.endpoint.rank, conn.peer
        key = (s, r)
        self._ungranted[key] -= 1
        self._pending_swallow[key] -= 1
        if self._ungranted[key] < 0 or self._pending_swallow[key] < 0:
            self._violate(
                "credit-conservation",
                f"{s}->{r}: credit swallowed without decay debt "
                f"(ungranted={self._ungranted[key] + 1} "
                f"swallow_debt={self._pending_swallow[key] + 1})",
                pair=key,
            )
        self._check_pair(*key)

    def observe_recv_header(self, scheme, conn: "Connection",
                            header: "Header") -> int:
        """Wrap ``scheme.on_recv_header`` so target changes are audited:
        dynamic *growth* mints matching credits atomically (nothing to
        track), a decay *contraction* leaves excess credits circulating —
        they become swallow debt, repaid as they die at the receiver."""
        self.hook_calls += 1
        before = conn.prepost_target
        grown = scheme.on_recv_header(conn, header)
        after = conn.prepost_target
        if self._uses_credits:
            r, s = conn.endpoint.rank, conn.peer
            key = (s, r)
            if after < before:
                self._pending_swallow[key] += before - after
            self._check_pair(*key)
        return grown

    def on_post_recv(self, conn: "Connection") -> None:
        """A receive vbuf was posted (``recv_posted`` already incremented);
        the population must never exceed its budget (no double-post)."""
        self.hook_calls += 1
        ep = conn.endpoint
        if conn.rdma_eager:
            budget = ep.config.rdma_control_bufs
        else:
            budget = conn.prepost_target + conn.headroom
        if conn.recv_posted > budget:
            self._violate(
                "buffer-lease",
                f"rank {ep.rank}: {conn.recv_posted} receive vbufs posted "
                f"toward {conn.peer}, budget is {budget} (double-post)",
                pair=(conn.peer, ep.rank),
            )

    def on_send_done(self, ep: "Endpoint") -> None:
        """An eager/ctl send completed and released its vbuf."""
        self.hook_calls += 1
        self._progress()
        rank = ep.rank
        self._lease[rank] -= 1
        if self._lease[rank] < 0:
            self._violate(
                "buffer-lease",
                f"rank {rank}: send vbuf released without a matching lease",
            )
        if self._lease[rank] != ep.pool.in_use:
            self._violate(
                "buffer-lease",
                f"rank {rank}: {self._lease[rank]} leased send vbufs but "
                f"the pool reports {ep.pool.in_use} in use",
            )

    def on_backlog_enqueue(self, conn: "Connection", header: "Header") -> None:
        self.hook_calls += 1
        self._shadow[(conn.endpoint.rank, conn.peer)].append(id(header))

    def on_backlog_dequeue(self, conn: "Connection", header: "Header",
                           reemitted: bool = True) -> None:
        """``reemitted`` is False when the dequeued header is abandoned in
        favour of a freshly minted one (the rendezvous fallback)."""
        self.hook_calls += 1
        key = (conn.endpoint.rank, conn.peer)
        shadow = self._shadow[key]
        if not shadow:
            self._violate(
                "backlog-fifo",
                f"{key[0]}->{key[1]}: dequeue from an empty shadow backlog",
                pair=key,
            )
            return
        head = shadow.popleft()
        if head != id(header):
            self._violate(
                "backlog-fifo",
                f"{key[0]}->{key[1]}: dequeued a send that was not the "
                "backlog head (FIFO order broken)",
                pair=key,
            )
        if reemitted:
            self._dequeued.add(id(header))

    # ------------------------------------------------------------------
    # (d) matching order / completeness
    # ------------------------------------------------------------------
    def on_app_send(self, src: int, dst: int, tag: int, context: int,
                    size: int) -> None:
        self.hook_calls += 1
        self._sent_seq[(src, dst, context, tag)].append(size)
        self._total_sent += 1
        if not self._wd_armed and self._sim is not None:
            self._wd_armed = True
            self._last_progress_ns = self._sim.now
            self._sim.every(self.watchdog_interval_ns, self._wd_tick)

    def on_match(self, header: "Header") -> None:
        """A message matched a posted receive (at its *matching* point —
        arrival against a posted receive, or a receive finding it in the
        unexpected queue).  MPI non-overtaking is a matching-order rule."""
        self.hook_calls += 1
        self._progress()
        key = (header.src, header.dst, header.context, header.tag)
        matched = self._matched_seq[key]
        matched.append(header.size)
        self._total_matched += 1
        sent = self._sent_seq[key]
        i = len(matched) - 1
        if i >= len(sent):
            self._violate(
                "matching-order",
                f"key (src={key[0]}, dst={key[1]}, ctx={key[2]}, "
                f"tag={key[3]}): matched {len(matched)} messages but only "
                f"{len(sent)} were sent",
                pair=(header.src, header.dst),
            )
        elif sent[i] != header.size:
            self._violate(
                "matching-order",
                f"key (src={key[0]}, dst={key[1]}, ctx={key[2]}, "
                f"tag={key[3]}): match #{i} is {header.size} bytes, send "
                f"#{i} was {sent[i]} bytes (non-overtaking violated)",
                pair=(header.src, header.dst),
            )

    # ------------------------------------------------------------------
    # (f) switch-congestion hooks (repro.congestion; guarded the same
    # way as the endpoint hooks — only called when the auditor is on)
    # ------------------------------------------------------------------
    def on_xoff(self, port_key: tuple) -> None:
        """A port crossed its XOFF threshold and paused its feeders.
        Pause storms legitimately stall MPI progress, so this counts as
        progress for the watchdog."""
        self.hook_calls += 1
        self._progress()
        self._xoff_open[port_key] += 1
        self.xoff_total += 1

    def on_xon(self, port_key: tuple) -> None:
        self.hook_calls += 1
        self._progress()
        self.xon_total += 1
        self._xoff_open[port_key] -= 1
        if self._xoff_open[port_key] < 0:
            self._violate(
                "pause-conservation",
                f"port {port_key}: XON without a standing XOFF",
            )

    def on_queue_depth(self, port_key: tuple, depth: int,
                       buffer_bytes: Optional[int]) -> None:
        """An admission updated a port queue's depth; a finite buffer
        must never be exceeded (overflow is a tail-drop *before* the
        admission, so a deeper queue means the model leaked bytes)."""
        self.hook_calls += 1
        if buffer_bytes is not None and depth > buffer_bytes:
            self._violate(
                "congestion-buffer",
                f"port {port_key}: queue depth {depth} B exceeds the "
                f"configured {buffer_bytes} B buffer",
            )

    # ------------------------------------------------------------------
    # (g) RDMA ring-slot conservation (rdma-eager scheme / legacy
    # use_rdma_channel mode; hooks fire from RDMAChannel.deposit and the
    # endpoint's ring-arrival processing)
    # ------------------------------------------------------------------
    def on_ring_deposit(self, channel, header: "Header") -> None:
        """An RDMA-written eager message became visible in a ring slot
        (sender ``channel.peer`` → receiver ``channel.endpoint``).  Under
        a credit scheme a slot token gates every write, so occupancy can
        never exceed the ring size — more means an unreclaimed slot was
        silently overwritten."""
        self.hook_calls += 1
        self._progress()
        key = (channel.peer, channel.endpoint.rank)
        self._ring_occupancy[key] += 1
        if self._uses_credits and self._ring_occupancy[key] > channel.ring.slots:
            self._violate(
                "ring-slot-conservation",
                f"{key[0]}->{key[1]}: {self._ring_occupancy[key]} slots "
                f"occupied in a {channel.ring.slots}-slot ring (an "
                "unreclaimed slot was overwritten)",
                pair=key,
            )

    def on_ring_free(self, channel, header: "Header") -> None:
        """The receiver copied ``header`` out of its slot.  Rings free in
        order ([13]: messages drain by sequence number), so freed
        sequence numbers must be strictly increasing per pair."""
        self.hook_calls += 1
        self._progress()
        key = (channel.peer, channel.endpoint.rank)
        self._ring_occupancy[key] -= 1
        if self._ring_occupancy[key] < 0:
            self._violate(
                "ring-slot-conservation",
                f"{key[0]}->{key[1]}: slot freed with none occupied",
                pair=key,
            )
        last = self._ring_last_freed.get(key)
        if last is not None and header.seq <= last:
            self._violate(
                "ring-slot-fifo",
                f"{key[0]}->{key[1]}: slot for seq={header.seq} freed "
                f"after seq={last} (FIFO reclamation broken)",
                pair=key,
            )
        self._ring_last_freed[key] = header.seq

    # ------------------------------------------------------------------
    # (e) progress watchdog
    # ------------------------------------------------------------------
    def _progress(self) -> None:
        self._last_progress_ns = self._sim.now

    def _work_pending(self) -> bool:
        dead = self._dead
        if not dead:
            if self._total_sent > self._total_matched:
                return True
        else:
            # Messages to/from a dead rank legally never match; the cheap
            # totals comparison would read them as pending work forever.
            for key, sent in self._sent_seq.items():
                if key[0] in dead or key[1] in dead:
                    continue
                if len(sent) > len(self._matched_seq.get(key, ())):
                    return True
        for ep in self._endpoints:
            if ep.finalized or ep.rank in dead:
                # post-finalize stray control arrivals legally park in
                # posted vbufs / the CQ without this rank's attention;
                # a dead rank's state is frozen, not pending
                continue
            if ep._send_ctx or ep._rndv_send or ep._rndv_recv or len(ep.cq):
                return True
            for peer, conn in ep.connections.items():
                if peer in dead:
                    continue  # severed: whatever is left never drains
                if conn.backlog or conn.deferred or conn.qp.outstanding_sends:
                    return True
        return False

    def _wd_tick(self) -> bool:
        if not self._work_pending():
            self._wd_armed = False
            return False  # agenda may drain; re-armed by the next send
        self.check_all_pairs()
        now = self._sim.now
        if now < self._fault_grace_until:
            self._last_progress_ns = now  # faults legitimately stall
            return True
        rec = self._endpoints[0]._recovery if self._endpoints else None
        if rec is not None and rec._active:
            # a connection-recovery backoff window is open: the stall is
            # the policy's own schedule, not a deadlock — keep waiting
            self._last_progress_ns = now
            return True
        if now - self._last_progress_ns > self.quiet_bound_ns:
            self._wd_armed = False
            self._violate(
                "progress-watchdog",
                f"MPI work pending but no progress for "
                f"{now - self._last_progress_ns} ns "
                f"(bound {self.quiet_bound_ns} ns): deadlock or starvation",
            )
            return False
        return True

    # ------------------------------------------------------------------
    # end-of-job audit
    # ------------------------------------------------------------------
    def final_check(self, expect_quiescent: bool = True) -> None:
        """Full sweep after a run.  Conservation and lease balance must
        hold at any agenda drain; completeness, pool-fullness and the
        receive-population reconciliation additionally require the job to
        have finalized (``expect_quiescent``)."""
        self.check_all_pairs()
        dead = self._dead
        for ep in self._endpoints:
            if ep.rank in dead:
                continue
            for conn in ep.connections.values():
                if conn.peer in dead:
                    continue  # severed pair: QPs deliberately in ERROR
                problems = conn.qp.check_invariants()
                if problems:
                    self._violate(
                        "qp-state",
                        f"rank {ep.rank} QP to {conn.peer}: "
                        + "; ".join(problems),
                        pair=(ep.rank, conn.peer),
                    )
        if not expect_quiescent:
            return
        cong = self._congestion
        if cong is not None:
            # Pause-frame conservation + drain: a finalized job left no
            # traffic in flight, so every port queue must have emptied,
            # every XOFF must have been matched by an XON (depth fell
            # through the XON threshold on the way to zero), and no port
            # may still be gated by an unmatched pause frame.
            for key in sorted(cong.ports):
                port = cong.ports[key]
                if port.xoff_active or self._xoff_open[key] > 0:
                    self._violate(
                        "pause-conservation",
                        f"port {key}: XOFF still standing at run end "
                        "(never matched by an XON)",
                    )
                if port.depth or port.q or port.busy:
                    self._violate(
                        "congestion-drain",
                        f"port {key}: {port.depth} B ({len(port.q)} "
                        "message(s)) still queued at quiescence",
                    )
                if port.paused_by:
                    self._violate(
                        "pause-conservation",
                        f"port {key}: still paused by "
                        f"{sorted(port.paused_by)} at quiescence",
                    )
        for key, sent in self._sent_seq.items():
            if key[0] in dead or key[1] in dead:
                continue  # traffic to/from a dead rank legally unmatched
            matched = self._matched_seq.get(key, [])
            if matched != sent:
                self._violate(
                    "matching-completeness",
                    f"key (src={key[0]}, dst={key[1]}, ctx={key[2]}, "
                    f"tag={key[3]}): {len(sent)} sent, {len(matched)} "
                    f"matched",
                    pair=(key[0], key[1]),
                )
        # Control traffic that arrived *after* its destination finalized
        # parks in a posted vbuf with its completion unpolled — the
        # carried credits die there legitimately (the rank is done), so
        # reconcile the in-flight stores against those parked arrivals.
        parked_credits: Dict[tuple, int] = defaultdict(int)
        parked_paid: Dict[tuple, int] = defaultdict(int)
        for ep in self._endpoints:
            for wc in ep.cq._entries:
                h = wc.data if wc.is_recv else None
                if h is None or not hasattr(h, "went_backlog"):
                    continue  # not an MPI header
                if h.credits:
                    parked_credits[(ep.rank, h.src)] += h.credits
                if h.paid:
                    parked_paid[(h.src, ep.rank)] += 1
        for store, parked, what in (
            (self._consumed_unsent, {}, "consumed-but-unsent credits"),
            (self._inflight_paid, parked_paid, "in-flight paid messages"),
            (self._inflight_credits, parked_credits,
             "in-flight returning credits"),
        ):
            for key, n in store.items():
                if key[0] in dead or key[1] in dead:
                    continue  # in-flight state lost with the rank
                if n and n != parked.get(key, 0):
                    self._violate(
                        "credit-conservation",
                        f"quiescent job left {n} {what} "
                        f"({parked.get(key, 0)} parked in unpolled "
                        "post-finalize arrivals)",
                        pair=key,
                    )
        for ep in self._endpoints:
            if ep.rank in dead:
                continue  # frozen mid-flight: leases died with the rank
            pool = ep.pool
            if self._lease[ep.rank] != 0 or pool.free != pool.capacity:
                self._violate(
                    "buffer-lease",
                    f"rank {ep.rank}: send-vbuf leak — "
                    f"{self._lease[ep.rank]} leases open, pool "
                    f"{pool.free}/{pool.capacity} free",
                )
            if pool.waiting:
                self._violate(
                    "buffer-lease",
                    f"rank {ep.rank}: {pool.waiting} sender(s) still "
                    "parked on the vbuf pool",
                )
            # Receive-population reconciliation: every posted vbuf is
            # either a live WQE or an arrival still unpolled in the CQ.
            unpolled: Dict[int, int] = {}
            for wc in ep.cq._entries:
                if wc.is_recv:
                    unpolled[wc.qp_num] = unpolled.get(wc.qp_num, 0) + 1
            for conn in ep.connections.values():
                if conn.peer in dead:
                    continue  # severed: shadow/population frozen mid-flight
                if conn.backlog or self._shadow[(ep.rank, conn.peer)]:
                    self._violate(
                        "backlog-fifo",
                        f"rank {ep.rank}: backlog toward {conn.peer} not "
                        "drained at quiescence",
                        pair=(ep.rank, conn.peer),
                    )
                if conn.rdma_eager:
                    # Ring slots, not WQEs, back the credits — and at
                    # quiescence every deposited slot must have been
                    # reclaimed (copy-out frees in order, matching
                    # completeness already forced every eager through).
                    occ = self._ring_occupancy[(conn.peer, ep.rank)]
                    if occ:
                        self._violate(
                            "ring-slot-leak",
                            f"rank {ep.rank}: {occ} ring slot(s) from "
                            f"{conn.peer} deposited but never reclaimed "
                            "at quiescence",
                            pair=(conn.peer, ep.rank),
                        )
                    continue
                accounted = (conn.qp.posted_recvs
                             + unpolled.get(conn.qp.qp_num, 0))
                if conn.recv_posted != accounted:
                    self._violate(
                        "buffer-lease",
                        f"rank {ep.rank}: {conn.recv_posted} receive vbufs "
                        f"tracked toward {conn.peer} but {accounted} "
                        "accounted for (WQEs + unpolled arrivals)",
                        pair=(conn.peer, ep.rank),
                    )

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Canonical, JSON-friendly digest (fuzz artifacts, reports)."""
        return {
            "violations": [
                {
                    "invariant": v.invariant,
                    "pair": list(v.pair) if v.pair else None,
                    "time_ns": v.time_ns,
                    "detail": v.detail,
                }
                for v in self.violations
            ],
            "hook_calls": self.hook_calls,
            "messages_sent": self._total_sent,
            "messages_matched": self._total_matched,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Auditor hooks={self.hook_calls} "
                f"violations={len(self.violations)}>")
