"""Structured rank-failure reporting (ULFM-style error objects).

A rank declared dead by the failure detector surfaces as a
:class:`RankFailure` record on ``JobResult.failures`` — the whole-process
analogue of :class:`repro.recovery.failures.ConnectionFailure`.  Pending
requests targeting the dead rank complete with ``Status.error ==
PROC_FAILED`` (MPI_ERR_PROC_FAILED) instead of hanging, and a program
parked on an on-demand connection exchange toward the dead rank is
resumed with :class:`RankFailedError`.

Import-light on purpose: ``repro.mpi.endpoint`` imports this from the
send path, so it must not import the MPI layer back.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: ``Status.error`` value for requests completed against a dead peer
#: (ULFM's MPI_ERR_PROC_FAILED).  Defined here *and* in
#: ``repro.mpi.request`` (same literal) so this module stays free of
#: repro imports: ``mpi.endpoint`` imports it while the ``repro.mpi``
#: package is still initialising, so any import edge back into
#: ``repro.mpi`` would cycle.
PROC_FAILED = "PROC_FAILED"

__all__ = ["PROC_FAILED", "RankFailure", "RankFailedError"]


@dataclass(frozen=True)
class RankFailure:
    """One rank declared dead by the failure detector."""

    rank: int  #: the rank that died
    detected_by: int  #: the surviving rank whose detector declared it
    scheme: str  #: flow-control scheme name ("hardware" / "static" / ...)
    cause: str  #: "heartbeat-timeout" or "transport-retry-exceeded"
    died_ns: int  #: injected death instant (== detected_ns if unknown)
    detected_ns: int  #: simulated time of the declaration
    suspect_rounds: int  #: confirmation rounds consumed before declaring

    @property
    def detection_latency_ns(self) -> int:
        """Silence-to-declaration latency of the failure detector."""
        return self.detected_ns - self.died_ns

    def dedup_key(self) -> tuple:
        """Stable identity for set-based dedup on ``JobResult.failures``
        (every survivor observes the same death exactly once)."""
        return ("rank", self.rank)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = "rank-death"
        d["detection_latency_ns"] = self.detection_latency_ns
        return d

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"rank {self.rank} dead ({self.cause}) detected by "
            f"{self.detected_by} at t={self.detected_ns}ns "
            f"(latency {self.detection_latency_ns}ns, "
            f"rounds={self.suspect_rounds}) scheme={self.scheme}"
        )


class RankFailedError(RuntimeError):
    """Raised into a program parked on communication toward a rank the
    detector just declared dead; carries the structured record for
    ``JobResult.failures``."""

    def __init__(self, failure: RankFailure):
        super().__init__(str(failure))
        self.failure = failure
