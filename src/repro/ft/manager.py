"""Rank-failure tolerance: heartbeat detection + ULFM-style propagation.

Layered above ``repro.recovery`` (which repairs *connections* between
live ranks), :class:`FTManager` handles whole-*rank* death:

* **Detection.**  A rank only watches peers it has pending work toward
  (undone send/recv requests, unanswered on-demand setup exchanges).
  Liveness is piggybacked on existing traffic — every delivered header
  refreshes ``last_heard`` for free — and explicit keepalive pings ride
  the fabric's control path only once a peer has been silent past
  ``FTConfig.suspect_timeout_ns``.  Each unanswered round doubles the
  tolerated silence (exponential confirmation) before the peer is
  declared dead.  A transport-retry-exceeded completion against a dead
  HCA short-circuits the heartbeat: unreachability reported by the RC
  transport is accepted as immediate confirmation.

* **Propagation.**  Declaring a rank dead completes every pending
  request targeting it with ``Status.error == PROC_FAILED`` (ULFM's
  MPI_ERR_PROC_FAILED) instead of letting the program hang: backlogged
  sends, in-flight rendezvous handshakes, posted receives, and programs
  parked on an on-demand connection setup are all resumed.  The
  structured :class:`~repro.ft.failures.RankFailure` record lands on
  ``JobResult.failures`` with detection-latency stats, and the invariant
  auditor is told to exempt the dead rank from credit-conservation and
  watchdog accounting.

Zero-cost when not installed: every hook in the endpoint hot path is
guarded by ``if self._ft is not None`` and no detector event is ever
scheduled, so disabled runs stay bit-identical.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.ft.config import FTConfig
from repro.ft.failures import PROC_FAILED, RankFailedError, RankFailure
from repro.mpi.request import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.builder import Cluster
    from repro.ib.cq import WC
    from repro.mpi.connection import Connection
    from repro.mpi.endpoint import Endpoint
    from repro.mpi.request import Request


class FTManager:
    """Per-cluster failure detector and dead-rank bookkeeping."""

    def __init__(self, cluster: "Cluster", config: Optional[FTConfig] = None):
        self.cluster = cluster
        self.config = config or FTConfig()
        self.config.validate()
        self.sim = cluster.sim

        self.dead: Set[int] = set()  # declared dead (detector verdicts)
        self.injected: Set[int] = set()  # ground truth from the fault plan
        self.failures: List[RankFailure] = []

        # (observer, peer) -> undone requests whose progress needs the peer
        self._watch: Dict[Tuple[int, int], List["Request"]] = {}
        self._last_heard: Dict[Tuple[int, int], int] = {}
        self._rounds: Dict[Tuple[int, int], int] = {}
        self._died_ns: Dict[int, int] = {}
        self._armed = False

        # observability
        self.pings_sent = 0
        self.pongs_sent = 0
        self.pongs_received = 0
        self.suspicions = 0
        self.proc_failed = 0  # requests completed with PROC_FAILED

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> "FTManager":
        """Attach to every endpoint (``ep._ft``) and the cluster."""
        self.cluster.ft = self
        for ep in self.cluster.endpoints:
            ep._ft = self
        return self

    # ------------------------------------------------------------------
    # hooks from the endpoint (all gated on ``ep._ft is not None``)
    # ------------------------------------------------------------------
    def fail_if_dead(self, ep: "Endpoint", req: "Request", peer: int) -> bool:
        """Complete ``req`` with PROC_FAILED when ``peer`` is already
        declared dead; returns True if it did."""
        if peer in self.dead:
            self.fail_request(ep, req, peer)
            return True
        return False

    def watch(self, ep: "Endpoint", req: "Request", peer: int) -> None:
        """Monitor ``peer``'s liveness until ``req`` completes."""
        key = (ep.rank, peer)
        self._watch.setdefault(key, []).append(req)
        self._last_heard.setdefault(key, self.sim.now)
        if not self._armed:
            self._armed = True
            self.sim.every(self.config.heartbeat_interval_ns, self._tick)

    def on_heard(self, observer: int, peer: int) -> None:
        """Traffic from ``peer`` reached ``observer``: refresh liveness."""
        self._last_heard[(observer, peer)] = self.sim.now
        if self._rounds:
            self._rounds.pop((observer, peer), None)

    def fail_request(self, ep: "Endpoint", req: "Request", peer: int) -> None:
        """Complete a request against a dead peer (idempotent)."""
        if req.done:
            return
        self.proc_failed += 1
        req.complete(
            Status(source=peer, tag=-1, size=0, payload=None, error=PROC_FAILED)
        )

    def on_error_wc(self, ep: "Endpoint", wc: "WC") -> Optional[int]:
        """Absorb error completions explained by rank death.

        Transport retry exhaustion toward a dead HCA is *detection*: the
        RC transport declaring the peer unreachable confirms the failure
        faster than the heartbeat's exponential rounds would.  Error
        completions for already-declared peers are reclaimed quietly.
        Returns a CPU cost to absorb the completion, or None to let the
        normal (recovery / structured-connection-failure) path run.
        """
        if ep._halted or ep.rank in self.injected:
            # The victim's own flushed completions: frozen state, absorb.
            ep._reclaim_error_wc(wc)
            return 0
        conn = ep._conn_for_qp(wc.qp_num)
        if conn is None:
            return None
        peer = conn.peer
        if peer in self.dead:
            ep._reclaim_error_wc(wc)
            return 0
        if peer in self.injected or self.cluster.endpoints[peer].hca.dead:
            ep._reclaim_error_wc(wc)
            self._declare(
                peer,
                detected_by=ep.rank,
                rounds=self._rounds.get((ep.rank, peer), 0),
                cause="transport-retry-exceeded",
            )
            return 0
        return None

    # ------------------------------------------------------------------
    # hook from the fault injector
    # ------------------------------------------------------------------
    def note_injected_death(self, rank: int, now: int) -> None:
        """Ground truth for detection-latency stats (the detector itself
        never reads this: it only sees silence and transport errors)."""
        self.injected.add(rank)
        self._died_ns.setdefault(rank, now)
        aud = self.cluster.auditor
        if aud is not None:
            # the detector needs up to detection_budget_ns of silence
            # before it can turn the hang into a structured failure
            aud.extend_grace(now + self.config.detection_budget_ns)

    # ------------------------------------------------------------------
    # the detector
    # ------------------------------------------------------------------
    def _tick(self) -> bool:
        now = self.sim.now
        cfg = self.config
        eps = self.cluster.endpoints
        active = False
        for key in sorted(self._watch):
            reqs = self._watch.get(key)
            if reqs is None:  # dropped by a declaration earlier this tick
                continue
            obs, peer = key
            reqs = [r for r in reqs if not r.done]
            if not reqs or obs in self.dead or peer in self.dead or eps[obs]._halted:
                del self._watch[key]
                self._rounds.pop(key, None)
                continue
            self._watch[key] = reqs
            active = True
            rounds = self._rounds.get(key, 0)
            bound = cfg.suspect_timeout_ns << rounds
            if now - self._last_heard[key] < bound:
                continue
            if rounds >= cfg.confirmations:
                self._declare(
                    peer, detected_by=obs, rounds=rounds, cause="heartbeat-timeout"
                )
                continue
            if rounds == 0:
                self.suspicions += 1
            self._rounds[key] = rounds + 1
            self._send_ping(obs, peer, rounds)
            aud = self.cluster.auditor
            if aud is not None:
                # hold the watchdog off while confirmation rounds run
                aud.extend_grace(now + (bound << 1) + cfg.heartbeat_interval_ns)
        if not active:
            self._armed = False  # agenda drains; re-armed by the next watch()
        return active

    def _send_ping(self, obs: int, peer: int, attempt: int) -> None:
        cfg = self.config
        delay = 0
        if cfg.jitter_ns:
            rng = random.Random(
                cfg.seed * 1_000_003 + obs * 1009 + peer * 131 + attempt
            )
            delay = rng.randrange(cfg.jitter_ns)
        self.sim.schedule(delay, self._ping_depart, obs, peer)

    def _ping_depart(self, obs: int, peer: int) -> None:
        if peer in self.dead or obs in self.dead:
            return
        eps = self.cluster.endpoints
        src = eps[obs]
        if src.hca.dead or src._halted:
            return
        self.pings_sent += 1
        self.cluster.fabric.send_control(
            src.hca.lid, eps[peer].hca.lid, self._ping_arrive, obs, peer
        )

    def _ping_arrive(self, obs: int, peer: int) -> None:
        eps = self.cluster.endpoints
        target = eps[peer]
        if peer in self.dead or target.hca.dead or target._halted:
            return  # a dead rank answers nothing: silence IS the signal
        self.pongs_sent += 1
        self.cluster.fabric.send_control(
            target.hca.lid, eps[obs].hca.lid, self._pong_arrive, obs, peer
        )

    def _pong_arrive(self, obs: int, peer: int) -> None:
        if self.cluster.endpoints[obs].hca.dead:
            return
        self.pongs_received += 1
        self.on_heard(obs, peer)

    # ------------------------------------------------------------------
    # declaration + ULFM-style propagation
    # ------------------------------------------------------------------
    def _declare(self, rank: int, detected_by: int, rounds: int, cause: str) -> None:
        if rank in self.dead:
            return
        now = self.sim.now
        self.dead.add(rank)
        eps = self.cluster.endpoints
        failure = RankFailure(
            rank=rank,
            detected_by=detected_by,
            scheme=eps[detected_by].scheme.name.value,
            cause=cause,
            died_ns=self._died_ns.get(rank, now),
            detected_ns=now,
            suspect_rounds=rounds,
        )
        self.failures.append(failure)
        self.cluster.tracer.count("ft.rank_dead", rank)
        aud = self.cluster.auditor
        if aud is not None:
            aud.note_rank_dead(rank)
        # Resume programs parked on an on-demand setup toward the dead
        # rank: the connection exchange will never complete.
        cm = self.cluster.cm
        if cm is not None:
            for pair in [p for p in cm._pending if rank in p]:
                sig = cm._pending.pop(pair)
                if not sig.fired:
                    sig.fail(self.sim, RankFailedError(failure))
        for ep in eps:
            if ep.rank != rank and ep.rank not in self.dead:
                self._sever(ep, rank)
        # Drop remaining detector state involving the dead rank (its own
        # observations, plus pairs cleared by _sever).
        for key in [k for k in self._watch if rank in k]:
            del self._watch[key]
            self._rounds.pop(key, None)

    def _sever(self, ep: "Endpoint", rank: int) -> None:
        """Cut one survivor loose from the dead rank: error the QP, drain
        its flushed completions, fail every pending operation toward the
        peer, and wake the survivor's progress loop so it observes the
        PROC_FAILED completions."""
        conn = ep.connections.get(rank)
        if conn is not None:
            conn.qp.force_error()  # idempotent
            self._drain_dead_wcs(ep, conn)
            for pending in conn.backlog:
                ref = pending.request
                req = getattr(ref, "request", ref)  # RndvSendOp carries .request
                if req is not None:
                    self.fail_request(ep, req, rank)
            conn.backlog.clear()
            conn.deferred.clear()
            conn.cq_stash.clear()
            ep._backlogged.discard(rank)
        for sreq_id in [k for k, op in ep._rndv_send.items() if op.dst == rank]:
            op = ep._rndv_send.pop(sreq_id)
            if op.mr is not None and not op.bounce:
                ep.pindown.release(op.buffer_id, op.mr)
            self.fail_request(ep, op.request, rank)
        for rreq_id in [k for k, op in ep._rndv_recv.items() if op.src == rank]:
            op = ep._rndv_recv.pop(rreq_id)
            if not op.bounce:
                ep.pindown.release(op.buffer_id, op.mr)
            self.fail_request(ep, op.request, rank)
        for req in self._watch.pop((ep.rank, rank), ()):
            self.fail_request(ep, req, rank)
        self._rounds.pop((ep.rank, rank), None)
        self._wake(ep)

    def _drain_dead_wcs(self, ep: "Endpoint", conn: "Connection") -> None:
        """Remove the dead QP's un-polled error completions from the
        survivor's CQ, reclaiming vbuf/posted-recv bookkeeping.  Success
        completions stay: they are real pre-death deliveries and must be
        processed in FIFO order (same contract as connection recovery)."""
        from collections import deque

        qpn = conn.qp.qp_num
        kept = deque()
        for wc in ep.cq._entries:
            if not wc.ok and wc.qp_num == qpn:
                ep._reclaim_error_wc(wc)
            else:
                kept.append(wc)
        ep.cq._entries = kept

    def _wake(self, ep: "Endpoint") -> None:
        """Fire the survivor's progress-wait signals so a program parked
        in wait()/waitall() observes its PROC_FAILED completions."""
        cq = ep.cq
        if cq._notify is not None:
            sig, cq._notify = cq._notify, None
            sig.fire(self.sim, None)
        ep._ring_signal_fire()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "dead": sorted(self.dead),
            "suspicions": self.suspicions,
            "pings_sent": self.pings_sent,
            "pongs_sent": self.pongs_sent,
            "pongs_received": self.pongs_received,
            "proc_failed_requests": self.proc_failed,
            "failures": [f.to_dict() for f in self.failures],
        }
