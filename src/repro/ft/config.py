"""Failure-detector tuning knobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import us


@dataclass(frozen=True)
class FTConfig:
    """Heartbeat failure-detector parameters.

    The detector only watches peers the local rank has *pending work*
    toward (undone send/recv requests, unanswered on-demand setup
    exchanges), so a healthy idle job schedules no heartbeat events at
    all and the agenda drains normally.

    A peer silent for ``suspect_timeout_ns`` enters suspicion; each
    confirmation round doubles the tolerated silence (exponential
    confirmation) and sends one jittered keepalive ping over the
    fabric's control path.  After ``confirmations`` unanswered rounds
    the peer is declared dead.  Worst-case detection latency is
    therefore roughly ``suspect_timeout_ns * 2**confirmations`` plus
    one heartbeat tick — comfortably inside the auditor's 5 ms
    watchdog quiet bound at the defaults.
    """

    #: detector tick / keepalive cadence while work is pending
    heartbeat_interval_ns: int = us(100)
    #: silence threshold that starts suspicion (round 0)
    suspect_timeout_ns: int = us(300)
    #: unanswered ping rounds (with doubling silence bound) before declaring
    confirmations: int = 2
    #: keepalive send jitter bound, seeded (0 disables jitter)
    jitter_ns: int = us(5)
    #: seed for the per-(observer, peer, round) jitter streams
    seed: int = 0

    def validate(self) -> None:
        if self.heartbeat_interval_ns <= 0:
            raise ValueError("heartbeat_interval_ns must be positive")
        if self.suspect_timeout_ns <= 0:
            raise ValueError("suspect_timeout_ns must be positive")
        if self.confirmations < 0:
            raise ValueError("confirmations must be >= 0")
        if self.jitter_ns < 0:
            raise ValueError("jitter_ns must be >= 0")

    @property
    def detection_budget_ns(self) -> int:
        """Upper bound on silence-to-declaration latency (used to
        pre-extend the auditor watchdog when a death is injected)."""
        return (
            self.suspect_timeout_ns * (2 ** (self.confirmations + 1))
            + 2 * self.heartbeat_interval_ns
        )
