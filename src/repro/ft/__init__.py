"""Rank-failure tolerance (heartbeat detection, ULFM-style propagation).

See :mod:`repro.ft.manager` for the subsystem overview.  Enable per job
with ``run_job(..., ft=True)`` (or pass an :class:`FTConfig`), per
scenario with ``repro chaos --ft``.
"""

from repro.ft.config import FTConfig
from repro.ft.failures import PROC_FAILED, RankFailedError, RankFailure
from repro.ft.manager import FTManager

__all__ = [
    "FTConfig",
    "FTManager",
    "PROC_FAILED",
    "RankFailedError",
    "RankFailure",
]
