"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's experiments:

* ``latency``   — Figure-2 style latency sweep;
* ``bandwidth`` — Figures 3-8 style windowed bandwidth test;
* ``nas``       — run NAS proxies under the three schemes (Figures 9-10,
  Tables 1-2 statistics);
* ``scaling``   — the beyond-the-paper experiment: dynamic scheme +
  on-demand connections on a fat-tree cluster;
* ``chaos``     — deterministic fault injection: compare the schemes'
  robustness under a named fault scenario (``repro.faults``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import Figure, Table, pct_change
from repro.cluster import TestbedConfig, run_job
from repro.faults import SCENARIOS, run_chaos
from repro.sim.units import to_us
from repro.workloads import bandwidth_program, latency_program
from repro.workloads.nas import KERNEL_ORDER, KERNELS

SCHEMES = ("hardware", "static", "dynamic")


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--schemes", nargs="+", default=list(SCHEMES),
                   choices=SCHEMES, help="flow control schemes to compare")
    p.add_argument("--prepost", type=int, default=100,
                   help="receive buffers pre-posted per connection")


def cmd_latency(args: argparse.Namespace) -> int:
    fig = Figure("MPI latency", xlabel="bytes", ylabel="one-way us")
    cfg = TestbedConfig(nodes=2)
    for scheme in args.schemes:
        for size in args.sizes:
            r = run_job(latency_program(size, iterations=args.iterations),
                        2, scheme, prepost=args.prepost, config=cfg)
            fig.add(scheme, size, to_us(int(r.rank_results[0])))
    print(fig.render())
    return 0


def cmd_bandwidth(args: argparse.Namespace) -> int:
    fig = Figure(
        f"MPI bandwidth, {args.size}B messages, pre-post={args.prepost}, "
        f"{'blocking' if args.blocking else 'non-blocking'}",
        xlabel="window", ylabel="MB/s",
    )
    cfg = TestbedConfig(nodes=2)
    for scheme in args.schemes:
        for window in args.windows:
            r = run_job(
                bandwidth_program(args.size, window, repetitions=args.repetitions,
                                  blocking=args.blocking),
                2, scheme, prepost=args.prepost, config=cfg,
            )
            fig.add(scheme, window, r.rank_results[0].mbps)
    print(fig.render(fmt="{:>12.3f}"))
    return 0


def cmd_nas(args: argparse.Namespace) -> int:
    runtime = Table(f"NAS proxy runtimes (s), pre-post={args.prepost}",
                    list(args.schemes))
    for name in args.kernels:
        k = KERNELS[name]
        row = []
        for scheme in args.schemes:
            r = run_job(k.build(), k.nranks, scheme, prepost=args.prepost)
            row.append(r.elapsed_s)
            if args.verbose:
                print(f"  {name}/{scheme}: ecm={r.fc.ecm_msgs} "
                      f"maxbuf={r.fc.max_posted_buffers} naks={r.fc.rnr_naks}",
                      file=sys.stderr)
        runtime.add_row(name, *row)
    print(runtime.render())
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    cfg = TestbedConfig(nodes=args.nodes, topology="fat-tree",
                        leaf_ports=args.leaf_ports,
                        spines=max(1, args.nodes // (2 * args.leaf_ports)))

    def ring(mpi):
        nxt = (mpi.rank + 1) % mpi.world_size
        prv = (mpi.rank - 1) % mpi.world_size
        for i in range(args.iterations):
            rreq = yield from mpi.irecv(source=prv, capacity=4096, tag=i)
            yield from mpi.send(nxt, size=1024, tag=i)
            yield from mpi.wait(rreq)

    table = Table(f"Ring on {args.nodes} ranks (fat-tree)",
                  ["connections", "posted_buffers", "time_us"])
    for label, on_demand in (("full mesh", False), ("on-demand", True)):
        r = run_job(ring, args.nodes, "dynamic", prepost=args.prepost,
                    config=cfg, on_demand=on_demand, finalize=False)
        conns = (r.connections_established
                 if r.connections_established is not None
                 else args.nodes * (args.nodes - 1) // 2)
        buffers = sum(c.recv_posted for ep in r.endpoints
                      for c in ep.connections.values())
        table.add_row(label, conns, buffers, r.elapsed_us)
    print(table.render())
    print("\nBuffer memory scales with the communication graph, not P^2 —")
    print("the paper's conclusion, demonstrated beyond its 8-node testbed.")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from repro import perf

    if args.workloads:
        unknown = [w for w in args.workloads if w not in perf.WORKLOADS]
        if unknown:
            print(f"error: unknown workload(s) {', '.join(unknown)} "
                  f"(available: {', '.join(perf.WORKLOADS)})", file=sys.stderr)
            return 2
    if args.check:
        try:
            baseline = perf.load_report(args.check)
        except (OSError, ValueError) as err:
            print(f"error: cannot read baseline {args.check}: {err}",
                  file=sys.stderr)
            return 2
    report = perf.run_suite(workloads=args.workloads, repeats=args.repeats)
    table = Table(
        f"Kernel throughput (best of {args.repeats})",
        ["events", "sim_ns", "wall_s", "events/s"],
    )
    for name, w in report["workloads"].items():
        table.add_row(name, w["events_executed"], w["sim_now_ns"],
                      w["wall_s"], w["events_per_sec"])
    print(table.render())
    if report["peak_rss_kb"] is not None:
        print(f"peak RSS: {report['peak_rss_kb']} KiB")
    if args.out:
        perf.write_report(report, args.out)
        print(f"wrote {args.out}")
    if args.check:
        problems = perf.compare(report, baseline, tolerance=args.tolerance)
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    report = run_chaos(args.scenario, seed=args.seed,
                       schemes=args.schemes, prepost=args.prepost)
    if args.check:
        rerun = run_chaos(args.scenario, seed=args.seed,
                          schemes=args.schemes, prepost=args.prepost)
        if json.dumps(report, sort_keys=True) != json.dumps(rerun, sort_keys=True):
            print("DETERMINISM DRIFT: two identical chaos runs disagree",
                  file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        table = Table(
            f"Chaos '{report['scenario']}' seed={report['seed']} "
            f"prepost={report['prepost']} "
            f"(faults end at {report['fault_window_us']:.0f} us)",
            ["done", "time_us", "recovery_us", "retrans", "rnr_naks",
             "backlog_max", "ecms", "fallbacks"],
        )
        for scheme, entry in report["schemes"].items():
            if entry.get("completed"):
                table.add_row(scheme, "yes", entry["elapsed_us"],
                              entry["recovery_us"], entry["retransmissions"],
                              entry["rnr_naks"], entry["backlog_max"],
                              entry["ecm_msgs"], entry["rndv_fallbacks"])
            else:
                table.add_row(scheme, "FAILED", entry["error"],
                              "-", "-", "-", "-", "-", "-")
        print(table.render())
    if args.check:
        print("determinism check passed (two runs bit-identical)",
              file=sys.stderr)
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.check import fuzz

    if args.replay:
        try:
            with open(args.replay) as fh:
                artifact = json.load(fh)
        except (OSError, ValueError) as err:
            print(f"error: cannot read artifact {args.replay}: {err}",
                  file=sys.stderr)
            return 2
        comparison = fuzz.replay(artifact)
        return 1 if comparison["failure"] is not None else 0

    scenarios = [None if s == "none" else s for s in args.scenarios]
    summary = fuzz.run_fuzz(
        seed=args.seed,
        runs=args.runs,
        schemes=tuple(args.schemes),
        scenarios=scenarios,
        out_dir=args.out_dir,
        max_shrink=args.max_shrink,
    )
    if args.check:
        rerun = fuzz.run_fuzz(
            seed=args.seed,
            runs=args.runs,
            schemes=tuple(args.schemes),
            scenarios=scenarios,
            out_dir="",  # artifacts from the first pass suffice
            max_shrink=args.max_shrink,
            log=None,
        )
        if summary["digests"] != rerun["digests"]:
            print("DETERMINISM DRIFT: two identical fuzz runs disagree",
                  file=sys.stderr)
            return 1
        print("determinism check passed (two runs bit-identical)",
              file=sys.stderr)
    if summary["failures"]:
        print(f"{len(summary['failures'])}/{args.runs} runs failed; replay "
              f"artifacts in {args.out_dir}/", file=sys.stderr)
        return 1
    print(f"all {args.runs} runs passed: delivered multisets identical "
          f"across {', '.join(args.schemes)}; 0 invariant violations")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Flow Control Schemes in MPI over "
                    "InfiniBand' (Liu & Panda, IPPS 2004) on a simulated cluster",
    )
    # Not ``required=True``: a missing subcommand is handled in ``main``
    # with a printed usage + exit code 2 instead of an argparse traceback.
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("latency", help="latency sweep (Figure 2)")
    _add_common(p)
    p.add_argument("--sizes", nargs="+", type=int,
                   default=[4, 64, 1024, 16384])
    p.add_argument("--iterations", type=int, default=50)
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("bandwidth", help="windowed bandwidth test (Figures 3-8)")
    _add_common(p)
    p.add_argument("--size", type=int, default=4)
    p.add_argument("--windows", nargs="+", type=int, default=[1, 4, 16, 64, 100])
    p.add_argument("--repetitions", type=int, default=10)
    p.add_argument("--blocking", action="store_true")
    p.set_defaults(fn=cmd_bandwidth)

    p = sub.add_parser("nas", help="NAS proxies (Figures 9-10)")
    _add_common(p)
    p.add_argument("--kernels", nargs="+", default=list(KERNEL_ORDER),
                   choices=list(KERNEL_ORDER))
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=cmd_nas)

    p = sub.add_parser(
        "perf",
        help="simulator-throughput benchmark (events/sec; BENCH_perf.json)",
    )
    p.add_argument("--workloads", nargs="+", default=None,
                   help="subset of workloads (default: all)")
    p.add_argument("--repeats", type=int, default=3,
                   help="wall-time repeats per workload (best is reported)")
    p.add_argument("--out", default="BENCH_perf.json",
                   help="report path ('' to skip writing)")
    p.add_argument("--check", default=None, metavar="BASELINE",
                   help="compare against a baseline report; exit 1 on "
                        "determinism drift or >tolerance throughput drop")
    p.add_argument("--tolerance", type=float, default=0.20,
                   help="allowed fractional events/sec regression for --check")
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser("scaling", help="dynamic + on-demand on a fat tree")
    p.add_argument("--nodes", type=int, default=64)
    p.add_argument("--leaf-ports", type=int, default=8)
    p.add_argument("--prepost", type=int, default=1)
    p.add_argument("--iterations", type=int, default=3)
    p.set_defaults(fn=cmd_scaling)

    p = sub.add_parser(
        "chaos",
        help="fault-injection robustness comparison (repro.faults)",
    )
    p.add_argument("--scenario", required=True, choices=sorted(SCENARIOS),
                   help="named fault scenario (see EXPERIMENTS.md)")
    p.add_argument("--seed", type=int, default=7,
                   help="fault-plan RNG seed (fixed seed -> bit-identical run)")
    p.add_argument("--schemes", nargs="+", default=list(SCHEMES),
                   choices=SCHEMES, help="flow control schemes to compare")
    p.add_argument("--prepost", type=int, default=None,
                   help="receive buffers per connection (default: scenario's)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as canonical JSON")
    p.add_argument("--check", action="store_true",
                   help="run twice and exit 1 unless bit-identical")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "fuzz",
        help="cross-scheme differential fuzzing with the invariant "
             "auditor armed (repro.check)",
    )
    p.add_argument("--seed", type=int, default=1,
                   help="base workload seed (run k uses seed+k)")
    p.add_argument("--runs", type=int, default=25,
                   help="number of seeded workloads")
    p.add_argument("--schemes", nargs="+", default=list(SCHEMES),
                   choices=SCHEMES, help="schemes every workload runs under")
    p.add_argument("--scenarios", nargs="+",
                   default=["none", "receiver-stall", "lossy-window"],
                   choices=["none", "receiver-stall", "lossy-window"],
                   help="fault scenarios cycled across runs")
    p.add_argument("--out-dir", default="fuzz-failures",
                   help="where minimized replay artifacts land ('' to skip)")
    p.add_argument("--max-shrink", type=int, default=200,
                   help="rerun budget for minimizing a failing workload")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="re-run a failure artifact; exit 1 if it reproduces")
    p.add_argument("--check", action="store_true",
                   help="run the sweep twice and exit 1 unless bit-identical")
    p.set_defaults(fn=cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits on --help (code 0) and on errors such as an
        # unknown subcommand (code 2, usage already printed to stderr);
        # surface that as a return code instead of an exception.
        return exc.code if isinstance(exc.code, int) else 2
    if getattr(args, "fn", None) is None:
        parser.print_usage(sys.stderr)
        return 2
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
