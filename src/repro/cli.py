"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's experiments:

* ``latency``   — Figure-2 style latency sweep;
* ``bandwidth`` — Figures 3-8 style windowed bandwidth test;
* ``nas``       — run NAS proxies under the three schemes (Figures 9-10,
  Tables 1-2 statistics);
* ``scaling``   — the beyond-the-paper experiment: dynamic scheme +
  on-demand connections on a fat-tree cluster;
* ``chaos``     — deterministic fault injection: compare the schemes'
  robustness under a named fault scenario (``repro.faults``);
* ``sweep``     — run a named figure/table campaign through the parallel
  orchestrator with result caching (``repro.campaign``).

Every experiment command expands its grid into declarative
:class:`~repro.campaign.JobSpec` cells and feeds them through the same
:func:`~repro.campaign.run_cells` runner, so ``--workers`` parallelism
and the sweep cache apply uniformly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import Figure, Table, pct_change
from repro.campaign import GRIDS, ResultCache, build_grid, grids, run_cells
from repro.faults import SCENARIOS, chaos_report_header
from repro.workloads.nas import KERNEL_ORDER

#: the paper's three schemes — the default comparison set for the
#: figure/table commands, so reproduction output matches the paper
SCHEMES = ("hardware", "static", "dynamic")
#: plus the beyond-the-paper RDMA-write ring-buffer eager scheme;
#: accepted everywhere, default only where the comparison is ours
#: (``repro scaling``), not the paper's
ALL_SCHEMES = SCHEMES + ("rdma-eager",)

DEFAULT_CACHE_DIR = "benchmarks/results/.sweep-cache"


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--schemes", nargs="+", default=list(SCHEMES),
                   choices=ALL_SCHEMES,
                   help="flow control schemes to compare")
    p.add_argument("--prepost", type=int, default=100,
                   help="receive buffers pre-posted per connection")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for independent cells (1 = "
                        "run everything in this process)")


def _progress(out, done, total) -> None:
    tag = {"run": "run", "worker": "run", "failed": "FAIL"}.get(
        out.source, out.source)
    detail = out.error if out.source == "failed" else f"{out.wall_s:.2f}s"
    print(f"  [{done}/{total}] {tag} {out.spec.label()} ({detail})",
          file=sys.stderr)


def cmd_latency(args: argparse.Namespace) -> int:
    specs = grids.latency_grid(schemes=args.schemes, sizes=args.sizes,
                               iterations=args.iterations,
                               prepost=args.prepost)
    res = run_cells(specs, workers=args.workers)
    fig = Figure("MPI latency", xlabel="bytes", ylabel="one-way us")
    for out in res.outcomes:
        fig.add(out.spec.params["scheme"], out.spec.params["size"],
                out.metrics["latency_us"])
    print(fig.render())
    return 0


def cmd_bandwidth(args: argparse.Namespace) -> int:
    specs = grids.bandwidth_grid(schemes=args.schemes, size=args.size,
                                 windows=args.windows,
                                 repetitions=args.repetitions,
                                 blocking=args.blocking,
                                 prepost=args.prepost)
    res = run_cells(specs, workers=args.workers)
    fig = Figure(
        f"MPI bandwidth, {args.size}B messages, pre-post={args.prepost}, "
        f"{'blocking' if args.blocking else 'non-blocking'}",
        xlabel="window", ylabel="MB/s",
    )
    for out in res.outcomes:
        fig.add(out.spec.params["scheme"], out.spec.params["window"],
                out.metrics["mbps"])
    print(fig.render(fmt="{:>12.3f}"))
    return 0


def cmd_nas(args: argparse.Namespace) -> int:
    specs = grids.nas_grid(kernels=args.kernels, schemes=args.schemes,
                           preposts=(args.prepost,))
    res = run_cells(specs, workers=args.workers)
    by_cell = {(o.spec.params["kernel"], o.spec.params["scheme"]): o.metrics
               for o in res.outcomes}
    runtime = Table(f"NAS proxy runtimes (s), pre-post={args.prepost}",
                    list(args.schemes))
    for name in args.kernels:
        row = []
        for scheme in args.schemes:
            m = by_cell[(name, scheme)]
            row.append(m["elapsed_s"])
            if args.verbose:
                fc = m["fc"]
                print(f"  {name}/{scheme}: ecm={fc['ecm_msgs']} "
                      f"maxbuf={fc['max_posted_buffers']} "
                      f"naks={fc['rnr_naks']}",
                      file=sys.stderr)
        runtime.add_row(name, *row)
    print(runtime.render())
    return 0


def _scaling_metrics(args: argparse.Namespace, ladder: List[int]):
    """Run the scaling sweep's cells; (ranks, scheme, mode) -> metrics."""
    specs = grids.scaling_grid(ranks=ladder, schemes=args.schemes,
                               prepost=args.prepost,
                               iterations=args.iterations)
    res = run_cells(specs, workers=args.workers)
    metrics = {}
    for out in res.outcomes:
        p = out.spec.params
        mode = "on-demand" if p["on_demand"] else "mesh"
        metrics[(p["nodes"], p["scheme"], mode)] = out.metrics
    return metrics


def cmd_scaling(args: argparse.Namespace) -> int:
    from repro.analysis import memory_table
    from repro.cluster import TestbedConfig
    from repro.core.memory import mesh_pinned_bytes

    # climb the standard ladder up to --nodes (so `--nodes 1024` shows the
    # full 64 -> 256 -> 1024 trajectory), plus the requested count itself
    ladder = sorted({r for r in grids.RANK_LADDER if r < args.nodes}
                    | {args.nodes})
    metrics = _scaling_metrics(args, ladder)
    if args.check:
        rerun = _scaling_metrics(args, ladder)
        canon = json.dumps(sorted(metrics.items()), sort_keys=True)
        if canon != json.dumps(sorted(rerun.items()), sort_keys=True):
            print("DETERMINISM DRIFT: two identical scaling sweeps disagree",
                  file=sys.stderr)
            return 1
        print("determinism check passed (two runs bit-identical)",
              file=sys.stderr)

    for r in ladder:
        table = Table(f"Ring on {r} ranks (fat-tree)",
                      ["connections", "posted_buffers", "time_us"])
        for scheme in args.schemes:
            for mode in ("mesh", "on-demand"):
                m = metrics.get((r, scheme, mode))
                if m is None:
                    continue  # mesh arm above the simulation cap
                label = f"{scheme} " + ("on-demand" if mode == "on-demand"
                                        else "full mesh")
                table.add_row(label, m["connections"], m["posted_buffers"],
                              m["elapsed_us"])
        print(table.render())
        print()

    mpi = TestbedConfig().mpi
    cells = [
        {"ranks": r, "scheme": scheme, "mode": mode,
         "pinned_bytes": m["pinned_bytes"]}
        for (r, scheme, mode), m in metrics.items()
    ]
    for r in ladder:
        if r > grids.MESH_MAX_RANKS:
            for scheme in args.schemes:
                cells.append({
                    "ranks": r, "scheme": scheme, "mode": "mesh",
                    "modeled": True,
                    "pinned_bytes": mesh_pinned_bytes(r, scheme,
                                                      args.prepost, mpi),
                })
    print(memory_table(cells).render())
    print("(* = closed-form full-mesh model; a mesh that size is not "
          "simulated)")
    print("\nBuffer memory scales with the communication graph, not P^2 —")
    print("the paper's conclusion, demonstrated beyond its 8-node testbed.")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from repro import perf

    if args.workloads:
        unknown = [w for w in args.workloads if w not in perf.WORKLOADS]
        if unknown:
            print(f"error: unknown workload(s) {', '.join(unknown)} "
                  f"(available: {', '.join(perf.WORKLOADS)})", file=sys.stderr)
            return 2
    if args.profile:
        # Profiling overhead poisons wall timings, so this mode replaces
        # the measured suite instead of decorating it.
        for name in args.workloads or list(perf.WORKLOADS):
            print(f"=== cProfile: {name} (top 20 by cumulative time) ===")
            print(perf.profile_workload(name, top=20))
        return 0
    if args.check:
        try:
            baseline = perf.load_report(args.check)
        except (OSError, ValueError) as err:
            print(f"error: cannot read baseline {args.check}: {err}",
                  file=sys.stderr)
            return 2
    report = perf.run_suite(workloads=args.workloads, repeats=args.repeats)
    table = Table(
        f"Kernel throughput (best of {args.repeats})",
        ["events", "sim_ns", "wall_s", "events/s"],
    )
    for name, w in report["workloads"].items():
        table.add_row(name, w["events_executed"], w["sim_now_ns"],
                      w["wall_s"], w["events_per_sec"])
    print(table.render())
    if report["peak_rss_kb"] is not None:
        print(f"peak RSS: {report['peak_rss_kb']} KiB")
    if args.out:
        perf.write_report(report, args.out)
        print(f"wrote {args.out}")
    if args.check:
        problems = perf.compare(report, baseline, tolerance=args.tolerance)
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def _chaos_report(args: argparse.Namespace) -> dict:
    specs = grids.chaos_grid(scenarios=[args.scenario], schemes=args.schemes,
                             seed=args.seed, prepost=args.prepost,
                             recovery=args.recovery,
                             congestion=args.congestion, ft=args.ft)
    res = run_cells(specs, workers=args.workers)
    report = chaos_report_header(args.scenario, seed=args.seed,
                                 prepost=args.prepost, recovery=args.recovery,
                                 congestion=args.congestion, ft=args.ft)
    for out in res.outcomes:
        report["schemes"][out.spec.params["scheme"]] = out.metrics
    return report


def cmd_chaos(args: argparse.Namespace) -> int:
    report = _chaos_report(args)
    if args.check:
        rerun = _chaos_report(args)
        if json.dumps(report, sort_keys=True) != json.dumps(rerun, sort_keys=True):
            print("DETERMINISM DRIFT: two identical chaos runs disagree",
                  file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        congested = report["congestion"] is not None
        columns = ["done", "time_us", "recovery_us", "retrans", "rnr_naks",
                   "backlog_max", "ecms", "fallbacks", "reconnects",
                   "replayed"]
        if congested:
            columns += ["pauses", "marks", "drops", "victim_us"]
        title = (
            f"Chaos '{report['scenario']}' seed={report['seed']} "
            f"prepost={report['prepost']} "
            f"recovery={'on' if report['recovery'] else 'off'} "
        )
        if report.get("ft"):
            title += "ft=on "
        if congested:
            title += f"congestion={report['congestion']} "
        title += f"(faults end at {report['fault_window_us']:.0f} us)"
        table = Table(title, columns)
        for scheme, entry in report["schemes"].items():
            rec = entry.get("recovery")
            reconnects = rec["completed"] if rec else "-"
            replayed = rec["messages_replayed"] if rec else "-"
            cong_cells = []
            if congested:
                cong = entry.get("congestion")
                cong_cells = [
                    cong["pause_frames"] if cong else "-",
                    cong["ecn_marks"] if cong else "-",
                    cong["drops"] if cong else "-",
                    entry.get("victim_finish_us", "-"),
                ]
            if entry.get("completed"):
                table.add_row(scheme, "yes", entry["elapsed_us"],
                              entry["recovery_us"], entry["retransmissions"],
                              entry["rnr_naks"], entry["backlog_max"],
                              entry["ecm_msgs"], entry["rndv_fallbacks"],
                              reconnects, replayed, *cong_cells)
            elif "failures" in entry:
                f = entry["failures"][0]
                if f.get("kind") == "rank-death":
                    # a detected rank failure is the subsystem *working*:
                    # show who died, who noticed, and how fast
                    detail = (
                        f"rank {f['rank']} dead ({f['cause']}), detected "
                        f"by {f['detected_by']} in "
                        f"{f['detection_latency_ns'] / 1000:.0f} us"
                    )
                    status = "DEAD"
                else:
                    detail = (f"{f['cause']} {f['rank']}<->{f['peer']} "
                              f"attempts={f['attempts']}")
                    status = "FAILED"
                # the name column auto-sizes; the value columns do not
                table.add_row(f"{scheme}: {detail}", status,
                              "-", "-", "-", "-", "-", "-", "-",
                              reconnects, replayed,
                              *(["-"] * len(cong_cells)))
            else:
                table.add_row(f"{scheme}: {entry['error']}", "FAILED",
                              "-", "-", "-", "-", "-", "-", "-", "-", "-",
                              *(["-"] * len(cong_cells)))
        print(table.render())
    if args.check:
        print("determinism check passed (two runs bit-identical)",
              file=sys.stderr)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.campaign.runner import CheckFailure

    if args.list:
        for name in sorted(GRIDS):
            print(f"{name:>12}  {GRIDS[name].description}")
        return 0
    if args.grid is None:
        print("error: --grid is required (or --list to see the campaigns)",
              file=sys.stderr)
        return 2
    overrides = {
        "schemes": args.schemes,
        "repetitions": args.repetitions,
        "windows": args.windows,
        "kernels": args.kernels,
        "seed": args.seed,
    }
    try:
        specs = build_grid(args.grid, **overrides)
    except (TypeError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    out_path = args.out or f"benchmarks/results/sweep_{args.grid}.jsonl"
    print(f"sweep '{args.grid}': {len(specs)} cells, "
          f"workers={args.workers}, cache="
          f"{'off' if cache is None else args.cache_dir}", file=sys.stderr)
    try:
        res = run_cells(
            specs,
            workers=args.workers,
            cache=cache,
            jsonl_path=out_path,
            resume=args.resume,
            check=args.check,
            strict=False,
            progress=_progress,
        )
    except CheckFailure as err:  # pragma: no cover - strict=False above
        print(f"CHECK FAILED: {err}", file=sys.stderr)
        return 1

    print(f"sweep '{args.grid}': {len(res.outcomes)} cells — "
          f"{res.executed} executed, {res.hits} cached, "
          f"{len(res.failures)} failed in {res.wall_s:.2f}s -> {out_path}",
          file=sys.stderr)
    if res.failures:
        for out in res.failures:
            print(f"FAILED: {out.spec.label()}: {out.error}", file=sys.stderr)
        return 1
    if res.check_failures:
        for m in res.check_failures:
            print(f"CHECK MISMATCH ({m['source']}): {m['label']}",
                  file=sys.stderr)
        print("DETERMINISM DRIFT: stored results are not bit-identical to "
              "an in-process re-run", file=sys.stderr)
        return 1
    if args.check:
        print("determinism check passed (records bit-identical to "
              "in-process runs)", file=sys.stderr)
    if args.require_all_cached and res.executed:
        print(f"error: --require-all-cached but {res.executed} cell(s) "
              f"were executed (cold cache?)", file=sys.stderr)
        return 1
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.check import fuzz

    if args.replay:
        try:
            with open(args.replay) as fh:
                artifact = json.load(fh)
        except (OSError, ValueError) as err:
            print(f"error: cannot read artifact {args.replay}: {err}",
                  file=sys.stderr)
            return 2
        comparison = fuzz.replay(artifact)
        return 1 if comparison["failure"] is not None else 0

    scenarios = [None if s == "none" else s for s in args.scenarios]
    summary = fuzz.run_fuzz(
        seed=args.seed,
        runs=args.runs,
        schemes=tuple(args.schemes),
        scenarios=scenarios,
        out_dir=args.out_dir,
        max_shrink=args.max_shrink,
        on_demand=args.on_demand,
    )
    if args.check:
        rerun = fuzz.run_fuzz(
            seed=args.seed,
            runs=args.runs,
            schemes=tuple(args.schemes),
            scenarios=scenarios,
            out_dir="",  # artifacts from the first pass suffice
            max_shrink=args.max_shrink,
            on_demand=args.on_demand,
            log=None,
        )
        if summary["digests"] != rerun["digests"]:
            print("DETERMINISM DRIFT: two identical fuzz runs disagree",
                  file=sys.stderr)
            return 1
        print("determinism check passed (two runs bit-identical)",
              file=sys.stderr)
    if summary["failures"]:
        print(f"{len(summary['failures'])}/{args.runs} runs failed; replay "
              f"artifacts in {args.out_dir}/", file=sys.stderr)
        return 1
    print(f"all {args.runs} runs passed: delivered multisets identical "
          f"across {', '.join(args.schemes)}; 0 invariant violations")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Flow Control Schemes in MPI over "
                    "InfiniBand' (Liu & Panda, IPPS 2004) on a simulated cluster",
    )
    # Not ``required=True``: a missing subcommand is handled in ``main``
    # with a printed usage + exit code 2 instead of an argparse traceback.
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("latency", help="latency sweep (Figure 2)")
    _add_common(p)
    p.add_argument("--sizes", nargs="+", type=int,
                   default=[4, 64, 1024, 16384])
    p.add_argument("--iterations", type=int, default=50)
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("bandwidth", help="windowed bandwidth test (Figures 3-8)")
    _add_common(p)
    p.add_argument("--size", type=int, default=4)
    p.add_argument("--windows", nargs="+", type=int, default=[1, 4, 16, 64, 100])
    p.add_argument("--repetitions", type=int, default=10)
    p.add_argument("--blocking", action="store_true")
    p.set_defaults(fn=cmd_bandwidth)

    p = sub.add_parser("nas", help="NAS proxies (Figures 9-10)")
    _add_common(p)
    p.add_argument("--kernels", nargs="+", default=list(KERNEL_ORDER),
                   choices=list(KERNEL_ORDER))
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=cmd_nas)

    p = sub.add_parser(
        "perf",
        help="simulator-throughput benchmark (events/sec; BENCH_perf.json)",
    )
    p.add_argument("--workloads", nargs="+", default=None,
                   help="subset of workloads (default: all)")
    p.add_argument("--repeats", type=int, default=3,
                   help="wall-time repeats per workload (best is reported)")
    p.add_argument("--out", default="BENCH_perf.json",
                   help="report path ('' to skip writing)")
    p.add_argument("--check", default=None, metavar="BASELINE",
                   help="compare against a baseline report; exit 1 on "
                        "determinism drift or >tolerance throughput drop")
    p.add_argument("--tolerance", type=float, default=0.20,
                   help="allowed fractional events/sec regression for --check")
    p.add_argument("--profile", action="store_true",
                   help="run each workload under cProfile and print the "
                        "top 20 functions by cumulative time (no report)")
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser(
        "scaling",
        help="ranks 64-1024 x schemes x {mesh, on-demand} on fat trees, "
             "with the Table-2-at-scale memory table")
    p.add_argument("--nodes", type=int, default=64,
                   help="top of the rank ladder (1024 = the three-level "
                        "pod fat-tree)")
    p.add_argument("--schemes", nargs="+", default=list(ALL_SCHEMES),
                   choices=ALL_SCHEMES,
                   help="flow control schemes to compare (all four by "
                        "default — the memory story is the point here)")
    p.add_argument("--prepost", type=int, default=1)
    p.add_argument("--iterations", type=int, default=3)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for independent cells")
    p.add_argument("--check", action="store_true",
                   help="run the sweep twice and exit 1 unless bit-identical")
    p.set_defaults(fn=cmd_scaling)

    p = sub.add_parser(
        "sweep",
        help="run a named figure/table campaign through the parallel "
             "orchestrator with result caching (repro.campaign)",
    )
    p.add_argument("--grid", default=None, choices=sorted(GRIDS),
                   help="named campaign (see --list)")
    p.add_argument("--list", action="store_true",
                   help="list the available campaign grids and exit")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = sequential reference path)")
    p.add_argument("--out", default=None, metavar="JSONL",
                   help="campaign artifact "
                        "(default benchmarks/results/sweep_<grid>.jsonl)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="content-addressed result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the result cache entirely")
    p.add_argument("--resume", action="store_true",
                   help="reuse records already in the --out artifact "
                        "(checkpoint of an interrupted campaign)")
    p.add_argument("--check", action="store_true",
                   help="re-run every cached/worker result in-process and "
                        "exit 1 unless bit-identical")
    p.add_argument("--require-all-cached", action="store_true",
                   help="exit 1 if any cell had to execute (warm-cache "
                        "assertion for CI)")
    p.add_argument("--schemes", nargs="+", default=None,
                   choices=ALL_SCHEMES,
                   help="override the grid's schemes")
    p.add_argument("--windows", nargs="+", type=int, default=None,
                   help="override a bandwidth grid's window axis")
    p.add_argument("--repetitions", type=int, default=None,
                   help="override a bandwidth grid's repetitions per cell")
    p.add_argument("--kernels", nargs="+", default=None,
                   help="override the NAS grid's kernel list")
    p.add_argument("--seed", type=int, default=None,
                   help="override the chaos grid's fault-plan seed")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "chaos",
        help="fault-injection robustness comparison (repro.faults)",
    )
    p.add_argument("--scenario", required=True, choices=sorted(SCENARIOS),
                   help="named fault scenario (see EXPERIMENTS.md)")
    p.add_argument("--seed", type=int, default=7,
                   help="fault-plan RNG seed (fixed seed -> bit-identical run)")
    p.add_argument("--schemes", nargs="+", default=list(SCHEMES),
                   choices=ALL_SCHEMES,
                   help="flow control schemes to compare")
    p.add_argument("--prepost", type=int, default=None,
                   help="receive buffers per connection (default: scenario's)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the per-scheme cells")
    p.add_argument("--recovery", action="store_true",
                   help="install the connection recovery subsystem "
                        "(repro.recovery): lost QP pairs are re-established "
                        "with credit resync instead of failing the run")
    p.add_argument("--congestion", nargs="?", const="pfc", default=None,
                   choices=["pfc", "ecn", "both"],
                   help="arm the switch congestion subsystem "
                        "(repro.congestion): finite egress queues with PFC "
                        "pause frames and/or ECN/DCQCN rate control "
                        "(bare flag = pfc)")
    p.add_argument("--ft", action="store_true",
                   help="install the rank-failure tolerance subsystem "
                        "(repro.ft): a heartbeat failure detector turns "
                        "dead ranks into structured RankFailure records "
                        "and PROC_FAILED request statuses instead of a "
                        "watchdog hang (pair with --scenario rank-death)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as canonical JSON")
    p.add_argument("--check", action="store_true",
                   help="run twice and exit 1 unless bit-identical")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "fuzz",
        help="cross-scheme differential fuzzing with the invariant "
             "auditor armed (repro.check)",
    )
    p.add_argument("--seed", type=int, default=1,
                   help="base workload seed (run k uses seed+k)")
    p.add_argument("--runs", type=int, default=25,
                   help="number of seeded workloads")
    p.add_argument("--schemes", nargs="+", default=list(SCHEMES),
                   choices=ALL_SCHEMES,
                   help="schemes every workload runs under")
    p.add_argument("--scenarios", nargs="+",
                   default=["none", "receiver-stall", "lossy-window",
                            "link-down"],
                   choices=["none", "receiver-stall", "lossy-window",
                            "link-down", "rank-death"],
                   help="fault scenarios cycled across runs (link-down "
                        "runs under the connection recovery subsystem; "
                        "rank-death under the failure detector, comparing "
                        "survivors' deliveries only)")
    p.add_argument("--on-demand", action="store_true",
                   help="run every workload under lazy (on-demand) "
                        "connection establishment, so the differential "
                        "comparator covers the CM exchange path")
    p.add_argument("--out-dir", default="fuzz-failures",
                   help="where minimized replay artifacts land ('' to skip)")
    p.add_argument("--max-shrink", type=int, default=200,
                   help="rerun budget for minimizing a failing workload")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="re-run a failure artifact; exit 1 if it reproduces")
    p.add_argument("--check", action="store_true",
                   help="run the sweep twice and exit 1 unless bit-identical")
    p.set_defaults(fn=cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits on --help (code 0) and on errors such as an
        # unknown subcommand (code 2, usage already printed to stderr);
        # surface that as a return code instead of an exception.
        return exc.code if isinstance(exc.code, int) else 2
    if getattr(args, "fn", None) is None:
        parser.print_usage(sys.stderr)
        return 2
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
