"""Shared infrastructure for the NAS Parallel Benchmark proxies.

Each proxy reproduces the *communication skeleton* of its NAS kernel
(partners, message sizes, call ordering, iteration structure — Class A
problem sizes) with computation modelled as simulated CPU time.  Iteration
counts are scaled down where the original would generate millions of DES
events; each kernel's docstring records the scaling.  The substitution
argument (DESIGN.md §2): flow-control stress is a function of the
communication pattern — burst depth, symmetry, message sizes — all of which
the skeletons keep faithful.

Compute times carry a small deterministic per-rank jitter so pipelines skew
realistically (identical ranks in lockstep would hide every flow-control
effect).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List

from repro.cluster.job import Program


@dataclass
class NASKernel:
    """Descriptor of one proxy: builder plus its canonical rank count."""

    name: str
    nranks: int
    build: Callable[..., Program]
    description: str = ""


class ComputeModel:
    """Deterministic per-rank compute-time jitter.

    ``jitter(rank, base_ns)`` returns ``base_ns`` scaled by a fixed factor
    in [1-amp, 1+amp] derived from a hash of (seed, rank) — reproducible
    and rank-stable, like real per-node performance variation.
    """

    def __init__(self, seed: int = 20040426, amplitude: float = 0.04):
        self.seed = seed
        self.amplitude = amplitude

    def factor(self, rank: int) -> float:
        h = (self.seed * 1_000_003 + rank * 7_919) & 0xFFFFFFFF
        h ^= h >> 13
        h = (h * 0x5BD1E995) & 0xFFFFFFFF
        h ^= h >> 15
        unit = (h % 10_000) / 10_000.0  # [0, 1)
        return 1.0 + self.amplitude * (2.0 * unit - 1.0)

    def ns(self, rank: int, base_ns: float) -> int:
        return max(1, int(round(base_ns * self.factor(rank))))


def grid_2d(nranks: int) -> tuple:
    """Factor ``nranks`` into the most-square (cols >= rows) 2D grid, the
    way NAS LU/CG lay out processes."""
    rows = int(math.sqrt(nranks))
    while nranks % rows:
        rows -= 1
    cols = nranks // rows
    return cols, rows


def coords_2d(rank: int, cols: int) -> tuple:
    return rank % cols, rank // cols


def rank_2d(x: int, y: int, cols: int) -> int:
    return y * cols + x


def sendrecv(mpi, partner: int, size: int, tag: int, buffer_id=None) -> Generator:
    """The MPI_Sendrecv idiom for *paired* partners (both sides name each
    other, e.g. XOR neighbours)."""
    rreq = yield from mpi.irecv(source=partner, capacity=size, tag=tag,
                                buffer_id=buffer_id)
    sreq = yield from mpi.isend(partner, size=size, tag=tag, buffer_id=buffer_id)
    yield from mpi.waitall([rreq, sreq])


def shift(mpi, to: int, frm: int, size: int, tag: int, buffer_id=None) -> Generator:
    """The MPI_Sendrecv idiom for *ring* shifts: send toward ``to`` while
    receiving from ``frm`` (everyone shifts the same direction — the BT/SP
    copy_faces and ADI-stage pattern)."""
    rreq = yield from mpi.irecv(source=frm, capacity=size, tag=tag,
                                buffer_id=buffer_id)
    sreq = yield from mpi.isend(to, size=size, tag=tag, buffer_id=buffer_id)
    yield from mpi.waitall([rreq, sreq])
