"""NAS IS (Integer Sort) communication skeleton — Class A.

Class A sorts N = 2^23 keys over 10 iterations (plus one untimed warm-up).
Per iteration the real kernel does:

1. ``MPI_Allreduce`` of the per-bucket counts (1024 buckets × 4 B = 4 KiB),
2. ``MPI_Alltoall`` of the send counts (one int per peer),
3. ``MPI_Alltoallv`` of the keys themselves — ≈ N/P keys leave each rank,
   split roughly evenly: (2^23 / 8) × 4 B / 8 ≈ 512 KiB per peer,
4. local counting sort (the compute phase).

Scaling: none needed — 11 iterations of collectives are cheap to simulate.
The pattern is symmetric and rendezvous-dominated, which is why the paper
finds IS almost insensitive to the pre-post depth (Figure 10, ≤ 2 %).
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.job import Program
from repro.sim.units import ms
from repro.workloads.nas.common import ComputeModel

TOTAL_KEYS = 1 << 23  # Class A
KEY_BYTES = 4
BUCKETS = 1024
ITERATIONS = 10


def build(iterations: int = ITERATIONS, compute_scale: float = 1.0) -> Program:
    compute = ComputeModel()

    def prog(mpi) -> Generator:
        P = mpi.world_size
        keys_per_rank = TOTAL_KEYS // P
        key_block = keys_per_rank * KEY_BYTES // P  # per-peer key slab
        msgs = 0
        for it in range(iterations + 1):  # +1 warm-up iteration
            # local bucket counting
            yield from mpi.compute(compute.ns(mpi.rank, ms(38) * compute_scale))
            # bucket-size allreduce (4 KiB)
            yield from mpi.allreduce(size=BUCKETS * KEY_BYTES)
            # send-count alltoall (1 int per peer)
            yield from mpi.alltoall(size_per_peer=KEY_BYTES)
            # the big key redistribution
            sizes = [key_block] * P
            yield from mpi.alltoallv(sizes)
            msgs += 2 * (P - 1) + 2
            # local sort of received keys
            yield from mpi.compute(compute.ns(mpi.rank, ms(22) * compute_scale))
        return msgs

    return prog
