"""NAS CG (Conjugate Gradient) communication skeleton — Class A.

Class A: n = 14000, 15 outer iterations × 25 inner CG iterations on a
2-D process grid (4 columns × 2 rows at P = 8).  Per inner iteration the
kernel does a sparse mat-vec whose communication is:

* a *fold* across the process row: log2(cols) sendrecv exchanges with the
  row partners, sizes n/rows · 8 B halving each step (56 KiB, 28 KiB at
  P = 8),
* a *transpose* exchange with the diagonal partner (n/cols · 8 B ≈ 28 KiB),
* two scalar ``rho/beta`` reductions via sendrecv pairs (8 B).

The pattern is tightly synchronous and symmetric — every send is promptly
answered — so credits always return by piggybacking and only ~3 buffers are
ever needed (paper Table 2: CG = 3).  With pre-post = 1 the static scheme
pays small stalls on each exchange (~6 % total, Figure 10).

Scaling: outer iterations 15 → 5 (the per-iteration pattern is identical;
fewer repetitions only narrow the statistics).
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.job import Program
from repro.sim.units import ms, us
from repro.workloads.nas.common import ComputeModel, grid_2d, sendrecv

N = 14000  # Class A
OUTER = 5  # scaled from 15
INNER = 25


def build(outer: int = OUTER, inner: int = INNER, compute_scale: float = 1.0) -> Program:
    compute = ComputeModel()

    def prog(mpi) -> Generator:
        P = mpi.world_size
        cols, rows = grid_2d(P)
        col = mpi.rank % cols
        fold_sizes = []
        length = (N // rows) * 8
        c = cols
        while c > 1:
            fold_sizes.append(max(8, length))
            length //= 2
            c //= 2
        transpose_size = max(8, (N // cols) * 8)
        exchanges = 0
        for _ in range(outer):
            for _ in range(inner):
                # sparse mat-vec compute
                yield from mpi.compute(compute.ns(mpi.rank, ms(5.5) * compute_scale))
                # fold across the row (butterfly over columns)
                for step, size in enumerate(fold_sizes):
                    partner_col = col ^ (1 << step)
                    partner = mpi.rank - col + partner_col
                    yield from sendrecv(mpi, partner, size, tag=10 + step,
                                        buffer_id=("fold", step))
                    exchanges += 1
                # transpose exchange with the diagonal partner
                t_partner = (mpi.rank + P // 2) % P
                yield from sendrecv(mpi, t_partner, transpose_size, tag=20,
                                    buffer_id=("transpose",))
                exchanges += 1
                # dot products: two scalar reductions (as sendrecv cascades)
                yield from mpi.compute(compute.ns(mpi.rank, us(120) * compute_scale))
                for step in range(len(fold_sizes)):
                    partner_col = col ^ (1 << step)
                    partner = mpi.rank - col + partner_col
                    yield from sendrecv(mpi, partner, 8, tag=30 + step)
                    exchanges += 1
            # outer-iteration norm
            yield from mpi.allreduce(size=8)
        return exchanges

    return prog
