"""NAS FT (3-D FFT) communication skeleton — Class A.

Class A transforms a 256×256×128 complex grid for 6 iterations.  With a 1-D
slab decomposition the only communication is one global transpose
(``MPI_Alltoall``) per iteration: each rank ships its whole slab,
256·256·128·16 B / P² per peer (2 MiB at P = 8), plus a tiny checksum
``MPI_Allreduce`` (16 B complex sum).

Scaling: none — 7 alltoalls (1 init + 6 iterations) are cheap to simulate.
Large transfers ride the rendezvous protocol, whose handshake self-paces,
so FT barely notices the pre-post depth (Figure 10).
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.job import Program
from repro.sim.units import ms
from repro.workloads.nas.common import ComputeModel

NX, NY, NZ = 256, 256, 128  # Class A
COMPLEX_BYTES = 16
ITERATIONS = 6


def build(iterations: int = ITERATIONS, compute_scale: float = 1.0) -> Program:
    compute = ComputeModel()

    def prog(mpi) -> Generator:
        P = mpi.world_size
        block = NX * NY * NZ * COMPLEX_BYTES // (P * P)
        # initial forward FFT + transpose
        yield from mpi.compute(compute.ns(mpi.rank, ms(310) * compute_scale))
        yield from mpi.alltoall(size_per_peer=block)
        transposes = 1
        for it in range(iterations):
            # evolve + local FFTs
            yield from mpi.compute(compute.ns(mpi.rank, ms(240) * compute_scale))
            yield from mpi.alltoall(size_per_peer=block)
            transposes += 1
            # inverse FFT + checksum
            yield from mpi.compute(compute.ns(mpi.rank, ms(120) * compute_scale))
            yield from mpi.allreduce(size=COMPLEX_BYTES)
        return transposes

    return prog
