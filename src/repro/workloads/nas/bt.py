"""NAS BT (Block Tridiagonal) communication skeleton — Class A, 16 ranks.

Class A: 64³ grid, 200 timesteps, multi-partition decomposition on a
square process grid (√P × √P; the paper runs 16 processes on 8 nodes —
two ranks per node, so half the traffic takes the HCA loopback path).

Per timestep:

* ``copy_faces``: exchange ~6 cell faces with the grid neighbours
  (≈ 40–80 KiB each, rendezvous);
* three ADI sweeps (x, y, z): each sweep pipelines √P stages of moderate
  solver messages (≈ 20 KiB) along the sweep direction, forward then
  backward;
* a small residual allreduce every few steps.

Moderate burst depth (a handful of concurrent handshakes per connection)
→ Table 2 reports 7 buffers; performance is compute-heavy and nearly
insensitive to pre-post depth (Figures 9–10).

Scaling: timesteps 200 → 12.
"""

from __future__ import annotations

import math
from typing import Generator

from repro.cluster.job import Program
from repro.sim.units import ms
from repro.workloads.nas.common import ComputeModel, shift

GRID = 64  # Class A
TIMESTEPS = 12  # scaled from 200


def build(timesteps: int = TIMESTEPS, compute_scale: float = 1.0,
          compute_ms_per_step: float = 95.0) -> Program:
    compute = ComputeModel()

    def prog(mpi) -> Generator:
        P = mpi.world_size
        q = int(math.sqrt(P))
        if q * q != P:
            raise ValueError(f"BT needs a square rank count, got {P}")
        row, col = divmod(mpi.rank, q)
        cell = GRID // q
        face = cell * cell * 5 * 8 * 2  # two 5-variable faces per exchange
        solve_msg = cell * cell * 5 * 8 // 2

        # grid neighbours (periodic, multi-partition style)
        xpos = row * q + (col + 1) % q
        xneg = row * q + (col - 1) % q
        ypos = ((row + 1) % q) * q + col
        yneg = ((row - 1) % q) * q + col

        steps = 0
        for step in range(timesteps):
            # copy_faces: shift each direction around the torus (plus the
            # z-faces, which multi-partitioning maps onto the same partners)
            for to, frm, tg in ((xpos, xneg, 1), (xneg, xpos, 2),
                                (ypos, yneg, 3), (yneg, ypos, 4)):
                if to != mpi.rank:
                    yield from shift(mpi, to, frm, face, tag=tg,
                                     buffer_id=("faces", tg))
            yield from mpi.compute(
                compute.ns(mpi.rank, ms(compute_ms_per_step * 0.4) * compute_scale)
            )
            # three ADI sweeps; each pipelines along one grid direction
            for axis, (fwd, bwd) in enumerate(((xpos, xneg), (ypos, yneg),
                                               (xpos, xneg))):
                if fwd == mpi.rank:
                    continue
                for stage in range(q - 1):
                    # forward elimination flows one way...
                    yield from shift(mpi, fwd, bwd, solve_msg, tag=10 + axis,
                                     buffer_id=("solve", axis))
                    yield from mpi.compute(
                        compute.ns(mpi.rank,
                                   ms(compute_ms_per_step * 0.2 / (q - 1))
                                   * compute_scale)
                    )
                    # ...back substitution the other
                    yield from shift(mpi, bwd, fwd, solve_msg, tag=20 + axis,
                                     buffer_id=("solve", axis))
            steps += 1
            if step % 5 == 0:
                yield from mpi.allreduce(size=40)
        return steps

    return prog
