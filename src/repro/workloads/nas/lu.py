"""NAS LU (SSOR solver) communication skeleton — Class A.

Class A: 64³ grid, 250 timesteps, 2-D pipeline decomposition (4×2 at
P = 8; local subdomain 16×32×64).  Per timestep the SSOR algorithm makes
two *wavefront sweeps* over the 64 k-planes:

* lower-triangular sweep (flows south-east): for each k, receive the plane
  boundary from the north and west neighbours, relax, send to south and
  east — north/south messages are nx·5·8 B = 640 B, east/west
  ny·5·8 B = 1280 B, all **eager**;
* upper-triangular sweep, same thing mirrored (flows north-west);
* an ``rhs`` phase with one larger face exchange per axis partner
  (exchange_3: ≈ 80 KiB, rendezvous) and a residual allreduce.

LU is the paper's flow-control torture test: sends use standard
(buffered) mode, so the pipeline-head ranks run ahead and pour small eager
messages into neighbours that are still relaxing earlier planes; per-plane
computation is comparable to the per-message software overhead, so the
consumer's per-plane period exceeds the producer's and the queue depth
grows across each 64-plane sweep.  The paper measures the consequences:
Table 2 (dynamic scheme converges to 63 posted buffers — one sweep's
worth), Table 1 (18 % of all messages are explicit credit messages: sweep
traffic is one-directional for 64 planes, so credits can only return
explicitly), and Figure 10 (hardware scheme collapses at pre-post = 1
under RNR timeout storms).

Scaling: timesteps 250 → 40 (the per-timestep pattern is exact; queue
dynamics repeat every timestep).
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.job import Program
from repro.sim.units import ms, us
from repro.workloads.nas.common import ComputeModel, coords_2d, grid_2d, rank_2d, sendrecv

NX, NY, NZ = 64, 64, 64  # Class A
TIMESTEPS = 40  # scaled from 250
#: Per-plane relaxation cost.  Chosen at the low end of the Class-A range
#: so that the consumer-side MPI overhead per plane (two receives + two
#: sends, ~4-6 µs) is a significant fraction of the plane period — the
#: producer/consumer rate mismatch regime the paper's measurements imply
#: (63-deep buffer occupancy means upstream runs nearly a full sweep
#: ahead).
PLANE_NS = 8_000


def build(timesteps: int = TIMESTEPS, compute_scale: float = 1.0) -> Program:
    compute = ComputeModel(amplitude=0.08)

    def prog(mpi) -> Generator:
        P = mpi.world_size
        cols, rows = grid_2d(P)
        x, y = coords_2d(mpi.rank, cols)
        north = rank_2d(x, y - 1, cols) if y > 0 else -1
        south = rank_2d(x, y + 1, cols) if y < rows - 1 else -1
        west = rank_2d(x - 1, y, cols) if x > 0 else -1
        east = rank_2d(x + 1, y, cols) if x < cols - 1 else -1

        ns_msg = (NX // cols) * 5 * 8  # 640 B at 4x2
        ew_msg = (NY // rows) * 5 * 8  # 1280 B at 4x2
        face = (NY // rows) * NZ * 5 * 8  # exchange_3 face ≈ 80 KiB

        def sweep(recv_a, recv_b, send_a, send_b, tag) -> Generator:
            """One triangular sweep over all NZ k-planes."""
            sends = []
            for k in range(NZ):
                if recv_a >= 0:
                    yield from mpi.recv(source=recv_a, capacity=ns_msg, tag=tag + k % 2)
                if recv_b >= 0:
                    yield from mpi.recv(source=recv_b, capacity=ew_msg, tag=tag + k % 2)
                yield from mpi.compute(
                    compute.ns(mpi.rank, PLANE_NS * compute_scale)
                )
                # standard-mode (buffered) sends: fire and forget
                if send_a >= 0:
                    r = yield from mpi.isend(send_a, size=ns_msg, tag=tag + k % 2)
                    sends.append(r)
                if send_b >= 0:
                    r = yield from mpi.isend(send_b, size=ew_msg, tag=tag + k % 2)
                    sends.append(r)
            yield from mpi.waitall(sends)

        planes = 0
        for step in range(timesteps):
            # lower-triangular sweep: flows from (0,0) toward (cols-1,rows-1)
            yield from sweep(north, west, south, east, tag=40)
            # upper-triangular sweep: mirrored
            yield from sweep(south, east, north, west, tag=60)
            planes += 2 * NZ
            # rhs: larger symmetric face exchanges + residual norm
            yield from mpi.compute(compute.ns(mpi.rank, ms(1.6) * compute_scale))
            for partner, size, tg in (
                (north, face, 80),
                (south, face, 80),
                (east, face, 81),
                (west, face, 81),
            ):
                if partner >= 0:
                    yield from sendrecv(mpi, partner, size, tag=tg,
                                        buffer_id=("rhs", tg))
            yield from mpi.allreduce(size=40)
        return planes

    return prog
