"""NAS Parallel Benchmark communication-skeleton proxies (Class A).

The paper evaluates IS, FT, LU, CG and MG with 8 processes on 8 nodes and
BT, SP with 16 processes on 8 nodes (§6.3).  :data:`KERNELS` maps kernel
name → :class:`~repro.workloads.nas.common.NASKernel` descriptor with the
canonical rank count; call ``KERNELS["lu"].build()`` for the default
(scaled) program or pass ``timesteps=``/``iterations=`` to resize.
"""

from repro.workloads.nas import bt, cg, ft, is_, lu, mg, sp
from repro.workloads.nas.common import ComputeModel, NASKernel

KERNELS = {
    "is": NASKernel("is", 8, is_.build, "integer sort: allreduce + alltoallv"),
    "ft": NASKernel("ft", 8, ft.build, "3-D FFT: big alltoall transposes"),
    "lu": NASKernel("lu", 8, lu.build, "SSOR wavefront: deep eager pipelines"),
    "cg": NASKernel("cg", 8, cg.build, "conjugate gradient: symmetric exchanges"),
    "mg": NASKernel("mg", 8, mg.build, "multigrid: multi-scale halo exchanges"),
    "bt": NASKernel("bt", 16, bt.build, "block-tridiagonal ADI, 16 ranks"),
    "sp": NASKernel("sp", 16, sp.build, "scalar-pentadiagonal ADI, 16 ranks"),
}

#: The paper's presentation order (Figures 9-10, Tables 1-2).
KERNEL_ORDER = ("is", "ft", "lu", "cg", "mg", "bt", "sp")

__all__ = ["ComputeModel", "KERNELS", "KERNEL_ORDER", "NASKernel"]
