"""NAS SP (Scalar Pentadiagonal) communication skeleton — Class A, 16 ranks.

Class A: 64³ grid, 400 timesteps, square process grid like BT (the paper
runs 16 processes on 8 nodes).  SP's structure matches BT's — copy_faces
plus three pipelined ADI sweeps per timestep — but with lighter per-stage
computation and more timesteps, i.e. a higher message rate with smaller
compute gaps.  Like BT, it settles around 7 posted buffers under the
dynamic scheme (Table 2) and tolerates pre-post = 1 (Figure 10).

Scaling: timesteps 400 → 18.
"""

from __future__ import annotations

import math
from typing import Generator

from repro.cluster.job import Program
from repro.sim.units import ms
from repro.workloads.nas.common import ComputeModel, shift

GRID = 64  # Class A
TIMESTEPS = 18  # scaled from 400


def build(timesteps: int = TIMESTEPS, compute_scale: float = 1.0) -> Program:
    compute = ComputeModel()

    def prog(mpi) -> Generator:
        P = mpi.world_size
        q = int(math.sqrt(P))
        if q * q != P:
            raise ValueError(f"SP needs a square rank count, got {P}")
        row, col = divmod(mpi.rank, q)
        cell = GRID // q
        face = cell * cell * 5 * 8
        solve_msg = cell * cell * 5 * 8 // 4

        xpos = row * q + (col + 1) % q
        xneg = row * q + (col - 1) % q
        ypos = ((row + 1) % q) * q + col
        yneg = ((row - 1) % q) * q + col

        steps = 0
        for step in range(timesteps):
            for to, frm, tg in ((xpos, xneg, 1), (xneg, xpos, 2),
                                (ypos, yneg, 3), (yneg, ypos, 4)):
                if to != mpi.rank:
                    yield from shift(mpi, to, frm, face, tag=tg,
                                     buffer_id=("faces", tg))
            yield from mpi.compute(compute.ns(mpi.rank, ms(18) * compute_scale))
            for axis, (fwd, bwd) in enumerate(((xpos, xneg), (ypos, yneg),
                                               (xpos, xneg))):
                if fwd == mpi.rank:
                    continue
                for stage in range(q - 1):
                    yield from shift(mpi, fwd, bwd, solve_msg, tag=10 + axis,
                                     buffer_id=("solve", axis))
                    yield from mpi.compute(compute.ns(mpi.rank, ms(1.4) * compute_scale))
                    yield from shift(mpi, bwd, fwd, solve_msg, tag=20 + axis,
                                     buffer_id=("solve", axis))
            steps += 1
            if step % 5 == 0:
                yield from mpi.allreduce(size=40)
        return steps

    return prog
