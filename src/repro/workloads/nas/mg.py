"""NAS MG (Multigrid) communication skeleton — Class A.

Class A: 256³ grid, 4 V-cycle iterations, 2×2×2 process decomposition at
P = 8 (each rank holds 128³).  Communication is the ``comm3`` halo
exchange: for each of the three axes, send both faces to the axis
neighbour.  Face sizes start at 128²·8 B = 128 KiB on the finest level and
shrink 4× per level down to a handful of bytes on the coarsest; several
exchanges (smoother, residual, restriction, interpolation) happen per
level per cycle.

The coarse levels are the flow-control stressor: bursts of small eager
messages hit receivers that are mid-relaxation (the application-bypass
window), which is why the hardware scheme's pre-post = 1 performance
collapses on MG (Figure 10) — the dynamic scheme grows to ~6 buffers
(Table 2) and sails through.

Scaling: iterations 4 → 4 (unscaled); levels 8 (256 → 2).
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.job import Program
from repro.sim.units import ms, us
from repro.workloads.nas.common import ComputeModel

LEVELS = 8  # 256 down to 2
ITERATIONS = 4


def build(iterations: int = ITERATIONS, compute_scale: float = 1.0) -> Program:
    compute = ComputeModel()

    def prog(mpi) -> Generator:
        P = mpi.world_size
        # 3-D decomposition: axis partners by XOR on bit k (2 procs/axis at
        # P = 8; fewer axes for smaller P).
        axes = []
        bit = 1
        while bit < P:
            axes.append(bit)
            bit <<= 1
        axes = axes[:3]

        def comm3(level: int, tag: int) -> Generator:
            """One halo exchange at ``level`` (finest = LEVELS).

            Like the real ``comm3``, all *give* faces are posted before any
            *take* completes: each partner therefore sees a burst of two
            back-to-back messages per axis — the burstiness behind MG's
            Table-2 footprint of ~6 buffers.
            """
            local = 256 >> (LEVELS - level)  # local edge = global/2 per axis
            local = max(2, local // 2)
            face = max(8, local * local * 8)
            reqs = []
            for ax, mask in enumerate(axes):
                partner = mpi.rank ^ mask
                for half in (0, 1):
                    r = yield from mpi.irecv(source=partner, capacity=face,
                                             tag=tag + ax + 8 * half,
                                             buffer_id=("mg", ax, half))
                    reqs.append(r)
            for ax, mask in enumerate(axes):
                partner = mpi.rank ^ mask
                for half in (0, 1):
                    s = yield from mpi.isend(partner, size=face,
                                             tag=tag + ax + 8 * half,
                                             buffer_id=("mg", ax, half))
                    reqs.append(s)
            yield from mpi.waitall(reqs)

        exchanges = 0
        for it in range(iterations):
            # Downward leg: smooth + restrict (two exchanges per level,
            # like the real resid/rprj3 pair).
            for level in range(LEVELS, 1, -1):
                vol = (256 >> (LEVELS - level)) ** 3 // P
                yield from mpi.compute(
                    compute.ns(mpi.rank, max(us(25), vol * 1.3) * compute_scale)
                )
                yield from comm3(level, tag=100)
                yield from mpi.compute(
                    compute.ns(mpi.rank, max(us(15), vol * 0.5) * compute_scale)
                )
                yield from comm3(level, tag=150)
                exchanges += 2
            # Coarsest-level solve: a flurry of tiny exchanges.
            for rep in range(4):
                yield from comm3(1, tag=200)
                exchanges += 1
                yield from mpi.compute(compute.ns(mpi.rank, us(20) * compute_scale))
            # Upward leg: interpolate + smooth (two exchanges per level).
            for level in range(2, LEVELS + 1):
                vol = (256 >> (LEVELS - level)) ** 3 // P
                yield from mpi.compute(
                    compute.ns(mpi.rank, max(us(25), vol * 2.2) * compute_scale)
                )
                yield from comm3(level, tag=300)
                yield from comm3(level, tag=400)
                exchanges += 2
            # residual norm
            yield from mpi.allreduce(size=8)
        return exchanges

    return prog
