"""Workloads: micro-benchmarks and NAS Parallel Benchmark proxies."""

from repro.workloads.microbench import (
    BWResult,
    bandwidth_program,
    latency_program,
    manyflows_program,
)
from repro.workloads.nas import KERNEL_ORDER, KERNELS

__all__ = [
    "BWResult",
    "KERNELS",
    "KERNEL_ORDER",
    "bandwidth_program",
    "latency_program",
    "manyflows_program",
]
