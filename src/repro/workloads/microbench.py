"""Micro-benchmarks: the paper's latency and bandwidth tests (§6.2).

*Latency* — ping-pong with blocking MPI_Send/MPI_Recv; reported as average
one-way time.

*Bandwidth* — the sender pushes ``window`` back-to-back messages, the
receiver replies with a 4-byte ack after all have arrived; repeated
``repetitions`` times.  Blocking version uses MPI_Send/MPI_Recv; the
non-blocking version uses MPI_Isend/MPI_Irecv + Waitall.  The window size
relative to the pre-post depth is exactly the paper's flow-control stressor
(Figures 3–8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.cluster.job import Program
from repro.sim.units import mb_per_s


@dataclass
class BWResult:
    """Per-rank result of a bandwidth run (rank 0 carries the numbers)."""

    bytes_moved: int = 0
    elapsed_ns: int = 0

    @property
    def mbps(self) -> float:
        return mb_per_s(self.elapsed_ns, self.bytes_moved)


def latency_program(size: int, iterations: int = 100, warmup: int = 10) -> Program:
    """2-rank ping-pong; rank 0 returns average one-way latency (ns)."""

    def prog(mpi) -> Generator:
        peer = 1 - mpi.rank
        bid = ("lat", mpi.rank)
        total = iterations + warmup
        t0 = None
        for i in range(total):
            if i == warmup:
                t0 = mpi.now
            if mpi.rank == 0:
                yield from mpi.send(peer, size=size, tag=0, buffer_id=bid)
                yield from mpi.recv(source=peer, capacity=size, tag=0, buffer_id=bid)
            else:
                yield from mpi.recv(source=peer, capacity=size, tag=0, buffer_id=bid)
                yield from mpi.send(peer, size=size, tag=0, buffer_id=bid)
        if mpi.rank == 0:
            return (mpi.now - t0) / iterations / 2.0
        return None

    return prog


def manyflows_program(flows) -> Program:
    """Many concurrent point-to-point flows — the congestion stressor.

    ``flows`` is a sequence of ``(src, dst, msgs, msg_bytes)`` tuples.
    Every rank pre-posts irecvs for all traffic addressed to it, then
    pushes its own flows' messages round-robin (a multi-flow sender
    interleaves, so a hot flow can head-of-line-block a victim flow
    through a shared egress queue), waits for everything, and returns
    the simulated time its own traffic completed — the per-rank finish
    times are the incast/hotspot victim metric.
    """
    flows = tuple(tuple(f) for f in flows)

    def prog(mpi) -> Generator:
        me = mpi.rank
        reqs = []
        for src, dst, msgs, msg_bytes in flows:
            if dst == me:
                for _ in range(msgs):
                    r = yield from mpi.irecv(source=src, capacity=msg_bytes)
                    reqs.append(r)
        mine = [[dst, msgs, msg_bytes] for src, dst, msgs, msg_bytes in flows
                if src == me]
        while any(f[1] > 0 for f in mine):
            for f in mine:
                if f[1] > 0:
                    f[1] -= 1
                    r = yield from mpi.isend(f[0], size=f[2])
                    reqs.append(r)
        yield from mpi.waitall(reqs)
        return mpi.now

    return prog


def bandwidth_program(
    size: int,
    window: int,
    repetitions: int = 10,
    blocking: bool = True,
    warmup: int = 2,
) -> Program:
    """2-rank windowed bandwidth test; rank 0 returns a :class:`BWResult`."""

    def prog(mpi) -> Generator:
        peer = 1 - mpi.rank
        total = repetitions + warmup
        t0 = None
        if mpi.rank == 0:
            for rep in range(total):
                if rep == warmup:
                    t0 = mpi.now
                if blocking:
                    for w in range(window):
                        yield from mpi.send(
                            peer, size=size, tag=1, buffer_id=("bw", w % 64)
                        )
                else:
                    reqs = []
                    for w in range(window):
                        r = yield from mpi.isend(
                            peer, size=size, tag=1, buffer_id=("bw", w % 64)
                        )
                        reqs.append(r)
                    yield from mpi.waitall(reqs)
                yield from mpi.recv(source=peer, capacity=16, tag=2)
            return BWResult(
                bytes_moved=size * window * repetitions,
                elapsed_ns=mpi.now - t0,
            )

        # Receiver.  The non-blocking variant pre-posts the next window
        # before releasing the sender with its reply (standard
        # double-buffered bandwidth-benchmark structure — OSU et al.), so
        # measurements exercise flow control, not receive-posting skew.
        if blocking:
            for rep in range(total):
                for w in range(window):
                    yield from mpi.recv(
                        source=peer, capacity=size, tag=1, buffer_id=("bw", w % 64)
                    )
                yield from mpi.send(peer, size=4, tag=2)
            return None
        reqs = []
        for w in range(window):
            r = yield from mpi.irecv(source=peer, capacity=size, tag=1,
                                     buffer_id=("bw", w % 64))
            reqs.append(r)
        for rep in range(total):
            yield from mpi.waitall(reqs)
            reqs = []
            if rep < total - 1:
                for w in range(window):
                    r = yield from mpi.irecv(source=peer, capacity=size, tag=1,
                                             buffer_id=("bw", w % 64))
                    reqs.append(r)
            yield from mpi.send(peer, size=4, tag=2)
        return None

    return prog
