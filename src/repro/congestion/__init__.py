"""Switch congestion subsystem: egress queues, PFC, ECN/DCQCN.

The source paper's flow-control schemes manage *end-to-end* buffer
credits; this package models what happens *inside the switches* — the
datacenter failure shapes (N→1 incast, hotspots, victim-flow HoL
blocking) that link-level congestion creates.  Reference semantics from
"Implementation of PFC and RCM for RoCEv2 Simulation in OMNeT++"
(PAPERS.md).

Arm it by setting :class:`CongestionConfig` on ``IBConfig.congestion``
(the cluster builder installs a :class:`CongestionState` on the fabric);
leave it ``None`` for the bit-identical baseline path model.
"""

from repro.congestion.config import CongestionConfig, make_congestion_config
from repro.congestion.switch import CongestionState, PortQueue

#: the ``repro chaos --congestion`` / sweep-grid mode names
CONGESTION_MODES = ("pfc", "ecn", "both")

__all__ = [
    "CONGESTION_MODES",
    "CongestionConfig",
    "CongestionState",
    "PortQueue",
    "make_congestion_config",
]
