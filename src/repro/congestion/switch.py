"""Egress-port queue model: finite buffers, PFC pause frames, ECN marking.

When a :class:`~repro.congestion.config.CongestionConfig` is armed, every
fabric transmit is routed hop-by-hop through :class:`PortQueue` objects —
one per traversed egress port — instead of the straight-line busy-until
path math.  The model is *store-and-forward at message granularity*:

* a port serves its queue one message at a time, draining at the
  injection-bottleneck rate; the next hop's admission happens one
  link-propagation + switch-pipeline delay after service completes;
* **admission** charges the message's wire bytes against the port's
  finite buffer (host injection ports are unbounded); an admission that
  would overflow is tail-dropped — the transport ACK-timeout retry
  recovers it, exactly like a fault-window wire loss;
* **PFC**: crossing ``xoff_bytes`` sends pause frames one hop upstream
  to every distinct feeder port with traffic queued here (and to any
  feeder that shows up while the XOFF is standing).  A paused port
  finishes its in-service message but starts no new one, so its *whole*
  queue stalls — victim flows sharing the port experience head-of-line
  blocking, and a stalled port's own queue growth propagates the pause
  further upstream (pause storms emerge, they are not scripted).
  Draining below ``xon_bytes`` sends resume frames to the same feeders;
* **ECN/DCQCN**: admissions at/above ``ecn_mark_bytes`` are CE-marked;
  on delivery the destination echoes a CNP to the *sender's* per-flow
  rate limiter, which cuts the flow's injection rate multiplicatively
  (coalesced per ``cnp_interval_ns``) and recovers additively on a
  timer.  A throttled flow's messages are released into its host port
  no faster than ``ser / rate``.

Everything runs on the integer-ns simulation clock through ordinary
agenda events — no RNG, no wall clock — so armed runs are bit-identical
for a fixed seed, and a disarmed fabric (``fabric.congestion is None``)
pays exactly one attribute check per transmit.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.congestion.config import CongestionConfig
from repro.sim import Simulator
from repro.sim.trace import Tracer

#: ("hup", lid) | ("down", lid) host access ports, plus one key per
#: interior fat-tree link (see repro.ib.fattree.LinkKey): ("up", leaf,
#: spine) | ("sdown", spine, leaf) | ("sup", spine, core) | ("cdown",
#: core, spine)
PortKey = Tuple


class _Transit:
    """One message in flight through the port queues."""

    __slots__ = ("message", "dst", "wire", "ser", "extra", "path", "hop",
                 "from_port", "marked", "flow")

    def __init__(self, message: Any, dst: int, wire: int, ser: int,
                 extra: int, path: tuple):
        self.message = message
        self.dst = dst
        self.wire = wire
        self.ser = ser
        self.extra = extra  # fault-window latency, charged at delivery
        self.path = path
        self.hop = 0
        self.from_port: Optional["PortQueue"] = None
        self.marked = False
        self.flow: Optional["_Flow"] = None


class _Flow:
    """DCQCN rate-limiter state for one (src, dst) flow."""

    __slots__ = ("key", "rate", "next_free", "last_cut_ns", "recover_armed",
                 "min_rate_seen")

    def __init__(self, key: tuple):
        self.key = key
        self.rate = 1.0
        self.next_free = 0
        self.last_cut_ns = -(1 << 62)
        self.recover_armed = False
        self.min_rate_seen = 1.0


class PortQueue:
    """FIFO egress queue of one port: finite buffer, one-at-a-time service.

    ``finite=False`` marks a host injection port: unbounded (the host can
    always buffer), never drops, never marks, never generates XOFF — but
    it *can be paused* by its downstream port, which is what gates
    injection into the fabric.
    """

    __slots__ = ("state", "key", "finite", "q", "depth", "busy",
                 "xoff_active", "paused_by", "_feeders", "_feeder_keys",
                 "peak_depth", "drops", "pause_frames_rx")

    def __init__(self, state: "CongestionState", key: PortKey, finite: bool):
        self.state = state
        self.key = key
        self.finite = finite
        self.q: Deque[_Transit] = deque()
        self.depth = 0  # queued bytes (wire)
        self.busy = False
        self.xoff_active = False
        #: downstream port keys currently pausing this port
        self.paused_by: Set[PortKey] = set()
        #: feeders this port has paused (FIFO order for deterministic XON)
        self._feeders: List["PortQueue"] = []
        self._feeder_keys: Set[PortKey] = set()
        # observability
        self.peak_depth = 0
        self.drops = 0
        self.pause_frames_rx = 0

    # ------------------------------------------------------------------
    def admit(self, item: _Transit) -> None:
        state = self.state
        cfg = state.cfg
        wire = item.wire
        if self.finite and self.depth + wire > cfg.buffer_bytes:
            self.drops += 1
            tr = state.tracer
            tr.count("cong.drop", self.key)
            tr.record(state.sim.now, "cong.drop", self.key, item.dst)
            return  # tail drop: the transport retry recovers it
        depth = self.depth = self.depth + wire
        if depth > self.peak_depth:
            self.peak_depth = depth
        aud = state.audit
        if aud is not None:
            aud.on_queue_depth(self.key, depth,
                               cfg.buffer_bytes if self.finite else None)
        if (state.ecn_on and self.finite and not item.marked
                and depth >= cfg.ecn_mark_bytes):
            item.marked = True
            tr = state.tracer
            tr.count("cong.ecn_mark", self.key)
            tr.record(state.sim.now, "cong.ecn_mark", self.key, item.dst)
        self.q.append(item)
        if state.pfc_on and self.finite:
            if not self.xoff_active and depth >= cfg.xoff_bytes:
                self._raise_xoff()
            elif self.xoff_active:
                fp = item.from_port
                if fp is not None and fp.key not in self._feeder_keys:
                    self._pause_feeder(fp)
        if not self.busy and not self.paused_by:
            self._start()

    # ------------------------------------------------------------------
    # PFC
    # ------------------------------------------------------------------
    def _raise_xoff(self) -> None:
        state = self.state
        self.xoff_active = True
        tr = state.tracer
        tr.count("cong.xoff", self.key)
        tr.record(state.sim.now, "cong.xoff", self.key)
        aud = state.audit
        if aud is not None:
            aud.on_xoff(self.key)
        for item in self.q:
            fp = item.from_port
            if fp is not None and fp.key not in self._feeder_keys:
                self._pause_feeder(fp)

    def _pause_feeder(self, feeder: "PortQueue") -> None:
        state = self.state
        self._feeder_keys.add(feeder.key)
        self._feeders.append(feeder)
        state.tracer.count("cong.pause_frame", feeder.key)
        state.sim.call_at(state.sim.now + state.cfg.pause_frame_ns,
                          feeder.pause, self.key)

    def _lower_xoff(self) -> None:
        state = self.state
        self.xoff_active = False
        tr = state.tracer
        now = state.sim.now
        tr.count("cong.xon", self.key)
        tr.record(now, "cong.xon", self.key)
        aud = state.audit
        if aud is not None:
            aud.on_xon(self.key)
        resume_at = now + state.cfg.pause_frame_ns
        sim = state.sim
        for feeder in self._feeders:
            tr.count("cong.resume_frame", feeder.key)
            sim.call_at(resume_at, feeder.resume, self.key)
        self._feeders.clear()
        self._feeder_keys.clear()

    def pause(self, downstream: PortKey) -> None:
        """A pause frame from ``downstream`` arrived: stop starting new
        service (the in-flight message, if any, completes — PFC acts at
        packet boundaries)."""
        self.pause_frames_rx += 1
        self.paused_by.add(downstream)

    def resume(self, downstream: PortKey) -> None:
        self.paused_by.discard(downstream)
        if not self.paused_by and not self.busy and self.q:
            self._start()

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------
    def _start(self) -> None:
        self.busy = True
        state = self.state
        state.sim.call_at(state.sim.now + self.q[0].ser, self._complete)

    def _complete(self) -> None:
        item = self.q.popleft()
        self.depth -= item.wire
        self.busy = False
        state = self.state
        cfg = state.cfg
        if self.xoff_active and self.depth <= cfg.xon_bytes:
            self._lower_xoff()
        sim = state.sim
        item.hop += 1
        if item.hop < len(item.path):
            nxt = item.path[item.hop]
            item.from_port = self
            sim.call_at(sim.now + state.hop_ns, nxt.admit, item)
        else:
            arrival = sim.now + state.link_prop_ns + item.extra
            state.fabric._enqueue_data(item.dst, arrival, item.message)
            if item.marked:
                flow = item.flow
                if flow is not None:
                    sim.call_at(arrival + cfg.cnp_ns, state._on_cnp, flow)
        if self.q and not self.paused_by:
            self._start()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<PortQueue {self.key} depth={self.depth} "
                f"q={len(self.q)} xoff={self.xoff_active}>")


class CongestionState:
    """All port queues + per-flow rate limiters of one armed fabric.

    Installed by the cluster builder as ``fabric.congestion`` when
    ``IBConfig.congestion`` is set; :meth:`inject` is the fabric's
    transmit hand-off (wire/ser already computed, fault verdict already
    applied).
    """

    def __init__(self, sim: Simulator, fabric: Any, cfg: CongestionConfig,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.fabric = fabric
        self.cfg = cfg
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.pfc_on = cfg.pfc
        self.ecn_on = cfg.ecn
        ib = fabric.config
        self.hop_ns = ib.link_prop_ns + ib.switch_delay_ns
        self.link_prop_ns = ib.link_prop_ns
        # fat-tree detection without importing the subclass (no cycle)
        self.fattree = hasattr(fabric, "leaf_of")
        self.ports: Dict[PortKey, PortQueue] = {}
        self._paths: Dict[tuple, tuple] = {}
        self.flows: Dict[tuple, _Flow] = {}
        #: the auditor, when one is attached (repro.check wires this)
        self.audit = None

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def _port(self, key: PortKey, finite: bool) -> PortQueue:
        port = self.ports.get(key)
        if port is None:
            port = self.ports[key] = PortQueue(self, key, finite)
        return port

    def _build_path(self, src: int, dst: int) -> tuple:
        hops = [self._port(("hup", src), finite=False)]
        if self.fattree:
            # one finite egress queue per interior link the fabric's
            # d-mod-k route traverses (leaf-up, spine-up, core-down,
            # spine-down) — however many levels the tree has
            for link in self.fabric.path_links(src, dst):
                hops.append(self._port(link, finite=True))
        hops.append(self._port(("down", dst), finite=True))
        return tuple(hops)

    def path_for(self, src: int, dst: int) -> tuple:
        key = (src, dst)
        path = self._paths.get(key)
        if path is None:
            path = self._paths[key] = self._build_path(src, dst)
        return path

    # ------------------------------------------------------------------
    # fabric hand-off
    # ------------------------------------------------------------------
    def inject(self, src: int, dst: int, wire: int, ser: int,
               message: Any, extra: int) -> None:
        path = self.path_for(src, dst)
        item = _Transit(message, dst, wire, ser, extra, path)
        entry = path[0]
        if self.ecn_on:
            flow = self._flow(src, dst)
            item.flow = flow
            if flow.rate < 1.0:
                now = self.sim.now
                release = flow.next_free
                if release < now:
                    release = now
                flow.next_free = release + int(ser / flow.rate)
                if release > now:
                    self.sim.call_at(release, entry.admit, item)
                    return
        entry.admit(item)

    # ------------------------------------------------------------------
    # DCQCN rate control
    # ------------------------------------------------------------------
    def _flow(self, src: int, dst: int) -> _Flow:
        key = (src, dst)
        flow = self.flows.get(key)
        if flow is None:
            flow = self.flows[key] = _Flow(key)
        return flow

    def _on_cnp(self, flow: _Flow) -> None:
        cfg = self.cfg
        now = self.sim.now
        self.tracer.count("cong.cnp", flow.key)
        if now - flow.last_cut_ns < cfg.cnp_interval_ns:
            return  # coalesced into the previous cut
        flow.last_cut_ns = now
        rate = flow.rate * cfg.rate_decrease_factor
        if rate < cfg.min_rate:
            rate = cfg.min_rate
        flow.rate = rate
        if rate < flow.min_rate_seen:
            flow.min_rate_seen = rate
        self.tracer.record(now, "cong.rate_cut", flow.key, rate)
        if not flow.recover_armed:
            flow.recover_armed = True
            self.sim.call_at(now + cfg.rate_recover_ns, self._recover, flow)

    def _recover(self, flow: _Flow) -> None:
        cfg = self.cfg
        now = self.sim.now
        if now - flow.last_cut_ns < cfg.rate_recover_ns:
            # a fresh cut restarted the clock; try again when it elapses
            self.sim.call_at(flow.last_cut_ns + cfg.rate_recover_ns,
                             self._recover, flow)
            return
        rate = flow.rate + cfg.rate_recover_step
        if rate >= 1.0:
            flow.rate = 1.0
            flow.recover_armed = False
        else:
            flow.rate = rate
            self.sim.call_at(now + cfg.rate_recover_ns, self._recover, flow)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """True when every port queue is empty and unpaused-for-service."""
        return all(p.depth == 0 and not p.busy and not p.xoff_active
                   for p in self.ports.values())

    def reset_counters(self) -> None:
        """Zero the observability counters between jobs on a reused
        cluster.  Live state (queue contents, pause state, flow rates)
        is deliberately untouched — only what the report layer reads."""
        for port in self.ports.values():
            port.peak_depth = port.depth
            port.drops = 0
            port.pause_frames_rx = 0
        for flow in self.flows.values():
            flow.min_rate_seen = flow.rate
        counters = self.tracer.counters
        for name in [n for n in counters if n.startswith("cong.")]:
            del counters[name]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<CongestionState ports={len(self.ports)} "
                f"flows={len(self.flows)} pfc={self.pfc_on} ecn={self.ecn_on}>")
