"""Configuration for the switch congestion subsystem.

The knobs mirror the RoCEv2 congestion-management stack ("Implementation
of PFC and RCM for RoCEv2 Simulation in OMNeT++", PAPERS.md):

* a **finite egress buffer** per switch output port, drained at link rate;
* **PFC** — when a port's queue crosses ``xoff_bytes`` it sends pause
  frames upstream; the paused feeders stop serving (at message
  boundaries) until the queue drains below ``xon_bytes`` and resume
  frames are sent.  The XON threshold sits below XOFF (hysteresis) and
  the headroom ``buffer_bytes - xoff_bytes`` absorbs the data already in
  flight when the pause lands, keeping the fabric lossless in practice;
* **ECN/DCQCN** — admissions that find the queue at or above
  ``ecn_mark_bytes`` are marked; the destination echoes a CNP to the
  sender, which cuts the flow's injection rate multiplicatively and
  recovers it additively on a timer.

A :class:`CongestionConfig` instance on ``IBConfig.congestion`` arms the
subsystem; ``None`` (the default) keeps the fabric's straight-line path
model and is bit-identity inert (one attribute check per transmit).
With both ``pfc`` and ``ecn`` False the egress queues still apply —
that is the tail-drop baseline (drops are recovered by the transport
ACK-timeout retry, so arm it via a fault plan).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import us


@dataclass(slots=True)
class CongestionConfig:
    """Per-egress-port queue model + PFC/ECN knobs.

    Attributes
    ----------
    pfc:
        Generate XOFF/XON pause frames at the thresholds below.
    ecn:
        Mark admissions above ``ecn_mark_bytes`` and run the DCQCN-style
        per-flow rate limiter at the senders.
    buffer_bytes:
        Egress buffer per switch output port.  Admissions that would
        exceed it are tail-dropped (host injection ports are unbounded —
        the host can always buffer — so they never drop and never
        generate XOFF, but they *can be paused*, which is what gates
        injection).
    xoff_bytes / xon_bytes:
        PFC thresholds (XON < XOFF for hysteresis; XOFF <= buffer so
        the post-pause headroom keeps the port lossless).
    pause_frame_ns:
        Propagation of a pause/resume frame one hop upstream.
    ecn_mark_bytes:
        Queue depth at/above which an admission is CE-marked.
    cnp_ns:
        Latency from marked-delivery to the CNP reaching the sender.
    cnp_interval_ns:
        CNP coalescing: rate cuts for one flow at most once per interval.
    rate_decrease_factor:
        Multiplicative decrease per (non-coalesced) CNP: ``rate *= f``.
    rate_recover_step / rate_recover_ns:
        Additive recovery: every ``rate_recover_ns`` without a cut,
        ``rate += step`` until the flow is back at line rate.
    min_rate:
        Floor for the per-flow rate fraction.
    """

    pfc: bool = True
    ecn: bool = False
    buffer_bytes: int = 64 * 1024
    xoff_bytes: int = 16 * 1024
    xon_bytes: int = 8 * 1024
    pause_frame_ns: int = 300
    ecn_mark_bytes: int = 8 * 1024
    cnp_ns: int = 600
    cnp_interval_ns: int = us(10)
    rate_decrease_factor: float = 0.5
    rate_recover_step: float = 0.125
    rate_recover_ns: int = us(50)
    min_rate: float = 0.05

    def __post_init__(self) -> None:
        if self.buffer_bytes < 1:
            raise ValueError("buffer_bytes must be positive")
        if self.pfc:
            if not (0 < self.xon_bytes < self.xoff_bytes <= self.buffer_bytes):
                raise ValueError(
                    "PFC thresholds need 0 < xon < xoff <= buffer "
                    f"(got xon={self.xon_bytes} xoff={self.xoff_bytes} "
                    f"buffer={self.buffer_bytes})"
                )
        if self.ecn:
            if self.ecn_mark_bytes < 1:
                raise ValueError("ecn_mark_bytes must be positive")
            if not (0.0 < self.rate_decrease_factor < 1.0):
                raise ValueError("rate_decrease_factor must be in (0, 1)")
            if not (0.0 < self.min_rate <= 1.0):
                raise ValueError("min_rate must be in (0, 1]")
            if self.rate_recover_step <= 0.0:
                raise ValueError("rate_recover_step must be positive")
            if self.rate_recover_ns < 1 or self.cnp_interval_ns < 0:
                raise ValueError("recovery/coalescing intervals must be >= 0")


def make_congestion_config(mode: str) -> CongestionConfig:
    """The canonical per-mode presets used by the chaos scenarios and
    ``repro chaos --congestion`` (see EXPERIMENTS.md).

    * ``"pfc"`` — lossless pause-frame backpressure: generous headroom
      above XOFF so nothing is dropped, HoL blocking emerges;
    * ``"ecn"`` — rate moderation only: a large (physically lossless
      for the scenario scale) buffer with an aggressive mark threshold;
    * ``"both"`` — PFC thresholds plus ECN marking, the RoCEv2 stack.
    """
    if mode == "pfc":
        return CongestionConfig(pfc=True, ecn=False)
    if mode == "ecn":
        return CongestionConfig(
            pfc=False, ecn=True, buffer_bytes=512 * 1024, ecn_mark_bytes=8 * 1024
        )
    if mode == "both":
        return CongestionConfig(pfc=True, ecn=True)
    raise ValueError(f"unknown congestion mode {mode!r} (know pfc, ecn, both)")
