"""The flow-control scheme interface (the paper's §4).

A scheme decides, per connection:

* how many receive vbufs to pre-post initially (and later — the dynamic
  scheme grows this at runtime),
* whether a credit gate applies to unexpected messages and when a send must
  be diverted to the backlog queue,
* when the receiver ships credits back explicitly (ECMs) rather than by
  piggybacking,
* whether a credit-starved connection may fall back to the rendezvous
  protocol (whose handshake refreshes credits — paper §4.2).

Schemes are *stateless policy objects*: all mutable state lives on
:class:`repro.mpi.connection.Connection`, so one scheme instance is shared
by every endpoint of a job and can be interrogated afterwards.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.connection import Connection
    from repro.mpi.protocol import Header


class SchemeName(enum.Enum):
    """The paper's three schemes, plus the RDMA-write ring eager design
    from the MPICH2-over-InfiniBand sequel (Liu et al.)."""

    HARDWARE = "hardware"
    STATIC = "static"
    DYNAMIC = "dynamic"
    RDMA_EAGER = "rdma-eager"


class FlowControlScheme:
    """Abstract base.  Subclasses override the policy hooks."""

    name: SchemeName

    #: False for the hardware-based scheme: no MPI-level credit machinery at
    #: all — outgoing messages are posted immediately and the InfiniBand
    #: end-to-end flow control (RNR NAK + retry) copes with overruns.
    uses_credits: bool = True

    #: True when eager messages travel by RDMA write into a per-connection
    #: ring of pre-agreed slots (polling detection) instead of SEND into a
    #: receive WQE.  Connection setup then allocates the ring pair at
    #: connect time and the progress engine arms the ring-dirty wakeup
    #: alongside the CQ wait.
    uses_ring: bool = False

    #: May a credit-starved sender push the head of its backlog through the
    #: rendezvous protocol without a credit?  (paper §4.2: "when there are
    #: no credits, only Rendezvous protocol is used")
    allows_rndv_fallback: bool = True

    #: How many optimistic fallback handshakes may be in flight at once per
    #: connection.  Deep enough to pipeline the handshake latency behind the
    #: receiver's compute, shallow enough that the unpaid RTS traffic cannot
    #: swamp a one-buffer receiver with RNR storms.
    fallback_window: int = 4

    #: Extra receive vbufs posted per connection *outside* the credit
    #: covenant, absorbing optimistic (unpaid) control traffic — ECMs,
    #: rendezvous CTS/FIN and fallback RTSs.  Real MVAPICH-family stacks
    #: keep exactly such a reserve so that non-flow-controlled messages do
    #: not trip the hardware RNR path.  Zero for the hardware-based scheme,
    #: which has no optimistic traffic (and whose appeal is having no extra
    #: machinery).  The paper's pre-post experiments count *credited*
    #: buffers, which is what Table 2 and the benches report.
    optimistic_headroom: int = 3

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def setup_connection(self, conn: "Connection", requested_prepost: int) -> None:
        """Initialise credit/prepost state at MPI_Init time."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # sender-side hooks
    # ------------------------------------------------------------------
    def try_consume_credit(self, conn: "Connection") -> bool:
        """Gate for credit-consuming (unexpected) messages.  True → the
        caller may post now; False → the send joins the backlog."""
        raise NotImplementedError

    def on_credits_received(self, conn: "Connection", n: int) -> None:
        """Piggybacked or explicit credits arrived from the peer."""
        if n:
            conn.credits += n

    # ------------------------------------------------------------------
    # receiver-side hooks
    # ------------------------------------------------------------------
    def on_recv_header(self, conn: "Connection", header: "Header") -> int:
        """Inspect an arrived header (feedback bit etc.).  Returns the
        number of *newly posted* receive buffers so the caller can charge
        posting time (only the dynamic scheme ever returns non-zero)."""
        return 0

    def should_send_ecm(self, conn: "Connection") -> bool:
        """Called after a vbuf is re-posted; True → the endpoint emits an
        explicit credit message carrying ``pending_credit_return``."""
        return False

    # ------------------------------------------------------------------
    # introspection (used by repro.check)
    # ------------------------------------------------------------------
    def credit_pool_size(self, conn: "Connection") -> "int | None":
        """The total number of credit tokens the ``conn`` receiver side
        currently backs — the conserved quantity the runtime auditor
        balances its ledger against.  ``None`` when the scheme runs no
        MPI-level credit machinery."""
        return conn.prepost_target if self.uses_credits else None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__}>"
