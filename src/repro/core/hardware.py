"""Hardware-based flow control (paper §4.1).

No flow control at the MPI level: every outgoing message is submitted to
the send queue immediately.  If the receiver has no posted vbuf, the HCA
drops the message and returns an RNR NAK; the sender HCA waits out the RNR
timer and retransmits.  The MPI layer sets the retry count to infinite so
reliability is preserved (``IBConfig.rnr_retry_count = INFINITE_RETRY``).

Pros (reproduced by the benches): zero bookkeeping overhead under normal
conditions and full application bypass.  Cons: no feedback to the MPI
layer, so the pre-post depth can never adapt — at pre-post = 1 the NAS LU
and MG proxies collapse under timeout-and-retransmit storms (Figure 10).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.base import FlowControlScheme, SchemeName

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.connection import Connection


class HardwareScheme(FlowControlScheme):
    """Let InfiniBand's end-to-end flow control do all the work.

    Parameters
    ----------
    arm_e2e_gate:
        Arm the requester's IBA end-to-end credit gate (advertised-credit
        pacing in ACKs).  This is what real InfiniHost hardware does: a
        sender that knows the responder is out of receive WQEs keeps a
        single probe outstanding instead of blasting the window.  The probe
        still RNR-NAKs and waits out the retry timer when the receiver is
        busy — which is exactly the "large number of time-out and
        re-transmission" collapse the paper measures for LU/MG at
        pre-post = 1 (Figure 10) — but bulk NAK storms on attentive
        receivers are damped.  Default **off**: with RNR evaluated at the
        receive engine (input buffering absorbs wire bursts), an attentive
        receiver never NAKs anyway, and the paper's Figure-10 MG/LU
        collapse implies the testbed's recovery from genuine starvation
        was timer-driven.  Arming the gate is ablated in
        ``benchmarks/test_ablation_rnr_timer.py``.
    """

    name = SchemeName.HARDWARE
    uses_credits = False
    allows_rndv_fallback = False  # nothing is ever backlogged
    optimistic_headroom = 0  # no optimistic traffic, no extra machinery

    def __init__(self, arm_e2e_gate: bool = False):
        self.arm_e2e_gate = arm_e2e_gate

    def setup_connection(self, conn: "Connection", requested_prepost: int) -> None:
        conn.set_prepost_target(requested_prepost)
        conn.refill_recv_buffers()
        if self.arm_e2e_gate:
            conn.qp.set_initial_credit_estimate(requested_prepost)

    def try_consume_credit(self, conn: "Connection") -> bool:
        return True  # always post immediately

    def on_credits_received(self, conn: "Connection", n: int) -> None:
        pass  # there is no credit state to update

    def should_send_ecm(self, conn: "Connection") -> bool:
        return False

    def credit_pool_size(self, conn: "Connection") -> None:
        """No MPI-level credit tokens exist; the runtime auditor skips
        credit-conservation checks and relies on the QP structural audit
        (RNR NAK + retry is the only flow control — paper §4.1)."""
        return None
