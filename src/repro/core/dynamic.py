"""User-level dynamic flow control (paper §4.3) — the headline scheme.

Same credit machinery as the static scheme, but each connection starts
with a *small* number of pre-posted vbufs and grows it on demand via a
feedback loop:

1. every message carries a *went-through-backlog* bit, set when the send
   had to wait for credits at the sender;
2. a receiver seeing the bit concludes the sender is starved and raises
   ``prepost_target`` for that connection.  The default policy is
   *doubling* with a growth rate limit: the paper's prose says "linear
   increasing is used", but its own Table 2 reports LU converging to
   exactly 63 = 2^6 - 1 posted buffers — a doubling signature (1 → 2 → 4
   → ... → 64) that linear steps cannot reproduce together with the
   single-digit footprints of the other kernels.  Linear policies are
   available and ablated in ``benchmarks/test_ablation_growth.py``;
3. the freshly posted buffers become new credits, shipped to the sender by
   the usual piggyback/ECM paths.

The paper only implements *increase* ("Currently we only allow increasing
the number of buffers"); an optional decay is provided as the paper's
stated future-work extension (``decay_enabled``), default off, exercised by
``benchmarks/test_ablation_growth.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.base import SchemeName
from repro.core.static import DEFAULT_ECM_THRESHOLD, StaticScheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.connection import Connection
    from repro.mpi.protocol import Header


class DynamicScheme(StaticScheme):
    """Feedback-driven buffer growth on top of static credits."""

    name = SchemeName.DYNAMIC

    def __init__(
        self,
        ecm_threshold: int = DEFAULT_ECM_THRESHOLD,
        growth_step: int = 2,
        exponential: bool = True,
        max_prepost: int = 512,
        rate_limited: bool = True,
        decay_enabled: bool = False,
        decay_idle_messages: int = 512,
    ):
        super().__init__(ecm_threshold)
        if growth_step < 1:
            raise ValueError("growth_step must be >= 1")
        if max_prepost < 1:
            raise ValueError("max_prepost must be >= 1")
        self.growth_step = growth_step
        self.exponential = exponential
        self.max_prepost = max_prepost
        #: When True (default), growth triggered by one stale burst of
        #: flagged messages is rate-limited: after each increase, feedback
        #: bits on roughly one credit-budget's worth of sequence numbers
        #: are ignored (those messages were backlogged before the sender
        #: could have learned of the new credits).  Without it, naive
        #: grow-on-every-flag overshoots the true queue depth badly on
        #: bursty patterns (ablated in benchmarks/test_ablation_growth.py).
        self.rate_limited = rate_limited
        self.decay_enabled = decay_enabled
        self.decay_idle_messages = decay_idle_messages

    def setup_connection(self, conn: "Connection", requested_prepost: int) -> None:
        super().setup_connection(conn, requested_prepost)
        conn._decay_quiet_msgs = 0  # type: ignore[attr-defined]
        conn._grow_barrier_seq = -1  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # the feedback loop
    # ------------------------------------------------------------------
    def on_recv_header(self, conn: "Connection", header: "Header") -> int:
        grown = 0
        if (
            header.went_backlog
            and conn.prepost_target < self.max_prepost
            and (
                not self.rate_limited
                or header.seq > conn._grow_barrier_seq  # type: ignore[attr-defined]
            )
        ):
            if self.exponential:
                new_target = min(self.max_prepost, max(conn.prepost_target * 2, 1))
            else:
                new_target = min(
                    self.max_prepost, conn.prepost_target + self.growth_step
                )
            delta = new_target - conn.prepost_target
            if delta > 0:
                conn.set_prepost_target(new_target)
                grown = conn.refill_recv_buffers()
                # The new buffers are new credits for the sender.
                conn.pending_credit_return += delta
                conn._decay_quiet_msgs = 0  # type: ignore[attr-defined]
                # Rate limit: messages flagged before the sender could have
                # learned about this growth must not compound it.  Skip
                # roughly one credit-budget's worth of sequence numbers.
                conn._grow_barrier_seq = header.seq + new_target  # type: ignore[attr-defined]
        elif self.decay_enabled:
            grown = self._maybe_decay(conn, header)
        return grown

    def credit_pool_size(self, conn: "Connection") -> int:
        """Dynamic scheme: the pool follows ``prepost_target``.  Growth
        mints ``delta`` new credits *atomically* with raising the target
        (paper §4.3 step 3), so the conservation ledger stays balanced at
        every instant; decay shrinks only the target, with the surplus
        swallowed as buffers cycle (see :meth:`_maybe_decay`)."""
        return conn.prepost_target

    def _maybe_decay(self, conn: "Connection", header: "Header") -> int:
        """Future-work extension: shrink after a long quiet streak.

        A streak of ``decay_idle_messages`` non-backlogged messages halves
        the target (never below 1).  Only the *target* moves; the posted
        population contracts naturally because the receiver stops
        re-posting (and stops granting the matching credits) once
        ``recv_posted`` exceeds the target — credit conservation holds
        throughout (see ``tests/test_fc_invariants.py``).
        """
        conn._decay_quiet_msgs += 1  # type: ignore[attr-defined]
        if conn._decay_quiet_msgs < self.decay_idle_messages:  # type: ignore[attr-defined]
            return 0
        conn._decay_quiet_msgs = 0  # type: ignore[attr-defined]
        new_target = max(1, conn.prepost_target // 2)
        if new_target < conn.prepost_target:
            conn.prepost_target = new_target  # bypass max-tracking setter
        return 0
