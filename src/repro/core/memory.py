"""Per-scheme memory-footprint accounting — the Table 2 story at scale.

The paper's entire case for the dynamic scheme is pinned-buffer memory on
"clusters in the order of 1,000 to 10,000 nodes": with P processes a full
mesh holds P-1 connections per process, and every connection pins
``prepost`` receive vbufs whether or not the pair ever communicates.
Table 2 reports the per-connection buffer high-water under the dynamic
scheme; this module generalizes that to a full memory model so the
scaling sweeps can plot *bytes* against rank count:

* **pinned recv vbufs** — ``(max_prepost + headroom) * vbuf_bytes`` per
  connection (the high-water population the rank had to keep registered;
  in RDMA-channel mode the ring slots plus the fixed control-vbuf budget
  instead);
* **QP descriptor state** — queue-pair context plus send/recv WQE arrays
  in HCA-attached memory, per connection;
* **CQ descriptor state** — one CQE array per endpoint (the paper's MPI
  binds every QP to one CQ per process);
* **send pool** — the per-endpoint shared pool of pre-pinned send vbufs.

Everything is derived from a finished job's endpoints — the same source
:func:`repro.core.stats.collect_report` reads — plus the closed forms
(:func:`predicted_connection_bytes`, :func:`mesh_pinned_bytes`) the
conservation tests and the modeled 1,024-rank mesh rows use.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.config import TestbedConfig
    from repro.mpi.connection import Connection
    from repro.mpi.endpoint import Endpoint

#: Queue-pair context bytes (InfiniHost-era QPC + address vector state).
QPC_BYTES = 256
#: One work-queue element (send or receive descriptor slot).
WQE_BYTES = 64
#: One completion-queue element.
CQE_BYTES = 32


@dataclass
class MemoryReport:
    """Job-wide memory footprint, all quantities in bytes."""

    connections: int
    #: high-water pinned receive-vbuf bytes across all connections — the
    #: paper's scalability quantity (Table 2 times vbuf size)
    vbuf_pinned_bytes: int
    #: receive-vbuf bytes still posted when the job ended
    vbuf_posted_bytes: int
    #: QP context + WQE arrays across all connections
    qp_bytes: int
    #: CQE arrays across all endpoints
    cq_bytes: int
    #: RDMA eager-ring slots across all connections (0 unless the
    #: RDMA channel is enabled)
    ring_bytes: int
    #: shared send-pool vbufs across all endpoints
    send_pool_bytes: int
    #: everything above, summed
    total_bytes: int
    #: the single hungriest rank's footprint (pinned + QP + CQ + pool)
    per_rank_peak_bytes: int

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)

    @property
    def pinned_mb(self) -> float:
        return self.vbuf_pinned_bytes / (1024.0 * 1024.0)

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["pinned_mb"] = self.pinned_mb
        d["total_mb"] = self.total_mb
        return d


def qp_state_bytes(ib: Any) -> int:
    """Descriptor memory one RC queue pair owns: context plus its send
    and receive WQE arrays (sized at creation, pinned for the QP's
    lifetime)."""
    return QPC_BYTES + (ib.sq_depth + ib.rq_depth) * WQE_BYTES


def connection_memory_bytes(conn: "Connection", mpi: Any, ib: Any) -> Tuple[int, int, int, int]:
    """One connection's ``(pinned, posted, qp, ring)`` byte counts.

    ``pinned`` is the high-water receive population —
    ``max_prepost + headroom`` vbufs (what the rank had to keep
    registered), or the fixed control budget in RDMA-channel mode, where
    credits govern ring slots rather than WQEs.
    """
    if conn.rdma_eager:
        pinned = mpi.rdma_control_bufs * mpi.vbuf_bytes
        ring = conn.tx_ring_slots * mpi.vbuf_bytes
        if conn.rx_channel is not None:
            ring += conn.rx_channel.ring.slots * mpi.vbuf_bytes
    else:
        pinned = (conn.stats.max_prepost + conn.headroom) * mpi.vbuf_bytes
        ring = 0
    posted = conn.recv_posted * mpi.vbuf_bytes
    return pinned, posted, qp_state_bytes(ib), ring


def collect_memory_report(endpoints: Iterable["Endpoint"],
                          config: "TestbedConfig") -> MemoryReport:
    """Aggregate every endpoint's connections into one report."""
    mpi, ib = config.mpi, config.ib
    connections = 0
    pinned = posted = qp = ring = cq = pool = 0
    per_rank_peak = 0
    for ep in endpoints:
        rank_bytes = ib.cq_depth * CQE_BYTES
        rank_bytes += mpi.send_pool_buffers * mpi.vbuf_bytes
        cq += ib.cq_depth * CQE_BYTES
        pool += mpi.send_pool_buffers * mpi.vbuf_bytes
        for conn in ep.connections.values():
            connections += 1
            p, po, q, rg = connection_memory_bytes(conn, mpi, ib)
            pinned += p
            posted += po
            qp += q
            ring += rg
            rank_bytes += p + q + rg
        if rank_bytes > per_rank_peak:
            per_rank_peak = rank_bytes
    return MemoryReport(
        connections=connections,
        vbuf_pinned_bytes=pinned,
        vbuf_posted_bytes=posted,
        qp_bytes=qp,
        cq_bytes=cq,
        ring_bytes=ring,
        send_pool_bytes=pool,
        total_bytes=pinned + qp + cq + ring + pool,
        per_rank_peak_bytes=per_rank_peak,
    )


def scheme_headroom(scheme_name: str) -> int:
    """Non-credited optimistic headroom a scheme adds per connection
    (0 for hardware; the default optimistic budget for static/dynamic —
    *independent of the ECM threshold*, which shapes credit-return
    traffic, never buffer counts)."""
    from repro.core import make_scheme

    return make_scheme(scheme_name).optimistic_headroom


def _pinned_per_connection(scheme_name: str, prepost: int, mpi: Any) -> int:
    """Closed-form pinned bytes one connection keeps registered under a
    scheme.  Ring schemes pin the fixed control-vbuf reserve plus both
    ring halves — the rank's own receive ring and its slot share of the
    peer's — mirroring the measured per-connection split; everything else
    pins the pre-posted vbufs plus the scheme's optimistic headroom."""
    from repro.core import make_scheme

    scheme = make_scheme(scheme_name)
    if scheme.uses_ring:
        return (mpi.rdma_control_bufs + 2 * prepost) * mpi.vbuf_bytes
    return (prepost + scheme.optimistic_headroom) * mpi.vbuf_bytes


def predicted_connection_bytes(scheme_name: str, prepost: int,
                               mpi: Any, ib: Any) -> int:
    """Closed-form bytes one idle connection costs under a scheme: the
    pinned buffer population (vbufs, or control reserve + ring slots for
    ring schemes) and the QP descriptor state.  The conservation tests
    pin the measured per-connection sum to this."""
    return _pinned_per_connection(scheme_name, prepost, mpi) + qp_state_bytes(ib)


def mesh_pinned_bytes(nranks: int, scheme_name: str, prepost: int,
                      mpi: Any) -> int:
    """Closed-form pinned buffer bytes of a full P x (P-1) mesh — the
    analytic stand-in for mesh cells too big to simulate (a 1,024-rank
    mesh is ~1M live connections)."""
    return nranks * (nranks - 1) * _pinned_per_connection(scheme_name, prepost, mpi)
