"""User-level static flow control (paper §4.2).

Credit-based: at init, ``requested_prepost`` vbufs are posted per
connection and the sender starts with the same number of credits.  Each
unexpected message (eager data, rendezvous start) consumes a credit; at
zero credits sends divert to the FIFO backlog queue.  Credits return by:

* **piggybacking** — every outgoing message carries the accumulated
  return-credits (free when the pattern is symmetric);
* **explicit credit messages (ECMs)** — when at least ``ecm_threshold``
  credits have piled up with no outbound message to carry them (the
  asymmetric case; LU is the paper's poster child, Table 1).

Deadlock avoidance is *optimistic* (the paper's contribution over MVICH):
ECMs are never subject to user-level flow control — they are posted
directly, backstopped by the hardware's RNR retry.  Since credit messages
can always flow, the credit cycle cannot wedge.

When credits run out entirely, the head of the backlog may be pushed
through the rendezvous protocol (its RTS sent optimistically); the
handshake's reply piggybacks fresh credits, which speeds up backlog
processing (paper §4.2, observed as "blocking beats non-blocking" in
Figures 5–6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.base import FlowControlScheme, SchemeName

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.connection import Connection

#: The paper: "we use a relatively small threshold value of 5".
DEFAULT_ECM_THRESHOLD = 5


class StaticScheme(FlowControlScheme):
    """Fixed per-connection credit budget decided at init time."""

    name = SchemeName.STATIC
    uses_credits = True
    allows_rndv_fallback = True

    def __init__(self, ecm_threshold: int = DEFAULT_ECM_THRESHOLD):
        if ecm_threshold < 1:
            raise ValueError("ecm_threshold must be >= 1")
        self.ecm_threshold = ecm_threshold

    def setup_connection(self, conn: "Connection", requested_prepost: int) -> None:
        conn.set_prepost_target(requested_prepost)
        conn.headroom = self.optimistic_headroom
        conn.refill_recv_buffers()
        conn.credits = requested_prepost

    def try_consume_credit(self, conn: "Connection") -> bool:
        if conn.credits > 0:
            conn.credits -= 1
            return True
        return False

    def should_send_ecm(self, conn: "Connection") -> bool:
        # Faithful to the paper: credits below the threshold are never
        # shipped explicitly ("a threshold credit value ... suppresses any
        # explicit credit messages if the number of credits to be
        # transferred is below the threshold").  With prepost < threshold
        # the sender therefore relies entirely on piggybacking and the
        # rendezvous fallback's handshake (§4.2) — which is why the
        # fallback must pipeline (see Endpoint._drain).
        return conn.pending_credit_return >= self.ecm_threshold

    def credit_pool_size(self, conn: "Connection") -> int:
        """Static scheme: the credit pool is exactly the fixed pre-post
        budget chosen at MPI_Init (paper §4.2) — credits circulate
        between sender, wire and receiver but are never minted."""
        return conn.prepost_target
