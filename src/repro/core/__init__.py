"""The paper's contribution: three flow-control schemes for MPI over
InfiniBand.

* :class:`HardwareScheme` — rely on IBA end-to-end flow control (RNR NAK +
  timer retry); zero software overhead, no adaptivity.
* :class:`StaticScheme` — user-level credits fixed at init, returned via
  piggybacking and explicit credit messages; optimistic (non-flow-
  controlled) ECMs avoid deadlock.
* :class:`DynamicScheme` — static's machinery plus feedback-driven growth
  of the per-connection pre-post depth (went-through-backlog bit).

Use :func:`make_scheme` to construct by name — the benchmark harness and
examples do.
"""

from __future__ import annotations

from typing import Union

from repro.core.base import FlowControlScheme, SchemeName
from repro.core.dynamic import DynamicScheme
from repro.core.hardware import HardwareScheme
from repro.core.memory import (
    MemoryReport,
    collect_memory_report,
    mesh_pinned_bytes,
    predicted_connection_bytes,
)
from repro.core.rdma_eager import DEFAULT_RECLAIM_WATERMARK, RdmaEagerScheme
from repro.core.static import DEFAULT_ECM_THRESHOLD, StaticScheme
from repro.core.stats import (
    CongestionReport,
    FlowControlReport,
    collect_congestion_report,
    collect_report,
    per_connection_max_buffers,
)

#: The canonical evaluation order used by every figure in the paper.
ALL_SCHEMES = (SchemeName.HARDWARE, SchemeName.STATIC, SchemeName.DYNAMIC)

#: The paper's three plus the RDMA-write ring eager design — the order
#: used by the harnesses that compare all registered schemes.
EXTENDED_SCHEMES = ALL_SCHEMES + (SchemeName.RDMA_EAGER,)

_SCHEME_CLASSES = {
    SchemeName.HARDWARE.value: HardwareScheme,
    SchemeName.STATIC.value: StaticScheme,
    SchemeName.DYNAMIC.value: DynamicScheme,
    SchemeName.RDMA_EAGER.value: RdmaEagerScheme,
}


def make_scheme(name: Union[str, SchemeName], **kwargs) -> FlowControlScheme:
    """Build a scheme by name (``"hardware"``, ``"static"``, ``"dynamic"``,
    ``"rdma-eager"``).

    Keyword arguments are forwarded to the scheme constructor (e.g.
    ``ecm_threshold=5``, ``growth_step=2``, ``reclaim_watermark=2``).
    """
    if isinstance(name, SchemeName):
        name = name.value
    try:
        cls = _SCHEME_CLASSES[name]
    except KeyError:
        valid = ", ".join(sorted(_SCHEME_CLASSES))
        raise ValueError(
            f"unknown flow control scheme {name!r} (valid schemes: {valid})"
        ) from None
    return cls(**kwargs)


__all__ = [
    "ALL_SCHEMES",
    "DEFAULT_ECM_THRESHOLD",
    "DEFAULT_RECLAIM_WATERMARK",
    "EXTENDED_SCHEMES",
    "CongestionReport",
    "DynamicScheme",
    "FlowControlReport",
    "FlowControlScheme",
    "HardwareScheme",
    "MemoryReport",
    "RdmaEagerScheme",
    "SchemeName",
    "StaticScheme",
    "collect_congestion_report",
    "collect_memory_report",
    "collect_report",
    "make_scheme",
    "mesh_pinned_bytes",
    "per_connection_max_buffers",
    "predicted_connection_bytes",
]
