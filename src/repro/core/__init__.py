"""The paper's contribution: three flow-control schemes for MPI over
InfiniBand.

* :class:`HardwareScheme` — rely on IBA end-to-end flow control (RNR NAK +
  timer retry); zero software overhead, no adaptivity.
* :class:`StaticScheme` — user-level credits fixed at init, returned via
  piggybacking and explicit credit messages; optimistic (non-flow-
  controlled) ECMs avoid deadlock.
* :class:`DynamicScheme` — static's machinery plus feedback-driven growth
  of the per-connection pre-post depth (went-through-backlog bit).

Use :func:`make_scheme` to construct by name — the benchmark harness and
examples do.
"""

from __future__ import annotations

from typing import Union

from repro.core.base import FlowControlScheme, SchemeName
from repro.core.dynamic import DynamicScheme
from repro.core.hardware import HardwareScheme
from repro.core.memory import (
    MemoryReport,
    collect_memory_report,
    mesh_pinned_bytes,
    predicted_connection_bytes,
)
from repro.core.static import DEFAULT_ECM_THRESHOLD, StaticScheme
from repro.core.stats import (
    CongestionReport,
    FlowControlReport,
    collect_congestion_report,
    collect_report,
    per_connection_max_buffers,
)

#: The canonical evaluation order used by every figure in the paper.
ALL_SCHEMES = (SchemeName.HARDWARE, SchemeName.STATIC, SchemeName.DYNAMIC)


def make_scheme(name: Union[str, SchemeName], **kwargs) -> FlowControlScheme:
    """Build a scheme by name (``"hardware"``, ``"static"``, ``"dynamic"``).

    Keyword arguments are forwarded to the scheme constructor (e.g.
    ``ecm_threshold=5``, ``growth_step=2``, ``exponential=True``).
    """
    if isinstance(name, SchemeName):
        name = name.value
    if name == SchemeName.HARDWARE.value:
        return HardwareScheme(**kwargs)
    if name == SchemeName.STATIC.value:
        return StaticScheme(**kwargs)
    if name == SchemeName.DYNAMIC.value:
        return DynamicScheme(**kwargs)
    raise ValueError(f"unknown flow control scheme {name!r}")


__all__ = [
    "ALL_SCHEMES",
    "DEFAULT_ECM_THRESHOLD",
    "CongestionReport",
    "DynamicScheme",
    "FlowControlReport",
    "FlowControlScheme",
    "HardwareScheme",
    "MemoryReport",
    "SchemeName",
    "StaticScheme",
    "collect_congestion_report",
    "collect_memory_report",
    "collect_report",
    "make_scheme",
    "mesh_pinned_bytes",
    "per_connection_max_buffers",
    "predicted_connection_bytes",
]
