"""RDMA-write ring-buffer eager flow control (the Liu et al. sequel).

The paper's three schemes all spend a receive WQE per eager message; the
MPICH2-over-InfiniBand follow-up RDMA-writes small messages into a
per-connection *persistent ring* of fixed-size slots instead.  The
receiver discovers arrivals by polling the slot memory (two-flag
head/tail layout, see :mod:`repro.mpi.rdma_channel`) — no receive WQE,
no CQE, no RNR path for eager traffic.

Flow control changes currency, not shape: the sender holds one token per
*free ring slot* and each eager message consumes one; at zero tokens
sends divert to the FIFO backlog queue exactly as under the static
scheme.  Slots are reclaimed when the receiver copies the message out,
and the reclamation notice travels back by:

* **piggybacking** — every reverse-direction message carries the
  accumulated reclaimed-slot count (the common case for symmetric
  patterns);
* **low-watermark explicit ACK** — when the receiver's unreported
  reclamations grow so large that the sender's worst-case view of free
  slots has dropped to ``reclaim_watermark``, an explicit credit message
  ships them immediately.  This is deliberately lazier than the static
  scheme's ECM threshold: ring slots are cheap to leave unreported while
  the sender still has plenty, and the explicit packet is only worth its
  wire cost when starvation is near.

Messages larger than a slot fall back to the rendezvous protocol (whose
handshake also refreshes slot tokens, so a slot-starved backlog can
always drain).  Control traffic (RTS/CTS/FIN, explicit ACKs) still
travels by SEND into the small ``rdma_control_bufs`` reserve — the ring
carries eager data only, so ``optimistic_headroom`` is zero.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.base import FlowControlScheme, SchemeName

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.connection import Connection

#: Fire the explicit slot-reclamation ACK when the sender's worst-case
#: free-slot count (ring size minus unreported reclamations) falls this
#: low.  Two keeps one slot for the in-flight message that triggered the
#: report plus one of slack, while staying lazy enough that symmetric
#: traffic almost never pays for an explicit packet.
DEFAULT_RECLAIM_WATERMARK = 2


class RdmaEagerScheme(FlowControlScheme):
    """Per-connection RDMA-write ring with slot-reclamation flow control."""

    name = SchemeName.RDMA_EAGER
    uses_credits = True
    uses_ring = True
    allows_rndv_fallback = True
    #: Control traffic rides the fixed ``rdma_control_bufs`` reserve that
    #: every ring connection posts (see Connection.refill_recv_buffers),
    #: not an extra per-scheme headroom.
    optimistic_headroom = 0

    def __init__(self, reclaim_watermark: int = DEFAULT_RECLAIM_WATERMARK):
        if reclaim_watermark < 1:
            raise ValueError("reclaim_watermark must be >= 1")
        self.reclaim_watermark = reclaim_watermark

    def setup_connection(self, conn: "Connection", requested_prepost: int) -> None:
        # The ring was allocated by Endpoint.add_connection before this
        # hook runs; prepost_target doubles as the ring's slot count and
        # the token pool size.  refill_recv_buffers sees conn.rdma_eager
        # and posts only the control-buffer reserve.
        conn.set_prepost_target(requested_prepost)
        conn.headroom = self.optimistic_headroom
        conn.refill_recv_buffers()
        conn.credits = requested_prepost

    def try_consume_credit(self, conn: "Connection") -> bool:
        if conn.credits > 0:
            conn.credits -= 1
            return True
        return False

    def should_send_ecm(self, conn: "Connection") -> bool:
        # Low-watermark fallback: pending_credit_return slots have been
        # reclaimed but not yet reported, so the sender may believe as few
        # as (ring size - pending) slots are free.  Report explicitly only
        # when that pessimistic view reaches the watermark; piggybacking
        # handles everything before then.
        floor = max(1, conn.prepost_target - self.reclaim_watermark)
        return conn.pending_credit_return >= floor

    def credit_pool_size(self, conn: "Connection") -> int:
        """One token per ring slot: the pool is the ring size fixed at
        connect time — slots circulate, they are never minted."""
        return conn.prepost_target
