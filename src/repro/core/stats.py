"""Aggregation of per-connection statistics into the paper's table rows.

Table 1 reports, for the user-level static scheme, the *average number of
explicit credit messages per connection at each process* next to the total
message count.  Table 2 reports the *maximum number of posted buffers for
every connection at every process* under the dynamic scheme.  The helpers
here compute both from a finished job's endpoints.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.endpoint import Endpoint


@dataclass
class FlowControlReport:
    """Job-wide flow-control summary."""

    total_msgs: int
    data_msgs: int
    ecm_msgs: int
    backlogged_msgs: int
    backlog_max: int
    rndv_fallbacks: int
    max_posted_buffers: int
    avg_ecm_per_connection: float
    piggybacked_credits: int
    ecm_credits: int
    rnr_naks: int
    retransmissions: int
    #: handshake control plane (RTS/CTS/FIN/RING_RESIZE) — tagged apart
    #: from data so the Figure-8 overhead split is honest about what is
    #: payload and what is protocol
    control_msgs: int = 0
    #: backlogged sends that were control-plane (credit-starved RTSs)
    control_backlogged: int = 0

    @property
    def ecm_fraction(self) -> float:
        """ECMs as a share of all messages (the paper's 18 % LU headline)."""
        return self.ecm_msgs / self.total_msgs if self.total_msgs else 0.0

    @property
    def control_fraction(self) -> float:
        """Handshake control messages as a share of all messages."""
        return self.control_msgs / self.total_msgs if self.total_msgs else 0.0


def collect_report(endpoints: Iterable["Endpoint"]) -> FlowControlReport:
    """Aggregate every endpoint's connections into one report."""
    total = data = ecm = backlogged = fallbacks = 0
    piggy = ecmc = naks = retrans = 0
    ctl = ctl_backlogged = 0
    max_posted = backlog_max = 0
    conn_count = 0
    for ep in endpoints:
        for conn in ep.connections.values():
            s = conn.stats
            conn_count += 1
            total += s.msgs_sent
            data += s.data_msgs_sent
            ctl += s.ctl_msgs_sent
            ecm += s.ecm_sent
            backlogged += s.backlogged
            ctl_backlogged += s.ctl_backlogged
            fallbacks += s.rndv_fallbacks
            piggy += s.piggybacked_credits
            ecmc += s.ecm_credits
            max_posted = max(max_posted, s.max_prepost)
            backlog_max = max(backlog_max, s.backlog_max)
            naks += conn.qp.rnr_naks_received
            retrans += conn.qp.retransmissions
    return FlowControlReport(
        total_msgs=total,
        data_msgs=data,
        ecm_msgs=ecm,
        backlogged_msgs=backlogged,
        backlog_max=backlog_max,
        rndv_fallbacks=fallbacks,
        max_posted_buffers=max_posted,
        # Guard the empty-endpoints / zero-connection case: a job that
        # never opened a connection (single rank, or on-demand mode with no
        # traffic) must report 0.0, not divide by zero.
        avg_ecm_per_connection=(ecm / conn_count) if conn_count else 0.0,
        piggybacked_credits=piggy,
        ecm_credits=ecmc,
        rnr_naks=naks,
        retransmissions=retrans,
        control_msgs=ctl,
        control_backlogged=ctl_backlogged,
    )


@dataclass
class CongestionReport:
    """Job-wide switch-congestion summary (``None`` when disarmed).

    ``per_dest`` is keyed by destination LID (as a string, for stable
    JSON round-trips) and reports the final host-egress port feeding that
    destination: peak queued bytes, XOFF episodes, ECN marks and tail
    drops.  The totals additionally cover the interior (leaf-up /
    spine-down) ports a fat-tree path traverses.
    """

    pause_frames: int
    resume_frames: int
    xoff_events: int
    xon_events: int
    ecn_marks: int
    cnps: int
    drops: int
    depth_peak_bytes: int
    min_flow_rate: float
    per_dest: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def collect_congestion_report(state: Any) -> CongestionReport:
    """Reduce a :class:`repro.congestion.CongestionState` (duck-typed —
    no import, so this module stays dependency-light) to plain numbers."""
    counters = state.tracer.counters

    def total(name: str) -> int:
        c = counters.get(name)
        return c.total() if c is not None else 0

    def per_key(name: str) -> Dict[Any, int]:
        c = counters.get(name)
        return c.snapshot() if c is not None else {}

    xoff_by_port = per_key("cong.xoff")
    marks_by_port = per_key("cong.ecn_mark")
    depth_peak = 0
    per_dest: Dict[str, Dict[str, int]] = {}
    for key in sorted(state.ports):
        port = state.ports[key]
        if port.peak_depth > depth_peak:
            depth_peak = port.peak_depth
        if key[0] == "down":
            per_dest[str(key[1])] = {
                "depth_peak_bytes": port.peak_depth,
                "pauses": xoff_by_port.get(key, 0),
                "marks": marks_by_port.get(key, 0),
                "drops": port.drops,
            }
    min_rate = 1.0
    for flow in state.flows.values():
        if flow.min_rate_seen < min_rate:
            min_rate = flow.min_rate_seen
    return CongestionReport(
        pause_frames=total("cong.pause_frame"),
        resume_frames=total("cong.resume_frame"),
        xoff_events=total("cong.xoff"),
        xon_events=total("cong.xon"),
        ecn_marks=total("cong.ecn_mark"),
        cnps=total("cong.cnp"),
        drops=total("cong.drop"),
        depth_peak_bytes=depth_peak,
        min_flow_rate=min_rate,
        per_dest=per_dest,
    )


def reset_counters(endpoints: Iterable["Endpoint"],
                   congestion: Optional[Any] = None) -> None:
    """Zero every observability counter so a reused cluster starts the
    next job with a clean slate.

    Reused-cluster runs previously aggregated ConnStats / QP / pool
    counters across *all* jobs ever run on the builder, so the second
    ``run_job`` reported inflated tables.  Live protocol state (credits,
    posted buffers, prepost targets) is deliberately untouched — only
    the counters that :func:`collect_report` and the analysis layer read.
    With ``congestion`` (the fabric's :class:`CongestionState`, when
    armed) its port/flow counters are reset the same way.
    """
    if congestion is not None:
        congestion.reset_counters()
    for ep in endpoints:
        ep.bytes_sent = 0
        ep.bytes_received = 0
        ep.wait_ns = 0
        pool = ep.pool
        pool.min_free = pool.free
        pool.acquisitions = 0
        pool.releases = 0
        pool.exhaustion_events = 0
        for conn in ep.connections.values():
            conn.reset_stats()
            qp = conn.qp
            qp.rnr_naks_received = 0
            qp.rnr_naks_sent = 0
            qp.retransmissions = 0
            qp.messages_sent = 0
            qp.messages_delivered = 0


def per_connection_max_buffers(endpoints: Iterable["Endpoint"]) -> Dict[tuple, int]:
    """(rank, peer) → high-water prepost_target (Table 2 raw data)."""
    out = {}
    for ep in endpoints:
        for peer, conn in ep.connections.items():
            out[(ep.rank, peer)] = conn.stats.max_prepost
    return out
