"""repro — reproduction of *Implementing Efficient and Scalable Flow Control
Schemes in MPI over InfiniBand* (Jiuxing Liu and Dhabaleswar K. Panda,
IPPS 2004).

The package is a self-contained, laptop-scale reproduction of the paper's
system stack.  Because the original study requires an 8-node InfiniBand
cluster, every hardware layer is substituted by a calibrated discrete-event
simulation (see ``DESIGN.md`` for the substitution argument):

``repro.sim``
    A from-scratch discrete-event simulation kernel (integer-nanosecond
    clock, coroutine processes, one-shot signals).

``repro.ib``
    An InfiniBand substrate: queue pairs, completion queues, memory
    registration, Reliable Connection transport with RNR NAK / retry
    semantics, links, a crossbar switch and host-bus (PCI-X) modelling.

``repro.mpi``
    An MPICH/ADI-style MPI library over the verbs layer: eager and
    rendezvous (zero-copy RDMA write) protocols, a pre-pinned buffer pool,
    matching queues, a progress engine, point-to-point and collective
    operations.

``repro.core``
    The paper's contribution — three pluggable flow-control schemes:
    hardware-based, user-level static (credit based with piggybacking and
    explicit credit messages) and user-level dynamic (feedback-driven
    buffer growth).

``repro.cluster``
    Testbed configuration (timing calibration) and a cluster builder / job
    launcher.

``repro.workloads``
    Micro-benchmarks (latency, bandwidth) and NAS Parallel Benchmark
    communication-skeleton proxies (IS, FT, LU, CG, MG, BT, SP).

``repro.analysis``
    Series/table collection helpers used by the benchmark harness.
"""

from repro.cluster import Cluster, JobResult, TestbedConfig, run_job
from repro.core import (
    ALL_SCHEMES,
    DynamicScheme,
    FlowControlScheme,
    HardwareScheme,
    SchemeName,
    StaticScheme,
    make_scheme,
)

__all__ = [
    "ALL_SCHEMES",
    "Cluster",
    "DynamicScheme",
    "FlowControlScheme",
    "HardwareScheme",
    "JobResult",
    "SchemeName",
    "StaticScheme",
    "TestbedConfig",
    "make_scheme",
    "run_job",
]

__version__ = "1.0.0"
