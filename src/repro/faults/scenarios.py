"""Canonical chaos scenarios and the per-scheme robustness report.

Three named scenarios (see ``EXPERIMENTS.md`` for expected outcomes):

``receiver-stall`` — a two-rank eager flood whose receiver goes
slow-consumer mid-stream.  This is the paper's Figure-10 stressor: the
hardware scheme degenerates into RNR timeout-and-retransmit storms while
the user-level schemes park the overflow in the backlog queue and drain
it through the rendezvous fallback.

``flappy-link`` — a four-rank ring exchange across a host link that goes
down twice.  Wire loss exercises the transport ACK-timeout replay path
(and, for user-level schemes, credit recovery via ECMs after silence).

``lossy-window`` — the flood again under a probabilistic drop window
(seeded RNG, deterministic), the bounded-retry recovery stressor.

``link-down-permanent`` — the flood through a link outage that outlives a
*finite* transport retry budget: the QP pair goes fatal mid-stream.  With
``--recovery`` the connection recovery subsystem re-establishes the pair
and replays the un-acked suffix; without it the run reports a structured
connection failure instead of hanging.

``retry-budget`` — the receiver-stall burst with a finite RNR retry count:
the hardware scheme (whose only flow control *is* the RNR timer) blows its
retry budget while the user-level schemes ride through on credits.

``rank-death`` — a 4-rank exchange whose rank 2 dies outright mid-run
(HCA silent, program halted).  With ``--ft`` the heartbeat failure
detector (repro.ft) declares the rank dead, completes every pending
request toward it with ``PROC_FAILED``, and the job finishes with a
structured :class:`~repro.ft.RankFailure` record; without ``--ft`` the
same plan is caught by the auditor's progress watchdog instead of
hanging.

``cm-lossy-setup`` — control-plane chaos: a 6-rank ring on an on-demand
cluster whose CM setup exchanges are probabilistically lost and delayed;
the connection manager retries with exponential backoff (the
``cm.setup_*`` counters land in the report).

Three congestion scenarios (meaningful with ``--congestion``, but they run
fine without it as the uncongested baseline):

``incast-n1`` — eight senders flood one sink while a victim flow crosses
the same switch to an idle destination.  With PFC armed the sink's egress
queue hits XOFF and pauses *whole ingress ports*, so the victim is
head-of-line blocked behind traffic it shares nothing with; with ECN the
hot flows are rate-limited individually and the victim rides through.

``hotspot-skew`` — every rank hammers rank 0 while also running a light
ring flow; measures how far hotspot backpressure spreads.

``victim-flow`` — a fat-tree with a single spine: three hot flows and one
victim flow share the lone uplink, the classic HoL-blocking topology.

``run_chaos`` runs the requested schemes under a scenario and returns a
plain-dict report (stable key order) so the CLI can render/serialise it
and the determinism check can compare two runs byte-for-byte.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Iterable, Optional

from repro.cluster.config import TestbedConfig
from repro.cluster.job import run_job
from repro.faults.plan import FaultPlan
from repro.sim.units import to_us, us
from repro.workloads.microbench import manyflows_program

SCHEMES = ("hardware", "static", "dynamic")


# ----------------------------------------------------------------------
# workload programs
# ----------------------------------------------------------------------
def _flood_program(msgs: int, msg_bytes: int) -> Callable:
    """Rank 0 floods rank 1 with eager messages; rank 1 consumes them."""

    def program(mpi) -> Generator:
        if mpi.rank == 0:
            reqs = []
            for _ in range(msgs):
                req = yield from mpi.isend(1, size=msg_bytes)
                reqs.append(req)
            yield from mpi.waitall(reqs)
        else:
            for _ in range(msgs):
                yield from mpi.recv(0, capacity=msg_bytes)
        return mpi.now

    return program


def _ring_program(rounds: int, msg_bytes: int) -> Callable:
    """Neighbour exchange around a ring (every link carries traffic)."""

    def program(mpi) -> Generator:
        n = mpi.world_size
        right = (mpi.rank + 1) % n
        left = (mpi.rank - 1) % n
        for _ in range(rounds):
            rreq = yield from mpi.irecv(source=left, capacity=msg_bytes)
            sreq = yield from mpi.isend(right, size=msg_bytes)
            yield from mpi.waitall([rreq, sreq])
        return mpi.now

    return program


# ----------------------------------------------------------------------
# scenario registry
# ----------------------------------------------------------------------
class Scenario:
    def __init__(
        self,
        name: str,
        description: str,
        nranks: int,
        prepost: int,
        make_program: Callable[[], Callable],
        make_plan: Callable[[int], Optional[FaultPlan]],
        make_config: Optional[Callable[[], TestbedConfig]] = None,
        victim_rank: Optional[int] = None,
        audit: bool = False,
        on_demand: Optional[bool] = None,
        make_cm_chaos: Optional[Callable[[int], Dict]] = None,
    ):
        self.name = name
        self.description = description
        self.nranks = nranks
        self.prepost = prepost
        self.make_program = make_program
        self.make_plan = make_plan
        #: scenario-specific testbed overrides (e.g. finite RNR retries);
        #: None = the calibrated defaults
        self.make_config = make_config
        #: congestion scenarios: the rank whose finish time is the
        #: HoL-blocking metric (an innocent flow sharing switch resources
        #: with the hot flows); None = no victim metric
        self.victim_rank = victim_rank
        #: run under the invariant auditor (rank-death: its watchdog is
        #: the no-ft contrast arm, its exemptions the ft arm's check)
        self.audit = audit
        #: force lazy connection management (cm-lossy-setup needs it)
        self.on_demand = on_demand
        #: seed -> kwargs for ConnectionManager.configure_chaos
        self.make_cm_chaos = make_cm_chaos


def _receiver_stall_plan(seed: int) -> FaultPlan:
    # ~10 RNR-timer periods (320 us each) of starvation from just after
    # launch: the receiver is descheduled while the sender's burst lands.
    return FaultPlan(seed=seed).receiver_stall(
        rank=1, at_ns=us(5), duration_ns=us(3200)
    )


def _flappy_link_plan(seed: int) -> FaultPlan:
    # The link under rank 2 drops twice while the ring is hot.
    return (
        FaultPlan(seed=seed)
        .link_flap(lid=2, at_ns=us(150), duration_ns=us(250))
        .link_flap(lid=2, at_ns=us(700), duration_ns=us(250))
    )


def _lossy_window_plan(seed: int) -> FaultPlan:
    # 15 % loss on the flood pair for 350 us, then a clean tail.
    return FaultPlan(seed=seed).drop_window(
        at_ns=us(50), duration_ns=us(350), probability=0.15, lids=(0, 1)
    )


def _link_down_plan(seed: int) -> FaultPlan:
    # A 1.5 ms outage against a 40 us ACK timeout with only 4 transport
    # retries: the go-back-N ladder is exhausted long before the link
    # returns, so the QP pair goes fatal (RETRY_EXCEEDED) mid-stream.
    return FaultPlan(
        seed=seed, transport_timeout_ns=us(40), transport_retry_limit=4
    ).link_flap(lid=1, at_ns=us(100), duration_ns=us(1500))


def _retry_budget_plan(seed: int) -> FaultPlan:
    # Same starvation window as receiver-stall; the finite RNR budget
    # comes from the scenario's config override.
    return FaultPlan(seed=seed).receiver_stall(
        rank=1, at_ns=us(5), duration_ns=us(3200)
    )


#: the rank the rank-death scenario kills (one rank per node on the
#: 8-node default testbed, so only this rank's HCA dies with it)
RANK_DEATH_VICTIM = 2


def _rank_death_plan(seed: int) -> FaultPlan:
    # Default (infinite) transport retry: survivors' transports never give
    # up on the dead peer, so detection is purely the heartbeat detector's
    # doing (with ft) — and without ft the run goes quiet until the
    # progress watchdog declares it, the pre-ft failure mode.  The
    # detector's _sever force-errors the victim-facing QPs, which stops
    # the retry timers and lets the agenda drain.
    return FaultPlan(seed=seed).rank_death(rank=RANK_DEATH_VICTIM, at_ns=us(40))


def _rank_death_program(nranks: int, victim: int) -> Callable:
    """Every survivor owes the victim a rendezvous-size send (in-flight
    data the transport will declare unreachable) and expects a reply that
    never comes (pending work the heartbeat detector watches); a light
    survivor-to-survivor ring shows the rest of the fabric stays live."""

    def program(mpi) -> Generator:
        n = mpi.world_size
        if mpi.rank == victim:
            for src in range(n):
                if src != victim:
                    yield from mpi.recv(src, capacity=1 << 16)
            for dst in range(n):  # never reached: death hits mid-receive
                if dst != victim:
                    yield from mpi.send(dst, size=256)
            return "victim-survived?"
        sreq = yield from mpi.isend(victim, size=50_000)
        rreq = yield from mpi.irecv(source=victim, capacity=1 << 16)
        survivors = [r for r in range(n) if r != victim]
        i = survivors.index(mpi.rank)
        right = survivors[(i + 1) % len(survivors)]
        left = survivors[(i - 1) % len(survivors)]
        ring_r = yield from mpi.irecv(source=left, capacity=1024)
        yield from mpi.send(right, size=512)
        st_send = yield from mpi.wait(sreq)
        st_recv = yield from mpi.wait(rreq)
        st_ring = yield from mpi.wait(ring_r)
        return {
            "send_error": st_send.error,
            "recv_error": st_recv.error,
            "ring_error": st_ring.error,
        }

    return program


def _cm_chaos_kwargs(seed: int) -> Dict:
    # 25 % of setup exchanges lost, the rest uniformly delayed up to
    # 120 us: enough churn to force retries without (at stock seeds)
    # exhausting the 5-attempt backoff budget.
    return {"loss_prob": 0.25, "delay_ns": us(120), "seed": seed}


def _congestion_plan(seed: int) -> FaultPlan:
    # No fault events — the plan only arms the transport ACK-timeout retry
    # (so tail-dropped packets are recovered) with a timeout far above any
    # queueing delay these scenarios produce; the default 200 us timeout
    # would fire spuriously while messages sit in paused switch queues.
    return FaultPlan(seed=seed, transport_timeout_ns=us(20_000))


def _incast_flows():
    # Ranks 1..8 flood rank 0; the victim flow 1 -> 9 shares sender 1's
    # injection port and the switch with the hot flows but targets an
    # idle destination.
    flows = [(s, 0, 25, 1024) for s in range(1, 9)]
    flows.append((1, 9, 8, 1024))
    return flows


def _incast_config() -> TestbedConfig:
    return TestbedConfig(nodes=10)


def _hotspot_flows():
    # Every rank hammers rank 0 (the hotspot) while also running a light
    # ring flow 1->2->...->7->1 that measures collateral damage.
    flows = []
    for r in range(1, 8):
        flows.append((r, 0, 14, 1024))
        flows.append((r, r % 7 + 1, 10, 1024))
    return flows


def _victim_flows():
    # Fat-tree, one spine: hot flows 0,1,2 -> 4 and victim 3 -> 5 all
    # cross leaf 0 -> leaf 1 through the same lone uplink queue.
    flows = [(0, 4, 20, 1024), (1, 4, 20, 1024), (2, 4, 20, 1024)]
    flows.append((3, 5, 6, 1024))
    return flows


def _victim_config() -> TestbedConfig:
    return TestbedConfig(nodes=8, topology="fat-tree", leaf_ports=4, spines=1)


def _retry_budget_config() -> TestbedConfig:
    cfg = TestbedConfig()
    # 3 RNR retries instead of the verbs "infinite" sentinel: the paper's
    # hardware scheme leans on unbounded RNR replay, so a bounded budget
    # turns sustained starvation into a fatal completion.
    cfg.ib.rnr_retry_count = 3
    return cfg


SCENARIOS: Dict[str, Scenario] = {
    "receiver-stall": Scenario(
        "receiver-stall",
        "2-rank eager burst into a descheduled (slow-consumer) receiver",
        nranks=2,
        prepost=4,
        # Burst sized to prepost + optimistic headroom: user-level senders
        # absorb it exactly (4 paid sends + 3 rendezvous RTSs), while the
        # hardware scheme overruns its 4 posted buffers and storms.
        make_program=lambda: _flood_program(msgs=7, msg_bytes=1024),
        make_plan=_receiver_stall_plan,
    ),
    "flappy-link": Scenario(
        "flappy-link",
        "4-rank ring exchange; one host link flaps down twice",
        nranks=4,
        prepost=8,
        make_program=lambda: _ring_program(rounds=40, msg_bytes=512),
        make_plan=_flappy_link_plan,
    ),
    "lossy-window": Scenario(
        "lossy-window",
        "2-rank eager flood through a 15% probabilistic drop window",
        nranks=2,
        prepost=8,
        make_program=lambda: _flood_program(msgs=150, msg_bytes=1024),
        make_plan=_lossy_window_plan,
    ),
    "link-down-permanent": Scenario(
        "link-down-permanent",
        "2-rank flood; link outage outlives the transport retry budget",
        nranks=2,
        prepost=8,
        make_program=lambda: _flood_program(msgs=30, msg_bytes=1024),
        make_plan=_link_down_plan,
    ),
    "retry-budget": Scenario(
        "retry-budget",
        "receiver-stall burst with a finite (3) RNR retry budget",
        nranks=2,
        prepost=4,
        make_program=lambda: _flood_program(msgs=7, msg_bytes=1024),
        make_plan=_retry_budget_plan,
        make_config=_retry_budget_config,
    ),
    "rank-death": Scenario(
        "rank-death",
        "4-rank exchange; rank 2 dies outright mid-run (needs --ft to "
        "detect; without it the progress watchdog trips)",
        nranks=4,
        prepost=8,
        make_program=lambda: _rank_death_program(4, RANK_DEATH_VICTIM),
        make_plan=_rank_death_plan,
        audit=True,
    ),
    "cm-lossy-setup": Scenario(
        "cm-lossy-setup",
        "on-demand ring whose CM setup exchanges are lost/delayed "
        "(bounded-retry exponential backoff on the control plane)",
        nranks=6,
        prepost=4,
        make_program=lambda: _ring_program(rounds=12, msg_bytes=512),
        make_plan=lambda seed: None,  # control-plane chaos only
        on_demand=True,
        make_cm_chaos=_cm_chaos_kwargs,
    ),
    "incast-n1": Scenario(
        "incast-n1",
        "8-to-1 incast into rank 0 plus a victim flow to an idle rank",
        nranks=10,
        prepost=8,
        make_program=lambda: manyflows_program(_incast_flows()),
        make_plan=_congestion_plan,
        make_config=_incast_config,
        victim_rank=9,
    ),
    "hotspot-skew": Scenario(
        "hotspot-skew",
        "all ranks hammer rank 0 while a light ring flow rides along",
        nranks=8,
        prepost=8,
        make_program=lambda: manyflows_program(_hotspot_flows()),
        make_plan=_congestion_plan,
    ),
    "victim-flow": Scenario(
        "victim-flow",
        "fat-tree single-spine: 3 hot flows + 1 victim share one uplink",
        nranks=8,
        prepost=8,
        make_program=lambda: manyflows_program(_victim_flows()),
        make_plan=_congestion_plan,
        make_config=_victim_config,
        victim_rank=5,
    ),
}


# ----------------------------------------------------------------------
# the chaos harness
# ----------------------------------------------------------------------
def _scenario(scenario: str) -> Scenario:
    try:
        return SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r} (know {sorted(SCENARIOS)})"
        ) from None


def chaos_cell(
    scenario: str,
    scheme: str,
    seed: int = 7,
    prepost: Optional[int] = None,
    recovery: bool = False,
    congestion: Optional[str] = None,
    ft: bool = False,
) -> Dict:
    """Run one scheme under the named scenario and return its report entry.

    This is the unit of work the campaign orchestrator fans out
    (``repro.campaign``); :func:`run_chaos` assembles the same entries
    sequentially, so the two paths are bit-identical by construction.

    With ``recovery=True`` the job runs under the connection recovery
    subsystem and the entry gains a ``recovery`` sub-dict (reconnect
    attempts/latency, messages replayed).  A job that loses a QP pair for
    good reports ``completed: False`` with the structured failure records
    instead of an exception string.

    With ``congestion`` set (``"pfc" | "ecn" | "both"``) the job runs with
    the switch congestion subsystem armed in that mode and the entry gains
    a ``congestion`` sub-dict (pause frames, ECN marks, drops, per-dest
    queue peaks) plus — for scenarios that define a victim flow —
    ``victim_finish_us``.

    With ``ft=True`` the job runs under the rank-failure detector
    (``repro.ft``): a ``rank_death`` plan completes with structured
    ``RankFailure`` records and an ``ft`` sub-dict (pings, suspicions,
    detection latency) instead of hanging until the watchdog fires.
    """
    sc = _scenario(scenario)
    depth = sc.prepost if prepost is None else prepost
    plan = sc.make_plan(seed)  # fresh plan (and RNG) per run
    plan_end = plan.end_ns if plan is not None else 0
    config = sc.make_config() if sc.make_config is not None else None
    if congestion is not None:
        from repro.congestion import make_congestion_config

        if config is None:
            config = TestbedConfig()
        config.ib.congestion = make_congestion_config(congestion)
    cm_chaos = sc.make_cm_chaos(seed) if sc.make_cm_chaos is not None else None
    try:
        result = run_job(
            sc.make_program(), sc.nranks, scheme, depth,
            config=config, faults=plan, recovery=recovery,
            audit=sc.audit, on_demand=sc.on_demand, ft=ft,
            cm_chaos=cm_chaos,
        )
    except Exception as exc:  # deterministic failures are part of the report
        return {
            "completed": False,
            "error": f"{type(exc).__name__}: {exc}",
        }
    mgr = result.recovery
    if result.failures:
        entry = {
            "completed": False,
            "elapsed_us": result.elapsed_us,
            "failures": [f.to_dict() for f in result.failures],
        }
        if mgr is not None:
            entry["recovery"] = mgr.summary()
        if result.ft is not None:
            stats = result.ft.stats()
            stats.pop("failures", None)  # already in the entry, typed
            entry["ft"] = stats
        return entry
    fc = result.fc
    summary = result.tracer.summary()
    entry = {
        "completed": True,
        "elapsed_us": result.elapsed_us,
        "recovery_us": to_us(max(0, result.elapsed_ns - plan_end)),
        "retransmissions": fc.retransmissions,
        "rnr_naks": fc.rnr_naks,
        "backlog_max": fc.backlog_max,
        "backlogged_msgs": fc.backlogged_msgs,
        "rndv_fallbacks": fc.rndv_fallbacks,
        "ecm_msgs": fc.ecm_msgs,
        "faults": {
            name: total
            for name, total in summary.items()
            if name.startswith("faults.")
        },
    }
    if sc.victim_rank is not None:
        entry["victim_finish_us"] = to_us(result.rank_results[sc.victim_rank])
    if result.congestion is not None:
        entry["congestion"] = result.congestion.to_dict()
    if mgr is not None:
        entry["recovery"] = mgr.summary()
    if result.ft is not None:
        stats = result.ft.stats()
        stats.pop("failures", None)
        entry["ft"] = stats
    if sc.on_demand:
        entry["connections_established"] = result.connections_established
        cm_counters = {
            name: total
            for name, total in summary.items()
            if name.startswith("cm.")
        }
        if cm_counters:
            entry["cm"] = cm_counters
    return entry


def chaos_report_header(
    scenario: str, seed: int = 7, prepost: Optional[int] = None,
    recovery: bool = False, congestion: Optional[str] = None,
    ft: bool = False,
) -> Dict:
    """The scenario-level fields shared by every scheme's entry."""
    sc = _scenario(scenario)
    depth = sc.prepost if prepost is None else prepost
    plan = sc.make_plan(seed)
    return {
        "scenario": sc.name,
        "description": sc.description,
        "seed": seed,
        "nranks": sc.nranks,
        "prepost": depth,
        "recovery": recovery,
        "congestion": congestion,
        "ft": ft,
        "fault_window_us": to_us(plan.end_ns) if plan is not None else 0.0,
        "schemes": {},
    }


def run_chaos(
    scenario: str,
    seed: int = 7,
    schemes: Iterable[str] = SCHEMES,
    prepost: Optional[int] = None,
    recovery: bool = False,
    congestion: Optional[str] = None,
    ft: bool = False,
) -> Dict:
    """Run ``schemes`` under the named scenario; returns the robustness
    report as a plain dict (deterministic content for a fixed seed)."""
    report = chaos_report_header(scenario, seed=seed, prepost=prepost,
                                 recovery=recovery, congestion=congestion,
                                 ft=ft)
    for scheme in schemes:
        report["schemes"][scheme] = chaos_cell(
            scenario, scheme, seed=seed, prepost=prepost, recovery=recovery,
            congestion=congestion, ft=ft,
        )
    return report
