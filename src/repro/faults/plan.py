"""Deterministic fault plans.

A :class:`FaultPlan` is a *schedule* of adverse events — link flaps,
degraded links, lossy windows, receiver stalls, HCA pauses — composed
through a chainable builder API or loaded from a declarative dict/JSON
spec.  Plans are pure data: nothing here touches a simulator.  The
:class:`~repro.faults.injector.FaultInjector` turns a plan into scheduled
events against one cluster.

Determinism contract: every random decision (lossy-window drops) is drawn
from ``random.Random(plan.seed)`` owned by the injector, never from the
global RNG, and draws happen in fabric-transmit order — so a fixed seed
yields a bit-identical simulation, which the chaos CLI's ``--check`` mode
and ``tests/test_faults_injection.py`` enforce.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.ib.types import INFINITE_RETRY
from repro.sim.units import us

#: Event kinds understood by the injector (spec files use these strings).
KINDS = (
    "link_flap",
    "link_degrade",
    "drop_window",
    "receiver_stall",
    "hca_pause",
    "rank_death",
)

#: Default requester ACK-timeout while a fault plan is armed.  Generously
#: above the healthy round trip (~10 us) so the timer only ever fires on a
#: genuine loss, and short enough that lossy windows resolve quickly.
DEFAULT_TRANSPORT_TIMEOUT_NS = us(200)


class FaultPlanError(ValueError):
    pass


@dataclass
class FaultEvent:
    """One scheduled fault.  Which fields matter depends on ``kind``:

    ``link_flap``      — ``lid`` down for ``duration_ns`` (data + control)
    ``link_degrade``   — ``lid`` gains ``extra_latency_ns`` and/or runs at
                         ``bw_factor`` of nominal bandwidth
    ``drop_window``    — data messages dropped with ``probability`` while
                         the window is open; ``lids`` restricts it to
                         traffic touching those LIDs (empty = fabric-wide);
                         ``corrupt`` counts losses as CRC kills instead
    ``receiver_stall`` — rank ``rank`` stops re-posting vbufs / returning
                         credits (slow-consumer model)
    ``hca_pause``      — both engines of the HCA at ``lid`` freeze
    ``rank_death``     — rank ``rank`` dies outright at ``at_ns``: its HCA
                         stops answering, its progress engine halts, and it
                         never comes back (``duration_ns`` is nominal)
    """

    kind: str
    at_ns: int
    duration_ns: int
    lid: int = -1
    rank: int = -1
    probability: float = 0.0
    corrupt: bool = False
    extra_latency_ns: int = 0
    bw_factor: float = 1.0
    lids: Tuple[int, ...] = ()

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r} (know {KINDS})")
        if self.at_ns < 0:
            raise FaultPlanError(f"{self.kind}: at_ns must be >= 0")
        if self.duration_ns <= 0:
            raise FaultPlanError(f"{self.kind}: duration_ns must be > 0")
        if self.kind in ("link_flap", "link_degrade", "hca_pause") and self.lid < 0:
            raise FaultPlanError(f"{self.kind}: needs a target lid")
        if self.kind in ("receiver_stall", "rank_death") and self.rank < 0:
            raise FaultPlanError(f"{self.kind}: needs a target rank")
        if self.kind == "drop_window" and not 0.0 < self.probability <= 1.0:
            raise FaultPlanError("drop_window: probability must be in (0, 1]")
        if self.kind == "link_degrade":
            if self.bw_factor <= 0:
                raise FaultPlanError("link_degrade: bw_factor must be > 0")
            if self.extra_latency_ns == 0 and self.bw_factor == 1.0:
                raise FaultPlanError("link_degrade: degrade nothing? set "
                                     "extra_latency_ns and/or bw_factor")

    @property
    def end_ns(self) -> int:
        return self.at_ns + self.duration_ns

    def to_spec(self) -> Dict[str, Any]:
        """Minimal dict form: defaults omitted, tuples listified."""
        d = asdict(self)
        out: Dict[str, Any] = {"kind": d.pop("kind")}
        defaults = FaultEvent("link_flap", 0, 1)
        for key, value in d.items():
            if key in ("at_ns", "duration_ns") or value != getattr(defaults, key):
                out[key] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FaultEvent":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(spec) - known
        if unknown:
            raise FaultPlanError(f"unknown fault-event fields {sorted(unknown)}")
        kwargs = dict(spec)
        if "lids" in kwargs:
            kwargs["lids"] = tuple(kwargs["lids"])
        try:
            ev = cls(**kwargs)
        except TypeError as exc:
            raise FaultPlanError(str(exc)) from None
        ev.validate()
        return ev


@dataclass
class FaultPlan:
    """A seeded, ordered collection of :class:`FaultEvent`.

    The builder methods return ``self`` so plans compose fluently::

        plan = (FaultPlan(seed=7)
                .receiver_stall(rank=1, at_ns=us(100), duration_ns=us(500))
                .drop_window(at_ns=us(50), duration_ns=us(200), probability=0.2))
        run_job(program, 2, "static", prepost=4, faults=plan)
    """

    seed: int = 0
    #: requester ACK-timeout armed on every QP while the plan is active —
    #: the recovery mechanism for wire drops (RNR covers receiver overrun).
    transport_timeout_ns: int = DEFAULT_TRANSPORT_TIMEOUT_NS
    #: per-message transport retries before RETRY_EXCEEDED fails the QP;
    #: INFINITE_RETRY never gives up (matching the paper's RNR setting).
    transport_retry_limit: int = INFINITE_RETRY
    events: List[FaultEvent] = field(default_factory=list)

    # ----------------------------------------------------------- builders
    def add(self, event: FaultEvent) -> "FaultPlan":
        event.validate()
        self.events.append(event)
        return self

    def link_flap(self, lid: int, at_ns: int, duration_ns: int) -> "FaultPlan":
        """Take the host link at ``lid`` down: every data *and* control
        packet touching it during the window vanishes."""
        return self.add(FaultEvent("link_flap", at_ns, duration_ns, lid=lid))

    def link_degrade(
        self,
        lid: int,
        at_ns: int,
        duration_ns: int,
        extra_latency_ns: int = 0,
        bw_factor: float = 1.0,
    ) -> "FaultPlan":
        """Degrade the link at ``lid``: add fixed latency and/or stretch
        serialisation by ``1 / bw_factor`` (0.5 = half bandwidth)."""
        return self.add(FaultEvent(
            "link_degrade", at_ns, duration_ns, lid=lid,
            extra_latency_ns=extra_latency_ns, bw_factor=bw_factor,
        ))

    def drop_window(
        self,
        at_ns: int,
        duration_ns: int,
        probability: float,
        lids: Iterable[int] = (),
        corrupt: bool = False,
    ) -> "FaultPlan":
        """Open a lossy window: data messages are dropped (or, with
        ``corrupt``, CRC-killed at the receiver — same fate, separate
        counter) with ``probability``, drawn from the plan's seeded RNG."""
        return self.add(FaultEvent(
            "drop_window", at_ns, duration_ns,
            probability=probability, corrupt=corrupt, lids=tuple(lids),
        ))

    def receiver_stall(self, rank: int, at_ns: int, duration_ns: int) -> "FaultPlan":
        """Model a slow consumer: the rank keeps computing/progressing but
        re-posts no vbufs and returns no credits until the window closes."""
        return self.add(FaultEvent("receiver_stall", at_ns, duration_ns, rank=rank))

    def hca_pause(self, lid: int, at_ns: int, duration_ns: int) -> "FaultPlan":
        """Freeze both engines of one adapter (firmware hiccup model)."""
        return self.add(FaultEvent("hca_pause", at_ns, duration_ns, lid=lid))

    def rank_death(self, rank: int, at_ns: int) -> "FaultPlan":
        """Kill ``rank`` outright at ``at_ns``: its HCA's engines stop,
        its QPs flush to ERROR, inbound packets vanish unanswered, and
        its program halts — permanently (the event's ``duration_ns`` is
        a nominal 1 ns; death does not end).

        Retry policy shapes *how* the detector notices: with the default
        infinite ``transport_retry_limit`` detection is purely the
        heartbeat path (the detector's severing then force-errors the
        victim-facing QPs, stopping the retry timers so the agenda
        drains); with a finite limit, transport retry exhaustion against
        the dead HCA confirms the death earlier.  On multi-rank nodes
        the whole adapter dies, so co-located ranks die with it; the
        stock rank-death scenario keeps one rank per node.  Requires
        ``run_job(..., ft=True)`` for structured detection — without
        the failure-tolerance layer the job hangs until the auditor
        watchdog trips (that contrast is scenario arm 2).
        """
        return self.add(FaultEvent("rank_death", at_ns, 1, rank=rank))

    # ------------------------------------------------------------ queries
    @property
    def end_ns(self) -> int:
        """When the last fault window closes (0 for an empty plan)."""
        return max((ev.end_ns for ev in self.events), default=0)

    def validate(self) -> None:
        for ev in self.events:
            ev.validate()

    # ------------------------------------------------- declarative specs
    def to_spec(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {"seed": self.seed}
        if self.transport_timeout_ns != DEFAULT_TRANSPORT_TIMEOUT_NS:
            spec["transport_timeout_ns"] = self.transport_timeout_ns
        if self.transport_retry_limit != INFINITE_RETRY:
            spec["transport_retry_limit"] = self.transport_retry_limit
        spec["events"] = [ev.to_spec() for ev in self.events]
        return spec

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(spec, dict):
            raise FaultPlanError(f"fault spec must be a dict, got {type(spec).__name__}")
        unknown = set(spec) - {"seed", "transport_timeout_ns", "transport_retry_limit", "events"}
        if unknown:
            raise FaultPlanError(f"unknown fault-plan fields {sorted(unknown)}")
        plan = cls(
            seed=int(spec.get("seed", 0)),
            transport_timeout_ns=int(
                spec.get("transport_timeout_ns", DEFAULT_TRANSPORT_TIMEOUT_NS)
            ),
            transport_retry_limit=int(spec.get("transport_retry_limit", INFINITE_RETRY)),
        )
        for ev_spec in spec.get("events", []):
            plan.add(FaultEvent.from_spec(ev_spec))
        return plan

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_spec(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_spec(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover
        kinds = ",".join(ev.kind for ev in self.events)
        return f"<FaultPlan seed={self.seed} events=[{kinds}]>"
