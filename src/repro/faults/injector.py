"""Turning a :class:`~repro.faults.plan.FaultPlan` into live simulation
events against one cluster.

Two pieces:

:class:`FabricFaultState` — the per-fabric verdict object consulted from
the transmit hot paths (``Fabric.transmit`` / ``send_control``).  It holds
the *currently open* fault windows; the begin/end transitions are ordinary
agenda events scheduled by the injector, so the hot path never scans the
plan.  All randomness (lossy windows) comes from one ``random.Random``
seeded by the plan and is drawn in transmit order — deterministic given
the deterministic kernel.

:class:`FaultInjector` — installs the state onto the fabric, arms the
transport ACK-timeout retry on every QP (the recovery mechanism for wire
loss; see ``QueuePair.enable_transport_retry``), applies receiver-stall /
HCA-pause events to endpoints and adapters, and emits ``faults.*``
counters for the robustness report.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultEvent, FaultPlan


class FaultInjectorError(RuntimeError):
    pass


class _DropWindow:
    """One open lossy window (identity matters: begin appends, end removes
    this exact instance, so overlapping windows coexist)."""

    __slots__ = ("probability", "corrupt", "lids")

    def __init__(self, ev: FaultEvent):
        self.probability = ev.probability
        self.corrupt = ev.corrupt
        self.lids = frozenset(ev.lids) if ev.lids else None


class FabricFaultState:
    """Open fault windows, consulted per transmitted message.

    ``on_data`` returns ``None`` to drop the message, else
    ``(extra_latency_ns, ser_scale)`` where a ``ser_scale`` of 0 means "no
    scaling" (so the healthy common case stays integer-only).
    ``on_control`` returns ``None`` (link down) or extra latency ns.
    """

    def __init__(self, seed: int, tracer):
        self.rng = random.Random(seed)
        self.tracer = tracer
        #: lid -> count of open link_flap windows (down while > 0)
        self.down: Dict[int, int] = {}
        #: lid -> list of (extra_latency_ns, ser_scale) degradations
        self.degrade: Dict[int, List[Tuple[int, float]]] = {}
        #: open lossy windows, in begin order
        self.drops: List[_DropWindow] = []

    # ----------------------------------------------------------- verdicts
    def on_data(self, src_lid: int, dst_lid: int, payload_bytes: int):
        down = self.down
        if down.get(src_lid) or down.get(dst_lid):
            self.tracer.count("faults.link_drop", (src_lid, dst_lid))
            return None
        for window in self.drops:
            lids = window.lids
            if lids is None or src_lid in lids or dst_lid in lids:
                if self.rng.random() < window.probability:
                    name = "faults.wire_corrupt" if window.corrupt else "faults.wire_drop"
                    self.tracer.count(name, (src_lid, dst_lid))
                    return None
        extra = 0
        scale = 0.0
        degrade = self.degrade
        if degrade:
            for lid in (src_lid, dst_lid):
                for e, s in degrade.get(lid, ()):
                    extra += e
                    if s > scale:
                        scale = s
        return (extra, scale)

    def on_control(self, src_lid: int, dst_lid: int):
        if src_lid == dst_lid:
            return 0  # loopback never crosses a host link
        down = self.down
        if down.get(src_lid) or down.get(dst_lid):
            self.tracer.count("faults.ctrl_drop", (src_lid, dst_lid))
            return None
        extra = 0
        degrade = self.degrade
        if degrade:
            for lid in (src_lid, dst_lid):
                for e, _s in degrade.get(lid, ()):
                    extra += e
        return extra


class FaultInjector:
    """Schedules a plan's events against a built (launched) cluster."""

    def __init__(self, cluster, plan: FaultPlan):
        plan.validate()
        self.cluster = cluster
        self.plan = plan
        self.state = FabricFaultState(plan.seed, cluster.tracer)
        self.installed = False
        #: id(event) -> open _DropWindow, so _end removes the exact
        #: instance _begin added (plans may be shared across clusters)
        self._open_windows: Dict[int, _DropWindow] = {}

    def install(self) -> "FaultInjector":
        """Attach fault state to the fabric, arm transport retries on every
        QP (current and future), and put every begin/end transition on the
        agenda.  Call once, after ``cluster.launch`` and before ``run``."""
        if self.installed:
            raise FaultInjectorError("fault plan already installed")
        self.installed = True
        cluster, plan = self.cluster, self.plan
        if cluster.fabric.fault is not None:
            raise FaultInjectorError("fabric already has a fault state installed")
        cluster.fabric.fault = self.state
        arm = (plan.transport_timeout_ns, plan.transport_retry_limit)
        for hca in cluster.hcas:
            hca.fault_transport = arm
            for qp in hca._qps.values():
                qp.enable_transport_retry(*arm)
        self._check_targets()
        aud = getattr(cluster, "auditor", None)
        if aud is not None:
            # the progress watchdog must not flag fault-induced stalls
            aud.note_fault_plan(plan)
        sim = cluster.sim
        for ev in plan.events:
            sim.schedule_at(ev.at_ns, self._begin, ev)
            sim.schedule_at(ev.end_ns, self._end, ev)
        return self

    def _check_targets(self) -> None:
        nodes = len(self.cluster.hcas)
        ranks = len(self.cluster.endpoints)
        for ev in self.plan.events:
            if ev.kind in ("link_flap", "link_degrade", "hca_pause") and ev.lid >= nodes:
                raise FaultInjectorError(
                    f"{ev.kind}: lid {ev.lid} outside cluster of {nodes} nodes")
            if ev.kind in ("receiver_stall", "rank_death") and ev.rank >= ranks:
                raise FaultInjectorError(
                    f"{ev.kind}: rank {ev.rank} outside world of {ranks}")
            if ev.kind == "drop_window":
                bad = [lid for lid in ev.lids if lid >= nodes]
                if bad:
                    raise FaultInjectorError(
                        f"drop_window: lids {bad} outside cluster of {nodes} nodes")

    # --------------------------------------------------------- transitions
    def _begin(self, ev: FaultEvent) -> None:
        state = self.state
        state.tracer.count(f"faults.{ev.kind}")
        if ev.kind == "link_flap":
            state.down[ev.lid] = state.down.get(ev.lid, 0) + 1
        elif ev.kind == "link_degrade":
            scale = 0.0 if ev.bw_factor == 1.0 else 1.0 / ev.bw_factor
            state.degrade.setdefault(ev.lid, []).append((ev.extra_latency_ns, scale))
        elif ev.kind == "drop_window":
            window = _DropWindow(ev)
            state.drops.append(window)
            self._open_windows[id(ev)] = window
        elif ev.kind == "receiver_stall":
            self.cluster.endpoints[ev.rank].fault_stall(ev.duration_ns)
        elif ev.kind == "hca_pause":
            self.cluster.hcas[ev.lid].pause(ev.duration_ns)
        elif ev.kind == "rank_death":
            ep = self.cluster.endpoints[ev.rank]
            ep.halt()  # park the program before the flush WCs could wake it
            ep.hca.kill()
            ft = getattr(self.cluster, "ft", None)
            if ft is not None:
                ft.note_injected_death(ev.rank, self.cluster.sim.now)

    def _end(self, ev: FaultEvent) -> None:
        state = self.state
        if ev.kind == "link_flap":
            state.down[ev.lid] -= 1
        elif ev.kind == "link_degrade":
            scale = 0.0 if ev.bw_factor == 1.0 else 1.0 / ev.bw_factor
            state.degrade[ev.lid].remove((ev.extra_latency_ns, scale))
        elif ev.kind == "drop_window":
            state.drops.remove(self._open_windows.pop(id(ev)))
        elif ev.kind == "receiver_stall":
            self.cluster.endpoints[ev.rank].fault_release_stall()
        # hca_pause ends by itself (the busy horizons pass)
