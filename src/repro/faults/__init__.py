"""Deterministic fault injection (chaos mode) for the simulated cluster.

The paper's robustness story — user-level flow control degrades
gracefully where the hardware scheme storms (Figure 10) — only shows
under adverse conditions.  This package injects them, reproducibly:

* :class:`FaultPlan` — a seeded schedule of link flaps, link degradation,
  probabilistic drop/corruption windows, receiver stalls and HCA pauses
  (builder API, or declarative dict/JSON specs);
* :class:`FaultInjector` — installs a plan onto a launched cluster
  (``run_job(..., faults=plan)`` does this for you);
* :func:`run_chaos` / :data:`SCENARIOS` — named scenarios and the
  per-scheme robustness report behind ``python -m repro chaos``.
"""

from repro.faults.injector import FabricFaultState, FaultInjector, FaultInjectorError
from repro.faults.plan import FaultEvent, FaultPlan, FaultPlanError
from repro.faults.scenarios import (
    SCENARIOS,
    SCHEMES,
    chaos_cell,
    chaos_report_header,
    run_chaos,
)

__all__ = [
    "FabricFaultState",
    "FaultEvent",
    "FaultInjector",
    "FaultInjectorError",
    "FaultPlan",
    "FaultPlanError",
    "SCENARIOS",
    "SCHEMES",
    "chaos_cell",
    "chaos_report_header",
    "run_chaos",
]
