"""Recovery policy knobs (backoff schedule and attempt budget)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import us


@dataclass
class RecoveryPolicy:
    """How hard to try re-establishing a lost QP pair.

    The reconnect delay for attempt *k* (1-based, cumulative per rank
    pair) is::

        min(max_delay_ns, base_delay_ns * backoff_factor ** (k - 1))
        + jitter in [0, jitter_ns)

    with the jitter drawn from a :class:`random.Random` keyed on
    ``(seed, pair, attempt)`` — deterministic across runs, decorrelated
    across pairs so a fabric-wide fault does not produce a synchronized
    reconnect storm.
    """

    max_attempts: int = 5  #: cumulative per rank pair; exceeded -> failure
    base_delay_ns: int = us(50)
    backoff_factor: float = 2.0
    max_delay_ns: int = us(2_000)
    jitter_ns: int = us(10)
    seed: int = 0
