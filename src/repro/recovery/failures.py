"""Structured connection-failure reporting.

A fatal work completion (RNR/transport retry budget exceeded, protection
fault) either feeds the recovery manager or — with recovery disabled or
its attempt budget exhausted — surfaces as a :class:`ConnectionFailure`
record carried by :class:`ConnectionFailedError`.  ``run_job`` catches the
exception and reports the record on ``JobResult.failures`` instead of
letting the job hang until the progress watchdog trips.

This module is import-light on purpose: ``repro.mpi.endpoint`` imports it
from the error path, so it must not import the MPI layer back.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class ConnectionFailure:
    """One unrecoverable rank-pair connection loss."""

    rank: int  #: the rank that detected the fatal completion
    peer: int  #: the other end of the QP pair
    scheme: str  #: flow-control scheme name ("hardware" / "static" / ...)
    epoch: int  #: QP incarnation at the time of failure
    cause: str  #: WCStatus value of the victim completion
    elapsed_ns: int  #: simulated time of the failure
    attempts: int  #: recovery attempts consumed (0 = recovery disabled)

    def dedup_key(self) -> tuple:
        """Stable identity for set-based dedup on ``JobResult.failures``:
        both ends report the same loss, keyed by unordered pair + QP
        incarnation (a later re-failure of the pair is a new record)."""
        lo, hi = (self.rank, self.peer) if self.rank < self.peer else (self.peer, self.rank)
        return ("connection", lo, hi, self.epoch)

    def to_dict(self) -> dict:
        return asdict(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"connection {self.rank}<->{self.peer} failed ({self.cause}) "
            f"scheme={self.scheme} epoch={self.epoch} "
            f"attempts={self.attempts} at t={self.elapsed_ns}ns"
        )


class ConnectionFailedError(RuntimeError):
    """Raised out of the progress engine when a connection is lost for
    good; carries the structured record for ``JobResult.failures``."""

    def __init__(self, failure: ConnectionFailure):
        super().__init__(str(failure))
        self.failure = failure
