"""Connection recovery subsystem (QP re-establishment + credit resync).

Split so the failure types stay import-light (the MPI error path imports
them) while the manager — which needs the MPI layer's types — loads on
demand.
"""

from repro.recovery.failures import ConnectionFailedError, ConnectionFailure
from repro.recovery.manager import RecoveryManager
from repro.recovery.policy import RecoveryPolicy

__all__ = [
    "ConnectionFailedError",
    "ConnectionFailure",
    "RecoveryManager",
    "RecoveryPolicy",
]
