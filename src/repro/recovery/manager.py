"""Connection recovery: QP re-establishment with credit resynchronization.

A fatal completion (transport/RNR retry budget exceeded, protection fault)
leaves the QP pair in ERROR with every queued WR flushed.  Real MPI stacks
over InfiniBand re-run the connection bring-up and *resynchronize the
flow-control state* — the part the paper's schemes make delicate, because
credits are distributed state: some live at the sender, some ride in-flight
headers, some are pinned under unexpected messages at the receiver.

The manager drives one state machine per rank pair:

1. **detect** — the first non-success WC for a pair begins recovery: both
   connections freeze (``conn.recovering``), the surviving QP half is
   forced to ERROR so its queued WRs flush too, and every popped send
   context is collected as a *replay candidate* (per-message ACKs are
   cumulative and in order, so the flushed contexts are exactly the
   un-acked suffix).

2. **backoff** — re-arm is scheduled ``min(max_delay, base * factor^(k-1))``
   plus deterministic per-(pair, attempt) jitter after the fault.  The
   cumulative attempt budget exceeded turns the pair's loss into a
   structured :class:`~repro.recovery.failures.ConnectionFailure` instead
   of an unbounded reconnect storm.

3. **re-arm** — straggler error WCs are drained from both CQs, both QPs go
   ERROR→RESET→READY (``reset()`` bumps the epoch, so stale in-flight
   ACKs/NAKs/credit updates from the dead incarnation are discarded by the
   epoch guards), receive populations are refilled, and per-direction
   credit state is recomputed from first principles (below).

4. **replay** — un-acked messages are re-posted with their original
   sequence numbers (pruned of the delivered-but-ack-lost prefix, which the
   receiver must not see twice), flushed rendezvous RDMA writes are re-run
   idempotently, deferred control emissions drain FIFO, and the backlogs
   re-drain under the resynchronized credits.

**Credit resynchronization.**  For direction s→r the receiver's buffer
population is authoritative.  Every paid token is, at re-arm time, in
exactly one of six places, so the sender's fresh balance is what is left
of the target after all of them::

    credits(s→r) = prepost_target(r) + swallow_debt
                   - replayed_paid          # un-acked, about to be re-sent
                   - parked_paid            # delivered at r, not yet polled
                   - ungranted              # polled at r, grant still pending
                                            #   (unexpected queue + stall hold)
                   - pending_credit_return  # granted at r, not yet shipped
                   - parked_credits         # shipped by r, not yet polled at s

Pre-fault credits that died on flushed headers are deliberately *not*
counted — zeroing ``header.credits`` on replay re-mints them here, which is
the whole trick: the balance is reconstructed from surviving state, never
from the lost wire traffic.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.mpi.protocol import MsgKind
from repro.recovery.failures import ConnectionFailedError, ConnectionFailure
from repro.recovery.policy import RecoveryPolicy
from repro.sim.units import to_us

if TYPE_CHECKING:  # pragma: no cover
    from repro.ib.wr import WC
    from repro.mpi.connection import Connection
    from repro.mpi.endpoint import Endpoint


class _PairRecovery:
    """In-flight recovery of one rank pair."""

    __slots__ = ("pair", "attempt", "started_ns", "cause", "replays")

    def __init__(self, pair: Tuple[int, int], attempt: int, started_ns: int, cause: str):
        self.pair = pair
        self.attempt = attempt
        self.started_ns = started_ns
        self.cause = cause
        #: detecting rank -> popped send contexts (ctx_kind, conn, ref, header)
        self.replays: Dict[int, List[tuple]] = {pair[0]: [], pair[1]: []}


class RecoveryManager:
    """Per-cluster recovery driver, installed on every endpoint's
    ``_recovery`` hook (zero-cost-when-absent, like the auditor)."""

    def __init__(self, cluster, policy: Optional[RecoveryPolicy] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.policy = policy or RecoveryPolicy()
        self._active: Dict[tuple, _PairRecovery] = {}
        self._attempts: Dict[tuple, int] = {}
        #: budget-exhausted pairs, in failure order
        self.failures: List[ConnectionFailure] = []
        # observability
        self.recoveries_started = 0
        self.recoveries_completed = 0
        self.messages_replayed = 0
        self.reconnect_ns_total = 0
        self.reconnect_ns_max = 0

    def install(self) -> "RecoveryManager":
        for ep in self.cluster.endpoints:
            ep._recovery = self
        self.cluster.recovery = self
        return self

    # ------------------------------------------------------------------
    # detection (called from Endpoint._handle_error_wc)
    # ------------------------------------------------------------------
    def on_error_wc(self, ep: "Endpoint", wc: "WC") -> int:
        conn = ep._conn_for_qp(wc.qp_num)
        ctx = ep._reclaim_error_wc(wc)
        if conn is None:
            return 0  # completion for a QP we no longer track
        pair = self._pair(ep.rank, conn.peer)
        rec = self._active.get(pair)
        if rec is None:
            rec = self._begin(pair, ep, conn, wc)  # may raise (budget)
        if ctx is not None:
            rec.replays[ep.rank].append(ctx)
        return 0

    def _begin(self, pair, ep: "Endpoint", conn: "Connection", wc: "WC") -> _PairRecovery:
        attempt = self._attempts.get(pair, 0) + 1
        self._attempts[pair] = attempt
        cause = wc.status.value
        if attempt > self.policy.max_attempts:
            self._fail(pair, ep.rank, conn.peer, ep, conn, cause, attempt - 1)
        a, b = pair
        ep_a, ep_b = self._ep(a), self._ep(b)
        conn_ab, conn_ba = ep_a.connections[b], ep_b.connections[a]
        rec = _PairRecovery(pair, attempt, self.sim.now, cause)
        self._active[pair] = rec
        self.recoveries_started += 1
        conn_ab.recovering = True
        conn_ba.recovering = True
        # Force the surviving half to ERROR too: its queued WRs flush to
        # its owner's CQ, where they are collected as replay candidates.
        conn_ab.qp.force_error()
        conn_ba.qp.force_error()
        delay = self.policy.base_delay_ns
        if self.policy.backoff_factor != 1.0 and attempt > 1:
            delay = int(delay * self.policy.backoff_factor ** (attempt - 1))
        delay = min(delay, self.policy.max_delay_ns)
        if self.policy.jitter_ns > 0:
            rng = random.Random(
                self.policy.seed * 1_000_003 + a * 1009 + b * 131 + attempt
            )
            delay += rng.randrange(self.policy.jitter_ns)
        aud = ep_a._audit
        if aud is not None:
            aud.on_recovery_begin(a, b)
            aud.extend_grace(self.sim.now + delay)
        ep_a.tracer.count("recovery.begin", f"{a}-{b}")
        self.sim.schedule(delay, self._rearm, pair)
        return rec

    def _fail(self, pair, rank, peer, ep: "Endpoint", conn: "Connection",
              cause: str, attempts: int) -> None:
        failure = ConnectionFailure(
            rank=rank, peer=peer, scheme=ep.scheme.name.value,
            epoch=conn.qp.epoch, cause=cause,
            elapsed_ns=self.sim.now, attempts=attempts,
        )
        self.failures.append(failure)
        self._active.pop(pair, None)
        cm = getattr(self.cluster, "cm", None)
        if cm is not None:
            # On-demand clusters: dismantle the dead pair so a later
            # request() re-runs the CM exchange instead of handing back a
            # fired signal whose connections no longer exist.
            cm.teardown(*pair)
        raise ConnectionFailedError(failure)

    # ------------------------------------------------------------------
    # re-arm (manager callback after the backoff delay)
    # ------------------------------------------------------------------
    def _rearm(self, pair) -> None:
        rec = self._active.get(pair)
        if rec is None:
            return  # budget-failed in the meantime
        a, b = pair
        ep_a, ep_b = self._ep(a), self._ep(b)
        conn_ab, conn_ba = ep_a.connections[b], ep_b.connections[a]
        # 1. collect straggler error WCs the owners have not polled yet
        self._drain_error_wcs(ep_a, conn_ab, rec)
        self._drain_error_wcs(ep_b, conn_ba, rec)
        # 2. ERROR -> RESET -> READY; reset() bumps the epoch so stale
        #    in-flight control from the dead incarnation is discarded
        qp_ab, qp_ba = conn_ab.qp, conn_ba.qp
        qp_ab.reset()
        qp_ba.reset()
        qp_ab.connect(ep_b.hca.lid, qp_ba.qp_num)
        qp_ba.connect(ep_a.hca.lid, qp_ab.qp_num)
        # 3. hardware scheme: re-seed the e2e advertised-credit gate the
        #    same way connection setup did
        if getattr(ep_a.scheme, "arm_e2e_gate", False):
            qp_ab.set_initial_credit_estimate(ep_a.requested_prepost)
            qp_ba.set_initial_credit_estimate(ep_b.requested_prepost)
        # 4. restore the receive populations (dynamic-scheme growth that
        #    happened pre-fault carries over: prepost_target persists on
        #    the Connection, so the refill tops up to the grown target)
        conn_ab.refill_recv_buffers()
        conn_ba.refill_recv_buffers()
        # 4b. RDMA-ring mode: epoch-fenced ring re-establishment — the old
        #     ring's cursor state died with the QP incarnation (the epoch
        #     guard drops any write still in flight to it), so each side
        #     allocates a fresh ring and re-advertises its coordinates;
        #     replays then land from slot 0 in their original order.
        if conn_ab.rdma_eager:
            self._reestablish_rings(conn_ab, conn_ba)
        # 5. per-direction credit resynchronization + replay planning
        plan_ab = self._resync(ep_a, conn_ab, ep_b, conn_ba, rec)
        plan_ba = self._resync(ep_b, conn_ba, ep_a, conn_ab, rec)
        # 6. unfreeze, replay, re-emit deferred control, re-drain backlogs
        conn_ab.recovering = False
        conn_ba.recovering = False
        replayed = self._apply(ep_a, conn_ab, plan_ab)
        replayed += self._apply(ep_b, conn_ba, plan_ba)
        self._active.pop(pair, None)
        self.recoveries_completed += 1
        self.messages_replayed += replayed
        dt = self.sim.now - rec.started_ns
        self.reconnect_ns_total += dt
        if dt > self.reconnect_ns_max:
            self.reconnect_ns_max = dt
        ep_a.tracer.count("recovery.rearm", f"{a}-{b}")

    @staticmethod
    def _reestablish_rings(conn_ab: "Connection", conn_ba: "Connection") -> None:
        """Allocate next-generation rings on both receivers and rewire the
        senders' (addr, rkey, slots, cursor) advertisements — the recovery
        analogue of :meth:`Endpoint.wire_rdma_rings` at connect time."""
        for tx, rx in ((conn_ab, conn_ba), (conn_ba, conn_ab)):
            ch = rx.rx_channel
            ring = ch.reestablish()
            ring.mr.on_write = lambda addr, payload, c=ch: c.deposit(payload)
            tx.tx_ring_addr = ring.mr.addr
            tx.tx_ring_rkey = ring.mr.rkey
            tx.tx_ring_slots = ring.slots
            tx.tx_ring_next = 0

    def _drain_error_wcs(self, ep: "Endpoint", conn: "Connection", rec) -> None:
        """Remove this QP's un-polled error completions from the owner's
        CQ, reclaiming their bookkeeping and collecting replay candidates.
        Success completions stay put — they are real pre-fault deliveries
        and must be processed in FIFO order."""
        qpn = conn.qp.qp_num
        kept = deque()
        for wc in ep.cq._entries:
            if not wc.ok and wc.qp_num == qpn:
                ctx = ep._reclaim_error_wc(wc)
                if ctx is not None:
                    rec.replays[ep.rank].append(ctx)
            else:
                kept.append(wc)
        ep.cq._entries = kept

    # ------------------------------------------------------------------
    # credit-state resynchronization (one direction)
    # ------------------------------------------------------------------
    def _resync(self, ep_s: "Endpoint", conn_sr: "Connection",
                ep_r: "Endpoint", conn_rs: "Connection", rec) -> tuple:
        """Recompute s→r flow-control state; returns the replay plan
        ``(header_entries, rdma_ops)`` for :meth:`_apply`."""
        headers: List[tuple] = []
        rdmas: List[object] = []
        for ctx_kind, conn, ref, header in rec.replays[ep_s.rank]:
            if conn is not conn_sr:
                continue  # a different pair recovering at this endpoint
            if ctx_kind == "rdma":
                rdmas.append(ref)
            else:
                headers.append((ctx_kind, ref, header))
        # Delivered-but-unpolled arrivals at r: they advance the replay
        # horizon (the receiver will still poll them) and pin paid tokens.
        # With two channels (CQ + RDMA ring) sharing one sequence space
        # the received set can have gaps — a control message parked in
        # ``cq_stash`` behind a ring write that was lost in flight — so
        # the horizon is the *contiguous* received prefix, and anything
        # received beyond a gap is pruned by membership instead.
        received = {}
        qpn_rs = conn_rs.qp.qp_num
        for wc in ep_r.cq._entries:
            if wc.is_recv and wc.ok and wc.qp_num == qpn_rs:
                received[wc.data.seq] = wc.data
        ch_rs = conn_rs.rx_channel
        if ch_rs is not None:
            # Ring arrivals captured in slot memory but not yet processed:
            # they advance the horizon and pin paid tokens exactly like
            # unpolled CQ deliveries (one shared per-connection sequence
            # space, delivered in order by the RC transport).
            for _, h in ch_rs._arrived:
                received[h.seq] = h
        for h in conn_rs.cq_stash:
            received[h.seq] = h
        parked_paid = sum(1 for h in received.values() if h.paid)
        b_next = conn_rs.seq_in_expected
        while b_next in received:
            b_next += 1
        # Prune the delivered-but-ack-lost prefix: the receiver consumed
        # those sequence numbers, replaying them would corrupt ordering.
        live = [e for e in headers
                if e[2].seq >= b_next and e[2].seq not in received]
        live.sort(key=lambda e: e[2].seq)
        if ep_s.scheme.uses_credits:
            replayed_paid = sum(1 for e in live if e[2].paid)
            # polled at r, grant still pending: paid eager parked in the
            # unexpected queue (vbuf pinned) + credits held by a fault stall
            ungranted = ep_r._stall_held.get(ep_s.rank, 0)
            for msg in ep_r.matching._unexpected:
                h = msg.header
                if (h.src == ep_s.rank and h.paid and not h.via_ring
                        and h.kind is MsgKind.EAGER):
                    ungranted += 1
            # granted and shipped by r, parked unpolled at s
            parked_credits = 0
            qpn_sr = conn_sr.qp.qp_num
            for wc in ep_s.cq._entries:
                if wc.is_recv and wc.ok and wc.qp_num == qpn_sr:
                    parked_credits += wc.data.credits
            aud = ep_s._audit
            swallow = aud.pending_swallow(ep_s.rank, ep_r.rank) if aud is not None else 0
            conn_sr.credits = max(
                0,
                conn_rs.prepost_target + swallow
                - replayed_paid - parked_paid - ungranted
                - conn_rs.pending_credit_return - parked_credits,
            )
            if aud is not None:
                aud.on_recovery_resync(
                    ep_s.rank, ep_r.rank,
                    consumed_unsent=replayed_paid,
                    inflight_paid=parked_paid,
                    ungranted=ungranted,
                    inflight_credits=parked_credits,
                )
        return live, rdmas

    def _apply(self, ep: "Endpoint", conn: "Connection", plan: tuple) -> int:
        """Replay the un-acked suffix (original seqs, in order), re-run
        flushed RDMA writes, drain deferred control emissions (fresh seqs),
        and re-drain the backlog under the resynchronized credits."""
        headers, rdmas = plan
        n = 0
        for ctx_kind, ref, header in headers:
            if ctx_kind == "ring":
                ep._replay_ring(conn, header)
            else:
                ep._replay_emit(conn, header, ctx_kind, ref)
            n += 1
        for op in rdmas:
            ep._replay_rdma(conn, op)
            n += 1
        while conn.deferred:
            header, ctx_kind, ref, control = conn.deferred.popleft()
            if ctx_kind == "ring":
                ep._emit_ring(conn, header, ref)
            else:
                ep._emit(conn, header, ctx_kind, ref, control)
        if conn.backlog:
            ep._drain(conn)
        if n:
            ep.tracer.count("recovery.replayed", f"{ep.rank}->{conn.peer}", n)
        return n

    # ------------------------------------------------------------------
    # helpers / observability
    # ------------------------------------------------------------------
    @staticmethod
    def _pair(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def _ep(self, rank: int) -> "Endpoint":
        return self.cluster.endpoints[rank]

    def summary(self) -> dict:
        done = self.recoveries_completed
        return {
            "recoveries": self.recoveries_started,
            "completed": done,
            "failed_pairs": len(self.failures),
            "attempts_max": max(self._attempts.values(), default=0),
            "messages_replayed": self.messages_replayed,
            "reconnect_us_max": to_us(self.reconnect_ns_max),
            "reconnect_us_mean": to_us(self.reconnect_ns_total // done) if done else 0.0,
        }
