"""Performance-regression harness for the simulation kernel.

Measures *simulator throughput* (events/second of wall time), not simulated
network performance — the paper-facing numbers live in ``benchmarks/``.
Three canonical workloads exercise the kernel's distinct hot paths:

* ``lu_proxy``  — the NAS LU proxy on 8 ranks: generator-heavy, dominated
  by the progress engine and same-instant FIFO;
* ``bw4_flood`` — non-blocking 4-byte bandwidth windows on 2 ranks: the
  credit/backlog machinery and per-message fabric events;
* ``ring64``    — a 64-rank ring exchange: wide agenda, many QPs, connection
  fan-out.

Every workload is deterministic: ``events_executed`` and the final
simulated clock must be bit-identical run to run and release to release
(see ``tests/test_determinism_replay.py``).  ``compare()`` therefore treats
an event-count drift as a hard failure, and a wall-clock regression beyond
the tolerance as a soft one — CI runs both via ``python -m repro perf
--check BENCH_perf.json``.

The report lands in ``BENCH_perf.json``:

.. code-block:: json

    {"schema": 1, "repeats": 3,
     "workloads": {"lu_proxy": {"events_executed": 0, "sim_now_ns": 0,
                                "wall_s": 0.0, "events_per_sec": 0.0}},
     "peak_rss_kb": 0}
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.cluster import TestbedConfig, run_job
from repro.workloads import bandwidth_program
from repro.workloads.nas import lu

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None  # type: ignore[assignment]

#: bump when the report layout changes incompatibly
SCHEMA_VERSION = 1

#: soft-failure threshold for ``compare()``: events/sec may not drop more
#: than this fraction below the committed baseline
DEFAULT_TOLERANCE = 0.20


def _ring_program(iterations: int):
    def ring(mpi):
        nxt = (mpi.rank + 1) % mpi.world_size
        prv = (mpi.rank - 1) % mpi.world_size
        for i in range(iterations):
            rreq = yield from mpi.irecv(source=prv, capacity=4096, tag=i)
            yield from mpi.send(nxt, size=1024, tag=i)
            yield from mpi.wait(rreq)

    return ring


def _run_lu_proxy():
    return run_job(lu.build(timesteps=3), 8, "static", prepost=100)


def _run_bw4_flood():
    return run_job(
        bandwidth_program(4, 100, repetitions=20, blocking=False),
        2,
        "static",
        prepost=10,
        config=TestbedConfig(nodes=2),
    )


def _run_ring64():
    # Enough iterations that the wall time dwarfs scheduler noise — a
    # sub-0.1s workload cannot carry a 20% regression gate.
    return run_job(
        _ring_program(iterations=30),
        64,
        "dynamic",
        prepost=4,
        config=TestbedConfig(nodes=64),
        finalize=False,
    )


#: name -> zero-argument callable returning a JobResult
WORKLOADS: Dict[str, Callable[[], Any]] = {
    "lu_proxy": _run_lu_proxy,
    "bw4_flood": _run_bw4_flood,
    "ring64": _run_ring64,
}


def run_workload(name: str, repeats: int = 3) -> Dict[str, Any]:
    """Run one workload ``repeats`` times; report the best wall time.

    Event counts are asserted identical across the repeats — a cheap
    in-process determinism check that every perf run gets for free.
    """
    fn = WORKLOADS[name]
    best_wall = None
    events = sim_now = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - t0
        sim = result.endpoints[0].sim
        if events is None:
            events, sim_now = sim.events_executed, sim.now
        elif (events, sim_now) != (sim.events_executed, sim.now):
            raise RuntimeError(
                f"{name}: non-deterministic replay "
                f"({events}@{sim_now} vs {sim.events_executed}@{sim.now})"
            )
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "events_executed": events,
        "sim_now_ns": sim_now,
        "wall_s": round(best_wall, 6),
        "events_per_sec": round(events / best_wall, 1),
    }


def profile_workload(name: str, top: int = 20) -> str:
    """Run one workload under :mod:`cProfile`; return the top-``top``
    functions by cumulative time as a formatted table.

    One un-timed pass — profiling overhead makes the wall numbers
    meaningless, so this never feeds the report or the ``--check`` gate;
    it exists to answer "where did the time go" when the gate trips.
    """
    import cProfile
    import io
    import pstats

    fn = WORKLOADS[name]
    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None off-POSIX)."""
    if resource is None:  # pragma: no cover
        return None
    ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return ru // 1024 if sys.platform == "darwin" else ru


def run_suite(
    workloads: Optional[List[str]] = None, repeats: int = 3
) -> Dict[str, Any]:
    """Run the selected workloads and assemble the report dict."""
    names = workloads or list(WORKLOADS)
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "repeats": repeats,
        "workloads": {},
    }
    for name in names:
        report["workloads"][name] = run_workload(name, repeats=repeats)
    report["peak_rss_kb"] = peak_rss_kb()
    return report


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Return a list of regression messages (empty = pass).

    * determinism: ``events_executed`` / ``sim_now_ns`` must match the
      baseline exactly for every workload present in both reports;
    * throughput: ``events_per_sec`` may not drop more than ``tolerance``
      below the baseline.
    """
    problems = []
    for name, base in baseline.get("workloads", {}).items():
        cur = current.get("workloads", {}).get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        for key in ("events_executed", "sim_now_ns"):
            if cur[key] != base[key]:
                problems.append(
                    f"{name}: {key} drifted (baseline {base[key]}, "
                    f"got {cur[key]}) — determinism regression"
                )
        floor = base["events_per_sec"] * (1.0 - tolerance)
        if cur["events_per_sec"] < floor:
            problems.append(
                f"{name}: events/sec regressed beyond {tolerance:.0%} "
                f"(baseline {base['events_per_sec']:.0f}, "
                f"got {cur['events_per_sec']:.0f}, floor {floor:.0f})"
            )
    return problems


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)
