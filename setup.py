"""Legacy setup shim.

The offline environment used for this reproduction ships setuptools but not
``wheel``, so PEP 517 editable installs fail; this shim lets
``pip install -e . --no-build-isolation`` fall back to ``setup.py develop``.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
