"""Tests for the units helpers and the tracer."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.trace import Counter, Gauge, Tracer
from repro.sim.units import (
    gbps_to_bytes_per_ns,
    mb_per_s,
    ms,
    seconds,
    to_us,
    transfer_ns,
    us,
)


# ----------------------------------------------------------------------
# units
# ----------------------------------------------------------------------
def test_us_ms_conversions():
    assert us(1) == 1_000
    assert us(7.5) == 7_500
    assert ms(1) == 1_000_000
    assert ms(0.5) == 500_000


def test_seconds_and_to_us():
    assert seconds(1_500_000_000) == 1.5
    assert to_us(7_420) == 7.42


def test_mb_per_s():
    # 1 MB in 1 ms → 1000 MB/s
    assert mb_per_s(1_000_000, 1_000_000) == pytest.approx(1000.0)
    assert mb_per_s(0, 100) == 0.0


def test_transfer_ns_minimum_one():
    assert transfer_ns(1, 1000.0) == 1
    assert transfer_ns(0, 1.0) == 0
    assert transfer_ns(1000, 1.0) == 1000


def test_transfer_ns_zero_bytes_is_free():
    # Regression pin: zero-byte transfers (pure-control MPI messages,
    # zero-length RDMA) must cost 0 ns, not get clamped up to the 1 ns
    # minimum that applies to genuine payload.  The golden replay suite
    # (tests/test_determinism_replay.py) holds the resulting event
    # streams fixed, so any reintroduced clamp shows up twice.
    assert transfer_ns(0, 0.5) == 0
    assert transfer_ns(0, 1000.0) == 0
    assert transfer_ns(-5, 1.0) == 0  # negative sizes are clamped, not raised
    assert transfer_ns(1, 1e9) == 1  # ...but any real payload costs >= 1 ns


def test_ib_4x_is_one_byte_per_ns():
    # 10 Gbit/s signalling, 8b/10b → 8 Gbit/s = 1 byte/ns
    assert gbps_to_bytes_per_ns(10.0) == pytest.approx(1.0)


@given(nbytes=st.integers(0, 1 << 30), rate=st.floats(0.01, 100))
def test_transfer_ns_nonnegative_and_monotone(nbytes, rate):
    t = transfer_ns(nbytes, rate)
    assert t >= 0
    assert transfer_ns(nbytes + 1024, rate) >= t


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
def test_counter_keys_and_totals():
    c = Counter("x")
    c.add(("a", "b"), 3)
    c.add(("a", "b"))
    c.add(("c", "d"), 10)
    assert c.get(("a", "b")) == 4
    assert c.total() == 14
    assert c.max() == 10
    assert dict(c.items()) == {("a", "b"): 4, ("c", "d"): 10}


def test_gauge_peak_tracking():
    g = Gauge("depth")
    g.set("k", 5)
    g.adjust("k", -2)
    g.adjust("k", 10)
    g.adjust("k", -8)
    assert g.get("k") == 5
    assert g.peak("k") == 13
    assert g.peak() == 13


def test_tracer_records_only_when_enabled():
    t = Tracer(enabled=False)
    t.record(10, "ev", 1)
    assert t.records == []
    t2 = Tracer(enabled=True)
    t2.record(10, "ev", 1)
    t2.record(20, "other", 2)
    assert len(t2.records) == 2
    assert t2.records_of("ev") == [(10, "ev", (1,))]


def test_tracer_counters_always_work():
    t = Tracer(enabled=False)
    t.count("ib.rnr_nak", (0, 1))
    t.count("ib.rnr_nak", (0, 1))
    t.count("fc.ecm", None, 5)
    assert t.summary() == {"fc.ecm": 5, "ib.rnr_nak": 2}


def test_tracer_counter_identity_cached():
    t = Tracer()
    assert t.counter("a") is t.counter("a")
    assert t.gauge("g") is t.gauge("g")


def test_counter_snapshot_is_a_plain_detached_dict():
    c = Counter("x")
    c.add("k", 2)
    snap = c.snapshot()
    assert type(snap) is dict and snap == {"k": 2}
    # Detached: mutating the snapshot never touches the live counter,
    # and reading a missing key doesn't materialise it (defaultdict would).
    snap["k"] = 99
    snap["ghost"] = 1
    assert c.get("k") == 2
    assert "ghost" not in c.values
    assert c.snapshot() == {"k": 2}


def test_tracer_iterates_counters_in_sorted_name_order():
    t = Tracer()
    for name in ("zz.last", "aa.first", "mm.middle"):
        t.count(name)
    assert [c.name for c in t] == ["aa.first", "mm.middle", "zz.last"]


def test_tracer_snapshot_nested_and_sorted():
    t = Tracer()
    t.count("b.counter", ("x", "y"), 3)
    t.count("a.counter", None, 1)
    snap = t.snapshot()
    assert list(snap) == ["a.counter", "b.counter"]
    assert snap["b.counter"] == {("x", "y"): 3}


def test_congestion_counter_names_iterate_sorted():
    # The congestion subsystem interleaves its cong.* counters with the
    # fabric/fc families at arbitrary creation order; report rendering
    # and the determinism check rely on sorted iteration regardless.
    t = Tracer()
    names = ["cong.xoff", "fc.ecm", "cong.cnp", "ib.rnr_nak",
             "cong.pause_frame", "cong.ecn_mark", "cong.xon"]
    for name in names:
        t.count(name, ("down", 0))
    assert [c.name for c in t] == sorted(names)
    assert list(t.snapshot()) == sorted(names)
    assert list(t.summary()) == sorted(names)


def test_congestion_trace_records_carry_port_keys():
    t = Tracer(enabled=True)
    t.record(100, "cong.xoff", ("down", 3))
    t.record(250, "cong.xon", ("down", 3))
    t.record(300, "cong.ecn_mark", ("up", 0, 1), 7)
    assert t.records_of("cong.xoff") == [(100, "cong.xoff", (("down", 3),))]
    assert t.records_of("cong.ecn_mark") == [
        (300, "cong.ecn_mark", (("up", 0, 1), 7))
    ]
