"""Property-based tests for the runtime invariant auditor (repro.check).

Seeded stdlib-``random`` workloads (no new dependencies) run under every
scheme with the auditor armed in strict mode: any credit-conservation,
buffer-lease, backlog-FIFO, matching-order or watchdog violation raises.
The ECM threshold sweep {1, 5, 16} covers the paper's explicit-credit
paths: threshold 1 makes every grant an ECM, 16 forces piggyback-only
credit return on small workloads.

The mutation test at the bottom is the auditor's own acceptance check: an
intentionally injected credit leak (the scheme silently drops one received
credit) must be caught as a ``credit-conservation`` violation, and the
fuzz driver must shrink it to a minimized replay artifact.
"""

import json

import pytest

from repro.check import Auditor, InvariantViolation
from repro.check import fuzz
from repro.cluster import TestbedConfig, run_job
from repro.core import StaticScheme, make_scheme

SCHEMES = ("hardware", "static", "dynamic")
ECM_THRESHOLDS = (1, 5, 16)


def _run_audited(seed, scheme_name, ecm_threshold, scenario=None):
    """One seeded random workload under a strict auditor; returns it."""
    spec = fuzz.generate_spec(seed, scenario)
    spec["ecm_threshold"] = ecm_threshold
    kwargs = {"ecm_threshold": ecm_threshold} if scheme_name != "hardware" else {}
    auditor = Auditor()
    run_job(
        fuzz.build_program(spec),
        spec["nranks"],
        make_scheme(scheme_name, **kwargs),
        prepost=spec["prepost"],
        config=TestbedConfig(nodes=spec["nranks"]),
        faults=spec["faults"],
        audit=auditor,
    )
    return auditor


@pytest.mark.parametrize("ecm_threshold", ECM_THRESHOLDS)
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_invariants_hold_on_random_workloads(scheme_name, ecm_threshold):
    for seed in (11, 12, 13):
        auditor = _run_audited(seed, scheme_name, ecm_threshold)
        assert auditor.violations == []
        assert auditor.hook_calls > 0
        s = auditor.summary()
        assert s["messages_sent"] == s["messages_matched"] > 0


@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_invariants_hold_under_receiver_stall(scheme_name):
    auditor = _run_audited(21, scheme_name, 1, scenario="receiver-stall")
    assert auditor.violations == []


def test_auditor_is_dormant_by_default():
    """Unaudited runs must not touch the auditor (the zero-cost guard)."""
    spec = fuzz.generate_spec(5, None)
    r = run_job(
        fuzz.build_program(spec),
        spec["nranks"],
        "static",
        prepost=spec["prepost"],
        config=TestbedConfig(nodes=spec["nranks"]),
    )
    assert r.audit is None
    assert all(ep._audit is None for ep in r.endpoints)


def test_pool_release_counter_balances():
    spec = fuzz.generate_spec(6, None)
    r = run_job(
        fuzz.build_program(spec),
        spec["nranks"],
        "dynamic",
        prepost=spec["prepost"],
        config=TestbedConfig(nodes=spec["nranks"]),
        audit=True,
    )
    for ep in r.endpoints:
        assert ep.pool.releases == ep.pool.acquisitions
        assert ep.pool.waiting == 0


def test_qp_check_invariants_clean_and_dirty():
    spec = fuzz.generate_spec(8, None)
    r = run_job(
        fuzz.build_program(spec),
        spec["nranks"],
        "static",
        prepost=spec["prepost"],
        config=TestbedConfig(nodes=spec["nranks"]),
    )
    qp = next(iter(r.endpoints[0].connections.values())).qp
    assert qp.check_invariants() == []
    qp._sends_inflight += 1  # corrupt the counter
    assert any("_sends_inflight" in p for p in qp.check_invariants())


# ----------------------------------------------------------------------
# the credit-leak mutation test (ISSUE acceptance criterion)
# ----------------------------------------------------------------------
def _leaky_on_credits_received(self, conn, n):
    """Mutant: silently drop the first received credit (a classic
    bookkeeping bug — e.g. folding piggyback credits before the ECM
    path, losing one)."""
    if n and not getattr(self, "_leaked", False):
        self._leaked = True
        n -= 1
    if n:
        conn.credits += n


def test_credit_leak_is_caught_inline(monkeypatch):
    monkeypatch.setattr(
        StaticScheme, "on_credits_received", _leaky_on_credits_received
    )
    with pytest.raises(InvariantViolation) as exc:
        _run_audited(31, "static", 1)
    assert exc.value.invariant == "credit-conservation"


def test_credit_leak_yields_minimized_replay_artifact(monkeypatch, tmp_path):
    monkeypatch.setattr(
        StaticScheme, "on_credits_received", _leaky_on_credits_received
    )
    out = tmp_path / "fuzz-failures"
    summary = fuzz.run_fuzz(
        seed=31, runs=1, schemes=("static",), scenarios=(None,),
        out_dir=str(out), max_shrink=60, log=None,
    )
    assert len(summary["failures"]) == 1
    failure = summary["failures"][0]
    assert failure["kind"] == "violation"
    artifact_path = failure["artifact"]
    assert artifact_path is not None

    with open(artifact_path) as fh:
        artifact = json.load(fh)
    # minimized: the shrinker removed messages from the original workload
    assert 1 <= len(artifact["spec"]["messages"]) <= artifact["original_message_count"]
    assert artifact["failure"]["kind"] == "violation"
    assert "credit-conservation" in artifact["failure"]["detail"]

    # the artifact reproduces deterministically while the bug is present
    comparison = fuzz.replay(artifact, log=None)
    assert comparison["failure"] is not None
    assert comparison["failure"]["kind"] == "violation"

    # ... and passes once the mutation is reverted
    monkeypatch.undo()
    comparison = fuzz.replay(artifact, log=None)
    assert comparison["failure"] is None
