"""Behavioural tests for fault injection: wire-loss recovery through the
transport ACK-timeout, bounded-retry failure, receiver stalls, and the
determinism contract (fixed seed -> bit-identical run)."""

import dataclasses
import json

import pytest

from repro.cluster import run_job
from repro.faults import FaultInjector, FaultInjectorError, FaultPlan
from repro.ib import Opcode, QPState, RecvWR, SendWR, WCStatus
from repro.ib.types import INFINITE_RETRY
from repro.sim.units import us
from tests.ib_helpers import build_pair


# ----------------------------------------------------------------------
# QP-level transport retry (the wire-loss recovery mechanism)
# ----------------------------------------------------------------------
class _ScriptedLoss:
    """A minimal FabricFaultState stand-in: drops the first ``data`` data
    messages and the first ``control`` control messages, passes the rest."""

    def __init__(self, data=0, control=0):
        self.data = data
        self.control = control

    def on_data(self, src_lid, dst_lid, payload_bytes):
        if self.data > 0:
            self.data -= 1
            return None
        return (0, 0)

    def on_control(self, src_lid, dst_lid):
        if src_lid != dst_lid and self.control > 0:
            self.control -= 1
            return None
        return 0


def test_transport_timeout_recovers_a_dropped_message():
    sim, fabric, _, qp0, qp1, cq0, cq1 = build_pair()
    fabric.fault = _ScriptedLoss(data=1)
    qp0.enable_transport_retry(us(50), INFINITE_RETRY)
    qp1.post_recv(RecvWR(wr_id="r", capacity=2048))
    qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=64, payload="lost?"))
    sim.run(max_events=2_000_000)
    wcs = cq1.poll()
    assert len(wcs) == 1 and wcs[0].data == "lost?"
    assert cq0.poll()[0].ok
    assert qp0.retransmissions >= 1
    assert sim.now >= us(50)  # recovery needed at least one timeout period


def test_lost_ack_recovered_by_stale_reack():
    """The message arrives but its ACK dies; the replayed duplicate must be
    re-ACKed (not silently dropped) and delivered exactly once."""
    sim, fabric, _, qp0, qp1, cq0, cq1 = build_pair()
    fabric.fault = _ScriptedLoss(control=1)  # kills the first ACK
    # Both ends are armed (as FaultInjector does): the requester needs the
    # timeout timer, the responder needs stale-duplicate re-ACKing.
    qp0.enable_transport_retry(us(50), INFINITE_RETRY)
    qp1.enable_transport_retry(us(50), INFINITE_RETRY)
    qp1.post_recv(RecvWR(wr_id="r", capacity=2048))
    qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=64, payload="once"))
    sim.run(max_events=2_000_000)
    assert [wc.data for wc in cq1.poll()] == ["once"]  # exactly once
    assert cq0.poll()[0].ok  # sender did complete eventually
    assert qp0.retransmissions >= 1


def test_bounded_transport_retry_errors_out():
    sim, fabric, _, qp0, qp1, cq0, cq1 = build_pair()
    fabric.fault = _ScriptedLoss(data=10**9)  # black hole
    qp0.enable_transport_retry(us(50), retry_limit=2)
    qp1.post_recv(RecvWR(wr_id="r", capacity=2048))
    qp0.post_send(SendWR(wr_id="dead", opcode=Opcode.SEND, length=64, payload="x"))
    sim.run(max_events=2_000_000)
    wcs = cq0.poll()
    assert len(wcs) == 1
    assert wcs[0].status is WCStatus.RETRY_EXCEEDED
    assert qp0.state is QPState.ERROR
    assert cq1.poll() == []  # nothing ever got through


def test_go_back_n_replay_preserves_order_exactly_once():
    sim, fabric, _, qp0, qp1, cq0, cq1 = build_pair()
    fabric.fault = _ScriptedLoss(data=3)  # first three messages vanish
    qp0.enable_transport_retry(us(50), INFINITE_RETRY)
    for i in range(8):
        qp1.post_recv(RecvWR(wr_id=i, capacity=2048))
    for i in range(8):
        qp0.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=32, payload=i))
    sim.run(max_events=2_000_000)
    assert [wc.data for wc in cq1.poll()] == list(range(8))
    assert [wc.wr_id for wc in cq0.poll()] == list(range(8))
    assert qp0.retransmissions >= 3


# ----------------------------------------------------------------------
# job-level injection (run_job(..., faults=...))
# ----------------------------------------------------------------------
def _flood(msgs, size=1024):
    def program(mpi):
        if mpi.rank == 0:
            reqs = []
            for _ in range(msgs):
                req = yield from mpi.isend(1, size=size)
                reqs.append(req)
            yield from mpi.waitall(reqs)
        else:
            for _ in range(msgs):
                yield from mpi.recv(0, capacity=size)
        return mpi.now

    return program


def _snapshot(result):
    return {
        "elapsed_ns": result.elapsed_ns,
        "fc": dataclasses.asdict(result.fc),
        "counters": result.tracer.summary(),
    }


def test_receiver_stall_starves_hardware_but_not_static():
    plan = lambda: (FaultPlan(seed=1)
                    .receiver_stall(rank=1, at_ns=us(5), duration_ns=us(1000)))
    hw = run_job(_flood(7), 2, "hardware", prepost=4, faults=plan())
    st = run_job(_flood(7), 2, "static", prepost=4, faults=plan())
    assert hw.fc.rnr_naks > 0 and hw.fc.retransmissions > 0
    assert st.fc.rnr_naks == 0 and st.fc.retransmissions == 0
    assert st.fc.backlog_max >= 1  # the overflow sat in the backlog queue
    # Both outlive the fault window.
    assert hw.elapsed_ns > us(1000) and st.elapsed_ns > us(1000)


def test_dict_spec_path_equals_builder_path():
    spec = {
        "seed": 3,
        "events": [{"kind": "receiver_stall", "at_ns": us(5),
                    "duration_ns": us(500), "rank": 1}],
    }
    built = (FaultPlan(seed=3)
             .receiver_stall(rank=1, at_ns=us(5), duration_ns=us(500)))
    a = _snapshot(run_job(_flood(7), 2, "static", prepost=4, faults=spec))
    b = _snapshot(run_job(_flood(7), 2, "static", prepost=4, faults=built))
    assert a == b


def test_fixed_seed_is_bit_identical_and_seeds_differ():
    plan = lambda seed: (FaultPlan(seed=seed)
                         .drop_window(at_ns=us(10), duration_ns=us(300),
                                      probability=0.3))
    runs = [
        _snapshot(run_job(_flood(60), 2, "dynamic", prepost=8, faults=plan(7)))
        for _ in range(2)
    ]
    assert json.dumps(runs[0], sort_keys=True) == json.dumps(runs[1], sort_keys=True)
    assert runs[0]["counters"].get("faults.wire_drop", 0) > 0
    other = _snapshot(run_job(_flood(60), 2, "dynamic", prepost=8, faults=plan(8)))
    # A different seed draws a different loss pattern (same probability).
    assert other != runs[0]


def test_empty_plan_leaves_timing_untouched():
    """Arming the fault machinery without any fault events must not perturb
    the simulation: the hooks are inert until a window opens."""
    healthy = run_job(_flood(40), 2, "static", prepost=8)
    armed = run_job(_flood(40), 2, "static", prepost=8, faults=FaultPlan(seed=7))
    assert armed.elapsed_ns == healthy.elapsed_ns
    assert dataclasses.asdict(armed.fc) == dataclasses.asdict(healthy.fc)


def test_link_flap_recovers_via_transport_replay():
    plan = (FaultPlan(seed=5)
            .link_flap(lid=1, at_ns=us(20), duration_ns=us(150)))
    r = run_job(_flood(40), 2, "static", prepost=8, faults=plan)
    assert r.tracer.summary().get("faults.link_drop", 0) > 0
    assert r.fc.retransmissions >= 1
    assert r.elapsed_ns > us(170)  # outlived the outage


def test_injector_rejects_targets_outside_cluster():
    bad_lid = FaultPlan().link_flap(lid=99, at_ns=0, duration_ns=1)
    with pytest.raises(FaultInjectorError):
        run_job(_flood(2), 2, "static", prepost=4, faults=bad_lid)
    bad_rank = FaultPlan().receiver_stall(rank=5, at_ns=0, duration_ns=1)
    with pytest.raises(FaultInjectorError):
        run_job(_flood(2), 2, "static", prepost=4, faults=bad_rank)


def test_double_install_rejected():
    from repro.cluster.builder import Cluster
    from repro.core import make_scheme

    cluster = Cluster(None)
    cluster.launch(2, make_scheme("static"), prepost=4)
    injector = FaultInjector(cluster, FaultPlan(seed=1))
    injector.install()
    with pytest.raises(FaultInjectorError):
        injector.install()
    with pytest.raises(FaultInjectorError):
        FaultInjector(cluster, FaultPlan(seed=2)).install()
