"""Per-scheme memory accounting (repro.core.memory): measured footprints
must conserve against the closed forms, stay invariant under the ECM
threshold (which shapes credit-return *traffic*, never buffer counts),
and reproduce the paper's scalability headline — on-demand pinned bytes
track the communication graph, full-mesh pinned bytes track P².
"""

import pytest

from repro.cluster import TestbedConfig, run_job
from repro.core import make_scheme
from repro.core.memory import (
    CQE_BYTES,
    mesh_pinned_bytes,
    predicted_connection_bytes,
    qp_state_bytes,
    scheme_headroom,
)

SCHEMES = ("hardware", "static", "dynamic")


def light_ring(mpi):
    """One small message per neighbour — light enough that the dynamic
    scheme never grows past its initial pre-post."""
    nxt = (mpi.rank + 1) % mpi.world_size
    prv = (mpi.rank - 1) % mpi.world_size
    rreq = yield from mpi.irecv(source=prv, capacity=256, tag=0)
    yield from mpi.send(nxt, size=64, tag=0)
    yield from mpi.wait(rreq)


# ----------------------------------------------------------------------
# conservation: measured == closed form, connection by connection
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", SCHEMES)
def test_mesh_memory_conserves_against_closed_form(scheme):
    prepost = 4
    cfg = TestbedConfig(nodes=4)
    r = run_job(light_ring, 4, scheme, prepost=prepost, config=cfg,
                finalize=False)
    mem = r.memory
    assert mem.connections == 4 * 3  # full mesh, directed
    expected_per_conn = predicted_connection_bytes(
        scheme, prepost, cfg.mpi, cfg.ib)
    assert mem.vbuf_pinned_bytes + mem.qp_bytes == 12 * expected_per_conn
    # the fixed per-endpoint state is exact too
    assert mem.cq_bytes == 4 * cfg.ib.cq_depth * CQE_BYTES
    assert mem.send_pool_bytes == 4 * cfg.mpi.send_pool_buffers * cfg.mpi.vbuf_bytes
    assert mem.ring_bytes == 0  # RDMA channel off
    assert mem.total_bytes == (mem.vbuf_pinned_bytes + mem.qp_bytes
                               + mem.cq_bytes + mem.send_pool_bytes)
    # symmetric workload: every rank's footprint is the peak
    per_conn_rank = (prepost + scheme_headroom(scheme)) * cfg.mpi.vbuf_bytes \
        + qp_state_bytes(cfg.ib)
    assert mem.per_rank_peak_bytes == (
        cfg.ib.cq_depth * CQE_BYTES
        + cfg.mpi.send_pool_buffers * cfg.mpi.vbuf_bytes
        + 3 * per_conn_rank)


def test_headroom_matches_scheme_policy():
    """Hardware pins exactly the pre-post; the user-level schemes add the
    optimistic headroom on top."""
    assert scheme_headroom("hardware") == 0
    assert scheme_headroom("static") == make_scheme("static").optimistic_headroom
    assert scheme_headroom("dynamic") == make_scheme("dynamic").optimistic_headroom
    cfg = TestbedConfig(nodes=4)
    hw = predicted_connection_bytes("hardware", 4, cfg.mpi, cfg.ib)
    st = predicted_connection_bytes("static", 4, cfg.mpi, cfg.ib)
    assert st - hw == scheme_headroom("static") * cfg.mpi.vbuf_bytes


# ----------------------------------------------------------------------
# ECM-threshold invariance: credit-return batching is traffic policy,
# not a buffer budget
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ("static", "dynamic"))
def test_ecm_threshold_never_changes_memory(scheme):
    reports = []
    for ecm in (1, 5, 16):
        r = run_job(light_ring, 4, make_scheme(scheme, ecm_threshold=ecm),
                    prepost=4, config=TestbedConfig(nodes=4), finalize=False)
        reports.append(r.memory.to_dict())
    assert reports[0] == reports[1] == reports[2]


def test_hardware_memory_matches_user_level_minus_headroom():
    """The hardware scheme has no ECM knob at all; its footprint equals
    the static scheme's minus the optimistic headroom."""
    cfg = TestbedConfig(nodes=4)
    hw = run_job(light_ring, 4, "hardware", prepost=4, config=cfg,
                 finalize=False).memory
    st = run_job(light_ring, 4, "static", prepost=4, config=cfg,
                 finalize=False).memory
    gap = st.vbuf_pinned_bytes - hw.vbuf_pinned_bytes
    assert gap == 12 * scheme_headroom("static") * cfg.mpi.vbuf_bytes
    assert hw.qp_bytes == st.qp_bytes


# ----------------------------------------------------------------------
# the scalability headline: on-demand < mesh on a ring graph
# ----------------------------------------------------------------------
def test_on_demand_ring_pins_less_than_mesh():
    prepost = 4
    cfg = TestbedConfig(nodes=8)

    mesh = run_job(light_ring, 8, "dynamic", prepost=prepost, config=cfg,
                   finalize=False).memory
    lazy = run_job(light_ring, 8, "dynamic", prepost=prepost, config=cfg,
                   on_demand=True, finalize=False).memory

    assert mesh.connections == 8 * 7
    assert lazy.connections == 16  # ring: 8 pairs, both directions
    assert lazy.vbuf_pinned_bytes < mesh.vbuf_pinned_bytes / 3
    # the simulated mesh agrees with the closed-form model the scaling
    # table uses for rungs too big to simulate
    assert mesh.vbuf_pinned_bytes == mesh_pinned_bytes(
        8, "dynamic", prepost, cfg.mpi)


def test_mesh_model_is_quadratic():
    m64 = mesh_pinned_bytes(64, "dynamic", 1, TestbedConfig().mpi)
    m1024 = mesh_pinned_bytes(1024, "dynamic", 1, TestbedConfig().mpi)
    assert m1024 / m64 == (1024 * 1023) / (64 * 63)
