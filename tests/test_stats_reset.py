"""Regression: counters must reset between ``run_job`` calls on a reused
cluster (ISSUE 3 satellite).

Before this fix, running two jobs on one launched cluster aggregated
ConnStats / QP / pool counters across both, so the second job's
FlowControlReport double-counted everything; analysis Figures/Tables had
no way to drop accumulated points either.
"""

from repro.analysis import Figure, Table
from repro.analysis.report import Series
from repro.cluster import TestbedConfig, run_job
from repro.cluster.builder import Cluster
from repro.core import make_scheme

import pytest


def pingpong(iterations=5, size=1900):
    def prog(mpi):
        peer = 1 - mpi.rank
        for i in range(iterations):
            if mpi.rank == 0:
                yield from mpi.send(peer, size, tag=i)
                yield from mpi.recv(source=peer, capacity=size, tag=i)
            else:
                yield from mpi.recv(source=peer, capacity=size, tag=i)
                yield from mpi.send(peer, size, tag=i)
    return prog


def test_reused_cluster_reports_single_job_counters():
    scheme = make_scheme("static", ecm_threshold=1)
    cluster = Cluster(TestbedConfig(nodes=2))
    cluster.launch(2, scheme, prepost=2)

    first = run_job(pingpong(), 2, scheme, prepost=2, cluster=cluster)
    second = run_job(pingpong(), 2, scheme, prepost=2, cluster=cluster)

    # identical workload -> identical (not accumulated) counters
    assert second.fc.total_msgs == first.fc.total_msgs > 0
    assert second.fc.data_msgs == first.fc.data_msgs
    assert second.fc.ecm_msgs == first.fc.ecm_msgs
    assert second.fc.piggybacked_credits == first.fc.piggybacked_credits
    # elapsed time is measured relative to the job's own start
    assert second.elapsed_ns > 0
    assert abs(second.elapsed_ns - first.elapsed_ns) < first.elapsed_ns
    for ep in cluster.endpoints:
        assert ep.pool.acquisitions == ep.pool.releases > 0


def test_reused_cluster_validates_mismatches():
    scheme = make_scheme("static")
    cluster = Cluster(TestbedConfig(nodes=2))
    cluster.launch(2, scheme, prepost=2)
    with pytest.raises(ValueError):
        run_job(pingpong(), 3, scheme, prepost=2, cluster=cluster)
    with pytest.raises(ValueError):
        run_job(pingpong(), 2, "hardware", prepost=2, cluster=cluster)
    with pytest.raises(RuntimeError):
        run_job(pingpong(), 2, scheme, prepost=2,
                cluster=Cluster(TestbedConfig(nodes=2)))


def test_audited_then_unaudited_reuse_disarms_hooks():
    scheme = make_scheme("dynamic")
    cluster = Cluster(TestbedConfig(nodes=2))
    cluster.launch(2, scheme, prepost=1)

    audited = run_job(pingpong(), 2, scheme, prepost=1,
                      cluster=cluster, audit=True)
    assert audited.audit is not None
    assert audited.audit.violations == []
    assert audited.audit.hook_calls > 0

    plain = run_job(pingpong(), 2, scheme, prepost=1, cluster=cluster)
    assert plain.audit is None
    assert cluster.auditor is None
    assert all(ep._audit is None for ep in cluster.endpoints)


def test_report_objects_reset():
    fig = Figure("f", xlabel="x", ylabel="y")
    fig.add("a", 1, 2.0)
    fig.add("b", 1, 3.0)
    fig.reset()
    assert fig.series == {}

    table = Table("t", ["c1", "c2"])
    table.add_row("r", 1, 2)
    table.reset()
    assert table.rows == []
    table.add_row("r", 3, 4)  # still usable after reset
    assert table.value("r", "c1") == 3

    s = Series("s")
    s.add(1, 2)
    s.reset()
    assert s.points == []
