"""The chaos benchmark: named scenarios, the per-scheme robustness report,
and the ISSUE acceptance criteria for ``repro chaos``.

The headline assertion reproduces the paper's Figure-10 story under the
canonical ``receiver-stall`` scenario at seed 7: the hardware scheme
degenerates into RNR timeout/retransmission storms (>= 10x either
user-level scheme's retransmit count) while static and dynamic complete
the run with zero wire waste.
"""

import json

import pytest

from repro.cli import main
from repro.faults import SCENARIOS, run_chaos


@pytest.fixture(scope="module")
def stall_report():
    return run_chaos("receiver-stall", seed=7)


def test_receiver_stall_report_is_deterministic(stall_report):
    again = run_chaos("receiver-stall", seed=7)
    assert json.dumps(stall_report, sort_keys=True) == json.dumps(again, sort_keys=True)


def test_hardware_storms_while_user_level_schemes_absorb(stall_report):
    """The acceptance criterion: hardware retransmits >= 10x either
    user-level scheme, and static/dynamic complete (no livelock)."""
    schemes = stall_report["schemes"]
    hw, st, dy = schemes["hardware"], schemes["static"], schemes["dynamic"]
    assert hw["completed"] and st["completed"] and dy["completed"]
    assert hw["retransmissions"] >= 10 * max(1, st["retransmissions"])
    assert hw["retransmissions"] >= 10 * max(1, dy["retransmissions"])
    assert hw["rnr_naks"] >= 5  # repeated RNR timeout cycles, not one blip
    # User-level schemes parked the overflow instead of blasting the wire.
    assert st["backlog_max"] >= 1 and dy["backlog_max"] >= 1
    assert st["rnr_naks"] == 0 and dy["rnr_naks"] == 0


#: Scenarios whose fault outlives a finite retry budget: without the
#: recovery subsystem some scheme loses its QP pair for good (a
#: structured failure, not a hang); with recovery every scheme completes.
FATAL_SCENARIOS = {"link-down-permanent", "retry-budget"}

#: Fault-tolerance scenarios need their own arms (``ft=True`` for
#: rank-death; on-demand setup chaos for cm-lossy-setup) and are
#: exercised in tests/test_ft.py rather than this generic sweep.
FT_SCENARIOS = {"rank-death", "cm-lossy-setup"}


def test_every_scenario_completes_for_every_scheme():
    for name in sorted(set(SCENARIOS) - FATAL_SCENARIOS - FT_SCENARIOS):
        report = run_chaos(name, seed=7)
        for scheme, entry in report["schemes"].items():
            assert entry["completed"], f"{name}/{scheme}: {entry.get('error')}"
            # Runs outlive their fault windows (recovery, not truncation).
            assert entry["recovery_us"] >= 0


def test_fatal_scenarios_fail_structurally_then_recover():
    for name in sorted(FATAL_SCENARIOS):
        bare = run_chaos(name, seed=7)
        # At least one scheme blows its retry budget and reports the
        # structured failure record (never an exception string or a hang).
        failed = [s for s, e in bare["schemes"].items() if not e["completed"]]
        assert failed, f"{name}: expected a budget-exhausting scheme"
        for scheme in failed:
            entry = bare["schemes"][scheme]
            assert "error" not in entry, f"{name}/{scheme}: {entry.get('error')}"
            assert entry["failures"], f"{name}/{scheme}: no failure records"
        cured = run_chaos(name, seed=7, recovery=True)
        for scheme, entry in cured["schemes"].items():
            assert entry["completed"], f"{name}/{scheme} under recovery"
            assert entry["recovery"]["completed"] >= (1 if scheme in failed else 0)


def test_lossy_window_hardware_wastes_the_most_wire():
    report = run_chaos("lossy-window", seed=7)
    schemes = report["schemes"]
    assert schemes["hardware"]["retransmissions"] > max(
        schemes["static"]["retransmissions"],
        schemes["dynamic"]["retransmissions"],
    )


def test_unknown_scenario_raises():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_chaos("meteor-strike", seed=7)


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_chaos_table(capsys):
    rc = main(["chaos", "--scenario", "receiver-stall", "--seed", "7"])
    assert rc == 0
    out = capsys.readouterr().out
    for scheme in ("hardware", "static", "dynamic"):
        assert scheme in out
    assert "retrans" in out


def test_cli_chaos_json_is_parseable(capsys):
    rc = main(["chaos", "--scenario", "receiver-stall", "--seed", "7",
               "--json", "--schemes", "static"])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["scenario"] == "receiver-stall"
    assert list(report["schemes"]) == ["static"]


def test_cli_chaos_check_passes(capsys):
    rc = main(["chaos", "--scenario", "receiver-stall", "--seed", "7",
               "--check", "--schemes", "hardware"])
    assert rc == 0
    assert "determinism check passed" in capsys.readouterr().err


def test_cli_chaos_rejects_unknown_scenario(capsys):
    assert main(["chaos", "--scenario", "meteor-strike"]) == 2
    assert "invalid choice" in capsys.readouterr().err
