"""Additional collective coverage: larger worlds, payload-free byte moves,
op ordering, stress under tiny pre-post with the RDMA channel."""

import pytest

from repro.cluster import TestbedConfig, run_job
from tests.mpi_helpers import runN


def test_sixteen_rank_allreduce():
    def prog(mpi):
        total = yield from mpi.allreduce(size=8, value=mpi.rank,
                                         op=lambda a, b: a + b)
        return total

    r = run_job(prog, 16, "static", prepost=10, config=TestbedConfig(nodes=8))
    assert r.rank_results == [120] * 16


def test_payload_free_collectives_move_bytes_only():
    """NAS-proxy style: no payloads, just byte accounting."""

    def prog(mpi):
        yield from mpi.allreduce(size=4096)
        yield from mpi.alltoall(size_per_peer=8192)
        yield from mpi.bcast(root=0, size=1 << 16)
        return mpi.bytes_sent

    r = runN(prog, 8)
    assert all(v > 0 for v in r.rank_results)


def test_reduce_noncommutative_op_deterministic():
    """The combine tree is fixed, so even a non-commutative op yields the
    same (deterministic) result on every run."""

    def prog(mpi):
        combined = yield from mpi.reduce(root=0, size=8, value=str(mpi.rank),
                                         op=lambda a, b: f"({a}+{b})")
        return combined

    a = runN(prog, 4)
    b = runN(prog, 4)
    assert a.rank_results[0] == b.rank_results[0]
    # every rank's contribution appears exactly once
    for d in "0123":
        assert a.rank_results[0].count(d) == 1


def test_bcast_large_payload_rendezvous():
    def prog(mpi):
        data = "x" * 10 if mpi.rank == 2 else None
        got = yield from mpi.bcast(root=2, size=1 << 20, payload=data)
        return got

    r = runN(prog, 8)
    assert all(v == "x" * 10 for v in r.rank_results)


def test_alltoall_self_block_preserved():
    def prog(mpi):
        out = [f"{mpi.rank}:{d}" for d in range(mpi.world_size)]
        result = yield from mpi.alltoall(size_per_peer=64, payloads=out)
        assert result[mpi.rank] == f"{mpi.rank}:{mpi.rank}"
        return True

    r = runN(prog, 4)
    assert all(r.rank_results)


def test_back_to_back_barriers():
    def prog(mpi):
        for _ in range(10):
            yield from mpi.barrier()
        return mpi.now

    runN(prog, 8, prepost=2)


@pytest.mark.parametrize("scheme", ["hardware", "static", "dynamic"])
def test_alltoallv_skewed_sizes_under_pressure(scheme):
    """Heavily skewed alltoallv (rank 0 ships megabytes, others bytes) with
    prepost=1 must complete under every scheme."""

    def prog(mpi):
        P = mpi.world_size
        base = (1 << 20) if mpi.rank == 0 else 16
        sizes = [base] * P
        recv_sizes = [(1 << 20) if s == 0 else 16 for s in range(P)]
        result = yield from mpi.alltoallv(sizes, payloads=[mpi.rank] * P,
                                          recv_sizes=recv_sizes)
        assert [result[s] for s in range(P) if s != mpi.rank] == [
            s for s in range(P) if s != mpi.rank
        ]

    runN(prog, 4, scheme=scheme, prepost=1)


def test_collectives_over_rdma_channel_large_world():
    cfg = TestbedConfig(nodes=8)
    cfg.mpi.use_rdma_channel = True

    def prog(mpi):
        gathered = yield from mpi.allgather(size=256, value=mpi.rank ** 2)
        return gathered

    r = run_job(prog, 8, "dynamic", prepost=1, config=cfg)
    assert all(v == [i ** 2 for i in range(8)] for v in r.rank_results)
