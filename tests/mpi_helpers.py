"""Shared helpers for MPI-layer tests: tiny programs and runners."""

from repro.cluster import TestbedConfig, run_job


def run2(program, scheme="static", prepost=10, config=None, **kw):
    """Run a 2-rank job on a 2-node cluster."""
    cfg = config or TestbedConfig(nodes=2)
    return run_job(program, 2, scheme, prepost, config=cfg, **kw)


def runN(program, nranks, scheme="static", prepost=10, config=None, **kw):
    cfg = config or TestbedConfig(nodes=min(nranks, 8))
    return run_job(program, nranks, scheme, prepost, config=cfg, **kw)
