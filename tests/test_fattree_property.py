"""Property tests for multi-level fat-tree routing.

Random seeded shapes x random flows, checked against an independent
reference enumeration of the d-mod-k path: per-flow in-order delivery,
route symmetry about the top of the tree, and exact per-link hop
accounting (``fabric.link_msgs``) — every traversed link counted exactly
once per data message, host access links included.
"""

import random

from repro.ib import FatTreeFabric, IBConfig, Opcode, RecvWR, SendWR
from repro.ib.hca import HCA
from repro.sim import Simulator

TRIALS = 8
FLOWS_PER_TRIAL = 6
MSGS_PER_FLOW = 3


def reference_links(shape, src, dst):
    """Independent re-derivation of the d-mod-k interior links.

    Deliberately re-implemented from the routing spec (not calling into
    ``FatTreeFabric``), so a routing regression cannot hide by breaking
    both sides the same way.
    """
    leaf_ports, spines = shape["leaf_ports"], shape["spines"]
    src_leaf, dst_leaf = src // leaf_ports, dst // leaf_ports
    if src_leaf == dst_leaf:
        return []
    idx = dst % spines
    if shape["levels"] == 2:
        return [("up", src_leaf, idx), ("sdown", idx, dst_leaf)]
    pod_leaves = shape["pod_leaves"]
    src_pod, dst_pod = src_leaf // pod_leaves, dst_leaf // pod_leaves
    s_src = src_pod * spines + idx
    if src_pod == dst_pod:
        return [("up", src_leaf, s_src), ("sdown", s_src, dst_leaf)]
    core = dst % shape["cores"]
    s_dst = dst_pod * spines + idx
    return [("up", src_leaf, s_src), ("sup", s_src, core),
            ("cdown", core, s_dst), ("sdown", s_dst, dst_leaf)]


def random_shape(rng):
    levels = rng.choice((2, 3))
    leaf_ports = rng.randint(2, 4)
    spines = rng.randint(1, 3)
    if levels == 2:
        leaves = rng.randint(2, 4)
        return dict(levels=2, leaf_ports=leaf_ports, spines=spines,
                    pod_leaves=None, cores=None,
                    nodes=leaf_ports * leaves)
    pod_leaves = rng.randint(2, 3)
    pods = rng.randint(2, 3)
    return dict(levels=3, leaf_ports=leaf_ports, spines=spines,
                pod_leaves=pod_leaves, cores=rng.randint(1, 4),
                nodes=leaf_ports * pod_leaves * pods)


def build(shape):
    sim = Simulator()
    fabric = FatTreeFabric(
        sim, IBConfig(), leaf_ports=shape["leaf_ports"],
        spines=shape["spines"], levels=shape["levels"],
        pod_leaves=shape["pod_leaves"], cores=shape["cores"])
    hcas = [HCA(sim, fabric, lid) for lid in range(shape["nodes"])]
    return sim, fabric, hcas


def wire_flow(sim, hcas, src, dst, flow_id, delivered):
    """One QP pair carrying MSGS_PER_FLOW tagged messages, with the
    destination CQ snooped so arrival order is observable."""
    cq_s = hcas[src].create_cq()
    cq_d = hcas[dst].create_cq()
    qp_s = hcas[src].create_qp(cq_s)
    qp_d = hcas[dst].create_qp(cq_d)
    qp_s.connect(dst, qp_d.qp_num)
    qp_d.connect(src, qp_s.qp_num)
    orig = cq_d.push

    def snoop(wc, orig=orig):
        if wc.is_recv:
            delivered.setdefault(flow_id, []).append(wc.data)
        orig(wc)

    cq_d.push = snoop
    for seq in range(MSGS_PER_FLOW):
        qp_d.post_recv(RecvWR(wr_id=f"r{seq}", capacity=4096))
    for seq in range(MSGS_PER_FLOW):
        qp_s.post_send(SendWR(wr_id=f"s{seq}", opcode=Opcode.SEND,
                              length=64, payload=(flow_id, seq)))


def test_random_shapes_and_flows_route_in_order_with_exact_hop_accounting():
    rng = random.Random(20040426)  # IPPS'04 vintage
    for trial in range(TRIALS):
        shape = random_shape(rng)
        sim, fabric, hcas = build(shape)
        pairs = [(s, d) for s in range(shape["nodes"])
                 for d in range(shape["nodes"]) if s != d]
        flows = rng.sample(pairs, min(FLOWS_PER_TRIAL, len(pairs)))
        delivered = {}
        for fid, (src, dst) in enumerate(flows):
            wire_flow(sim, hcas, src, dst, fid, delivered)
        sim.run(max_events=5_000_000)

        # every message arrived, in per-flow order
        for fid in range(len(flows)):
            assert delivered[fid] == [
                (fid, seq) for seq in range(MSGS_PER_FLOW)
            ], f"trial {trial} flow {flows[fid]} out of order"

        # the fabric's path matches the reference enumeration
        expected = {}
        for src, dst in flows:
            ref = reference_links(shape, src, dst)
            assert list(fabric.path_links(src, dst)) == ref, \
                f"trial {trial} pair {(src, dst)}"
            for link in [("hup", src), *ref, ("down", dst)]:
                expected[link] = expected.get(link, 0) + MSGS_PER_FLOW
        # ...and every traversed link was counted exactly once per data
        # message (ACKs ride the control path, so they never show up here)
        assert fabric.link_msgs == expected, f"trial {trial}"


def test_routes_are_symmetric_about_the_top_of_the_tree():
    """d-mod-k ascends and descends through the *same* spine index: the
    tier sequence is palindromic (up/sdown, sup/cdown mirror) and the
    spine used on the way up equals the one used on the way down modulo
    the pod offset."""
    rng = random.Random(7)
    for _ in range(TRIALS):
        shape = random_shape(rng)
        _, fabric, _ = build(shape)
        n = shape["nodes"]
        for _ in range(24):
            src, dst = rng.randrange(n), rng.randrange(n)
            links = fabric.path_links(src, dst)
            tiers = tuple(k[0] for k in links)
            assert tiers in ((), ("up", "sdown"),
                             ("up", "sup", "cdown", "sdown"))
            if len(links) == 2:
                # turnaround spine: same switch up and down
                assert links[0][2] == links[1][1]
            elif len(links) == 4:
                spines = shape["spines"]
                up_spine, core_dn = links[0][2], links[1][2]
                assert links[2][1] == core_dn  # one core, in and out
                dn_spine = links[2][2]
                # same pod-local index either side of the core
                assert up_spine % spines == dn_spine % spines
                assert links[3][1] == dn_spine


def test_paths_are_destination_deterministic_and_memoized():
    """All routing choices depend only on the destination LID, so a
    flow's path never changes mid-stream (ordering), and repeated lookups
    return the memoized tuple."""
    rng = random.Random(11)
    shape = dict(levels=3, leaf_ports=2, spines=2, pod_leaves=2, cores=3,
                 nodes=12)
    _, fabric, _ = build(shape)
    for _ in range(50):
        src, dst = rng.randrange(12), rng.randrange(12)
        first = fabric.path_links(src, dst)
        assert fabric.path_links(src, dst) is first
        assert list(first) == reference_links(shape, src, dst)


def test_cross_pod_counter_tracks_four_link_paths():
    shape = dict(levels=3, leaf_ports=2, spines=2, pod_leaves=2, cores=2,
                 nodes=16)
    sim, fabric, hcas = build(shape)
    delivered = {}
    wire_flow(sim, hcas, 0, 2, 0, delivered)    # cross-leaf, same pod
    wire_flow(sim, hcas, 0, 15, 1, delivered)   # pod 0 -> pod 3
    sim.run(max_events=1_000_000)
    assert fabric.cross_leaf_msgs == 2 * MSGS_PER_FLOW
    assert fabric.cross_pod_msgs == MSGS_PER_FLOW
