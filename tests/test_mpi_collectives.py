"""Collective-operation correctness across world sizes and schemes."""

import pytest

from tests.mpi_helpers import runN


SIZES = [2, 3, 4, 7, 8]


@pytest.mark.parametrize("nranks", SIZES)
def test_barrier_synchronises(nranks):
    """No rank may leave the barrier before the slowest rank enters it."""

    def prog(mpi):
        enter_delay = 10_000 * (mpi.rank + 1)
        yield from mpi.compute(enter_delay)
        entered = mpi.now
        yield from mpi.barrier()
        left = mpi.now
        return (entered, left)

    r = runN(prog, nranks)
    latest_entry = max(e for e, _ in r.rank_results)
    for _, left in r.rank_results:
        assert left >= latest_entry


@pytest.mark.parametrize("nranks", SIZES)
def test_bcast_delivers_root_value(nranks):
    def prog(mpi):
        value = "root-data" if mpi.rank == 1 % nranks else None
        got = yield from mpi.bcast(root=1 % nranks, size=64, payload=value)
        return got

    r = runN(prog, nranks)
    assert all(v == "root-data" for v in r.rank_results)


@pytest.mark.parametrize("nranks", SIZES)
def test_reduce_sums_at_root(nranks):
    def prog(mpi):
        total = yield from mpi.reduce(root=0, size=8, value=mpi.rank + 1,
                                      op=lambda a, b: a + b)
        return total

    r = runN(prog, nranks)
    expected = nranks * (nranks + 1) // 2
    assert r.rank_results[0] == expected
    assert all(v is None for v in r.rank_results[1:])


@pytest.mark.parametrize("nranks", SIZES)
def test_allreduce_sums_everywhere(nranks):
    def prog(mpi):
        total = yield from mpi.allreduce(size=8, value=mpi.rank + 1,
                                         op=lambda a, b: a + b)
        return total

    r = runN(prog, nranks)
    expected = nranks * (nranks + 1) // 2
    assert r.rank_results == [expected] * nranks


@pytest.mark.parametrize("nranks", SIZES)
def test_allgather_collects_all(nranks):
    def prog(mpi):
        result = yield from mpi.allgather(size=16, value=f"v{mpi.rank}")
        return result

    r = runN(prog, nranks)
    expected = [f"v{i}" for i in range(nranks)]
    assert all(res == expected for res in r.rank_results)


@pytest.mark.parametrize("nranks", SIZES)
def test_alltoall_permutes_blocks(nranks):
    def prog(mpi):
        outgoing = [f"{mpi.rank}->{d}" for d in range(nranks)]
        result = yield from mpi.alltoall(size_per_peer=32, payloads=outgoing)
        return result

    r = runN(prog, nranks)
    for rank, result in enumerate(r.rank_results):
        assert result == [f"{src}->{rank}" for src in range(nranks)]


@pytest.mark.parametrize("nranks", [2, 4, 8])
def test_alltoallv_variable_sizes(nranks):
    def prog(mpi):
        sizes = [(mpi.rank + d + 1) * 100 for d in range(nranks)]
        outgoing = [(mpi.rank, d) for d in range(nranks)]
        result = yield from mpi.alltoallv(sizes, payloads=outgoing)
        return result

    r = runN(prog, nranks)
    for rank, result in enumerate(r.rank_results):
        assert result == [(src, rank) for src in range(nranks)]


@pytest.mark.parametrize("nranks", SIZES)
def test_gather_at_root(nranks):
    def prog(mpi):
        result = yield from mpi.gather(root=0, size=8, value=mpi.rank * 10)
        return result

    r = runN(prog, nranks)
    assert r.rank_results[0] == [i * 10 for i in range(nranks)]


@pytest.mark.parametrize("nranks", SIZES)
def test_scatter_from_root(nranks):
    def prog(mpi):
        values = [f"piece{i}" for i in range(nranks)] if mpi.rank == 0 else None
        piece = yield from mpi.scatter(root=0, size=8, values=values)
        return piece

    r = runN(prog, nranks)
    assert r.rank_results == [f"piece{i}" for i in range(nranks)]


def test_single_rank_collectives_are_noops():
    def prog(mpi):
        yield from mpi.barrier()
        b = yield from mpi.bcast(root=0, size=8, payload="x")
        a = yield from mpi.allreduce(size=8, value=3, op=lambda x, y: x + y)
        g = yield from mpi.allgather(size=8, value="me")
        return (b, a, g)

    r = runN(prog, 1)
    assert r.rank_results[0] == ("x", 3, ["me"])


@pytest.mark.parametrize("scheme", ["hardware", "static", "dynamic"])
def test_collectives_work_under_every_scheme_with_tiny_prepost(scheme):
    """Back-to-back collectives with prepost=1 must not deadlock under any
    flow-control scheme (the optimistic ECM design guarantees progress)."""

    def prog(mpi):
        for _ in range(3):
            yield from mpi.barrier()
            total = yield from mpi.allreduce(size=8, value=1, op=lambda a, b: a + b)
            assert total == mpi.world_size
        result = yield from mpi.alltoall(size_per_peer=2048,
                                         payloads=[mpi.rank] * mpi.world_size)
        return sum(result)

    r = runN(prog, 8, scheme=scheme, prepost=1)
    assert all(v == sum(range(8)) for v in r.rank_results)


def test_large_alltoall_uses_rendezvous():
    def prog(mpi):
        result = yield from mpi.alltoall(size_per_peer=1 << 18)
        yield from mpi.barrier()
        return len(result)

    r = runN(prog, 4)
    assert r.fc.data_msgs >= 4 * 3  # one rendezvous per pair


def test_consecutive_collectives_do_not_crosstalk():
    def prog(mpi):
        first = yield from mpi.allreduce(size=8, value=1, op=lambda a, b: a + b)
        second = yield from mpi.allreduce(size=8, value=2, op=lambda a, b: a + b)
        third = yield from mpi.allgather(size=8, value=mpi.rank)
        return (first, second, third)

    r = runN(prog, 4)
    for first, second, third in r.rank_results:
        assert first == 4
        assert second == 8
        assert third == [0, 1, 2, 3]
