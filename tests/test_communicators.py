"""Tests for communicators: contexts, groups, dup, split."""

import pytest

from repro.mpi import MPIError
from repro.mpi.comm import Communicator, world
from tests.mpi_helpers import runN


def test_world_communicator_matches_endpoint():
    def prog(mpi):
        comm = world(mpi)
        assert comm.rank == mpi.rank
        assert comm.size == mpi.world_size
        total = yield from comm.allreduce(size=8, value=1, op=lambda a, b: a + b)
        return total

    r = runN(prog, 4)
    assert r.rank_results == [4] * 4


def test_context_isolation_same_tag():
    """Identical (source, tag) on two communicators must not cross-match."""

    def prog(mpi):
        comm_a = world(mpi)
        comm_b = yield from comm_a.dup()
        if mpi.rank == 0:
            yield from comm_b.send(1, size=4, tag=5, payload="on-B")
            yield from comm_a.send(1, size=4, tag=5, payload="on-A")
        else:
            # Receive A's message first even though B's arrived first.
            st_a = yield from comm_a.recv(source=0, capacity=64, tag=5)
            st_b = yield from comm_b.recv(source=0, capacity=64, tag=5)
            assert st_a.payload == "on-A"
            assert st_b.payload == "on-B"

    runN(prog, 2)


def test_split_even_odd_groups():
    def prog(mpi):
        comm = world(mpi)
        sub = yield from comm.split(color=mpi.rank % 2, key=mpi.rank)
        assert sub.size == 4
        assert sub.rank == mpi.rank // 2
        # sum of world ranks within my parity group
        total = yield from sub.allreduce(size=8, value=mpi.rank, op=lambda a, b: a + b)
        expected = sum(r for r in range(8) if r % 2 == mpi.rank % 2)
        assert total == expected
        return (sub.rank, total)

    runN(prog, 8)


def test_split_key_reorders_ranks():
    def prog(mpi):
        comm = world(mpi)
        # reverse ordering: highest world rank becomes local rank 0
        sub = yield from comm.split(color=0, key=-mpi.rank)
        assert sub.rank == (mpi.world_size - 1 - mpi.rank)
        gathered = yield from sub.allgather(size=8, value=mpi.rank)
        assert gathered == list(range(mpi.world_size - 1, -1, -1))

    runN(prog, 4)


def test_split_undefined_color_returns_none():
    def prog(mpi):
        comm = world(mpi)
        color = 0 if mpi.rank < 2 else -1
        sub = yield from comm.split(color=color)
        if mpi.rank < 2:
            assert sub is not None and sub.size == 2
            yield from sub.barrier()
        else:
            assert sub is None

    runN(prog, 4)


def test_point_to_point_rank_translation():
    def prog(mpi):
        comm = world(mpi)
        sub = yield from comm.split(color=mpi.rank % 2, key=mpi.rank)
        # local rank 0 <-> local rank 1 inside each parity group
        if sub.rank == 0:
            yield from sub.send(1, size=4, tag=1, payload=("from", mpi.rank))
        elif sub.rank == 1:
            st = yield from sub.recv(source=0, capacity=64, tag=1)
            assert st.source == 0  # group-local source rank
            assert st.payload == ("from", mpi.rank - 2)

    runN(prog, 4)


def test_interleaved_collectives_on_uneven_subgroups():
    """Split groups run different numbers of collectives, then the world
    communicator synchronises — the per-context tag sequences must not
    collide (the classic shared-counter bug)."""

    def prog(mpi):
        comm = world(mpi)
        sub = yield from comm.split(color=mpi.rank % 2, key=mpi.rank)
        rounds = 5 if mpi.rank % 2 == 0 else 2  # uneven collective counts
        for _ in range(rounds):
            yield from sub.barrier()
        total = yield from comm.allreduce(size=8, value=1, op=lambda a, b: a + b)
        assert total == mpi.world_size

    runN(prog, 4)


def test_nested_split():
    def prog(mpi):
        comm = world(mpi)
        half = yield from comm.split(color=mpi.rank // 4, key=mpi.rank)
        quarter = yield from half.split(color=half.rank // 2, key=half.rank)
        assert quarter.size == 2
        partner_world = yield from quarter.allgather(size=8, value=mpi.rank)
        # partners are world-adjacent ranks
        assert partner_world == sorted(partner_world)

    runN(prog, 8)


def test_group_validation():
    def prog(mpi):
        with pytest.raises(MPIError):
            Communicator(mpi, [1 - mpi.rank], context=7)  # not a member
        with pytest.raises(MPIError):
            Communicator(mpi, [mpi.rank, mpi.rank], context=7)  # dup ranks
        comm = world(mpi)
        with pytest.raises(MPIError):
            comm.world_rank(99)
        with pytest.raises(MPIError):
            comm.local_rank(99)
        yield from mpi.barrier()

    runN(prog, 2)
