"""Tests for the parallel sweep orchestrator (``repro.campaign``).

Covers the cache-hit/miss paths, JSONL checkpoint/resume after a
simulated worker crash, the ``check=True`` determinism gate catching an
injected nondeterministic result, and the worker-pool path producing
records bit-identical to the in-process reference path.
"""

import json
from types import SimpleNamespace

import pytest

from repro.campaign import (
    CampaignError,
    CheckFailure,
    GRIDS,
    JobSpec,
    MemoryCache,
    ResultCache,
    build_grid,
    canonical_json,
    code_version,
    latency_metrics,
    run_cell,
    run_cells,
)
from repro.campaign.cells import CELL_KINDS, cell_kind

# A grid small enough that every test runs in well under a second but
# still spans two schemes and two cells per scheme.
def tiny_grid():
    return [
        JobSpec("latency", {"scheme": scheme, "size": size,
                            "iterations": 3, "prepost": 10})
        for scheme in ("static", "dynamic")
        for size in (4, 64)
    ]


# ----------------------------------------------------------------------
# spec identity
# ----------------------------------------------------------------------
def test_spec_key_is_stable_under_param_order():
    a = JobSpec("latency", {"size": 4, "scheme": "static"})
    b = JobSpec("latency", {"scheme": "static", "size": 4})
    assert a.key == b.key
    assert a.canonical() == b.canonical()


def test_spec_key_distinguishes_params_and_kind():
    base = JobSpec("latency", {"size": 4})
    assert base.key != JobSpec("latency", {"size": 8}).key
    assert base.key != JobSpec("bandwidth", {"size": 4}).key


def test_spec_key_includes_code_version(monkeypatch):
    spec = JobSpec("latency", {"size": 4})
    before = spec.key
    monkeypatch.setattr("repro.campaign.spec._CODE_VERSION", "deadbeef")
    assert spec.key != before  # a code change invalidates every cache key


def test_spec_rejects_unserialisable_params():
    with pytest.raises(TypeError):
        JobSpec("latency", {"fn": lambda: None})


def test_spec_roundtrip_and_label():
    spec = JobSpec("nas", {"kernel": "lu", "scheme": "static", "prepost": 1})
    again = JobSpec.from_dict(json.loads(spec.canonical()))
    assert again == spec and again.key == spec.key
    assert "kernel=lu" in spec.label()
    assert spec.short_key == spec.key[:12]


def test_code_version_is_cached_and_hexlike():
    assert code_version() == code_version()
    assert len(code_version()) == 16
    int(code_version(), 16)  # hex digest prefix


# ----------------------------------------------------------------------
# caches
# ----------------------------------------------------------------------
def test_result_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = "ab" * 32
    assert cache.get(key) is None and key not in cache
    record = {"key": key, "metrics": {"x": 1.5}}
    cache.put(key, record)
    assert cache.get(key) == record
    assert key in cache and len(cache) == 1
    assert list(cache.keys()) == [key]


def test_result_cache_torn_write_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = "cd" * 32
    cache.put(key, {"metrics": {}})
    (tmp_path / f"{key}.json").write_text('{"metrics": {"trunc')
    assert cache.get(key) is None  # re-runs rather than erroring


def test_result_cache_rejects_malformed_keys(tmp_path):
    cache = ResultCache(tmp_path)
    for bad in ("", "../escape", "ABC", "xy z"):
        with pytest.raises(ValueError):
            cache.get(bad)


def test_memory_cache_interface():
    cache = MemoryCache()
    cache.put("k", {"metrics": {}})
    assert cache.get("k") == {"metrics": {}}
    assert "k" in cache and len(cache) == 1
    assert list(cache.keys()) == ["k"]


# ----------------------------------------------------------------------
# cache hit / miss
# ----------------------------------------------------------------------
def test_cold_run_executes_and_warm_run_is_all_hits(tmp_path):
    specs = tiny_grid()
    cache = ResultCache(tmp_path / "cache")

    cold = run_cells(specs, cache=cache)
    assert cold.executed == len(specs) and cold.hits == 0
    assert all(o.source == "run" for o in cold.outcomes)

    warm = run_cells(specs, cache=cache)
    assert warm.executed == 0 and warm.hits == len(specs)
    assert all(o.source == "cache" for o in warm.outcomes)
    assert warm.records() == cold.records()  # byte-for-byte same metrics


def test_partial_cache_only_runs_misses(tmp_path):
    specs = tiny_grid()
    cache = ResultCache(tmp_path / "cache")
    run_cells(specs[:2], cache=cache)

    res = run_cells(specs, cache=cache)
    assert res.hits == 2 and res.executed == len(specs) - 2
    sources = [o.source for o in res.outcomes]
    assert sources[:2] == ["cache", "cache"]
    assert sources[2:] == ["run"] * (len(specs) - 2)


def test_duplicate_cells_execute_once():
    spec = tiny_grid()[0]
    res = run_cells([spec, spec, spec])
    assert res.executed == 1
    assert len(res.outcomes) == 3
    assert all(o.record is res.outcomes[0].record for o in res.outcomes)


def test_metrics_accessor_raises_without_record():
    out = run_cells([], ).outcomes  # empty campaign is fine
    assert out == []
    pending = SimpleNamespace()
    res = run_cells([tiny_grid()[0]], stop_after=0)
    assert res.interrupted
    with pytest.raises(CampaignError):
        res.outcomes[0].metrics


# ----------------------------------------------------------------------
# checkpoint / resume after an interrupted campaign
# ----------------------------------------------------------------------
def test_resume_after_simulated_crash(tmp_path):
    specs = tiny_grid()
    jsonl = tmp_path / "campaign.jsonl"

    # The campaign "crashes" after two cells: stop_after models the
    # process dying mid-sweep with the JSONL checkpoint already flushed.
    first = run_cells(specs, jsonl_path=jsonl, stop_after=2)
    assert first.interrupted and first.executed == 2
    checkpointed = jsonl.read_text().splitlines()
    assert len(checkpointed) == 2

    resumed = run_cells(specs, jsonl_path=jsonl, resume=True)
    assert not resumed.interrupted
    assert resumed.hits == 2  # served from the checkpoint, not re-run
    assert resumed.executed == len(specs) - 2
    assert [o.source for o in resumed.outcomes[:2]] == ["resume", "resume"]

    # The final artifact holds every record, in input-spec order.
    records = [json.loads(l) for l in jsonl.read_text().splitlines()]
    assert [r["key"] for r in records] == [s.key for s in specs]


def test_resume_tolerates_torn_trailing_line(tmp_path):
    specs = tiny_grid()[:2]
    jsonl = tmp_path / "campaign.jsonl"
    run_cells([specs[0]], jsonl_path=jsonl)
    with open(jsonl, "a") as fh:
        fh.write('{"key": "torn-mid-append')  # crash mid-write

    res = run_cells(specs, jsonl_path=jsonl, resume=True)
    assert res.hits == 1 and res.executed == 1
    records = [json.loads(l) for l in jsonl.read_text().splitlines()]
    assert [r["key"] for r in records] == [s.key for s in specs]


# ----------------------------------------------------------------------
# the determinism gate
# ----------------------------------------------------------------------
def test_check_passes_on_honest_cache(tmp_path):
    specs = tiny_grid()[:2]
    cache = ResultCache(tmp_path / "cache")
    run_cells(specs, cache=cache)
    res = run_cells(specs, cache=cache, check=True)
    assert res.hits == 2 and res.check_failures == []


def test_check_catches_injected_nondeterministic_result(tmp_path):
    specs = tiny_grid()[:2]
    cache = ResultCache(tmp_path / "cache")
    run_cells(specs, cache=cache)

    # Inject nondeterminism: doctor one cached record as a worker with a
    # drifting simulation would have produced it.
    bad = dict(cache.get(specs[0].key))
    bad["metrics"] = dict(bad["metrics"], latency_ns=bad["metrics"]["latency_ns"] + 1)
    cache.put(specs[0].key, bad)

    with pytest.raises(CheckFailure) as err:
        run_cells(specs, cache=cache, check=True)
    assert len(err.value.mismatches) == 1
    assert err.value.mismatches[0]["key"] == specs[0].key

    # The check repaired the cache: the verified in-process record now
    # stands, so a follow-up check-run is clean.
    res = run_cells(specs, cache=cache, check=True)
    assert res.check_failures == []


def test_check_collects_mismatches_when_not_strict(tmp_path):
    specs = tiny_grid()[:1]
    cache = ResultCache(tmp_path / "cache")
    run_cells(specs, cache=cache)
    bad = dict(cache.get(specs[0].key))
    bad["metrics"] = dict(bad["metrics"], latency_ns=-1.0)
    cache.put(specs[0].key, bad)

    res = run_cells(specs, cache=cache, check=True, strict=False)
    assert len(res.check_failures) == 1
    m = res.check_failures[0]
    assert m["stored"]["metrics"]["latency_ns"] == -1.0
    assert m["recomputed"]["metrics"]["latency_ns"] > 0


def test_fresh_in_process_runs_are_not_rechecked():
    # check re-runs only records of *unverified* provenance (cache,
    # resume, worker) — a cell freshly executed in this process would be
    # compared against itself, wasted work the runner skips.
    specs = tiny_grid()[:1]
    res = run_cells(specs, check=True)
    assert res.executed == 1 and res.check_failures == []


# ----------------------------------------------------------------------
# failures
# ----------------------------------------------------------------------
def test_failing_cell_raises_when_strict():
    spec = JobSpec("latency", {"scheme": "no-such-scheme", "size": 4,
                               "iterations": 1, "prepost": 1})
    with pytest.raises(CampaignError):
        run_cells([spec])


def test_failing_cell_is_collected_when_not_strict():
    good = tiny_grid()[0]
    bad = JobSpec("latency", {"scheme": "no-such-scheme", "size": 4,
                              "iterations": 1, "prepost": 1})
    res = run_cells([bad, good], strict=False)
    assert len(res.failures) == 1
    assert res.failures[0].source == "failed"
    assert res.failures[0].error
    assert res.outcomes[1].source == "run"  # campaign kept going


def test_unknown_cell_kind_is_an_error():
    with pytest.raises(ValueError, match="unknown cell kind"):
        run_cell(JobSpec("teleport", {}))


# ----------------------------------------------------------------------
# the worker-pool path
# ----------------------------------------------------------------------
def test_worker_pool_records_bit_identical_to_sequential(tmp_path):
    specs = tiny_grid()
    seq = run_cells(specs)

    pooled = run_cells(specs, workers=2, check=True)
    assert pooled.executed == len(specs)
    assert all(o.source == "worker" for o in pooled.outcomes)
    assert pooled.check_failures == []  # worker output == in-process rerun
    assert canonical_json(pooled.records()) == canonical_json(seq.records())


def test_worker_pool_failure_is_reported(tmp_path):
    bad = JobSpec("latency", {"scheme": "no-such-scheme", "size": 4,
                              "iterations": 1, "prepost": 1})
    res = run_cells([bad, tiny_grid()[0]], workers=2, strict=False)
    assert len(res.failures) == 1
    assert "no-such-scheme" in res.failures[0].error


# ----------------------------------------------------------------------
# grids and metric extraction
# ----------------------------------------------------------------------
def test_named_grids_build_json_clean_specs():
    for name in GRIDS:
        specs = build_grid(name)
        assert specs, name
        for spec in specs:
            spec.canonical()  # every cell serialises
            assert spec.kind in CELL_KINDS


def test_build_grid_unknown_name():
    with pytest.raises(ValueError, match="unknown grid"):
        build_grid("fig99")


def test_build_grid_drops_none_overrides():
    assert build_grid("fig2", schemes=None) == build_grid("fig2")
    assert {s.params["scheme"] for s in build_grid("fig2", schemes=["static"])} \
        == {"static"}


def test_latency_metrics_preserve_fractional_nanoseconds():
    # Regression: cmd_latency used ``to_us(int(r.rank_results[0]))``,
    # silently truncating fractional-nanosecond (sub-microsecond
    # resolution) latencies before conversion.
    stub = SimpleNamespace(rank_results=[1234.75], elapsed_ns=99)
    m = latency_metrics(stub)
    assert m["latency_ns"] == 1234.75
    assert m["latency_us"] == pytest.approx(1.23475)
    assert isinstance(m["latency_ns"], float)


def test_progress_callback_sees_every_execution(tmp_path):
    specs = tiny_grid()[:2]
    seen = []
    run_cells(specs, progress=lambda out, done, total: seen.append(
        (out.spec.key, done, total)))
    assert [(d, t) for _, d, t in seen] == [(1, 2), (2, 2)]
    assert [k for k, _, _ in seen] == [s.key for s in specs]


def test_registering_a_cell_kind_is_reversible():
    @cell_kind("test-only")
    def _cell(params):
        return {"echo": dict(params)}

    try:
        assert run_cell(JobSpec("test-only", {"v": 3})) == {"echo": {"v": 3}}
    finally:
        del CELL_KINDS["test-only"]
