"""Property-based tests of the matching engine against a reference model.

The reference is a direct transcription of the MPI matching rules: posted
receives match in post order, arrivals scan posted receives first and park
unexpected otherwise, wildcards honour any-source / any-tag.
"""

from hypothesis import given, settings, strategies as st

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.matching import MatchingEngine, PostedRecv
from repro.mpi.protocol import Header, MsgKind
from repro.mpi.request import Request
from repro.sim import Simulator


class ReferenceModel:
    """Straight-line implementation of the matching rules."""

    def __init__(self):
        self.posted = []  # (source, tag, context, key)
        self.unexpected = []  # (src, tag, context, key)

    @staticmethod
    def _match(recv, msg):
        rsource, rtag, rctx, _ = recv
        src, tag, ctx, _ = msg
        if rctx != ctx:
            return False
        if rsource != ANY_SOURCE and rsource != src:
            return False
        if rtag != ANY_TAG and rtag != tag:
            return False
        return True

    def post(self, recv):
        for i, msg in enumerate(self.unexpected):
            if self._match(recv, msg):
                return self.unexpected.pop(i)[3]
        self.posted.append(recv)
        return None

    def arrive(self, msg):
        for i, recv in enumerate(self.posted):
            if self._match(recv, msg):
                return self.posted.pop(i)[3]
        self.unexpected.append(msg)
        return None


ops_strategy = st.lists(
    st.one_of(
        # post a receive: (source|-1, tag|-1, context)
        st.tuples(
            st.just("post"),
            st.sampled_from([ANY_SOURCE, 0, 1, 2]),
            st.sampled_from([ANY_TAG, 10, 20]),
            st.sampled_from([0, 1]),
        ),
        # arrival: concrete (src, tag, context)
        st.tuples(
            st.just("arrive"),
            st.sampled_from([0, 1, 2]),
            st.sampled_from([10, 20]),
            st.sampled_from([0, 1]),
        ),
    ),
    max_size=60,
)


@settings(max_examples=300, deadline=None)
@given(ops=ops_strategy)
def test_matching_engine_equals_reference(ops):
    sim = Simulator()
    engine = MatchingEngine()
    model = ReferenceModel()
    recv_keys = {}  # id(request) -> op key

    for key, op in enumerate(ops):
        kind = op[0]
        if kind == "post":
            _, source, tag, ctx = op
            recv = PostedRecv(source, tag, ctx, 1 << 20, Request(sim, "recv"))
            recv_keys[id(recv.request)] = key
            got = engine.post_recv(recv)
            expected = model.post((source, tag, ctx, key))
            got_key = None if got is None else got.header.seq
            assert got_key == expected
        else:
            _, src, tag, ctx = op
            h = Header(kind=MsgKind.EAGER, src=src, dst=9, tag=tag, context=ctx,
                       size=4, seq=key)
            got = engine.arrived(h, now=key)
            expected = model.arrive((src, tag, ctx, key))
            got_key = None if got is None else recv_keys[id(got.request)]
            assert got_key == expected

    assert engine.posted_count == len(model.posted)
    assert engine.unexpected_count == len(model.unexpected)


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy)
def test_unexpected_peak_monotone_bounds(ops):
    engine = MatchingEngine()
    sim = Simulator()
    peak_seen = 0
    for key, op in enumerate(ops):
        if op[0] == "post":
            _, source, tag, ctx = op
            engine.post_recv(PostedRecv(source, tag, ctx, 1 << 20, Request(sim, "recv")))
        else:
            _, src, tag, ctx = op
            engine.arrived(
                Header(kind=MsgKind.EAGER, src=src, dst=9, tag=tag, context=ctx, seq=key),
                now=key,
            )
        peak_seen = max(peak_seen, engine.unexpected_count)
    assert engine.unexpected_peak == peak_seen
    assert engine.total_unexpected >= engine.unexpected_count
