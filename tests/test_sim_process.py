"""Unit tests for coroutine processes and waitables (repro.sim)."""

import pytest

from repro.sim import AllOf, AnyOf, Signal, Simulator, Timeout
from repro.sim.process import ProcessFailed


def test_timeout_advances_clock():
    sim = Simulator()

    def prog():
        yield Timeout(100)
        return sim.now

    p = sim.spawn(prog())
    sim.run()
    assert p.result == 100
    assert not p.alive


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    marks = []

    def prog():
        for _ in range(3):
            yield Timeout(10)
            marks.append(sim.now)

    sim.spawn(prog())
    sim.run()
    assert marks == [10, 20, 30]


def test_yield_from_subroutine():
    sim = Simulator()

    def sub(n):
        yield Timeout(n)
        return n * 2

    def prog():
        a = yield from sub(5)
        b = yield from sub(7)
        return a + b

    p = sim.spawn(prog())
    sim.run()
    assert p.result == 24
    assert sim.now == 12


def test_signal_wakes_waiter_with_value():
    sim = Simulator()

    sig = Signal("test")

    def waiter():
        value = yield sig
        return value

    def firer():
        yield Timeout(50)
        sig.fire(sim, "payload")

    w = sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert w.result == "payload"
    assert sim.now == 50


def test_signal_already_fired_resumes_immediately():
    sim = Simulator()
    sig = Signal()
    sig.fire(sim, 42)

    def waiter():
        value = yield sig
        return (sim.now, value)

    def prog():
        yield Timeout(10)
        w = sim.spawn(waiter())
        result = yield w
        return result

    p = sim.spawn(prog())
    sim.run()
    assert p.result == (10, 42)


def test_signal_broadcast_to_many_waiters():
    sim = Simulator()
    sig = Signal()
    results = []

    def waiter(i):
        value = yield sig
        results.append((i, value))

    for i in range(5):
        sim.spawn(waiter(i))
    sim.schedule(9, sig.fire, sim, "go")
    sim.run()
    assert results == [(i, "go") for i in range(5)]


def test_signal_double_fire_rejected():
    sim = Simulator()
    sig = Signal()
    sig.fire(sim)
    with pytest.raises(RuntimeError):
        sig.fire(sim)


def test_signal_fail_raises_in_waiter():
    sim = Simulator()
    sig = Signal()

    class Boom(Exception):
        pass

    def waiter():
        try:
            yield sig
        except Boom:
            return "caught"

    w = sim.spawn(waiter())
    sim.schedule(5, sig.fail, sim, Boom())
    sim.run()
    assert w.result == "caught"


def test_join_returns_child_result():
    sim = Simulator()

    def child():
        yield Timeout(30)
        return "done"

    def parent():
        c = sim.spawn(child())
        result = yield c
        return (sim.now, result)

    p = sim.spawn(parent())
    sim.run()
    assert p.result == (30, "done")


def test_join_already_finished_child():
    sim = Simulator()

    def child():
        yield Timeout(1)
        return 7

    c = sim.spawn(child())

    def parent():
        yield Timeout(100)
        result = yield c
        return result

    p = sim.spawn(parent())
    sim.run()
    assert p.result == 7


def test_child_failure_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield Timeout(1)
        raise ValueError("child blew up")

    def parent():
        c = sim.spawn(child())
        with pytest.raises(ProcessFailed):
            yield c
        return "survived"

    p = sim.spawn(parent())
    sim.run()
    assert p.result == "survived"


def test_unjoined_failure_surfaces_from_run():
    sim = Simulator()

    def child():
        yield Timeout(1)
        raise ValueError("unobserved")

    sim.spawn(child())
    with pytest.raises(ValueError, match="unobserved"):
        sim.run()


def test_yield_non_waitable_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(TypeError, match="non-waitable"):
        sim.run()


def test_kill_terminates_process():
    sim = Simulator()
    progressed = []

    def victim():
        yield Timeout(10)
        progressed.append(1)
        yield Timeout(10)
        progressed.append(2)

    v = sim.spawn(victim())
    sim.schedule(15, v.kill)
    sim.run()
    assert progressed == [1]
    assert not v.alive


def test_kill_can_be_caught_for_cleanup():
    sim = Simulator()
    cleaned = []

    def victim():
        try:
            yield Timeout(1000)
        finally:
            cleaned.append(True)

    v = sim.spawn(victim())
    sim.schedule(5, v.kill)
    sim.run()
    assert cleaned == [True]


def test_allof_waits_for_every_signal():
    sim = Simulator()
    sigs = [Signal(str(i)) for i in range(3)]

    def waiter():
        values = yield AllOf(sigs)
        return (sim.now, values)

    w = sim.spawn(waiter())
    sim.schedule(10, sigs[1].fire, sim, "b")
    sim.schedule(20, sigs[0].fire, sim, "a")
    sim.schedule(30, sigs[2].fire, sim, "c")
    sim.run()
    assert w.result == (30, ["a", "b", "c"])


def test_allof_all_already_fired():
    sim = Simulator()
    sigs = [Signal(), Signal()]
    sigs[0].fire(sim, 1)
    sigs[1].fire(sim, 2)

    def waiter():
        values = yield AllOf(sigs)
        return values

    w = sim.spawn(waiter())
    sim.run()
    assert w.result == [1, 2]


def test_anyof_returns_first_to_fire():
    sim = Simulator()
    sigs = [Signal(), Signal(), Signal()]

    def waiter():
        idx, value = yield AnyOf(sigs)
        return (sim.now, idx, value)

    w = sim.spawn(waiter())
    sim.schedule(25, sigs[2].fire, sim, "late2")
    sim.schedule(15, sigs[1].fire, sim, "first")
    sim.run()
    assert w.result == (15, 1, "first")


def test_on_exit_callback_runs():
    sim = Simulator()
    seen = []

    def prog():
        yield Timeout(10)
        return "r"

    p = sim.spawn(prog())
    p.on_exit(lambda proc: seen.append(proc.result))
    sim.run()
    assert seen == ["r"]


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        log = []

        def worker(i, delays):
            for d in delays:
                yield Timeout(d)
                log.append((sim.now, i))

        for i in range(4):
            sim.spawn(worker(i, [3, 5, 7, 2]))
        sim.run()
        return log

    assert build() == build()
