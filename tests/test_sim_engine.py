"""Unit tests for the discrete-event kernel (repro.sim.engine)."""

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(5, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_nested_scheduling_from_callback():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(7, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.schedule(3, outer)
    sim.run()
    assert seen == [("outer", 3), ("inner", 10)]


def test_schedule_zero_delay_fires_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(5, lambda: sim.schedule(0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [5]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_fractional_delay_rejected():
    # The clock is integer nanoseconds.  A fractional delay means a
    # calibration bug upstream; truncating it silently would let two runs
    # diverge on float rounding, so the kernel must raise instead.
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(2.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(2.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_later(0.25, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_at(0.25, lambda: None)
    assert sim.events_executed == 0 and sim._pending == 0


def test_integral_float_delay_coerced_exactly():
    # Floats that *are* integers (e.g. the result of round()) are accepted
    # and land on the integer clock.
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "a")
    sim.schedule_at(5.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == 5 and type(sim.now) is int


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(50, lambda: None)


def test_cancel_prevents_callback():
    sim = Simulator()
    fired = []
    ev = sim.schedule(10, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(10, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 100


def test_run_until_with_empty_agenda_advances_clock():
    sim = Simulator()
    sim.run(until=1234)
    assert sim.now == 1234


def test_max_events_livelock_detector():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_peek_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    ev.cancel()
    assert sim.peek() == 9


def test_peek_empty_returns_none():
    sim = Simulator()
    assert sim.peek() is None


def test_events_executed_counts_only_real_events():
    sim = Simulator()
    ev = sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    ev.cancel()
    sim.run()
    assert sim.events_executed == 1
