"""Point-to-point semantics tests: blocking/non-blocking, matching,
wildcards, ordering, eager vs rendezvous, truncation."""

import pytest

from repro.cluster import TestbedConfig, run_job
from repro.mpi import ANY_SOURCE, ANY_TAG, MPIError, TruncationError
from tests.mpi_helpers import run2, runN


def test_blocking_send_recv_payload():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=16, tag=3, payload=b"sixteen bytes!!!")
        else:
            st = yield from mpi.recv(source=0, capacity=64, tag=3)
            assert st.payload == b"sixteen bytes!!!"
            assert st.source == 0 and st.tag == 3 and st.size == 16
        return "ok"

    r = run2(prog)
    assert r.rank_results == ["ok", "ok"]


def test_isend_irecv_wait():
    def prog(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(1, size=8, tag=1, payload="async")
            yield from mpi.wait(req)
        else:
            req = yield from mpi.irecv(source=0, capacity=64, tag=1)
            st = yield from mpi.wait(req)
            assert st.payload == "async"

    run2(prog)


def test_pre_posted_receive_matches_later_send():
    def prog(mpi):
        if mpi.rank == 1:
            req = yield from mpi.irecv(source=0, capacity=64, tag=9)
            yield from mpi.compute(50_000)  # recv posted well before send
            st = yield from mpi.wait(req)
            assert st.payload == "late send"
        else:
            yield from mpi.compute(100_000)
            yield from mpi.send(1, size=9, tag=9, payload="late send")

    run2(prog)


def test_unexpected_message_matched_by_later_recv():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=5, tag=4, payload="early")
        else:
            yield from mpi.compute(200_000)  # message arrives unexpected
            st = yield from mpi.recv(source=0, capacity=64, tag=4)
            assert st.payload == "early"

    run2(prog)


def test_any_source_wildcard():
    def prog(mpi):
        if mpi.rank == 2:
            seen = set()
            for _ in range(2):
                st = yield from mpi.recv(source=ANY_SOURCE, capacity=64, tag=5)
                seen.add(st.source)
            assert seen == {0, 1}
        else:
            yield from mpi.send(2, size=4, tag=5, payload=mpi.rank)

    runN(prog, 3)


def test_any_tag_wildcard():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=4, tag=77, payload="x")
        else:
            st = yield from mpi.recv(source=0, capacity=64, tag=ANY_TAG)
            assert st.tag == 77

    run2(prog)


def test_tag_selectivity():
    """A recv for tag B must not match an earlier tag-A message."""

    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=4, tag=1, payload="A")
            yield from mpi.send(1, size=4, tag=2, payload="B")
        else:
            st_b = yield from mpi.recv(source=0, capacity=64, tag=2)
            st_a = yield from mpi.recv(source=0, capacity=64, tag=1)
            assert st_b.payload == "B"
            assert st_a.payload == "A"

    run2(prog)


def test_non_overtaking_same_envelope():
    """Messages with identical envelopes arrive in send order."""

    def prog(mpi):
        n = 50
        if mpi.rank == 0:
            for i in range(n):
                yield from mpi.send(1, size=4, tag=6, payload=i)
        else:
            got = []
            for _ in range(n):
                st = yield from mpi.recv(source=0, capacity=64, tag=6)
                got.append(st.payload)
            assert got == list(range(n))

    run2(prog, prepost=4)  # small prepost: exercises backlog / flow control


def test_large_message_uses_rendezvous_and_delivers():
    size = 1 << 20

    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=size, payload="big-data", buffer_id="sbuf")
        else:
            st = yield from mpi.recv(source=0, capacity=size, buffer_id="rbuf")
            assert st.payload == "big-data"
            assert st.size == size

    r = run2(prog)
    # rendezvous control messages: RTS, CTS, FIN (+ barrier traffic)
    assert r.fc.data_msgs >= 1


def test_rendezvous_pinning_is_cached():
    """Second transfer from the same buffer must not re-register."""
    size = 1 << 20

    def prog(mpi):
        for _ in range(5):
            if mpi.rank == 0:
                yield from mpi.send(1, size=size, buffer_id="stable-s")
            else:
                yield from mpi.recv(source=0, capacity=size, buffer_id="stable-r")

    r = run2(prog)
    sender = r.endpoints[0]
    receiver = r.endpoints[1]
    assert sender.pindown.misses == 1
    assert sender.pindown.hits == 4
    assert receiver.pindown.misses == 1
    assert receiver.pindown.hits == 4


def test_mixed_eager_and_rendezvous_ordering():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=8, tag=1, payload="small-1")
            yield from mpi.send(1, size=100_000, tag=1, payload="big", buffer_id="b")
            yield from mpi.send(1, size=8, tag=1, payload="small-2")
        else:
            a = yield from mpi.recv(source=0, capacity=200_000, tag=1)
            b = yield from mpi.recv(source=0, capacity=200_000, tag=1, buffer_id="r")
            c = yield from mpi.recv(source=0, capacity=200_000, tag=1)
            assert (a.payload, b.payload, c.payload) == ("small-1", "big", "small-2")

    run2(prog)


def test_truncation_raises():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=1000, payload="x")
        else:
            yield from mpi.recv(source=0, capacity=10)

    with pytest.raises(TruncationError):
        run2(prog)


def test_send_to_self_rejected():
    def prog(mpi):
        yield from mpi.send(mpi.rank, size=4)

    with pytest.raises(MPIError):
        run2(prog, finalize=False)


def test_send_to_unknown_rank_rejected():
    def prog(mpi):
        yield from mpi.send(99, size=4)

    with pytest.raises(MPIError):
        run2(prog, finalize=False)


def test_negative_size_rejected():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=-5)
        else:
            yield from mpi.recv(source=0, capacity=64)

    with pytest.raises(MPIError):
        run2(prog, finalize=False)


def test_waitall_multiple_requests():
    def prog(mpi):
        if mpi.rank == 0:
            reqs = []
            for i in range(10):
                r = yield from mpi.isend(1, size=4, tag=i, payload=i)
                reqs.append(r)
            yield from mpi.waitall(reqs)
        else:
            reqs = []
            for i in range(10):
                r = yield from mpi.irecv(source=0, capacity=64, tag=i)
                reqs.append(r)
            statuses = yield from mpi.waitall(reqs)
            assert [s.payload for s in statuses] == list(range(10))

    run2(prog)


def test_test_and_iprobe():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.compute(100_000)
            yield from mpi.send(1, size=4, tag=42, payload="probe-me")
        else:
            st = yield from mpi.iprobe(source=0, tag=42)
            assert st is None  # nothing yet
            req = yield from mpi.irecv(source=0, capacity=64, tag=42)
            done, _ = yield from mpi.test(req)
            # eventually completes
            status = yield from mpi.wait(req)
            assert status.payload == "probe-me"

    run2(prog)


def test_exchange_both_directions_simultaneously():
    def prog(mpi):
        peer = 1 - mpi.rank
        rreq = yield from mpi.irecv(source=peer, capacity=64, tag=1)
        sreq = yield from mpi.isend(peer, size=4, tag=1, payload=f"from{mpi.rank}")
        statuses = yield from mpi.waitall([rreq, sreq])
        assert statuses[0].payload == f"from{peer}"

    run2(prog)


def test_many_ranks_ring():
    def prog(mpi):
        nxt = (mpi.rank + 1) % mpi.world_size
        prv = (mpi.rank - 1) % mpi.world_size
        rreq = yield from mpi.irecv(source=prv, capacity=64, tag=0)
        yield from mpi.send(nxt, size=4, tag=0, payload=mpi.rank)
        st = yield from mpi.wait(rreq)
        assert st.payload == prv

    runN(prog, 8)


def test_zero_byte_message():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=0, tag=1)
        else:
            st = yield from mpi.recv(source=0, capacity=0, tag=1)
            assert st.size == 0

    run2(prog)


def test_eager_threshold_boundary():
    """Payloads exactly at and one over the eager max both deliver."""
    cfg = TestbedConfig(nodes=2)
    emax = cfg.mpi.eager_max()

    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=emax, tag=1, payload="at")
            yield from mpi.send(1, size=emax + 1, tag=1, payload="over", buffer_id="b")
        else:
            a = yield from mpi.recv(source=0, capacity=emax + 10, tag=1)
            b = yield from mpi.recv(source=0, capacity=emax + 10, tag=1, buffer_id="r")
            assert a.payload == "at" and b.payload == "over"

    run2(prog, config=cfg)
