"""Tests for the RDMA-write-based eager channel (the [13] companion design
the paper says its results transfer to)."""

import pytest

from repro.cluster import TestbedConfig, run_job
from repro.core import DynamicScheme
from repro.sim.units import to_us
from repro.workloads import latency_program


def rdma_config(nodes=2, **mpi_kw):
    cfg = TestbedConfig(nodes=nodes)
    cfg.mpi.use_rdma_channel = True
    for k, v in mpi_kw.items():
        setattr(cfg.mpi, k, v)
    return cfg


def test_rdma_channel_latency_anchor():
    """The companion paper's headline: ~6.8 us small-message latency vs
    the send/recv design's ~7.5 us."""
    r = run_job(latency_program(4, iterations=50), 2, "static", prepost=100,
                config=rdma_config())
    lat = to_us(int(r.rank_results[0]))
    assert 6.3 < lat < 7.2
    base = run_job(latency_program(4, iterations=50), 2, "static", prepost=100,
                   config=TestbedConfig(nodes=2))
    assert lat < to_us(int(base.rank_results[0])) - 0.3


def test_payload_integrity_and_ordering():
    def prog(mpi):
        n = 60
        if mpi.rank == 0:
            for i in range(n):
                yield from mpi.send(1, size=4, tag=i % 3, payload=i)
        else:
            got = []
            for i in range(n):
                st = yield from mpi.recv(source=0, capacity=64, tag=i % 3)
                got.append(st.payload)
            assert got == list(range(n))

    run_job(prog, 2, "static", prepost=10, config=rdma_config())


def test_no_rnr_naks_ever():
    """The ring channel consumes no receive WQEs, so even a flooded busy
    receiver produces zero RNR NAKs — the design's core property."""

    def prog(mpi):
        if mpi.rank == 0:
            reqs = []
            for i in range(100):
                r_ = yield from mpi.isend(1, size=4, payload=i)
                reqs.append(r_)
            yield from mpi.waitall(reqs)
        else:
            for i in range(100):
                yield from mpi.recv(source=0, capacity=64)
                yield from mpi.compute(8_000)

    r = run_job(prog, 2, "static", prepost=4, config=rdma_config())
    assert r.fc.rnr_naks == 0
    assert r.fc.backlogged_msgs > 0  # credits still throttle the sender


def test_dynamic_growth_resizes_ring():
    """The paper §7: growing in the RDMA design needs *cooperation* — a
    new ring plus a RING_RESIZE notification."""

    def prog(mpi):
        if mpi.rank == 0:
            reqs = []
            for i in range(150):
                r_ = yield from mpi.isend(1, size=4, payload=i)
                reqs.append(r_)
            yield from mpi.waitall(reqs)
        else:
            for i in range(150):
                yield from mpi.recv(source=0, capacity=64)
                yield from mpi.compute(6_000)

    r = run_job(prog, 2, DynamicScheme(), prepost=1, config=rdma_config())
    ch = r.endpoints[1].connections[0].rx_channel
    assert ch.resizes >= 1
    assert ch.ring.slots > 1
    # the sender learned the new coordinates
    sender_conn = r.endpoints[0].connections[1]
    assert sender_conn.tx_ring_slots == ch.ring.slots
    assert sender_conn.tx_ring_addr == ch.ring.mr.addr


def test_mixed_eager_ring_and_rendezvous():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=8, tag=1, payload="small")
            yield from mpi.send(1, size=100_000, tag=1, payload="big", buffer_id="b")
            yield from mpi.send(1, size=8, tag=1, payload="small2")
        else:
            a = yield from mpi.recv(source=0, capacity=200_000, tag=1)
            b = yield from mpi.recv(source=0, capacity=200_000, tag=1, buffer_id="r")
            c = yield from mpi.recv(source=0, capacity=200_000, tag=1)
            assert (a.payload, b.payload, c.payload) == ("small", "big", "small2")

    run_job(prog, 2, "static", prepost=10, config=rdma_config())


def test_collectives_over_rdma_channel():
    def prog(mpi):
        total = yield from mpi.allreduce(size=8, value=mpi.rank, op=lambda a, b: a + b)
        gathered = yield from mpi.allgather(size=16, value=mpi.rank * 2)
        return (total, gathered)

    r = run_job(prog, 8, "dynamic", prepost=2, config=rdma_config(nodes=8))
    for total, gathered in r.rank_results:
        assert total == 28
        assert gathered == [i * 2 for i in range(8)]


def test_rdma_channel_with_on_demand_connections():
    def prog(mpi):
        peer = 1 - mpi.rank
        if mpi.rank == 0:
            yield from mpi.send(peer, size=16, payload="lazy+ring")
        else:
            st = yield from mpi.recv(source=peer, capacity=64)
            assert st.payload == "lazy+ring"

    r = run_job(prog, 2, "static", prepost=5, config=rdma_config(),
                on_demand=True)
    assert r.connections_established == 1


def test_busy_flood_deterministic():
    def prog(mpi):
        peer = 1 - mpi.rank
        for i in range(30):
            if mpi.rank == 0:
                yield from mpi.send(peer, size=4, payload=i)
            else:
                yield from mpi.recv(source=peer, capacity=64)

    a = run_job(prog, 2, "dynamic", prepost=2, config=rdma_config())
    b = run_job(prog, 2, "dynamic", prepost=2, config=rdma_config())
    assert a.elapsed_ns == b.elapsed_ns
