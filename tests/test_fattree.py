"""Tests for the fat-tree fabric and scaling experiments on it."""

import pytest

from repro.cluster import TestbedConfig, run_job
from repro.ib import FatTreeFabric, IBConfig, Opcode, RecvWR, SendWR
from repro.ib.fabric import FabricError
from repro.ib.hca import HCA
from repro.sim import Simulator
from repro.workloads import latency_program


def build_tree(nodes=16, leaf_ports=8, spines=2, cfg=None):
    sim = Simulator()
    fabric = FatTreeFabric(sim, cfg or IBConfig(), leaf_ports=leaf_ports,
                           spines=spines)
    hcas = [HCA(sim, fabric, lid) for lid in range(nodes)]
    return sim, fabric, hcas


def one_way(sim, fabric, hcas, src, dst, nbytes=64):
    cq_s = hcas[src].create_cq()
    cq_d = hcas[dst].create_cq()
    qp_s = hcas[src].create_qp(cq_s)
    qp_d = hcas[dst].create_qp(cq_d)
    qp_s.connect(dst, qp_d.qp_num)
    qp_d.connect(src, qp_s.qp_num)
    qp_d.post_recv(RecvWR(wr_id="r", capacity=nbytes))
    t0 = sim.now
    qp_s.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=nbytes, payload="x"))
    arrival = {}
    orig = cq_d.push

    def snoop(wc):
        arrival["t"] = sim.now
        orig(wc)

    cq_d.push = snoop
    sim.run(max_events=1_000_000)
    assert cq_d.poll()[0].ok
    return arrival["t"] - t0


def test_same_leaf_faster_than_cross_leaf():
    sim, fabric, hcas = build_tree()
    intra = one_way(sim, fabric, hcas, 0, 1)  # same leaf (0..7)
    sim2, fabric2, hcas2 = build_tree()
    inter = one_way(sim2, fabric2, hcas2, 0, 9)  # leaf 0 -> leaf 1
    assert inter > intra
    # two extra switch hops
    cfg = IBConfig()
    assert inter - intra >= 2 * cfg.switch_delay_ns


def test_leaf_of_and_spine_choice_deterministic():
    _, fabric, _ = build_tree(leaf_ports=4, spines=3)
    assert fabric.leaf_of(0) == 0
    assert fabric.leaf_of(3) == 0
    assert fabric.leaf_of(4) == 1
    assert fabric._spine_for(7) == 7 % 3
    assert fabric._spine_for(7) == fabric._spine_for(7)  # flow stays ordered


def test_cross_leaf_counter():
    sim, fabric, hcas = build_tree()
    one_way(sim, fabric, hcas, 0, 1)
    assert fabric.cross_leaf_msgs == 0
    sim2, fabric2, hcas2 = build_tree()
    one_way(sim2, fabric2, hcas2, 0, 15)
    assert fabric2.cross_leaf_msgs >= 1


def test_uplink_contention_serialises_cross_leaf_flows():
    """Two hosts on one leaf sending to hosts behind the same spine uplink
    share it; same-leaf traffic would not."""
    nbytes = 1 << 20
    sim, fabric, hcas = build_tree()
    done = []
    for src, dst in ((0, 8), (1, 10)):  # both cross leaf0 -> leaf1, spine 0
        cq_s = hcas[src].create_cq()
        cq_d = hcas[dst].create_cq()
        qp_s = hcas[src].create_qp(cq_s)
        qp_d = hcas[dst].create_qp(cq_d)
        qp_s.connect(dst, qp_d.qp_num)
        qp_d.connect(src, qp_s.qp_num)
        qp_d.post_recv(RecvWR(wr_id="r", capacity=nbytes))
        orig = cq_d.push

        def snoop(wc, orig=orig):
            done.append(sim.now)
            orig(wc)

        cq_d.push = snoop
        qp_s.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=nbytes))
    sim.run(max_events=1_000_000)
    assert len(done) == 2
    ser = nbytes / IBConfig().effective_bytes_per_ns()
    # the second flow finishes roughly one serialisation later
    assert max(done) - min(done) > 0.8 * ser


def test_shared_uplink_is_one_queue_for_all_cross_leaf_flows():
    """Congestion model: every cross-leaf flow through the same spine
    shares ONE uplink PortQueue object — not one queue per flow — which
    is what makes PFC head-of-line blocking possible at all."""
    from repro.congestion import CongestionState, make_congestion_config

    sim, fabric, _ = build_tree(nodes=8, leaf_ports=4, spines=1)
    state = CongestionState(sim, fabric, make_congestion_config("pfc"))
    p04 = state.path_for(0, 4)  # leaf 0 -> leaf 1
    p15 = state.path_for(1, 5)  # different src AND different dst
    up04 = [p for p in p04 if p.key[0] == "up"]
    up15 = [p for p in p15 if p.key[0] == "up"]
    assert len(up04) == len(up15) == 1
    assert up04[0] is up15[0]  # the same object, not an equal twin
    assert up04[0].key == ("up", 0, 0)
    # ...while injection and final egress ports stay per-endpoint
    assert p04[0] is not p15[0]
    assert p04[-1] is not p15[-1]
    # same-leaf traffic never touches the uplink
    assert all(p.key[0] in ("hup", "down") for p in state.path_for(4, 5))


def test_multi_sender_uplink_contention_queues_at_the_uplink():
    """Three hot flows + a victim into one spine uplink: the shared
    uplink queue (interior port) is the depth hotspot, deeper than any
    destination's own egress queue."""
    from repro.cluster import run_job as run
    from repro.congestion import make_congestion_config
    from repro.faults import FaultPlan
    from repro.sim.units import us
    from repro.workloads import manyflows_program

    cfg = TestbedConfig(nodes=8, topology="fat-tree", leaf_ports=4, spines=1)
    cfg.ib.congestion = make_congestion_config("pfc")
    flows = [(0, 4, 20, 1024), (1, 4, 20, 1024), (2, 4, 20, 1024),
             (3, 5, 6, 1024)]
    r = run(manyflows_program(flows), 8, "hardware", prepost=8, config=cfg,
            faults=FaultPlan(seed=7, transport_timeout_ns=us(20_000)))
    assert r.completed
    cong = r.congestion
    assert cong.pause_frames > 0
    per_dest_peak = max(d["depth_peak_bytes"] for d in cong.per_dest.values())
    assert cong.depth_peak_bytes > per_dest_peak


def test_invalid_tree_params():
    with pytest.raises(FabricError):
        FatTreeFabric(Simulator(), IBConfig(), leaf_ports=0)
    with pytest.raises(ValueError):
        TestbedConfig(topology="hypercube")


def test_mpi_latency_on_fat_tree_cluster():
    cfg = TestbedConfig(nodes=16, topology="fat-tree", leaf_ports=8, spines=2)
    r = run_job(latency_program(4, iterations=20), 2, "static", prepost=50,
                config=cfg)
    # ranks 0 and 1 share leaf 0: latency ≈ the crossbar testbed's
    assert 6_000 < r.rank_results[0] < 9_000


def test_dynamic_scheme_on_64_rank_fat_tree():
    """The paper's scaling question: the dynamic scheme's buffer footprint
    on a larger cluster still tracks the communication graph (a ring),
    not the 64x63 connection mesh."""
    cfg = TestbedConfig(nodes=64, topology="fat-tree", leaf_ports=8, spines=4)

    def ring(mpi):
        nxt = (mpi.rank + 1) % mpi.world_size
        prv = (mpi.rank - 1) % mpi.world_size
        for i in range(3):
            rreq = yield from mpi.irecv(source=prv, capacity=2048, tag=i)
            yield from mpi.send(nxt, size=1024, tag=i)
            yield from mpi.wait(rreq)
        return "ok"

    r = run_job(ring, 64, "dynamic", prepost=1, config=cfg, on_demand=True,
                finalize=False)  # the finalize barrier would wire log-P extra pairs
    assert r.rank_results == ["ok"] * 64
    assert r.connections_established == 64  # ring pairs only, not 2016
    total_buffers = sum(
        c.recv_posted for ep in r.endpoints for c in ep.connections.values()
    )
    # 128 directed connections x (1 credit + headroom 3) = 512, vs a full
    # mesh's 64*63*4 = 16128 — the scalability headline.
    assert total_buffers <= 600
