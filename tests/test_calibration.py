"""Calibration anchors: the simulated testbed must reproduce the paper's
measured micro-benchmark numbers before any flow-control comparison means
anything.

Anchors (paper §6.1-6.2, for the send/recv-based implementation):

* ~7.5 µs one-way 4-byte MPI latency (their RDMA-based variant did 6.8 µs;
  this repo models the send/recv-based one the paper studies);
* peak large-message bandwidth in the mid-800s MB/s (4X link, PCI-X
  64/133 host bus is the bottleneck);
* latency dominated by per-message overheads below ~1 KB, by wire/copy
  time above.
"""

import pytest

from repro.cluster import TestbedConfig, run_job
from repro.ib.types import IBConfig, LinkRate
from repro.sim.units import mb_per_s, to_us
from repro.workloads import bandwidth_program, latency_program


@pytest.fixture(scope="module")
def cfg():
    return TestbedConfig(nodes=2)


def one_way_us(cfg, size, iters=40):
    r = run_job(latency_program(size, iterations=iters), 2, "static",
                prepost=100, config=cfg)
    return to_us(int(r.rank_results[0]))


def test_small_message_latency_anchor(cfg):
    lat = one_way_us(cfg, 4)
    assert 7.0 < lat < 8.0, f"4-byte latency {lat:.2f} us off the ~7.5 us anchor"


def test_peak_bandwidth_anchor(cfg):
    r = run_job(
        bandwidth_program(1 << 20, window=4, repetitions=5, blocking=False),
        2, "static", prepost=100, config=cfg,
    )
    bw = r.rank_results[0].mbps
    assert 780 < bw < 920, f"peak bandwidth {bw:.0f} MB/s off the ~850 MB/s anchor"


def test_latency_regimes(cfg):
    """Sub-KB latencies are overhead-bound (flat-ish); large sizes are
    bandwidth-bound (linear-ish)."""
    l4 = one_way_us(cfg, 4)
    l512 = one_way_us(cfg, 512)
    l64k = one_way_us(cfg, 1 << 16, iters=10)
    l128k = one_way_us(cfg, 1 << 17, iters=10)
    assert l512 < 1.25 * l4  # overhead-dominated regime
    # bandwidth-dominated regime: doubling size ≈ doubles the wire part
    assert 1.5 < l128k / l64k < 2.3


def test_1x_link_caps_bandwidth():
    cfg = TestbedConfig(nodes=2)
    cfg.ib.link_rate = LinkRate.X1  # 2.5 Gbit/s signalling → 0.25 B/ns
    r = run_job(
        bandwidth_program(1 << 20, window=4, repetitions=3, blocking=False),
        2, "static", prepost=100, config=cfg,
    )
    assert r.rank_results[0].mbps < 260


def test_rendezvous_threshold_visible_in_latency(cfg):
    """Crossing the eager→rendezvous boundary adds the handshake cost."""
    emax = cfg.mpi.eager_max()
    below = one_way_us(cfg, emax, iters=20)
    above = one_way_us(cfg, emax + 64, iters=20)
    assert above > below + 3.0  # RTS/CTS round trip appears


def test_intra_node_faster_than_inter_node():
    """Two ranks on one node (HCA loopback) beat two nodes via the switch."""
    loop_cfg = TestbedConfig(nodes=1)
    wire_cfg = TestbedConfig(nodes=2)
    loop = run_job(latency_program(4, iterations=30), 2, "static", 100, config=loop_cfg)
    wire = run_job(latency_program(4, iterations=30), 2, "static", 100, config=wire_cfg)
    assert loop.rank_results[0] < wire.rank_results[0]
