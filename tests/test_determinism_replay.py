"""Golden-replay determinism tests.

The simulator's regression story (and the perf harness in
``benchmarks/perf/``) rests on bit-identical replay: the same workload must
execute the same number of events, end at the same simulated instant, and
produce the same tracer statistics on every run — across processes,
machines, and kernel optimizations.  ``tests/golden/replay_golden.json``
pins snapshots taken before the hot-path overhaul; these tests replay each
workload and compare every field exactly (no tolerances).

Regenerating the fixture is a deliberate act: only do it when a change is
*meant* to alter the event stream (a model change, never an optimization),
and say so in the commit message.
"""

import dataclasses
import json
import os

import pytest

from repro.cluster import TestbedConfig, run_job
from repro.workloads import bandwidth_program
from repro.workloads.nas import lu

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "replay_golden.json")


def _snapshot(result):
    """The determinism-relevant view of a finished job."""
    sim = result.endpoints[0].sim
    return {
        "events_executed": sim.events_executed,
        "sim_now": sim.now,
        "tracer_summary": sim.tracer.summary(),
        "elapsed_ns": result.elapsed_ns,
        "fc": dataclasses.asdict(result.fc),
    }


def _run_rdma_ring():
    cfg = TestbedConfig(nodes=2)
    cfg.mpi.use_rdma_channel = True
    return run_job(
        bandwidth_program(4, 50, repetitions=10, blocking=False),
        2, "dynamic", prepost=8, config=cfg,
    )


#: name -> workload; must mirror the recipes the fixture was built from
WORKLOADS = {
    "lu_static_pp100": lambda: run_job(
        lu.build(timesteps=3), 8, "static", prepost=100),
    "lu_dynamic_pp10": lambda: run_job(
        lu.build(timesteps=2), 8, "dynamic", prepost=10),
    "lu_hardware_pp1": lambda: run_job(
        lu.build(timesteps=1), 8, "hardware", prepost=1),
    "bw4_nonblocking_pp10": lambda: run_job(
        bandwidth_program(4, 100, repetitions=20, blocking=False),
        2, "static", prepost=10),
    "bw4_rdma_ring": _run_rdma_ring,
}


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as f:
        return json.load(f)


def test_fixture_covers_every_workload(golden):
    assert set(golden) == set(WORKLOADS)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_replay_matches_golden(name, golden):
    got = _snapshot(WORKLOADS[name]())
    want = golden[name]
    # Field-by-field first so a failure names the drifted quantity.
    for key in want:
        assert got[key] == want[key], f"{name}: {key} drifted"
    assert got == want


def test_back_to_back_runs_are_bit_identical():
    """Two in-process runs of the LU proxy agree on every kernel-visible
    statistic — catches ordering that leaks through module/global state."""
    a = _snapshot(run_job(lu.build(timesteps=2), 8, "static", prepost=100))
    b = _snapshot(run_job(lu.build(timesteps=2), 8, "static", prepost=100))
    assert a["events_executed"] == b["events_executed"]
    assert a["sim_now"] == b["sim_now"]
    assert a["tracer_summary"] == b["tracer_summary"]
    assert a == b
