"""Regression tests for repro.core.stats aggregation edge cases."""

from repro.analysis import congestion_table
from repro.core.stats import (
    collect_congestion_report,
    collect_report,
    reset_counters,
)
from repro.sim.trace import Tracer


class _EndpointWithNoConnections:
    connections: dict = {}


def test_collect_report_empty_endpoint_list():
    report = collect_report([])
    assert report.avg_ecm_per_connection == 0.0
    assert report.total_msgs == 0
    assert report.ecm_msgs == 0


def test_collect_report_zero_connections_does_not_divide_by_zero():
    # A single-rank job (or on-demand mode before any traffic) has
    # endpoints but no connections; the ECM average must be 0.0, not a
    # ZeroDivisionError.
    report = collect_report([_EndpointWithNoConnections()])
    assert report.avg_ecm_per_connection == 0.0
    assert report.max_posted_buffers == 0


# ----------------------------------------------------------------------
# congestion report (duck-typed state, like collect_congestion_report)
# ----------------------------------------------------------------------
class _FakePort:
    def __init__(self, peak, drops=0):
        self.depth = 0
        self.peak_depth = peak
        self.drops = drops
        self.pause_frames_rx = 0


class _FakeFlow:
    def __init__(self, rate, min_seen):
        self.rate = rate
        self.min_rate_seen = min_seen


class _FakeState:
    def __init__(self):
        self.tracer = Tracer()
        t = self.tracer
        t.count("cong.pause_frame", ("hup", 1), 3)
        t.count("cong.resume_frame", ("hup", 1), 3)
        t.count("cong.xoff", ("down", 0), 2)
        t.count("cong.xon", ("down", 0), 2)
        t.count("cong.ecn_mark", ("down", 0), 5)
        t.count("cong.cnp", (1, 0), 4)
        t.count("cong.drop", ("down", 2), 1)
        self.ports = {
            ("down", 0): _FakePort(peak=9000),
            ("down", 2): _FakePort(peak=400, drops=1),
            ("down", 10): _FakePort(peak=100),
            ("hup", 1): _FakePort(peak=20000),  # interior/injection port
        }
        self.flows = {(1, 0): _FakeFlow(rate=0.5, min_seen=0.25)}

    def reset_counters(self):
        for port in self.ports.values():
            port.peak_depth = port.depth
            port.drops = 0
        for flow in self.flows.values():
            flow.min_rate_seen = flow.rate
        counters = self.tracer.counters
        for name in [n for n in counters if n.startswith("cong.")]:
            del counters[name]


def test_collect_congestion_report_totals_and_per_dest():
    report = collect_congestion_report(_FakeState())
    assert report.pause_frames == 3
    assert report.resume_frames == 3
    assert report.xoff_events == report.xon_events == 2
    assert report.ecn_marks == 5
    assert report.cnps == 4
    assert report.drops == 1
    assert report.min_flow_rate == 0.25
    # the global peak covers interior ports, per_dest only "down" ports
    assert report.depth_peak_bytes == 20000
    assert set(report.per_dest) == {"0", "2", "10"}
    assert report.per_dest["0"] == {
        "depth_peak_bytes": 9000, "pauses": 2, "marks": 5, "drops": 0,
    }
    assert report.per_dest["2"]["drops"] == 1
    assert report.to_dict()["per_dest"]["0"]["marks"] == 5


def test_reset_counters_covers_congestion_state():
    state = _FakeState()
    reset_counters([], congestion=state)
    report = collect_congestion_report(state)
    assert report.pause_frames == 0
    assert report.xoff_events == 0
    assert report.drops == 0
    assert report.depth_peak_bytes == 0
    assert report.min_flow_rate == 0.5  # re-pinned to the live rate
    # disarmed clusters keep working: congestion=None is a no-op
    reset_counters([], congestion=None)


def test_congestion_table_sorts_destinations_numerically():
    report = collect_congestion_report(_FakeState())
    table = congestion_table(report.per_dest)
    names = [name for name, _ in table.rows]
    assert names == ["dst 0", "dst 2", "dst 10"]  # numeric, not lexicographic
    assert table.value("dst 0", "marks") == 5
    assert table.value("dst 2", "drops") == 1
    assert "depth_peak_bytes" in table.render()
