"""Regression tests for repro.core.stats aggregation edge cases."""

from repro.core.stats import collect_report


class _EndpointWithNoConnections:
    connections: dict = {}


def test_collect_report_empty_endpoint_list():
    report = collect_report([])
    assert report.avg_ecm_per_connection == 0.0
    assert report.total_msgs == 0
    assert report.ecm_msgs == 0


def test_collect_report_zero_connections_does_not_divide_by_zero():
    # A single-rank job (or on-demand mode before any traffic) has
    # endpoints but no connections; the ECM average must be 0.0, not a
    # ZeroDivisionError.
    report = collect_report([_EndpointWithNoConnections()])
    assert report.avg_ecm_per_connection == 0.0
    assert report.max_posted_buffers == 0
