"""Tests for the analysis/report helpers used by the benchmark harness."""

import pytest

from repro.analysis import Figure, Series, Table, pct_change


def test_series_add_and_lookup():
    s = Series("curve")
    s.add(1, 10.0)
    s.add(2, 20.0)
    assert s.y_at(1) == 10.0
    assert s.ys == [10.0, 20.0]
    with pytest.raises(KeyError):
        s.y_at(99)


def test_series_add_replaces_point_at_existing_x():
    # Regression: ``add`` used to append silently, so a re-run sweep cell
    # left a stale duplicate whose first value won on render.
    s = Series("curve")
    s.add(1, 10.0)
    s.add(2, 20.0)
    s.add(1, 11.5)  # the refreshed cell overwrites the stale point
    assert s.y_at(1) == 11.5
    assert s.points == [(1, 11.5), (2, 20.0)]  # no duplicate, order kept


def test_figure_rerun_cell_overwrites_stale_point():
    fig = Figure("T", xlabel="n", ylabel="v")
    fig.add("a", 4, 1.0)
    fig.add("a", 4, 2.5)  # re-run of the same cell
    assert fig.series_named("a").y_at(4) == 2.5
    assert fig.render().count(" 4 ") <= 1  # the x row appears once


def _column_starts(text):
    """Index of every ``|`` separator per rendered row."""
    rows = [l for l in text.splitlines() if "|" in l]
    return [[i for i, ch in enumerate(r) if ch == "|"] for r in rows]


def test_figure_collects_series_and_renders():
    fig = Figure("T", xlabel="n", ylabel="v")
    fig.add("a", 1, 1.0)
    fig.add("a", 2, 2.0)
    fig.add("b", 1, 3.0)
    text = fig.render()
    assert "T" in text
    assert "a" in text and "b" in text
    assert fig.series_named("a").y_at(2) == 2.0


def test_figure_renders_missing_points_as_blank():
    fig = Figure("T")
    fig.add("a", 1, 1.0)
    fig.add("b", 2, 2.0)
    text = fig.render()
    assert text.count("\n") >= 4  # header + separator + two x rows


def test_figure_render_aligns_with_custom_fmt_width():
    # Regression: blank cells were hardcoded to 12 spaces, so any custom
    # ``fmt`` wider or narrower than 12 skewed every later column on
    # rows with missing points.
    fig = Figure("T", xlabel="n", ylabel="v")
    fig.add("a", 1, 1.0)       # b missing at x=1
    fig.add("b", 2, 2.0)       # a missing at x=2
    for fmt in ("{:>18.6f}", "{:>6.1f}"):
        starts = _column_starts(fig.render(fmt=fmt))
        assert len(starts) >= 3  # header + two data rows
        assert all(s == starts[0] for s in starts[1:]), fmt


def test_figure_render_aligns_long_series_labels():
    # Regression: labels wider than the hardcoded 12-char cell broke
    # header/row alignment.
    fig = Figure("T", xlabel="n", ylabel="v")
    fig.add("a-very-long-series-label", 1, 1.0)
    fig.add("short", 1, 2.0)
    fig.add("short", 2, 3.0)  # long series missing at x=2
    text = fig.render()
    starts = _column_starts(text)
    assert all(s == starts[0] for s in starts[1:])
    header = text.splitlines()[2]
    assert "a-very-long-series-label" in header


def test_table_roundtrip_and_validation():
    t = Table("Tab", ["c1", "c2"])
    t.add_row("r1", 1, 2.5)
    t.add_row("r2", 3, 4.5)
    assert t.value("r1", "c2") == 2.5
    assert t.value("r2", "c1") == 3
    with pytest.raises(KeyError):
        t.value("nope", "c1")
    with pytest.raises(ValueError):
        t.add_row("bad", 1)
    text = t.render()
    assert "Tab" in text and "r1" in text and "c2" in text


def test_pct_change():
    assert pct_change(110, 100) == pytest.approx(10.0)
    assert pct_change(90, 100) == pytest.approx(-10.0)
    assert pct_change(5, 0) == 0.0
