"""Tests for the analysis/report helpers used by the benchmark harness."""

import pytest

from repro.analysis import Figure, Series, Table, pct_change


def test_series_add_and_lookup():
    s = Series("curve")
    s.add(1, 10.0)
    s.add(2, 20.0)
    assert s.y_at(1) == 10.0
    assert s.ys == [10.0, 20.0]
    with pytest.raises(KeyError):
        s.y_at(99)


def test_figure_collects_series_and_renders():
    fig = Figure("T", xlabel="n", ylabel="v")
    fig.add("a", 1, 1.0)
    fig.add("a", 2, 2.0)
    fig.add("b", 1, 3.0)
    text = fig.render()
    assert "T" in text
    assert "a" in text and "b" in text
    assert fig.series_named("a").y_at(2) == 2.0


def test_figure_renders_missing_points_as_blank():
    fig = Figure("T")
    fig.add("a", 1, 1.0)
    fig.add("b", 2, 2.0)
    text = fig.render()
    assert text.count("\n") >= 4  # header + separator + two x rows


def test_table_roundtrip_and_validation():
    t = Table("Tab", ["c1", "c2"])
    t.add_row("r1", 1, 2.5)
    t.add_row("r2", 3, 4.5)
    assert t.value("r1", "c2") == 2.5
    assert t.value("r2", "c1") == 3
    with pytest.raises(KeyError):
        t.value("nope", "c1")
    with pytest.raises(ValueError):
        t.add_row("bad", 1)
    text = t.render()
    assert "Tab" in text and "r1" in text and "c2" in text


def test_pct_change():
    assert pct_change(110, 100) == pytest.approx(10.0)
    assert pct_change(90, 100) == pytest.approx(-10.0)
    assert pct_change(5, 0) == 0.0
