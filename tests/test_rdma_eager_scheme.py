"""Tests for the rdma-eager scheme: the RDMA-write ring-buffer eager
channel promoted to a first-class fourth flow-control scheme, plus the
eager-path bugfix sweep that rode along (two-flag slot layout, control
vs data stats split, actionable ``make_scheme`` errors).
"""

from types import SimpleNamespace

import pytest

from repro.check import Auditor, InvariantViolation
from repro.check import fuzz
from repro.cli import main
from repro.cluster import TestbedConfig, run_job
from repro.core import (
    DEFAULT_RECLAIM_WATERMARK,
    EXTENDED_SCHEMES,
    RdmaEagerScheme,
    make_scheme,
)
from repro.core.memory import (
    mesh_pinned_bytes,
    predicted_connection_bytes,
    qp_state_bytes,
)
from repro.faults import FaultPlan
from repro.mpi.endpoint import Endpoint
from repro.mpi.protocol import Header, MsgKind
from repro.mpi.rdma_channel import (
    SLOT_OVERHEAD_BYTES,
    encode_slot,
    slot_message_ready,
    tail_byte_poll,
)
from repro.recovery import RecoveryPolicy
from repro.sim.units import to_us, us
from repro.workloads import latency_program


# ----------------------------------------------------------------------
# registry: the fourth scheme is first-class
# ----------------------------------------------------------------------
def test_make_scheme_builds_rdma_eager():
    scheme = make_scheme("rdma-eager")
    assert isinstance(scheme, RdmaEagerScheme)
    assert scheme.name.value == "rdma-eager"
    assert scheme.uses_ring and scheme.uses_credits
    assert scheme.allows_rndv_fallback
    assert scheme.reclaim_watermark == DEFAULT_RECLAIM_WATERMARK


def test_extended_schemes_cover_all_four():
    assert [s.value for s in EXTENDED_SCHEMES] == [
        "hardware", "static", "dynamic", "rdma-eager"
    ]
    for name in EXTENDED_SCHEMES:
        assert make_scheme(name).name is name


def test_rdma_eager_rejects_bad_watermark():
    with pytest.raises(ValueError):
        RdmaEagerScheme(reclaim_watermark=0)


def test_make_scheme_unknown_names_the_valid_set():
    # Satellite bugfix: the bare ValueError told the caller nothing.
    with pytest.raises(ValueError, match="valid schemes"):
        make_scheme("teleport")
    try:
        make_scheme("teleport")
    except ValueError as err:
        for name in ("hardware", "static", "dynamic", "rdma-eager"):
            assert name in str(err)


def test_cli_rejects_unknown_scheme_with_exit_2(capsys):
    assert main(["latency", "--schemes", "teleport"]) == 2
    assert "invalid choice" in capsys.readouterr().err


def test_cli_runs_rdma_eager_end_to_end(capsys):
    rc = main(["latency", "--sizes", "4", "--iterations", "5",
               "--schemes", "rdma-eager"])
    assert rc == 0
    assert "rdma-eager" in capsys.readouterr().out


# ----------------------------------------------------------------------
# the two-flag slot layout (satellite bugfix: tail-byte polling missed
# zero-length and NUL-tailed messages)
# ----------------------------------------------------------------------
def _eager(size, payload=None, seq=0):
    return Header(kind=MsgKind.EAGER, src=0, dst=1, size=size,
                  payload=payload, seq=seq)


def test_slot_layout_detects_zero_length_message():
    h = _eager(0)
    slot = encode_slot(h)
    assert len(slot) == SLOT_OVERHEAD_BYTES
    assert slot_message_ready(slot)
    assert not tail_byte_poll(b"")  # the legacy poll spins forever


def test_slot_layout_detects_nul_tailed_payload():
    h = _eager(4, payload=b"ab\x00\x00")
    assert slot_message_ready(encode_slot(h))
    assert not tail_byte_poll(b"ab\x00\x00")  # legacy reads "not arrived"


def test_slot_layout_rejects_partial_write():
    slot = encode_slot(_eager(8, payload=b"x" * 8))
    assert slot_message_ready(slot)
    assert not slot_message_ready(slot[:-1])  # tail flag not landed yet
    assert not slot_message_ready(b"")
    assert not slot_message_ready(slot[1:])  # head flag not landed yet


def test_zero_byte_and_nul_tail_deliver_over_the_ring():
    """End-to-end regression: both adversarial shapes cross the ring, and
    the channel records that the replaced tail-byte poll would have
    missed them."""

    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=0, tag=0, payload=b"")
            yield from mpi.send(1, size=5, tag=1, payload=b"data\x00")
        else:
            a = yield from mpi.recv(source=0, capacity=64, tag=0)
            b = yield from mpi.recv(source=0, capacity=64, tag=1)
            assert a.size == 0
            assert b.payload == b"data\x00"

    r = run_job(prog, 2, "rdma-eager", prepost=4,
                config=TestbedConfig(nodes=2))
    ch = r.endpoints[1].connections[0].rx_channel
    assert ch.messages >= 2
    assert ch.tail_poll_misses >= 2


# ----------------------------------------------------------------------
# satellite bugfix: control-plane sends split out of the data stats
# ----------------------------------------------------------------------
def test_rendezvous_control_messages_are_not_data():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=100_000, payload="big", buffer_id="b")
            yield from mpi.send(1, size=8, payload="small")
        else:
            yield from mpi.recv(source=0, capacity=200_000, buffer_id="r")
            yield from mpi.recv(source=0, capacity=64)

    r = run_job(prog, 2, "static", prepost=10, config=TestbedConfig(nodes=2),
                finalize=False)
    fc = r.fc
    # one rendezvous handshake (RTS + CTS + FIN) and two data messages:
    # the rendezvous RDMA transfer itself plus the small eager send
    assert fc.control_msgs == 3
    assert fc.data_msgs == 2
    assert fc.control_msgs + fc.data_msgs + fc.ecm_msgs == fc.total_msgs
    assert 0.0 < fc.control_fraction < 1.0
    d = r.fc_dict()
    assert d["control_msgs"] == 3 and d["control_backlogged"] == 0


def test_eager_only_workload_has_zero_control_messages():
    r = run_job(latency_program(4, iterations=10), 2, "static", prepost=100,
                config=TestbedConfig(nodes=2))
    assert r.fc.control_msgs == 0
    assert r.fc.control_fraction == 0.0


# ----------------------------------------------------------------------
# scheme semantics: slot == credit, watermark ACK fallback, rendezvous
# ----------------------------------------------------------------------
def test_ring_full_blocks_sender_without_rnr_naks():
    """A flooded busy receiver: the slot accounting throttles the sender
    (backlog, not loss) and the ring never produces an RNR NAK."""

    def prog(mpi):
        if mpi.rank == 0:
            reqs = []
            for i in range(80):
                r_ = yield from mpi.isend(1, size=4, payload=i)
                reqs.append(r_)
            yield from mpi.waitall(reqs)
        else:
            for i in range(80):
                yield from mpi.recv(source=0, capacity=64)
                yield from mpi.compute(8_000)

    r = run_job(prog, 2, "rdma-eager", prepost=4, config=TestbedConfig(nodes=2))
    assert r.fc.rnr_naks == 0
    assert r.fc.backlogged_msgs > 0


def test_one_way_flood_reclaims_via_watermark_ecm():
    """No reverse traffic to piggyback on: the low-watermark explicit ACK
    is the only way slots come home, so it must fire."""

    def prog(mpi):
        n = 40
        if mpi.rank == 0:
            for i in range(n):
                yield from mpi.send(1, size=4, payload=i)
        else:
            for i in range(n):
                yield from mpi.recv(source=0, capacity=64)

    r = run_job(prog, 2, "rdma-eager", prepost=8, config=TestbedConfig(nodes=2))
    assert r.fc.ecm_msgs > 0
    # the explicit ACKs must carry real slot reclaims home; the only
    # reverse traffic is the rendezvous-fallback control plane (CTS/FIN),
    # whose piggybacks alone cannot sustain the flood
    assert r.fc.ecm_credits > 0


def test_ping_pong_reclaims_by_piggyback():
    r = run_job(latency_program(4, iterations=30), 2, "rdma-eager",
                prepost=8, config=TestbedConfig(nodes=2))
    assert r.fc.piggybacked_credits > 0


def test_larger_than_slot_messages_take_rendezvous():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=8, tag=1, payload="small")
            yield from mpi.send(1, size=100_000, tag=1, payload="big",
                                buffer_id="b")
            yield from mpi.send(1, size=8, tag=1, payload="small2")
        else:
            a = yield from mpi.recv(source=0, capacity=200_000, tag=1)
            b = yield from mpi.recv(source=0, capacity=200_000, tag=1,
                                    buffer_id="r")
            c = yield from mpi.recv(source=0, capacity=200_000, tag=1)
            assert (a.payload, b.payload, c.payload) == ("small", "big",
                                                         "small2")

    r = run_job(prog, 2, "rdma-eager", prepost=10, config=TestbedConfig(nodes=2))
    assert r.fc.control_msgs >= 3  # the big message's RTS/CTS/FIN


def test_small_message_latency_beats_send_recv_schemes():
    """The ICS'03 headline the scheme exists for: no receive WQE/CQE on
    the critical path."""
    ring = run_job(latency_program(4, iterations=50), 2, "rdma-eager",
                   prepost=100, config=TestbedConfig(nodes=2))
    base = run_job(latency_program(4, iterations=50), 2, "static",
                   prepost=100, config=TestbedConfig(nodes=2))
    assert to_us(int(ring.rank_results[0])) < to_us(int(base.rank_results[0])) - 0.3


# ----------------------------------------------------------------------
# auditor: ring-slot conservation / FIFO / leak
# ----------------------------------------------------------------------
def test_audited_rdma_eager_runs_clean():
    for seed in (11, 12, 13):
        spec = fuzz.generate_spec(seed)
        auditor = Auditor()
        run_job(fuzz.build_program(spec), spec["nranks"], "rdma-eager",
                prepost=spec["prepost"],
                config=TestbedConfig(nodes=spec["nranks"]), audit=auditor)
        assert auditor.violations == []
        assert auditor.hook_calls > 0


def test_out_of_order_slot_free_is_a_fifo_violation():
    aud = Auditor(strict=False)
    aud._sim = SimpleNamespace(now=0)
    channel = SimpleNamespace(peer=1, endpoint=SimpleNamespace(rank=0),
                              ring=SimpleNamespace(slots=4))
    h1, h2 = _eager(4, seq=1), _eager(4, seq=2)
    aud.on_ring_deposit(channel, h1)
    aud.on_ring_deposit(channel, h2)
    aud.on_ring_free(channel, h2)  # rings must free in order
    aud.on_ring_free(channel, h1)
    assert any(v.invariant == "ring-slot-fifo" for v in aud.violations)


def test_overfull_ring_is_a_conservation_violation():
    aud = Auditor(strict=False)
    aud._sim = SimpleNamespace(now=0)
    aud._uses_credits = True
    channel = SimpleNamespace(peer=1, endpoint=SimpleNamespace(rank=0),
                              ring=SimpleNamespace(slots=2))
    for seq in (1, 2, 3):  # three deposits into a two-slot ring
        aud.on_ring_deposit(channel, _eager(4, seq=seq))
    assert any(v.invariant == "ring-slot-conservation"
               for v in aud.violations)


def test_ring_slot_leak_is_caught_at_final_check(monkeypatch):
    """Mutant: the receiver processes a message but never reclaims its
    slot.  The credit ledger stays balanced (the grant is a separate
    act), so only the ring-slot-leak final check can catch this."""
    real_free = Endpoint._free_ring_slot
    leaked = []

    def leaky_free(self, conn, h):
        if not leaked:
            leaked.append(h.seq)  # silently forget the first slot
            return
        real_free(self, conn, h)

    monkeypatch.setattr(Endpoint, "_free_ring_slot", leaky_free)
    with pytest.raises(InvariantViolation) as exc:
        run_job(latency_program(4, iterations=5), 2, "rdma-eager",
                prepost=8, config=TestbedConfig(nodes=2), audit=True)
    assert exc.value.invariant == "ring-slot-leak"


# ----------------------------------------------------------------------
# differential fuzzing: the fourth scheme joins the delivery-equivalence
# matrix under every fault scenario
# ----------------------------------------------------------------------
def test_differential_fuzz_all_four_schemes_all_scenarios():
    summary = fuzz.run_fuzz(
        seed=3, runs=4, schemes=fuzz.EXTENDED_SCHEMES,
        scenarios=fuzz.SCENARIOS,  # none, stall, lossy, link-down
        out_dir="", log=None,
    )
    assert summary["failures"] == []
    assert len(summary["digests"]) == 4


@pytest.mark.parametrize("scenario", [None, "receiver-stall"])
def test_rdma_eager_matches_static_delivery(scenario):
    spec = fuzz.generate_spec(17, scenario)
    comparison = fuzz.compare_schemes(spec, ("static", "rdma-eager"))
    assert comparison["failure"] is None
    assert (comparison["results"]["rdma-eager"]["delivered"]
            == comparison["results"]["static"]["delivered"])


# ----------------------------------------------------------------------
# recovery: epoch-fenced ring re-establishment and replay
# ----------------------------------------------------------------------
def test_link_down_recovery_reestablishes_rings():
    plan = (FaultPlan(seed=5, transport_timeout_ns=us(40),
                      transport_retry_limit=3)
            .link_flap(lid=1, at_ns=us(30), duration_ns=us(500)))

    def prog(mpi):
        peer = 1 - mpi.rank
        n = 30
        if mpi.rank == 0:
            for i in range(n):
                yield from mpi.send(peer, size=16, tag=i % 4, payload=i)
        else:
            got = set()
            for i in range(n):
                st = yield from mpi.recv(source=peer, capacity=64,
                                         tag=i % 4)
                got.add(st.payload)
            assert got == set(range(n))

    r = run_job(prog, 2, "rdma-eager", prepost=4,
                config=TestbedConfig(nodes=2), faults=plan,
                recovery=RecoveryPolicy(max_attempts=12, seed=5),
                audit=True)
    assert r.completed
    assert r.recovery.recoveries_completed >= 1
    reest = sum(c.rx_channel.reestablishments
                for ep in r.endpoints for c in ep.connections.values())
    assert reest >= 2  # both halves of the pair got fresh rings
    assert r.audit.violations == []


@pytest.mark.parametrize("seed", [5, 7])
def test_link_down_recovery_matches_fault_free_delivery(seed):
    spec = fuzz.generate_spec(seed, "link-down")
    faulty = fuzz.run_spec(spec, "rdma-eager")
    clean_spec = dict(spec)
    clean_spec["faults"] = None
    clean_spec["recovery"] = False
    clean = fuzz.run_spec(clean_spec, "rdma-eager")
    assert clean["ok"], clean
    assert faulty["ok"], faulty
    assert faulty["violations"] == 0
    assert faulty["delivered"] == clean["delivered"]


# ----------------------------------------------------------------------
# memory accounting: ring bytes are pinned, measured == predicted
# ----------------------------------------------------------------------
def test_ring_memory_is_pinned_and_matches_closed_form():
    prepost = 6
    r = run_job(latency_program(4, iterations=5), 2, "rdma-eager",
                prepost=prepost, config=TestbedConfig(nodes=2))
    mem = r.memory
    cfg = TestbedConfig(nodes=2)
    mpi, ib = cfg.mpi, cfg.ib
    assert mem.ring_bytes == 2 * 2 * prepost * mpi.vbuf_bytes  # 2 conns x 2 rings
    # measured per-connection (pinned + qp + ring) == the closed form the
    # conservation story rests on
    per_conn = (mem.vbuf_pinned_bytes + mem.qp_bytes + mem.ring_bytes) // 2
    assert per_conn == predicted_connection_bytes("rdma-eager", prepost,
                                                  mpi, ib)
    assert mem.ring_bytes > 0
    assert mem.total_bytes >= mem.ring_bytes


def test_send_recv_schemes_pin_no_ring_bytes():
    r = run_job(latency_program(4, iterations=5), 2, "static", prepost=6,
                config=TestbedConfig(nodes=2))
    assert r.memory.ring_bytes == 0


def test_mesh_model_is_ring_aware():
    mpi = TestbedConfig().mpi
    ring = mesh_pinned_bytes(64, "rdma-eager", 1, mpi)
    plain = mesh_pinned_bytes(64, "hardware", 1, mpi)
    # control reserve + both ring halves per connection vs one vbuf
    assert ring == 64 * 63 * (mpi.rdma_control_bufs + 2) * mpi.vbuf_bytes
    assert plain == 64 * 63 * mpi.vbuf_bytes
    assert qp_state_bytes(TestbedConfig().ib) > 0


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_rdma_eager_runs_are_bit_identical():
    def once():
        return run_job(latency_program(64, iterations=20), 2, "rdma-eager",
                       prepost=8, config=TestbedConfig(nodes=2))

    a, b = once(), once()
    assert a.elapsed_ns == b.elapsed_ns
    assert a.endpoints[0].sim.events_executed == b.endpoints[0].sim.events_executed
