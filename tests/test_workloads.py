"""Tests for the workload programs: micro-benchmarks and NAS proxies."""

import pytest

from repro.cluster import TestbedConfig, run_job
from repro.sim.units import to_us
from repro.workloads import bandwidth_program, latency_program
from repro.workloads.nas import KERNEL_ORDER, KERNELS
from repro.workloads.nas.common import ComputeModel, coords_2d, grid_2d, rank_2d


# ----------------------------------------------------------------------
# micro-benchmarks
# ----------------------------------------------------------------------
def test_latency_program_returns_plausible_one_way():
    cfg = TestbedConfig(nodes=2)
    r = run_job(latency_program(4, iterations=30), 2, "static", prepost=50, config=cfg)
    assert 6.0 < to_us(int(r.rank_results[0])) < 9.0
    assert r.rank_results[1] is None


def test_latency_increases_with_size():
    cfg = TestbedConfig(nodes=2)
    small = run_job(latency_program(4, iterations=20), 2, "static", 50, config=cfg)
    big = run_job(latency_program(16384, iterations=20), 2, "static", 50, config=cfg)
    assert big.rank_results[0] > small.rank_results[0] * 2


@pytest.mark.parametrize("blocking", [True, False])
def test_bandwidth_program_moves_expected_bytes(blocking):
    cfg = TestbedConfig(nodes=2)
    r = run_job(
        bandwidth_program(1024, window=8, repetitions=5, blocking=blocking),
        2, "static", prepost=50, config=cfg,
    )
    res = r.rank_results[0]
    assert res.bytes_moved == 1024 * 8 * 5
    assert res.mbps > 0


def test_nonblocking_bandwidth_beats_blocking_for_large_messages():
    cfg = TestbedConfig(nodes=2)
    bl = run_job(bandwidth_program(32768, 16, 5, blocking=True), 2, "static", 50, config=cfg)
    nb = run_job(bandwidth_program(32768, 16, 5, blocking=False), 2, "static", 50, config=cfg)
    assert nb.rank_results[0].mbps > bl.rank_results[0].mbps


# ----------------------------------------------------------------------
# NAS proxy structure
# ----------------------------------------------------------------------
def test_grid_helpers():
    assert grid_2d(8) == (4, 2)
    assert grid_2d(16) == (4, 4)
    assert grid_2d(4) == (2, 2)
    assert grid_2d(2) == (2, 1)
    cols, _ = grid_2d(8)
    assert coords_2d(5, cols) == (1, 1)
    assert rank_2d(1, 1, cols) == 5


def test_compute_model_deterministic_and_bounded():
    cm = ComputeModel(seed=1, amplitude=0.05)
    f0 = cm.factor(0)
    assert cm.factor(0) == f0  # rank-stable
    for rank in range(16):
        assert 0.95 <= cm.factor(rank) <= 1.05
    assert cm.ns(0, 1000) == cm.ns(0, 1000)
    assert cm.ns(3, 0) >= 1


def test_compute_model_varies_across_ranks():
    cm = ComputeModel()
    factors = {cm.factor(r) for r in range(16)}
    assert len(factors) > 8  # jitter actually differentiates ranks


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_every_kernel_runs_and_terminates(name):
    """Smoke: every proxy completes on its canonical rank count with a
    reduced iteration budget, under the static scheme."""
    k = KERNELS[name]
    kwargs = {}
    if name in ("lu", "bt", "sp"):
        kwargs["timesteps"] = 2
    elif name == "cg":
        kwargs["outer"] = 1
    else:
        kwargs["iterations"] = 1
    r = run_job(k.build(**kwargs), k.nranks, "static", prepost=10)
    assert r.elapsed_ns > 0
    assert all(res is not None for res in r.rank_results)
    assert r.fc.total_msgs > 0


def test_bt_sp_require_square_rank_counts():
    with pytest.raises(ValueError):
        run_job(KERNELS["bt"].build(timesteps=1), 8, "static", prepost=10)


def test_lu_is_eager_dominated_and_ft_rendezvous_dominated():
    lu = run_job(KERNELS["lu"].build(timesteps=2), 8, "static", prepost=100)
    ft = run_job(KERNELS["ft"].build(iterations=1), 8, "static", prepost=100)
    # LU: thousands of small messages; FT: few large rendezvous transfers
    # moving far more bytes.
    assert lu.fc.total_msgs > ft.fc.total_msgs
    lu_bytes = sum(ep.bytes_sent for ep in lu.endpoints)
    ft_bytes = sum(ep.bytes_sent for ep in ft.endpoints)
    assert ft_bytes > lu_bytes


def test_kernels_deterministic():
    a = run_job(KERNELS["mg"].build(iterations=1), 8, "dynamic", prepost=2)
    b = run_job(KERNELS["mg"].build(iterations=1), 8, "dynamic", prepost=2)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.fc.total_msgs == b.fc.total_msgs


def test_compute_scale_scales_runtime():
    fast = run_job(KERNELS["is"].build(iterations=1, compute_scale=0.5), 8, "static", 10)
    slow = run_job(KERNELS["is"].build(iterations=1, compute_scale=2.0), 8, "static", 10)
    assert slow.elapsed_ns > 1.5 * fast.elapsed_ns
