"""Tests for the command-line interface."""

import json

from repro.cli import build_parser, main


def test_latency_command(capsys):
    rc = main(["latency", "--sizes", "4", "1024", "--iterations", "10",
               "--schemes", "static"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "MPI latency" in out
    assert "static" in out
    assert "1024" in out


def test_bandwidth_command(capsys):
    rc = main(["bandwidth", "--size", "4", "--windows", "1", "8",
               "--repetitions", "3", "--schemes", "hardware", "dynamic",
               "--prepost", "10"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bandwidth" in out
    assert "hardware" in out and "dynamic" in out


def test_bandwidth_blocking_flag(capsys):
    rc = main(["bandwidth", "--size", "4", "--windows", "2",
               "--repetitions", "2", "--schemes", "static", "--blocking"])
    assert rc == 0
    assert "blocking" in capsys.readouterr().out


def test_nas_command(capsys):
    rc = main(["nas", "--kernels", "is", "--schemes", "static", "-v"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "NAS proxy runtimes" in captured.out
    assert "is" in captured.out
    assert "ecm=" in captured.err  # verbose stats on stderr


def test_scaling_command(capsys):
    rc = main(["scaling", "--nodes", "16", "--iterations", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "on-demand" in out
    assert "full mesh" in out


def test_perf_command_writes_and_checks_report(tmp_path, capsys):
    out_path = tmp_path / "BENCH_perf.json"
    rc = main(["perf", "--workloads", "ring64", "--repeats", "1",
               "--out", str(out_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "events/s" in out and "ring64" in out
    report = json.loads(out_path.read_text())
    w = report["workloads"]["ring64"]
    assert w["events_executed"] > 0
    assert w["events_per_sec"] > 0

    # Self-comparison passes the regression gate (generous tolerance:
    # this asserts the plumbing + determinism check, not machine speed).
    rc = main(["perf", "--workloads", "ring64", "--repeats", "1",
               "--out", "", "--check", str(out_path), "--tolerance", "0.95"])
    assert rc == 0
    assert "no regression" in capsys.readouterr().out


def test_perf_profile_prints_hotspots(capsys):
    rc = main(["perf", "--profile", "--workloads", "ring64"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cProfile: ring64" in out
    assert "cumulative" in out
    # the event loop itself must show up in the top functions
    assert "engine.py" in out and "(run)" in out


def test_perf_check_fails_on_determinism_drift(tmp_path, capsys):
    out_path = tmp_path / "BENCH_perf.json"
    assert main(["perf", "--workloads", "ring64", "--repeats", "1",
                 "--out", str(out_path)]) == 0
    capsys.readouterr()
    doctored = json.loads(out_path.read_text())
    doctored["workloads"]["ring64"]["events_executed"] += 1
    out_path.write_text(json.dumps(doctored))
    rc = main(["perf", "--workloads", "ring64", "--repeats", "1",
               "--out", "", "--check", str(out_path), "--tolerance", "0.95"])
    assert rc == 1
    assert "determinism" in capsys.readouterr().err


def test_latency_command_parallel_workers_match_sequential(capsys):
    args = ["latency", "--sizes", "4", "--iterations", "5",
            "--schemes", "static", "dynamic"]
    assert main(args) == 0
    sequential = capsys.readouterr().out
    assert main(args + ["--workers", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == sequential  # worker cells are bit-identical


def test_sweep_list_command(capsys):
    assert main(["sweep", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "nas" in out and "chaos" in out


def test_sweep_requires_grid(capsys):
    assert main(["sweep"]) == 2
    assert "--grid" in capsys.readouterr().err


def test_sweep_cold_then_warm_cache(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    out = str(tmp_path / "sweep.jsonl")
    base = ["sweep", "--grid", "fig3-smoke", "--windows", "1", "2",
            "--repetitions", "2", "--cache-dir", cache, "--out", out]

    assert main(base) == 0
    err = capsys.readouterr().err
    assert "6 executed, 0 cached" in err

    # Warm re-run: served entirely from cache, bit-identical on --check.
    assert main(base + ["--check", "--require-all-cached"]) == 0
    err = capsys.readouterr().err
    assert "0 executed, 6 cached" in err
    assert "determinism check passed" in err

    # A cold cache fails the warm-cache assertion.
    assert main(base[:-4] + ["--cache-dir", str(tmp_path / "empty"),
                             "--out", out, "--require-all-cached"]) == 1
    assert "--require-all-cached" in capsys.readouterr().err


def test_sweep_check_fails_on_doctored_cache(tmp_path, capsys):
    from repro.campaign import ResultCache, grids

    cache_dir = str(tmp_path / "cache")
    out = str(tmp_path / "sweep.jsonl")
    base = ["sweep", "--grid", "fig2", "--schemes", "static",
            "--cache-dir", cache_dir, "--out", out]
    assert main(base) == 0
    capsys.readouterr()

    # Inject a nondeterministic result into one cached cell.
    cache = ResultCache(cache_dir)
    key = grids.latency_grid(schemes=["static"])[0].key
    record = cache.get(key)
    record["metrics"]["latency_ns"] += 0.5
    cache.put(key, record)

    assert main(base + ["--check"]) == 1
    err = capsys.readouterr().err
    assert "DETERMINISM DRIFT" in err and "CHECK MISMATCH" in err


def test_unknown_command_exits_2(capsys):
    # No exception escapes: argparse's error is surfaced as exit code 2
    # with the usage text on stderr.
    assert main(["teleport"]) == 2
    assert "usage:" in capsys.readouterr().err


def test_no_command_prints_usage_and_exits_2(capsys):
    assert main([]) == 2
    assert "usage:" in capsys.readouterr().err


def test_help_exits_0(capsys):
    assert main(["--help"]) == 0
    assert "chaos" in capsys.readouterr().out


def test_parser_help_lists_commands():
    parser = build_parser()
    help_text = parser.format_help()
    for cmd in ("latency", "bandwidth", "nas", "scaling", "chaos"):
        assert cmd in help_text
