"""Property tests of the RC transport: exactly-once, in-order delivery
under adversarial receive-buffer schedules (random posting times force
arbitrary RNR NAK / replay interleavings)."""

from hypothesis import given, settings, strategies as st

from repro.ib import IBConfig, Opcode, RecvWR, SendWR
from tests.ib_helpers import build_pair


@settings(max_examples=60, deadline=None)
@given(
    n_msgs=st.integers(1, 30),
    post_times=st.lists(st.integers(0, 400_000), min_size=30, max_size=30),
    timer_us=st.sampled_from([10, 40, 320]),
)
def test_exactly_once_in_order_under_random_buffer_schedules(
    n_msgs, post_times, timer_us
):
    """No matter when receive WQEs appear, every message is delivered
    exactly once, in order, and every send completes exactly once."""
    from repro.sim.units import us

    cfg = IBConfig(rnr_timer_ns=us(timer_us))
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)

    for i in range(n_msgs):
        qp0.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=64, payload=i))
    for i, t in enumerate(post_times[:n_msgs]):
        sim.schedule(t, qp1.post_recv, RecvWR(wr_id=i, capacity=2048))

    sim.run(max_events=5_000_000)

    received = [wc.data for wc in cq1.poll()]
    assert received == list(range(n_msgs)), "delivery must be exactly-once in-order"
    completed = [wc.wr_id for wc in cq0.poll() if wc.ok]
    assert completed == list(range(n_msgs)), "sends complete exactly once in order"
    assert qp0.outstanding_sends == 0


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.sampled_from([0, 4, 1024, 8192, 100_000]), min_size=1, max_size=15),
    seed=st.integers(0, 1000),
)
def test_mixed_sizes_preserve_order_and_payloads(sizes, seed):
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair()
    for i, size in enumerate(sizes):
        qp1.post_recv(RecvWR(wr_id=i, capacity=max(size, 1)))
    for i, size in enumerate(sizes):
        qp0.post_send(
            SendWR(wr_id=i, opcode=Opcode.SEND, length=size, payload=(seed, i))
        )
    sim.run(max_events=5_000_000)
    got = [(wc.data, wc.byte_len) for wc in cq1.poll()]
    assert got == [((seed, i), size) for i, size in enumerate(sizes)]


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["send", "write"]), st.integers(1, 4096)),
        min_size=1,
        max_size=20,
    )
)
def test_interleaved_send_and_rdma_ordering(ops):
    """SENDs and RDMA writes on the same QP complete in posting order at
    the requester (ordered RC channel)."""
    sim, _, hcas, qp0, qp1, cq0, cq1 = build_pair()
    mr = hcas[1].reg_mr(1 << 20)
    n_sends = sum(1 for kind, _ in ops if kind == "send")
    for i in range(n_sends):
        qp1.post_recv(RecvWR(wr_id=i, capacity=4096))
    for i, (kind, size) in enumerate(ops):
        if kind == "send":
            qp0.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=size, payload=i))
        else:
            qp0.post_send(
                SendWR(
                    wr_id=i,
                    opcode=Opcode.RDMA_WRITE,
                    length=size,
                    payload=i,
                    remote_addr=mr.addr,
                    rkey=mr.rkey,
                )
            )
    sim.run(max_events=5_000_000)
    completions = [wc.wr_id for wc in cq0.poll() if wc.ok]
    assert completions == list(range(len(ops)))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_determinism_same_seed_same_timeline(seed):
    """Two identical runs produce identical event counts and end times."""
    import random

    def run_once():
        sim, _, _, qp0, qp1, cq0, cq1 = build_pair()
        rng = random.Random(seed)
        n = rng.randrange(1, 20)
        for i in range(n):
            sim.schedule(rng.randrange(0, 100_000), qp1.post_recv,
                         RecvWR(wr_id=i, capacity=2048))
        for i in range(n):
            qp0.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=32, payload=i))
        sim.run(max_events=2_000_000)
        return (sim.now, sim.events_executed, len(cq1.poll()))

    assert run_once() == run_once()
