"""Shared fixtures/builders for InfiniBand-layer tests."""

from repro.ib import HCA, Fabric, IBConfig
from repro.sim import Simulator
from repro.sim.trace import Tracer


def build_pair(config: IBConfig = None, nodes: int = 2):
    """A fabric with ``nodes`` HCAs and a connected QP between LID 0 and 1.

    Returns (sim, fabric, [hcas], qp0, qp1, cq0, cq1).
    """
    sim = Simulator()
    cfg = config or IBConfig()
    tracer = Tracer(enabled=False)
    fabric = Fabric(sim, cfg, tracer)
    hcas = [HCA(sim, fabric, lid) for lid in range(nodes)]
    cq0 = hcas[0].create_cq("cq0")
    cq1 = hcas[1].create_cq("cq1")
    qp0 = hcas[0].create_qp(cq0)
    qp1 = hcas[1].create_qp(cq1)
    qp0.connect(1, qp1.qp_num)
    qp1.connect(0, qp0.qp_num)
    return sim, fabric, hcas, qp0, qp1, cq0, cq1


def connect_mesh(sim, fabric, hcas):
    """All-to-all QP mesh (one QP per ordered pair), one CQ per HCA.

    Returns (cqs, qps) where qps[(i, j)] is the QP at i talking to j.
    """
    cqs = [h.create_cq(f"cq{h.lid}") for h in hcas]
    qps = {}
    for i, hi in enumerate(hcas):
        for j, hj in enumerate(hcas):
            if i != j:
                qps[(i, j)] = hi.create_qp(cqs[i])
    for (i, j), qp in qps.items():
        qp.connect(j, qps[(j, i)].qp_num)
    return cqs, qps
