"""Property tests for the calendar-queue agenda (repro.sim.engine).

The kernel v3 calendar queue must be observationally identical to a plain
binary-heap agenda: events fire in exact ``(time, seq)`` order, the
same-instant FIFO merges by seq, cancellation suppresses callbacks, and
``run(until=)`` parks the clock without losing future events.  These tests
drive the real :class:`Simulator` and a deliberately simple heap-based
reference implementation with the same seeded-random scripts — including
delays that straddle bucket boundaries, land in the far-future overflow
tier, and collide on the same nanosecond — and assert identical callback
order.  This is the safety net the calendar queue lands behind.
"""

import random
from heapq import heappop, heappush

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError, _COMPACT_MIN, _NBUCKETS, _SHIFT

#: one bucket width and the full ring horizon, in ns — delays are drawn
#: around these boundaries on purpose
_BUCKET = 1 << _SHIFT
_HORIZON = _NBUCKETS << _SHIFT


class _RefHandle:
    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class RefSim:
    """Binary-heap reference agenda with the kernel's documented semantics.

    Everything — including ``call_soon`` — is one heap ordered by
    ``(time, seq)``; the real kernel's now-FIFO/agenda arbitration is by
    construction equivalent to that single total order.
    """

    def __init__(self):
        self.now = 0
        self.events_executed = 0
        self._seq = 0
        self._q = []

    def schedule(self, delay, callback, *args):
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        h = _RefHandle()
        self._seq += 1
        heappush(self._q, (self.now + delay, self._seq, h, callback, args))
        return h

    def schedule_at(self, time, callback, *args):
        return self.schedule(time - self.now, callback, *args)

    def call_soon(self, callback, *args):
        self.schedule(0, callback, *args)

    def call_later(self, delay, callback, *args):
        self.schedule(delay, callback, *args)

    def call_at(self, time, callback, *args):
        self.schedule(time - self.now, callback, *args)

    def every(self, interval, callback):
        def tick():
            if callback():
                self.call_later(interval, tick)

        self.call_later(interval, tick)

    def run(self, until=None):
        q = self._q
        while q:
            t, _seq, h, cb, args = q[0]
            if h.cancelled:
                heappop(q)
                continue
            if until is not None and t > until:
                self.now = until
                return
            heappop(q)
            self.now = t
            self.events_executed += 1
            cb(*args)
        if until is not None and until > self.now:
            self.now = until


def _delay(rng):
    """A delay from the distributions the fabric actually produces, plus
    adversarial boundary cases: zero, same-instant ties, exact bucket
    edges, cross-ring jumps, and far-future overflow-tier timers."""
    r = rng.random()
    if r < 0.15:
        return 0
    if r < 0.35:
        return rng.choice((40, 40, 100, 250))  # ties on purpose
    if r < 0.60:
        return rng.randrange(1, 3 * _BUCKET)
    if r < 0.75:
        return rng.choice((_BUCKET - 1, _BUCKET, _BUCKET + 1))
    if r < 0.92:
        return rng.randrange(3 * _BUCKET, _HORIZON)
    return rng.randrange(_HORIZON, 5 * _HORIZON)  # overflow tier


def _drive(sim, seed):
    """Apply an identical seeded script of schedule/cancel/call_soon/
    every/run(until=) operations to ``sim``; returns the callback log.

    All rng draws happen in callback/op order, which is identical between
    implementations until a divergence — at which point the logs differ
    and the assertion reports it.
    """
    rng = random.Random(seed)
    log = []
    handles = []
    label_counter = [0]

    def make_cb(label, depth):
        def cb():
            log.append((label, sim.now))
            # Nested scheduling from inside a callback, bounded depth.
            if depth < 2 and rng.random() < 0.35:
                for _ in range(rng.randrange(1, 3)):
                    label_counter[0] += 1
                    child = (label, label_counter[0])
                    if rng.random() < 0.5:
                        sim.call_later(_delay(rng), make_cb(child, depth + 1))
                    else:
                        h = sim.schedule(_delay(rng), make_cb(child, depth + 1))
                        handles.append(h)
                        if rng.random() < 0.3:
                            rng.choice(handles).cancel()

        return cb

    def make_periodic(label, fires):
        remaining = [fires]

        def tick():
            log.append((label, sim.now))
            remaining[0] -= 1
            return remaining[0] > 0

        return tick

    for op in range(120):
        r = rng.random()
        if r < 0.40:
            sim.schedule(_delay(rng), make_cb(("s", op), 0))
        elif r < 0.55:
            h = sim.schedule(_delay(rng), make_cb(("h", op), 0))
            handles.append(h)
        elif r < 0.65:
            sim.call_soon(make_cb(("soon", op), 0))
        elif r < 0.75:
            sim.call_later(_delay(rng), make_cb(("later", op), 0))
        elif r < 0.82 and handles:
            rng.choice(handles).cancel()
        elif r < 0.88:
            sim.every(rng.randrange(1, 2 * _BUCKET), make_periodic(("ev", op), rng.randrange(1, 5)))
        else:
            sim.run(until=sim.now + _delay(rng))
    sim.run()
    return log


@pytest.mark.parametrize("seed", range(25))
def test_agenda_matches_reference_heap(seed):
    real_log = _drive(Simulator(), seed)
    ref_log = _drive(RefSim(), seed)
    assert real_log, f"seed {seed} produced an empty script"
    assert real_log == ref_log


@pytest.mark.parametrize("seed", range(25))
def test_agenda_counts_match_reference(seed):
    real, ref = Simulator(), RefSim()
    _drive(real, seed)
    _drive(ref, seed)
    assert real.events_executed == ref.events_executed
    assert real.now == ref.now


# ----------------------------------------------------------------------
# satellite: cancellation accounting under cancel/peek/schedule churn
# ----------------------------------------------------------------------
def test_cancel_peek_schedule_churn_accounting():
    """Interleave cancel/peek/schedule so lazy discards (run loop and
    ``peek``) race the compaction threshold; the cancelled-entry counter
    must stay exact and non-negative throughout."""
    rng = random.Random(1234)
    sim = Simulator()
    fired = []
    live = []
    for round_ in range(40):
        for i in range(3 * _COMPACT_MIN):
            h = sim.schedule(rng.randrange(0, 4 * _BUCKET), fired.append, (round_, i))
            live.append(h)
        rng.shuffle(live)
        # cancel enough to cross the compaction threshold repeatedly
        for _ in range(len(live) * 2 // 3):
            live.pop().cancel()
            assert sim._cancelled_pending >= 0
        sim.peek()  # discards cancelled heads, shares the same accounting
        assert sim._cancelled_pending >= 0
        sim.run(until=sim.now + rng.randrange(0, 2 * _BUCKET))
        assert sim._cancelled_pending >= 0
    sim.run()
    assert sim._cancelled_pending == 0
    assert sim._pending == 0
    # every non-cancelled schedule fired exactly once
    assert len(fired) == sim.events_executed


def test_compaction_is_idempotent():
    sim = Simulator()
    keep = []
    for i in range(200):
        h = sim.schedule(1 + i * 37, keep.append, i)
        if i % 3:
            h.cancel()
    sim._compact()
    state1 = (sim._cancelled_pending, sim._pending)
    sim._compact()  # second pass must be a no-op
    assert (sim._cancelled_pending, sim._pending) == state1
    assert sim._cancelled_pending == 0
    sim.run()
    assert sorted(keep) == [i for i in range(200) if not i % 3]


# ----------------------------------------------------------------------
# satellite: max_events counts exactly what ran, in both loop branches
# ----------------------------------------------------------------------
def test_max_events_agenda_branch_counts_then_raises():
    sim = Simulator()
    ran = []
    for i in range(10):
        sim.schedule(10 * (i + 1), ran.append, i)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=4)
    # exactly the counted callbacks ran, and nothing was silently dropped
    assert ran == [0, 1, 2, 3]
    assert sim.events_executed == 4
    assert sim._pending == 6
    sim.run()  # the survivors still fire
    assert ran == list(range(10))
    assert sim.events_executed == 10


def test_max_events_now_q_branch_counts_then_raises():
    """Regression for the same-instant FIFO branch: the limit check used
    to pop and count the FIFO entry but never run its callback, so the
    post-mortem state lied about what executed."""
    sim = Simulator()
    ran = []

    def chain(i):
        ran.append(i)
        sim.call_soon(chain, i + 1)

    sim.call_soon(chain, 0)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=7)
    assert ran == list(range(7))  # counted == ran, nothing discarded
    assert sim.events_executed == 7
    assert sim._pending == 1  # the would-be-next entry is still queued


def test_max_events_exact_budget_completes():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i + 1, lambda: None)
    sim.run(max_events=5)  # exactly at the limit: no livelock, no raise
    assert sim.events_executed == 5
