"""Tests for the wire model: latency composition, bandwidth, contention,
loopback, and the CQ notification mechanism."""

import pytest

from repro.ib import CompletionQueue, Fabric, FabricError, HCA, IBConfig, LinkRate, Opcode, RecvWR, SendWR
from repro.sim import Simulator, Timeout
from repro.sim.units import mb_per_s
from tests.ib_helpers import build_pair, connect_mesh


def run(sim):
    sim.run(max_events=5_000_000)


def one_way_ns(cfg, nbytes):
    """Measure verbs-level one-way delivery time for a message."""
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)
    qp1.post_recv(RecvWR(wr_id="r", capacity=max(nbytes, 1)))
    qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=nbytes, payload="x"))
    arrival = {}
    orig = cq1.push

    def snoop(wc):
        arrival["t"] = sim.now
        orig(wc)

    cq1.push = snoop
    run(sim)
    return arrival["t"]


def test_small_message_latency_is_microseconds_scale():
    cfg = IBConfig()
    t = one_way_ns(cfg, 4)
    # Raw verbs send/recv latency of the era: ~5-7 us.
    assert 3_000 < t < 8_000


def test_latency_monotonic_in_size():
    cfg = IBConfig()
    sizes = [4, 256, 1024, 4096, 16384, 65536]
    times = [one_way_ns(cfg, s) for s in sizes]
    assert times == sorted(times)
    assert times[-1] > times[0] + 50_000  # 64 KB ≫ 4 B


def test_large_transfer_bandwidth_near_pci_limit():
    cfg = IBConfig()
    nbytes = 4 * 1024 * 1024
    t = one_way_ns(cfg, nbytes)
    bw = mb_per_s(t, nbytes)
    # PCI-X effective ~900 MB/s minus header overhead.
    assert 700 < bw < 920


def test_link_rate_1x_slower_than_4x():
    t_4x = one_way_ns(IBConfig(link_rate=LinkRate.X4), 1024 * 1024)
    t_1x = one_way_ns(IBConfig(link_rate=LinkRate.X1), 1024 * 1024)
    assert t_1x > 3 * t_4x  # 0.25 byte/ns vs 0.9 (pci-bound)


def test_wire_bytes_includes_per_packet_headers():
    cfg = IBConfig(mtu_bytes=1024, pkt_header_bytes=40)
    assert cfg.wire_bytes(0) == 40
    assert cfg.wire_bytes(1) == 1 + 40
    assert cfg.wire_bytes(1024) == 1024 + 40
    assert cfg.wire_bytes(1025) == 1025 + 80
    assert cfg.wire_bytes(10 * 1024) == 10 * 1024 + 400


def test_output_port_contention_serialises_two_senders():
    """Two HCAs blasting the same destination share its downlink: total
    time ≈ 2x a single sender's."""
    cfg = IBConfig()
    nbytes = 1024 * 1024

    def measure(n_senders):
        sim = Simulator()
        fabric = Fabric(sim, cfg)
        hcas = [HCA(sim, fabric, lid) for lid in range(n_senders + 1)]
        cqs, qps = connect_mesh(sim, fabric, hcas)
        dst = n_senders
        done = []
        for s in range(n_senders):
            qps[(dst, s)].post_recv(RecvWR(wr_id=s, capacity=nbytes))
        orig = cqs[dst].push

        def snoop(wc):
            done.append(sim.now)
            orig(wc)

        cqs[dst].push = snoop
        for s in range(n_senders):
            qps[(s, dst)].post_send(
                SendWR(wr_id=s, opcode=Opcode.SEND, length=nbytes, payload=s)
            )
        run(sim)
        assert len(done) == n_senders
        return max(done)

    t1 = measure(1)
    t2 = measure(2)
    assert t2 > 1.8 * t1 * 0.9  # roughly doubled (allow model slack)
    assert t2 < 2.6 * t1


def test_disjoint_pairs_do_not_contend():
    cfg = IBConfig()
    nbytes = 1024 * 1024
    sim = Simulator()
    fabric = Fabric(sim, cfg)
    hcas = [HCA(sim, fabric, lid) for lid in range(4)]
    cqs, qps = connect_mesh(sim, fabric, hcas)
    qps[(1, 0)].post_recv(RecvWR(wr_id=0, capacity=nbytes))
    qps[(3, 2)].post_recv(RecvWR(wr_id=0, capacity=nbytes))
    qps[(0, 1)].post_send(SendWR(wr_id=0, opcode=Opcode.SEND, length=nbytes, payload=0))
    qps[(2, 3)].post_send(SendWR(wr_id=0, opcode=Opcode.SEND, length=nbytes, payload=0))
    run(sim)
    t_pairwise = sim.now

    t_single = one_way_ns(cfg, nbytes)
    # Crossbar: two disjoint flows finish in about the single-flow time.
    assert t_pairwise < t_single * 1.4


def test_loopback_cheaper_than_switch_path():
    cfg = IBConfig()
    sim = Simulator()
    fabric = Fabric(sim, cfg)
    hca = HCA(sim, fabric, 0)
    cq = hca.create_cq()
    qp_a = hca.create_qp(cq)
    qp_b = hca.create_qp(cq)
    qp_a.connect(0, qp_b.qp_num)
    qp_b.connect(0, qp_a.qp_num)
    qp_b.post_recv(RecvWR(wr_id="r", capacity=64))
    qp_a.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=4, payload="self"))
    arrival = {}
    orig = cq.push

    def snoop(wc):
        if wc.is_recv:
            arrival["t"] = sim.now
        orig(wc)

    cq.push = snoop
    run(sim)
    assert arrival["t"] < one_way_ns(cfg, 4)


def test_duplicate_lid_rejected():
    sim = Simulator()
    fabric = Fabric(sim, IBConfig())
    HCA(sim, fabric, 7)
    with pytest.raises(FabricError):
        HCA(sim, fabric, 7)


def test_transmit_to_unknown_lid_rejected():
    sim = Simulator()
    fabric = Fabric(sim, IBConfig())
    HCA(sim, fabric, 0)
    with pytest.raises(FabricError):
        fabric.transmit(0, 99, 8, object())


def test_fabric_counters():
    sim, fabric, _, qp0, qp1, cq0, cq1 = build_pair()
    qp1.post_recv(RecvWR(wr_id="r", capacity=2048))
    qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=100, payload="x"))
    run(sim)
    assert fabric.messages_sent == 1
    assert fabric.payload_bytes == 100
    assert fabric.wire_bytes > 100
    assert fabric.control_msgs >= 1  # the ACK


def test_cq_wait_nonempty_blocks_until_completion():
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair()
    qp1.post_recv(RecvWR(wr_id="r", capacity=64))
    events = []

    def receiver():
        yield cq1.wait_nonempty()
        events.append(("recv", sim.now))
        wcs = cq1.poll()
        assert len(wcs) == 1

    def sender():
        yield Timeout(10_000)
        qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=4, payload="x"))

    sim.spawn(receiver())
    sim.spawn(sender())
    run(sim)
    assert events and events[0][1] > 10_000


def test_cq_wait_nonempty_immediate_when_pending():
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair()
    qp1.post_recv(RecvWR(wr_id="r", capacity=64))
    qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=4, payload="x"))
    run(sim)

    got = []

    def late_poller():
        yield cq1.wait_nonempty()
        got.extend(cq1.poll())

    sim.spawn(late_poller())
    run(sim)
    assert len(got) == 1
