"""Tests for the four MPI communication modes (paper §3.1)."""

import pytest

from repro.mpi import MPIError
from tests.mpi_helpers import run2


def test_ssend_completes_only_after_match():
    """Synchronous send must not complete before the receiver posts the
    matching receive — even for a tiny payload."""

    recv_posted_at = {}

    def prog(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(1, size=8, tag=1, payload="sync",
                                       mode="sync")
            yield from mpi.wait(req)
            return mpi.now  # completion time
        else:
            yield from mpi.compute(300_000)  # receiver is late
            recv_posted_at["t"] = mpi.now
            st = yield from mpi.recv(source=0, capacity=64, tag=1)
            assert st.payload == "sync"
            return None

    r = run2(prog)
    assert r.rank_results[0] > recv_posted_at["t"], (
        "ssend completed before the matching receive was posted"
    )


def test_standard_small_send_completes_before_match():
    """Contrast: a standard eager send completes locally long before the
    late receiver matches it (buffered semantics)."""

    recv_posted_at = {}

    def prog(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(1, size=8, tag=1, payload="eager")
            yield from mpi.wait(req)
            return mpi.now
        else:
            yield from mpi.compute(300_000)
            recv_posted_at["t"] = mpi.now
            yield from mpi.recv(source=0, capacity=64, tag=1)
            return None

    r = run2(prog)
    assert r.rank_results[0] < recv_posted_at["t"]


def test_ssend_large_message():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.ssend(1, size=200_000, payload="big-sync", buffer_id="b")
        else:
            st = yield from mpi.recv(source=0, capacity=200_000, buffer_id="r")
            assert st.payload == "big-sync"

    run2(prog)


def test_ssend_small_message_pays_no_pin():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.ssend(1, size=8, payload="x")
        else:
            yield from mpi.recv(source=0, capacity=64)

    r = run2(prog)
    # small sync sends bounce — no registrations beyond the fixed setup
    assert r.endpoints[0].pindown.misses == 0


def test_rsend_with_posted_receive_succeeds():
    def prog(mpi):
        if mpi.rank == 1:
            req = yield from mpi.irecv(source=0, capacity=64, tag=2)
            yield from mpi.compute(50_000)
            st = yield from mpi.wait(req)
            assert st.payload == "ready"
        else:
            yield from mpi.compute(100_000)  # recv guaranteed posted by now
            yield from mpi.rsend(1, size=8, tag=2, payload="ready")

    run2(prog)


def test_rsend_without_posted_receive_errors():
    """A ready-mode message processed with no matching receive posted is a
    detected usage error (checked when the receiver's progress engine
    handles the arrival)."""

    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.rsend(1, size=8, tag=2, payload="too-eager")
        else:
            yield from mpi.compute(200_000)
            # Enter the progress engine without ever posting the receive:
            # the ready message is discovered unexpected -> error.
            yield from mpi.iprobe(source=0, tag=99)

    with pytest.raises(MPIError, match="ready-mode"):
        run2(prog, finalize=False)


def test_buffered_mode_aliases_standard():
    def prog(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(1, size=8, payload="b", mode="buffered")
            yield from mpi.wait(req)
        else:
            st = yield from mpi.recv(source=0, capacity=64)
            assert st.payload == "b"

    run2(prog)


def test_unknown_mode_rejected():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.isend(1, size=8, mode="psychic")
        else:
            yield from mpi.recv(source=0, capacity=64)

    with pytest.raises(MPIError, match="unknown send mode"):
        run2(prog, finalize=False)


def test_issend_nonblocking_variant():
    def prog(mpi):
        if mpi.rank == 0:
            req = yield from mpi.issend(1, size=8, payload="is")
            assert not req.done  # receiver hasn't matched yet
            yield from mpi.wait(req)
        else:
            yield from mpi.compute(50_000)
            st = yield from mpi.recv(source=0, capacity=64)
            assert st.payload == "is"

    run2(prog)
