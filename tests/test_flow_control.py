"""Behavioural tests of the three flow-control schemes — the paper's core
claims at unit scale."""

import pytest

from repro.cluster import TestbedConfig, run_job
from repro.core import DynamicScheme, StaticScheme, make_scheme
from tests.mpi_helpers import run2, runN


def flood(n, size=4):
    """Rank 0 floods rank 1 with ``n`` sends; rank 1 receives them all.
    Completely asymmetric — the ECM-generating pattern."""

    def prog(mpi):
        if mpi.rank == 0:
            reqs = []
            for i in range(n):
                r = yield from mpi.isend(1, size=size, tag=0, payload=i)
                reqs.append(r)
            yield from mpi.waitall(reqs)
        else:
            got = []
            for _ in range(n):
                st = yield from mpi.recv(source=0, capacity=size + 64, tag=0)
                got.append(st.payload)
            assert got == list(range(n))

    return prog


# ----------------------------------------------------------------------
# static scheme
# ----------------------------------------------------------------------
def test_static_flood_within_credits_never_backlogs():
    r = run2(flood(10), scheme="static", prepost=20)
    assert r.fc.backlogged_msgs == 0
    assert r.fc.rnr_naks == 0


def test_static_flood_beyond_credits_backlogs_and_completes():
    r = run2(flood(100), scheme="static", prepost=10)
    assert r.fc.backlogged_msgs > 0
    assert r.fc.ecm_msgs > 0  # asymmetric: credits must return explicitly


def test_static_paid_messages_never_rnr():
    """The user-level credit gate must keep paid traffic inside the posted
    buffer budget — RNR NAKs can only come from optimistic messages."""
    r = run2(flood(200), scheme="static", prepost=5)
    ecm_and_ctl = r.fc.total_msgs - r.fc.data_msgs
    assert r.fc.rnr_naks <= ecm_and_ctl  # only unpaid traffic may NAK


def test_static_ecm_threshold_respected():
    """With threshold t, roughly n/t ECMs for an n-message flood."""
    t = 5
    n = 100
    r = run2(flood(n), scheme=StaticScheme(ecm_threshold=t), prepost=10)
    assert 0 < r.fc.ecm_msgs <= n // t + 8


def test_static_higher_threshold_fewer_ecms():
    r_small = run2(flood(200), scheme=StaticScheme(ecm_threshold=3), prepost=10)
    r_big = run2(flood(200), scheme=StaticScheme(ecm_threshold=9), prepost=10)
    assert r_big.fc.ecm_msgs < r_small.fc.ecm_msgs


def test_static_symmetric_pattern_needs_no_ecm():
    """Ping-pong returns credits by piggybacking alone (paper §6.2.1)."""

    def pingpong(mpi):
        peer = 1 - mpi.rank
        for i in range(50):
            if mpi.rank == 0:
                yield from mpi.send(peer, size=4, tag=1)
                yield from mpi.recv(source=peer, capacity=64, tag=1)
            else:
                yield from mpi.recv(source=peer, capacity=64, tag=1)
                yield from mpi.send(peer, size=4, tag=1)

    r = run2(pingpong, scheme="static", prepost=10)
    assert r.fc.ecm_msgs == 0
    assert r.fc.backlogged_msgs == 0


def test_static_invalid_threshold_rejected():
    with pytest.raises(ValueError):
        StaticScheme(ecm_threshold=0)


# ----------------------------------------------------------------------
# dynamic scheme
# ----------------------------------------------------------------------
def test_dynamic_grows_prepost_under_pressure():
    r = run2(flood(200), scheme="dynamic", prepost=1)
    conn01 = r.endpoints[1].connections[0]
    assert conn01.stats.max_prepost > 1  # receiver grew for the flooder


def test_dynamic_growth_is_bounded():
    r = run2(flood(500), scheme=DynamicScheme(max_prepost=16), prepost=1)
    assert r.fc.max_posted_buffers <= 16


def test_dynamic_no_growth_without_pressure():
    r = run2(flood(5), scheme="dynamic", prepost=10)
    assert r.fc.max_posted_buffers == 10  # nothing ever backlogged


def test_dynamic_exponential_grows_faster_than_linear():
    lin = run2(flood(300), scheme=DynamicScheme(growth_step=1), prepost=1)
    exp = run2(flood(300), scheme=DynamicScheme(exponential=True), prepost=1)
    assert exp.fc.backlogged_msgs <= lin.fc.backlogged_msgs


def test_dynamic_outperforms_static_when_starved():
    """The headline claim: with too few buffers, dynamic adapts and beats
    static (Figures 5–6)."""
    n = 300
    stat = run2(flood(n), scheme="static", prepost=4)
    dyn = run2(flood(n), scheme="dynamic", prepost=4)
    assert dyn.elapsed_ns < stat.elapsed_ns


def test_dynamic_matches_static_when_buffers_plentiful():
    n = 100
    stat = run2(flood(n), scheme="static", prepost=150)
    dyn = run2(flood(n), scheme="dynamic", prepost=150)
    assert abs(dyn.elapsed_ns - stat.elapsed_ns) < 0.05 * stat.elapsed_ns


def test_dynamic_decay_extension_shrinks_after_quiet_period():
    scheme = DynamicScheme(growth_step=4, decay_enabled=True, decay_idle_messages=50)

    def prog(mpi):
        if mpi.rank == 0:
            # Phase 1: burst (drives growth).
            reqs = []
            for i in range(120):
                r = yield from mpi.isend(1, size=4, tag=0, payload=i)
                reqs.append(r)
            yield from mpi.waitall(reqs)
            # Phase 2: long quiet trickle (drives decay).
            for i in range(200):
                yield from mpi.send(1, size=4, tag=1)
                yield from mpi.recv(source=1, capacity=64, tag=1)
        else:
            for i in range(120):
                yield from mpi.recv(source=0, capacity=64, tag=0)
            for i in range(200):
                yield from mpi.recv(source=0, capacity=64, tag=1)
                yield from mpi.send(0, size=4, tag=1)

    r = run2(prog, scheme=scheme, prepost=1)
    conn = r.endpoints[1].connections[0]
    assert conn.stats.max_prepost > 1  # grew during the burst
    assert conn.prepost_target < conn.stats.max_prepost  # shrank after


def test_dynamic_invalid_params_rejected():
    with pytest.raises(ValueError):
        DynamicScheme(growth_step=0)
    with pytest.raises(ValueError):
        DynamicScheme(max_prepost=0)


# ----------------------------------------------------------------------
# hardware scheme
# ----------------------------------------------------------------------
def test_hardware_no_mpi_level_machinery():
    r = run2(flood(100), scheme="hardware", prepost=10)
    assert r.fc.ecm_msgs == 0
    assert r.fc.backlogged_msgs == 0


def busy_receiver_flood(n, compute_ns=8_000, size=4):
    """Like flood(), but the receiver computes between receives — the
    application-bypass window during which no vbuf can be re-posted.  This
    is what starves receivers in the NAS LU/MG patterns."""

    def prog(mpi):
        if mpi.rank == 0:
            reqs = []
            for i in range(n):
                r = yield from mpi.isend(1, size=size, tag=0, payload=i)
                reqs.append(r)
            yield from mpi.waitall(reqs)
        else:
            got = []
            for _ in range(n):
                st = yield from mpi.recv(source=0, capacity=size + 64, tag=0)
                got.append(st.payload)
                yield from mpi.compute(compute_ns)
            assert got == list(range(n))

    return prog


def test_hardware_starved_receiver_causes_rnr_retries():
    r = run2(busy_receiver_flood(100), scheme="hardware", prepost=1)
    assert r.fc.rnr_naks > 0
    assert r.fc.retransmissions > 0


def test_hardware_plentiful_buffers_no_rnr():
    r = run2(flood(50), scheme="hardware", prepost=100)
    assert r.fc.rnr_naks == 0


def test_hardware_degrades_with_rnr_timer():
    """The pre-post=1 collapse scales with the RNR retry timer."""
    from repro.sim.units import us

    def with_timer(t_us):
        cfg = TestbedConfig(nodes=2)
        cfg.ib.rnr_timer_ns = us(t_us)
        return run_job(busy_receiver_flood(100), 2, "hardware", prepost=1, config=cfg)

    fast = with_timer(10)
    slow = with_timer(200)
    assert slow.elapsed_ns > fast.elapsed_ns


def test_hardware_takes_no_options():
    with pytest.raises(TypeError):
        make_scheme("hardware", ecm_threshold=5)


# ----------------------------------------------------------------------
# cross-scheme sanity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["hardware", "static", "dynamic"])
def test_head_to_head_flood_prepost1_no_deadlock(scheme):
    """Both ranks flood each other simultaneously with one buffer each —
    the classic credit-deadlock scenario the optimistic design defuses."""

    def prog(mpi):
        peer = 1 - mpi.rank
        sreqs = []
        for i in range(50):
            r = yield from mpi.isend(peer, size=4, tag=0, payload=i)
            sreqs.append(r)
        got = []
        for _ in range(50):
            st = yield from mpi.recv(source=peer, capacity=64, tag=0)
            got.append(st.payload)
        yield from mpi.waitall(sreqs)
        assert got == list(range(50))

    run2(prog, scheme=scheme, prepost=1)


@pytest.mark.parametrize("scheme", ["hardware", "static", "dynamic"])
def test_all_schemes_identical_results_8_ranks(scheme):
    def prog(mpi):
        total = yield from mpi.allreduce(size=8, value=mpi.rank, op=lambda a, b: a + b)
        return total

    r = runN(prog, 8, scheme=scheme, prepost=10)
    assert r.rank_results == [28] * 8


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        make_scheme("quantum")
