"""Tests for the pure-data side of fault injection: FaultPlan/FaultEvent
builders, validation, and the declarative dict/JSON specs."""

import pytest

from repro.faults import FaultEvent, FaultPlan, FaultPlanError
from repro.ib.types import INFINITE_RETRY
from repro.sim.units import us


def build_full_plan(seed=7):
    return (
        FaultPlan(seed=seed)
        .link_flap(lid=2, at_ns=us(10), duration_ns=us(50))
        .link_degrade(lid=1, at_ns=us(20), duration_ns=us(30),
                      extra_latency_ns=2_000, bw_factor=0.5)
        .drop_window(at_ns=us(5), duration_ns=us(100), probability=0.25,
                     lids=(0, 1), corrupt=True)
        .receiver_stall(rank=1, at_ns=us(40), duration_ns=us(200))
        .hca_pause(lid=0, at_ns=us(15), duration_ns=us(25))
    )


def test_builders_chain_and_accumulate():
    plan = build_full_plan()
    assert [ev.kind for ev in plan.events] == [
        "link_flap", "link_degrade", "drop_window", "receiver_stall", "hca_pause",
    ]
    plan.validate()  # every builder-produced event is valid


def test_end_ns_is_last_window_close():
    plan = build_full_plan()
    assert plan.end_ns == us(40) + us(200)  # the receiver stall ends last
    assert FaultPlan().end_ns == 0


@pytest.mark.parametrize("bad", [
    lambda: FaultEvent("cosmic_ray", 0, 1).validate(),
    lambda: FaultEvent("link_flap", -1, 1, lid=0).validate(),
    lambda: FaultEvent("link_flap", 0, 0, lid=0).validate(),
    lambda: FaultEvent("link_flap", 0, 1).validate(),            # no lid
    lambda: FaultEvent("receiver_stall", 0, 1).validate(),       # no rank
    lambda: FaultEvent("drop_window", 0, 1, probability=0.0).validate(),
    lambda: FaultEvent("drop_window", 0, 1, probability=1.5).validate(),
    lambda: FaultEvent("link_degrade", 0, 1, lid=0).validate(),  # degrades nothing
    lambda: FaultEvent("link_degrade", 0, 1, lid=0, bw_factor=-1.0).validate(),
])
def test_invalid_events_rejected(bad):
    with pytest.raises(FaultPlanError):
        bad()


def test_add_validates_eagerly():
    with pytest.raises(FaultPlanError):
        FaultPlan().add(FaultEvent("link_flap", 0, 1))  # missing lid


def test_spec_round_trip_preserves_everything():
    plan = build_full_plan(seed=42)
    clone = FaultPlan.from_spec(plan.to_spec())
    assert clone.seed == 42
    assert clone.transport_timeout_ns == plan.transport_timeout_ns
    assert clone.transport_retry_limit == INFINITE_RETRY
    assert clone.events == plan.events


def test_json_round_trip():
    plan = build_full_plan(seed=9)
    plan.transport_retry_limit = 5
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan


def test_event_spec_omits_defaults():
    spec = FaultEvent("link_flap", us(1), us(2), lid=3).to_spec()
    assert spec == {"kind": "link_flap", "at_ns": us(1),
                    "duration_ns": us(2), "lid": 3}


def test_unknown_event_field_rejected():
    with pytest.raises(FaultPlanError):
        FaultEvent.from_spec({"kind": "link_flap", "at_ns": 0,
                              "duration_ns": 1, "lid": 0, "blast_radius": 9})


def test_unknown_plan_field_rejected():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_spec({"seed": 1, "events": [], "chaos_level": "max"})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_spec(["not", "a", "dict"])


def test_spec_lids_listified_and_restored_as_tuple():
    plan = FaultPlan().drop_window(at_ns=0, duration_ns=1,
                                   probability=0.5, lids=[3, 4])
    spec = plan.to_spec()
    assert spec["events"][0]["lids"] == [3, 4]  # JSON-friendly
    clone = FaultPlan.from_spec(spec)
    assert clone.events[0].lids == (3, 4)
