"""Tests for the switch congestion subsystem (repro.congestion).

The acceptance criteria of the congestion ISSUE, as assertions:

* PFC produces nonzero pause frames under incast and the victim flow is
  measurably head-of-line blocked;
* ECN rate-limits the hot flows individually, so the victim rides
  through with (almost) no slowdown and nothing is dropped;
* a finite buffer with neither PFC nor ECN tail-drops, and the transport
  ACK-timeout retry recovers every drop (the run still completes);
* with ``IBConfig.congestion is None`` (the default) the fabric is
  bit-identity inert — an armed run in between two plain runs must not
  perturb the plain runs at all;
* the invariant auditor's congestion hooks (pause conservation, queue
  depth <= buffer, drained-at-finalize) stay green on a real incast.
"""

import json

import pytest

from repro.cluster import TestbedConfig, run_job
from repro.congestion import CongestionConfig, make_congestion_config
from repro.faults import FaultPlan
from repro.sim.units import us
from repro.workloads import manyflows_program

#: 8-to-1 incast into rank 0 plus a victim flow 1 -> 9 that shares
#: sender 1's injection port (and the switch) but targets an idle rank.
INCAST_FLOWS = tuple(
    [(s, 0, 25, 1024) for s in range(1, 9)] + [(1, 9, 8, 1024)]
)
VICTIM_RANK = 9


def _incast(congestion=None, audit=False, flows=INCAST_FLOWS, nranks=10):
    cfg = TestbedConfig(nodes=nranks)
    cfg.ib.congestion = congestion
    # No fault events; just a transport retry timeout far above any
    # queueing delay, so tail drops are recovered without spurious
    # retransmissions while messages sit in paused queues.
    plan = FaultPlan(seed=7, transport_timeout_ns=us(20_000))
    return run_job(manyflows_program(flows), nranks, "dynamic", prepost=8,
                   config=cfg, faults=plan, audit=audit)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def test_config_validates_pfc_thresholds():
    with pytest.raises(ValueError, match="xon < xoff"):
        CongestionConfig(xon_bytes=20_000, xoff_bytes=10_000)
    with pytest.raises(ValueError, match="xon < xoff"):
        CongestionConfig(buffer_bytes=10_000, xoff_bytes=16_384)
    with pytest.raises(ValueError, match="buffer_bytes"):
        CongestionConfig(buffer_bytes=0, pfc=False)


def test_config_validates_ecn_knobs():
    with pytest.raises(ValueError, match="rate_decrease_factor"):
        CongestionConfig(pfc=False, ecn=True, rate_decrease_factor=1.5)
    with pytest.raises(ValueError, match="min_rate"):
        CongestionConfig(pfc=False, ecn=True, min_rate=0.0)


def test_make_congestion_config_modes():
    assert make_congestion_config("pfc").pfc
    assert not make_congestion_config("pfc").ecn
    ecn = make_congestion_config("ecn")
    assert ecn.ecn and not ecn.pfc
    both = make_congestion_config("both")
    assert both.pfc and both.ecn
    with pytest.raises(ValueError, match="unknown congestion mode"):
        make_congestion_config("hope")


# ----------------------------------------------------------------------
# PFC: pause frames and head-of-line blocking
# ----------------------------------------------------------------------
def test_pfc_pauses_and_hol_blocks_the_victim():
    base = _incast(None)
    r = _incast(make_congestion_config("pfc"))
    cong = r.congestion
    assert cong is not None
    assert cong.pause_frames > 0
    assert cong.resume_frames == cong.pause_frames  # every pause released
    assert cong.xoff_events == cong.xon_events > 0
    assert cong.drops == 0  # XOFF headroom keeps the fabric lossless
    # The victim flow shares sender 1's injection port with a hot flow:
    # when the sink's egress queue pauses that port, the victim stalls
    # behind traffic it shares nothing else with.
    victim_base = base.rank_results[VICTIM_RANK]
    victim_pfc = r.rank_results[VICTIM_RANK]
    assert victim_pfc > 1.2 * victim_base
    assert "9" in cong.per_dest  # the victim's own egress port is observed


def test_ecn_rate_limits_without_collateral_damage():
    r = _incast(make_congestion_config("ecn"))
    cong = r.congestion
    assert cong.ecn_marks > 0
    assert cong.cnps > 0
    assert cong.min_flow_rate < 1.0  # some flow actually got cut
    assert cong.pause_frames == 0  # no PFC in this mode
    assert cong.drops == 0  # the big ECN buffer is effectively lossless
    # Per-flow throttling (unlike port-level pause) barely touches the
    # victim: it must stay well under the PFC victim's finish time.
    pfc = _incast(make_congestion_config("pfc"))
    assert r.rank_results[VICTIM_RANK] < pfc.rank_results[VICTIM_RANK]


def test_both_mode_combines_pause_and_marking():
    r = _incast(make_congestion_config("both"))
    cong = r.congestion
    assert cong.pause_frames > 0
    assert cong.ecn_marks > 0


def test_tiny_buffer_tail_drops_and_transport_retry_recovers():
    cfg = CongestionConfig(pfc=False, ecn=False, buffer_bytes=4096)
    r = _incast(cfg)
    assert r.completed
    assert r.congestion.drops > 0
    # every dropped message was retransmitted and delivered — the
    # program's waitall returned on all ranks (run_job would have
    # raised a deadlock otherwise) and the retry counter shows wire loss
    assert r.fc.retransmissions >= r.congestion.drops


# ----------------------------------------------------------------------
# inertness: disabled == bit-identical to the pre-subsystem fabric
# ----------------------------------------------------------------------
def test_disabled_subsystem_is_bit_identity_inert():
    flood = tuple([(0, 1, 30, 1024)])

    def run_plain():
        return run_job(manyflows_program(flood), 2, "dynamic", prepost=8,
                       config=TestbedConfig(nodes=2))

    before = run_plain()
    assert before.congestion is None  # disarmed by default
    # arm explicitly on a fresh config so the plain configs stay pristine
    cfg = TestbedConfig(nodes=2)
    cfg.ib.congestion = make_congestion_config("pfc")
    armed = run_job(manyflows_program(flood), 2, "dynamic", prepost=8,
                    config=cfg,
                    faults=FaultPlan(seed=7, transport_timeout_ns=us(20_000)))
    assert armed.congestion is not None
    after = run_plain()
    assert after.congestion is None
    assert after.elapsed_ns == before.elapsed_ns
    assert after.rank_finish_ns == before.rank_finish_ns
    assert json.dumps(after.fc_dict(), sort_keys=True) == \
        json.dumps(before.fc_dict(), sort_keys=True)
    # the armed run's store-and-forward queues change the timing model,
    # so it is NOT the plain timeline — proof the subsystem engaged
    assert armed.elapsed_ns != before.elapsed_ns


# ----------------------------------------------------------------------
# auditor hooks
# ----------------------------------------------------------------------
def test_auditor_congestion_invariants_hold_under_incast():
    r = _incast(make_congestion_config("both"), audit=True)
    aud = r.audit
    assert aud is not None
    assert aud.xoff_total == r.congestion.xoff_events > 0
    assert aud.xon_total == aud.xoff_total  # pause conservation held


def test_reused_cluster_resets_congestion_counters():
    from repro.cluster.builder import Cluster
    from repro.core import make_scheme

    cfg = TestbedConfig(nodes=10)
    cfg.ib.congestion = make_congestion_config("pfc")
    cluster = Cluster(cfg)
    cluster.launch(10, make_scheme("static"), 8)
    a = run_job(manyflows_program(INCAST_FLOWS), 10, "static", 8,
                cluster=cluster)
    b = run_job(manyflows_program(INCAST_FLOWS), 10, "static", 8,
                cluster=cluster)
    assert a.congestion.pause_frames > 0
    # the second job's report covers the second job only — reset_counters
    # wiped the first job's pause/mark/drop/peak numbers in between
    # (static flow control is stateless across quiescent jobs, so the
    # two reports must be identical, not cumulative)
    assert b.congestion.to_dict() == a.congestion.to_dict()


def test_congestion_report_is_deterministic():
    a = _incast(make_congestion_config("both"))
    b = _incast(make_congestion_config("both"))
    assert json.dumps(a.congestion.to_dict(), sort_keys=True) == \
        json.dumps(b.congestion.to_dict(), sort_keys=True)
    assert a.elapsed_ns == b.elapsed_ns
