"""Unit tests for the RC queue-pair state machine (repro.ib.qp)."""

import pytest

from repro.ib import (
    INFINITE_RETRY,
    IBConfig,
    Opcode,
    QPError,
    QPState,
    RecvWR,
    SendWR,
    WCStatus,
)
from tests.ib_helpers import build_pair


def run(sim):
    sim.run(max_events=2_000_000)


def test_send_delivers_payload_to_recv_wqe():
    sim, fabric, hcas, qp0, qp1, cq0, cq1 = build_pair()
    qp1.post_recv(RecvWR(wr_id="r0", capacity=2048))
    qp0.post_send(SendWR(wr_id="s0", opcode=Opcode.SEND, length=100, payload="hello"))
    run(sim)
    recv = cq1.poll()
    assert len(recv) == 1
    assert recv[0].ok and recv[0].is_recv
    assert recv[0].data == "hello"
    assert recv[0].byte_len == 100
    send = cq0.poll()
    assert len(send) == 1
    assert send[0].ok and send[0].wr_id == "s0"


def test_sends_complete_in_posting_order():
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair()
    for i in range(20):
        qp1.post_recv(RecvWR(wr_id=i, capacity=2048))
    for i in range(20):
        qp0.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=64, payload=i))
    run(sim)
    recv_order = [wc.data for wc in cq1.poll()]
    assert recv_order == list(range(20))
    send_order = [wc.wr_id for wc in cq0.poll()]
    assert send_order == list(range(20))


def test_recv_wqes_consumed_fifo():
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair()
    qp1.post_recv(RecvWR(wr_id="first", capacity=2048))
    qp1.post_recv(RecvWR(wr_id="second", capacity=2048))
    qp0.post_send(SendWR(wr_id=0, opcode=Opcode.SEND, length=8, payload="a"))
    qp0.post_send(SendWR(wr_id=1, opcode=Opcode.SEND, length=8, payload="b"))
    run(sim)
    wcs = cq1.poll()
    assert [(wc.wr_id, wc.data) for wc in wcs] == [("first", "a"), ("second", "b")]


def test_unsignaled_send_generates_no_cqe():
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair()
    qp1.post_recv(RecvWR(wr_id="r", capacity=2048))
    qp0.post_send(
        SendWR(wr_id="s", opcode=Opcode.SEND, length=8, payload="x", signaled=False)
    )
    run(sim)
    assert cq1.poll()[0].ok
    assert cq0.poll() == []


def test_rnr_nak_then_retry_delivers_after_timer():
    cfg = IBConfig()
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)
    qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=8, payload="late"))
    # Post the receive buffer well after the first attempt has NAKed (the
    # RNR decision happens at recv-engine service time, ~6 us in).
    sim.schedule(30_000, qp1.post_recv, RecvWR(wr_id="r", capacity=2048))
    run(sim)
    wcs = cq1.poll()
    assert len(wcs) == 1 and wcs[0].data == "late"
    assert qp0.rnr_naks_received >= 1
    assert qp1.rnr_naks_sent >= 1
    assert qp0.retransmissions >= 1
    # Delivery happened only after at least one RNR timer period.
    assert sim.now >= cfg.rnr_timer_ns


def test_rnr_retries_repeatedly_until_buffer_posted():
    cfg = IBConfig()
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)
    qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=8, payload="x"))
    # Buffer appears only after 5 RNR periods.
    sim.schedule(5 * cfg.rnr_timer_ns + 1000, qp1.post_recv, RecvWR(wr_id="r", capacity=2048))
    run(sim)
    assert cq1.poll()[0].ok
    assert qp0.rnr_naks_received >= 4


def test_finite_rnr_retry_count_errors_out():
    cfg = IBConfig(rnr_retry_count=3)
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)
    qp0.post_send(SendWR(wr_id="dead", opcode=Opcode.SEND, length=8, payload="x"))
    run(sim)
    wcs = cq0.poll()
    assert len(wcs) == 1
    assert wcs[0].status is WCStatus.RNR_RETRY_EXCEEDED
    assert qp0.state is QPState.ERROR


def test_qp_error_flushes_pending_sends():
    cfg = IBConfig(rnr_retry_count=1)
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)
    for i in range(3):
        qp0.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=8, payload=i))
    run(sim)
    wcs = cq0.poll()
    statuses = {wc.wr_id: wc.status for wc in wcs}
    assert statuses[0] is WCStatus.RNR_RETRY_EXCEEDED
    assert statuses[1] is WCStatus.WR_FLUSH_ERROR
    assert statuses[2] is WCStatus.WR_FLUSH_ERROR


def test_infinite_retry_constant():
    cfg = IBConfig()
    assert cfg.rnr_retry_count == INFINITE_RETRY


def test_ordering_preserved_across_rnr_replay():
    """Messages 0..9 with a buffer shortage in the middle still arrive in
    order exactly once (RC exactly-once, in-order semantics)."""
    cfg = IBConfig()
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)
    for i in range(3):
        qp1.post_recv(RecvWR(wr_id=i, capacity=2048))
    for i in range(10):
        qp0.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=8, payload=i))
    # Trickle in the remaining buffers over several RNR periods.
    for k in range(7):
        sim.schedule(
            (k + 1) * cfg.rnr_timer_ns + 777 * k,
            qp1.post_recv,
            RecvWR(wr_id=3 + k, capacity=2048),
        )
    run(sim)
    received = [wc.data for wc in cq1.poll()]
    assert received == list(range(10))
    sends = [wc.wr_id for wc in cq0.poll()]
    assert sends == list(range(10))


def test_post_send_without_connect_raises():
    from repro.ib import HCA, Fabric
    from repro.sim import Simulator

    sim = Simulator()
    fabric = Fabric(sim, IBConfig())
    hca = HCA(sim, fabric, 0)
    cq = hca.create_cq()
    qp = hca.create_qp(cq)
    with pytest.raises(QPError):
        qp.post_send(SendWR(wr_id=0, opcode=Opcode.SEND, length=8))


def test_send_queue_overflow_raises():
    cfg = IBConfig(sq_depth=4)
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)
    with pytest.raises(QPError):
        for i in range(10):
            qp0.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=8))


def test_message_longer_than_recv_capacity_is_an_error():
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair()
    qp1.post_recv(RecvWR(wr_id="small", capacity=16))
    qp0.post_send(SendWR(wr_id="big", opcode=Opcode.SEND, length=1000, payload="x"))
    run(sim)
    recv = cq1.poll()
    assert recv[0].status is WCStatus.LOCAL_LENGTH_ERROR
    send = cq0.poll()
    assert send[0].status is WCStatus.REMOTE_ACCESS_ERROR
    assert qp0.state is QPState.ERROR or qp1.state is QPState.ERROR


def test_negative_length_wr_rejected():
    with pytest.raises(ValueError):
        SendWR(wr_id=0, opcode=Opcode.SEND, length=-1)
    with pytest.raises(ValueError):
        RecvWR(wr_id=0, capacity=-1)


def test_rdma_wr_requires_rkey():
    with pytest.raises(ValueError):
        SendWR(wr_id=0, opcode=Opcode.RDMA_WRITE, length=8)


def test_credit_gate_limits_probes_when_starved():
    """With an initial credit estimate of 0, the requester keeps a single
    probe in flight instead of blasting the window into NAK storms."""
    cfg = IBConfig()
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)
    qp0.set_initial_credit_estimate(0)
    for i in range(10):
        qp0.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=8, payload=i))
    # Let several RNR periods elapse with no buffers.
    sim.run(until=5 * cfg.rnr_timer_ns)
    # Only the probe message ever hit the wire per period: NAKs counted per
    # period, not per queued message.
    assert qp1.rnr_naks_sent <= 6
    for i in range(10):
        qp1.post_recv(RecvWR(wr_id=i, capacity=2048))
    run(sim)
    assert [wc.data for wc in cq1.poll()] == list(range(10))


def test_zero_length_send_works():
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair()
    qp1.post_recv(RecvWR(wr_id="r", capacity=0))
    qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=0, payload=None))
    run(sim)
    assert cq1.poll()[0].ok
    assert cq0.poll()[0].ok
