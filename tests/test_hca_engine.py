"""Tests for the HCA engines: send-engine serialization, round-robin
fairness across QPs, and receive-engine pipelining."""

from repro.ib import HCA, Fabric, IBConfig, Opcode, RecvWR, SendWR
from repro.sim import Simulator
from tests.ib_helpers import connect_mesh


def test_send_engine_serialises_wqes():
    """Back-to-back small sends leave the HCA one engine-period apart."""
    cfg = IBConfig()
    sim = Simulator()
    fabric = Fabric(sim, cfg)
    hcas = [HCA(sim, fabric, lid) for lid in range(2)]
    cqs, qps = connect_mesh(sim, fabric, hcas)
    n = 10
    for i in range(n):
        qps[(1, 0)].post_recv(RecvWR(wr_id=i, capacity=64))
    arrivals = []
    orig = fabric.transmit

    def spy(src, dst, nbytes, msg):
        arrivals.append(sim.now)
        return orig(src, dst, nbytes, msg)

    fabric.transmit = spy
    for i in range(n):
        qps[(0, 1)].post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=8, payload=i))
    sim.run(max_events=100_000)
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    period = cfg.hca_send_wqe_ns + cfg.dma_startup_ns
    assert all(g == period for g in gaps)


def test_round_robin_across_qps():
    """Two QPs with queued work share the send engine alternately — one
    busy connection cannot starve another."""
    cfg = IBConfig()
    sim = Simulator()
    fabric = Fabric(sim, cfg)
    hcas = [HCA(sim, fabric, lid) for lid in range(3)]
    cqs, qps = connect_mesh(sim, fabric, hcas)
    order = []
    orig = fabric.transmit

    def spy(src, dst, nbytes, msg):
        order.append(dst)
        return orig(src, dst, nbytes, msg)

    fabric.transmit = spy
    for i in range(6):
        qps[(1, 0)].post_recv(RecvWR(wr_id=i, capacity=64))
        qps[(2, 0)].post_recv(RecvWR(wr_id=i, capacity=64))
    # queue 6 sends on each connection before the engine starts draining
    for i in range(6):
        qps[(0, 1)].post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=8))
        qps[(0, 2)].post_send(SendWR(wr_id=100 + i, opcode=Opcode.SEND, length=8))
    sim.run(max_events=100_000)
    # strict alternation after the first pick
    assert order[:6].count(1) >= 2 and order[:6].count(2) >= 2
    for a, b in zip(order, order[1:]):
        assert a != b, f"engine starved a QP: {order}"


def test_recv_engine_pipelines_at_engine_rate():
    """Arrivals faster than the engine rate queue in input buffering and
    complete exactly one engine-period apart — never RNR (the receiver
    software keeps re-posting)."""
    cfg = IBConfig()
    sim = Simulator()
    fabric = Fabric(sim, cfg)
    hcas = [HCA(sim, fabric, lid) for lid in range(2)]
    cqs, qps = connect_mesh(sim, fabric, hcas)
    n = 8
    for i in range(n):
        qps[(1, 0)].post_recv(RecvWR(wr_id=i, capacity=2048))
    completions = []
    orig = cqs[1].push

    def snoop(wc):
        completions.append(sim.now)
        orig(wc)

    cqs[1].push = snoop
    # Bypass the sender engine: deliver n messages simultaneously.
    from repro.ib.qp import _Message

    for i in range(n):
        wr = SendWR(wr_id=i, opcode=Opcode.SEND, length=8, payload=i)
        wr.msn = i
        qps[(0, 1)]._inflight[i] = wr
        qps[(0, 1)]._sends_inflight += 1
        msg = _Message(qps[(0, 1)], wr)
        sim.schedule(100, hcas[1]._deliver, msg)
    sim.run(max_events=100_000)
    assert len(completions) == n
    gaps = [b - a for a, b in zip(completions, completions[1:])]
    assert all(g == cfg.hca_recv_wqe_ns for g in gaps)
    assert qps[(1, 0)].rnr_naks_sent == 0


def test_rdma_rx_cheaper_than_send_rx():
    """Inbound RDMA writes skip WQE/CQE processing at the receive engine."""
    cfg = IBConfig()
    assert cfg.hca_rdma_rx_ns < cfg.hca_recv_wqe_ns
