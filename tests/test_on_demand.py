"""Tests for on-demand connection management (the paper's scalability
combination: dynamic flow control + lazy connection setup)."""

import pytest

from repro.cluster import Cluster, TestbedConfig, run_job
from repro.core import DynamicScheme


def ring_program(mpi):
    """Each rank talks only to its ring neighbours."""
    nxt = (mpi.rank + 1) % mpi.world_size
    prv = (mpi.rank - 1) % mpi.world_size
    for i in range(5):
        rreq = yield from mpi.irecv(source=prv, capacity=64, tag=i)
        yield from mpi.send(nxt, size=4, tag=i, payload=(mpi.rank, i))
        st = yield from mpi.wait(rreq)
        assert st.payload == (prv, i)
    return "ok"


def test_on_demand_ring_establishes_only_used_pairs():
    r = run_job(ring_program, 8, "static", prepost=10, on_demand=True,
                finalize=False)
    assert r.rank_results == ["ok"] * 8
    # ring: 8 unordered neighbour pairs (the finalize barrier is off, so
    # only application traffic wires connections)
    assert r.connections_established == 8


def test_static_mesh_reports_no_cm():
    r = run_job(ring_program, 8, "static", prepost=10)
    assert r.connections_established is None


def test_on_demand_saves_posted_buffers():
    """The memory argument: ring on 8 ranks with pre-post 50 posts vastly
    fewer buffers on-demand than with the full mesh."""
    mesh = run_job(ring_program, 8, "static", prepost=50, finalize=False)
    lazy = run_job(ring_program, 8, "static", prepost=50, on_demand=True,
                   finalize=False)

    def posted(result):
        return sum(
            c.recv_posted for ep in result.endpoints for c in ep.connections.values()
        )

    assert posted(mesh) > 3 * posted(lazy)
    # mesh: 8*7 connections; lazy ring: 16 directed connections
    assert sum(len(ep.connections) for ep in mesh.endpoints) == 56
    assert sum(len(ep.connections) for ep in lazy.endpoints) == 16


def test_on_demand_first_send_pays_setup_latency():
    def prog(mpi):
        if mpi.rank == 0:
            t0 = mpi.now
            yield from mpi.send(1, size=4, tag=0)
            first = mpi.now - t0
            t0 = mpi.now
            yield from mpi.send(1, size=4, tag=1)
            second = mpi.now - t0
            return (first, second)
        yield from mpi.recv(source=0, capacity=64, tag=0)
        yield from mpi.recv(source=0, capacity=64, tag=1)
        return None

    r = run_job(prog, 2, "static", prepost=10, on_demand=True,
                config=TestbedConfig(nodes=2))
    first, second = r.rank_results[0]
    assert first > second + 200_000  # the CM exchange (~250 us) paid once


def test_on_demand_concurrent_requests_deduplicated():
    """Both sides sending simultaneously must produce exactly one pair of
    QPs (the classic CM race)."""

    def prog(mpi):
        peer = 1 - mpi.rank
        rreq = yield from mpi.irecv(source=peer, capacity=64, tag=0)
        sreq = yield from mpi.isend(peer, size=4, tag=0, payload=mpi.rank)
        statuses = yield from mpi.waitall([rreq, sreq])
        assert statuses[0].payload == peer

    r = run_job(prog, 2, "static", prepost=10, on_demand=True,
                config=TestbedConfig(nodes=2))
    assert r.connections_established == 1


def test_on_demand_with_dynamic_scheme_and_collectives():
    """The paper's proposed combination survives an all-ranks workload:
    collectives force (at most) the algorithmic connection graph."""

    def prog(mpi):
        total = yield from mpi.allreduce(size=8, value=mpi.rank, op=lambda a, b: a + b)
        assert total == sum(range(mpi.world_size))
        yield from mpi.barrier()
        return total

    r = run_job(prog, 8, DynamicScheme(), prepost=1, on_demand=True)
    assert r.rank_results == [28] * 8
    # recursive doubling + dissemination barrier touch fewer pairs than
    # the full mesh of 28
    assert r.connections_established < 28


def test_unused_peer_never_connected():
    def prog(mpi):
        if mpi.rank in (0, 1):
            if mpi.rank == 0:
                yield from mpi.send(1, size=4)
            else:
                yield from mpi.recv(source=0, capacity=64)
        else:
            yield from mpi.compute(1000)

    r = run_job(prog, 4, "static", prepost=10, on_demand=True, finalize=False)
    assert r.connections_established == 1
    assert len(r.endpoints[2].connections) == 0
    assert len(r.endpoints[3].connections) == 0
