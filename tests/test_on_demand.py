"""Tests for on-demand connection management (the paper's scalability
combination: dynamic flow control + lazy connection setup)."""

import pytest

from repro.cluster import Cluster, TestbedConfig, run_job
from repro.core import DynamicScheme, make_scheme
from repro.faults import FaultPlan
from repro.recovery import RecoveryPolicy
from repro.sim.units import us


def ring_program(mpi):
    """Each rank talks only to its ring neighbours."""
    nxt = (mpi.rank + 1) % mpi.world_size
    prv = (mpi.rank - 1) % mpi.world_size
    for i in range(5):
        rreq = yield from mpi.irecv(source=prv, capacity=64, tag=i)
        yield from mpi.send(nxt, size=4, tag=i, payload=(mpi.rank, i))
        st = yield from mpi.wait(rreq)
        assert st.payload == (prv, i)
    return "ok"


def test_on_demand_ring_establishes_only_used_pairs():
    r = run_job(ring_program, 8, "static", prepost=10, on_demand=True,
                finalize=False)
    assert r.rank_results == ["ok"] * 8
    # ring: 8 unordered neighbour pairs (the finalize barrier is off, so
    # only application traffic wires connections)
    assert r.connections_established == 8


def test_static_mesh_reports_no_cm():
    r = run_job(ring_program, 8, "static", prepost=10)
    assert r.connections_established is None


def test_on_demand_saves_posted_buffers():
    """The memory argument: ring on 8 ranks with pre-post 50 posts vastly
    fewer buffers on-demand than with the full mesh."""
    mesh = run_job(ring_program, 8, "static", prepost=50, finalize=False)
    lazy = run_job(ring_program, 8, "static", prepost=50, on_demand=True,
                   finalize=False)

    def posted(result):
        return sum(
            c.recv_posted for ep in result.endpoints for c in ep.connections.values()
        )

    assert posted(mesh) > 3 * posted(lazy)
    # mesh: 8*7 connections; lazy ring: 16 directed connections
    assert sum(len(ep.connections) for ep in mesh.endpoints) == 56
    assert sum(len(ep.connections) for ep in lazy.endpoints) == 16


def test_on_demand_first_send_pays_setup_latency():
    def prog(mpi):
        if mpi.rank == 0:
            t0 = mpi.now
            yield from mpi.send(1, size=4, tag=0)
            first = mpi.now - t0
            t0 = mpi.now
            yield from mpi.send(1, size=4, tag=1)
            second = mpi.now - t0
            return (first, second)
        yield from mpi.recv(source=0, capacity=64, tag=0)
        yield from mpi.recv(source=0, capacity=64, tag=1)
        return None

    r = run_job(prog, 2, "static", prepost=10, on_demand=True,
                config=TestbedConfig(nodes=2))
    first, second = r.rank_results[0]
    assert first > second + 200_000  # the CM exchange (~250 us) paid once


def test_on_demand_concurrent_requests_deduplicated():
    """Both sides sending simultaneously must produce exactly one pair of
    QPs (the classic CM race)."""

    def prog(mpi):
        peer = 1 - mpi.rank
        rreq = yield from mpi.irecv(source=peer, capacity=64, tag=0)
        sreq = yield from mpi.isend(peer, size=4, tag=0, payload=mpi.rank)
        statuses = yield from mpi.waitall([rreq, sreq])
        assert statuses[0].payload == peer

    r = run_job(prog, 2, "static", prepost=10, on_demand=True,
                config=TestbedConfig(nodes=2))
    assert r.connections_established == 1


def test_on_demand_with_dynamic_scheme_and_collectives():
    """The paper's proposed combination survives an all-ranks workload:
    collectives force (at most) the algorithmic connection graph."""

    def prog(mpi):
        total = yield from mpi.allreduce(size=8, value=mpi.rank, op=lambda a, b: a + b)
        assert total == sum(range(mpi.world_size))
        yield from mpi.barrier()
        return total

    r = run_job(prog, 8, DynamicScheme(), prepost=1, on_demand=True)
    assert r.rank_results == [28] * 8
    # recursive doubling + dissemination barrier touch fewer pairs than
    # the full mesh of 28
    assert r.connections_established < 28


def test_on_demand_auto_threshold():
    """Above ``TestbedConfig.on_demand_threshold`` ranks, jobs go
    on-demand by default; below it they wire the full mesh; an explicit
    flag always wins."""
    cfg = TestbedConfig(nodes=8, on_demand_threshold=8)
    r = run_job(ring_program, 8, "static", prepost=10, config=cfg,
                finalize=False)
    assert r.connections_established == 8  # auto: 8 >= threshold
    below = run_job(ring_program, 8, "static", prepost=10,
                    config=TestbedConfig(nodes=8, on_demand_threshold=9),
                    finalize=False)
    assert below.connections_established is None  # auto: mesh
    forced = run_job(ring_program, 8, "static", prepost=10, config=cfg,
                     on_demand=False, finalize=False)
    assert forced.connections_established is None  # explicit beats auto


def _pair_program(tag):
    """Ranks 0 and 1 ping-pong one tagged message; others just compute.
    The pong leg keeps rank 0 polling its CQ (a lone buffered-eager send
    returns before any error completion lands), and distinct tags per run
    keep reused-cluster runs from cross-matching."""

    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, size=4, tag=tag, payload=tag)
            st = yield from mpi.recv(source=1, capacity=64, tag=tag)
            assert st.payload == tag
            return "pong"
        if mpi.rank == 1:
            st = yield from mpi.recv(source=0, capacity=64, tag=tag)
            assert st.payload == tag
            yield from mpi.send(0, size=4, tag=tag, payload=tag)
            return "ping"
        yield from mpi.compute(100)
        return None

    return prog


def test_recovery_teardown_then_reestablish_on_demand():
    """Regression (on-demand x recovery): the CM used to memoize the
    fired setup signal forever, so after recovery gave a pair up for dead
    the next send got a fired signal for a connection that no longer
    existed and hung.  Now ``RecoveryManager._fail`` tears the pair down
    through the CM and a later send re-runs the whole handshake."""
    cluster = Cluster(TestbedConfig(nodes=4))
    cluster.launch(4, make_scheme("static"), prepost=4, on_demand=True)
    cm = cluster.cm
    assert cm is not None

    # 1. healthy: first communication wires the pair lazily
    r1 = run_job(_pair_program(0), 4, "static", prepost=4, cluster=cluster,
                 finalize=False)
    assert r1.completed and cm.established == 1
    assert 1 in cluster.endpoints[0].connections

    # 2. permanent link loss at rank 1: the transport retry budget and
    #    then the recovery budget exhaust, and the manager dismantles the
    #    pair via the CM instead of leaving a zombie connection behind
    plan = (FaultPlan(seed=3, transport_timeout_ns=us(40),
                      transport_retry_limit=2)
            .link_flap(lid=1, at_ns=cluster.sim.now + 1,
                       duration_ns=10**12))
    policy = RecoveryPolicy(max_attempts=1, base_delay_ns=us(20),
                            max_delay_ns=us(100), jitter_ns=us(5))
    r2 = run_job(_pair_program(1), 4, "static", prepost=4, cluster=cluster,
                 finalize=False, faults=plan, recovery=policy)
    assert not r2.completed
    assert r2.failures[0].attempts == policy.max_attempts
    assert cm.torn_down == 1
    assert 1 not in cluster.endpoints[0].connections
    assert 0 not in cluster.endpoints[1].connections
    assert (0, 1) not in cm._pending  # the fired memo went with it

    # 3. the link is restored (run_job disarms the stale fault state on
    #    the reused cluster); a fresh-tag exchange re-runs the CM
    #    handshake end to end instead of trusting the dead memo
    r3 = run_job(_pair_program(2), 4, "static", prepost=4, cluster=cluster,
                 finalize=False)
    assert r3.completed
    assert r3.rank_results[:2] == ["pong", "ping"]
    assert cm.established == 2
    assert 1 in cluster.endpoints[0].connections


def test_stale_fired_memo_self_heals_on_next_request():
    """Belt-and-braces for teardown paths that bypass ``cm.teardown``:
    a fired memo whose connections are gone is dropped and re-established
    (a one-shot Signal cannot re-fire)."""
    cluster = Cluster(TestbedConfig(nodes=2))
    cluster.launch(2, make_scheme("static"), prepost=4, on_demand=True)
    cm = cluster.cm
    ep0 = cluster.endpoints[0]
    sig = cm.request(ep0, 1)
    cluster.sim.run(max_events=100_000)
    assert sig.fired and cm.established == 1

    cluster.endpoints[0].connections.pop(1)  # rude teardown, no cm call
    cluster.endpoints[1].connections.pop(0)
    sig2 = cm.request(ep0, 1)
    assert sig2 is not sig  # not the stale fired memo
    assert cm.invalidated == 1
    cluster.sim.run(max_events=100_000)
    assert sig2.fired and cm.established == 2
    assert 1 in cluster.endpoints[0].connections


def test_repeated_teardown_of_same_pair_counts_each_loss():
    """The same pair failing permanently twice must tear down twice —
    the counters accumulate and the memo is fresh each cycle (a stale
    entry would hand the second failure a fired signal for a corpse)."""
    cluster = Cluster(TestbedConfig(nodes=4))
    cluster.launch(4, make_scheme("static"), prepost=4, on_demand=True)
    cm = cluster.cm
    policy = RecoveryPolicy(max_attempts=1, base_delay_ns=us(20),
                            max_delay_ns=us(100), jitter_ns=us(5))
    tag = 0
    for cycle in (1, 2):
        # heal: wire the pair fresh (tags keep runs from cross-matching)
        ok = run_job(_pair_program(tag), 4, "static", prepost=4,
                     cluster=cluster, finalize=False)
        tag += 1
        assert ok.completed
        assert cm.established == cycle
        # break it for good: outage outlives transport + recovery budgets
        plan = (FaultPlan(seed=cycle, transport_timeout_ns=us(40),
                          transport_retry_limit=2)
                .link_flap(lid=1, at_ns=cluster.sim.now + 1,
                           duration_ns=10**12))
        bad = run_job(_pair_program(tag), 4, "static", prepost=4,
                      cluster=cluster, finalize=False, faults=plan,
                      recovery=policy)
        tag += 1
        assert not bad.completed
        assert cm.torn_down == cycle
        assert 1 not in cluster.endpoints[0].connections
        assert (0, 1) not in cm._pending


def test_repeated_stale_memo_invalidations_accumulate():
    """Every rude teardown (bypassing ``cm.teardown``) of the same pair
    is healed independently: the fired memo is dropped and the handshake
    re-runs, however many times it happens."""
    cluster = Cluster(TestbedConfig(nodes=2))
    cluster.launch(2, make_scheme("static"), prepost=4, on_demand=True)
    cm = cluster.cm
    ep0 = cluster.endpoints[0]
    sig = cm.request(ep0, 1)
    cluster.sim.run(max_events=100_000)
    assert sig.fired and cm.established == 1

    for n in (1, 2, 3):
        cluster.endpoints[0].connections.pop(1)  # no cm.teardown call
        cluster.endpoints[1].connections.pop(0)
        fresh = cm.request(ep0, 1)
        assert fresh is not sig
        assert cm.invalidated == n
        cluster.sim.run(max_events=100_000)
        assert fresh.fired and cm.established == 1 + n
        sig = fresh
    assert 1 in cluster.endpoints[0].connections


def test_unused_peer_never_connected():
    def prog(mpi):
        if mpi.rank in (0, 1):
            if mpi.rank == 0:
                yield from mpi.send(1, size=4)
            else:
                yield from mpi.recv(source=0, capacity=64)
        else:
            yield from mpi.compute(1000)

    r = run_job(prog, 4, "static", prepost=10, on_demand=True, finalize=False)
    assert r.connections_established == 1
    assert len(r.endpoints[2].connections) == 0
    assert len(r.endpoints[3].connections) == 0
