"""Rank-failure tolerance (repro.ft): heartbeat detection, ULFM-style
error propagation, control-plane chaos, and the zero-cost-when-disabled
contract.

The detector's claims under test:

- a dead rank becomes a structured :class:`RankFailure` (never a hang),
  within the configured detection budget, via either the heartbeat path
  (infinite transport retry) or transport retry exhaustion (finite);
- every pending request toward the corpse completes with a
  ``PROC_FAILED`` status, and survivors keep communicating among
  themselves (revoke/shrink continue a degraded workload);
- with ft disabled the same death is caught by the progress watchdog —
  the pre-ft failure mode — and with no plan armed the subsystem is
  bit-identical off.
"""

import json

import pytest

from repro.check.auditor import Auditor, InvariantViolation
from repro.cluster import Cluster, TestbedConfig, run_job
from repro.core import make_scheme
from repro.faults import FaultPlan
from repro.faults.scenarios import RANK_DEATH_VICTIM, _rank_death_program
from repro.ft import FTConfig, PROC_FAILED, RankFailure
from repro.mpi import CommRevokedError, world
from repro.mpi.comm import MPIError
from repro.recovery import RecoveryPolicy
from repro.sim.units import us

VICTIM = RANK_DEATH_VICTIM  # rank 2 of 4 (one rank per node by default)

ALL_SCHEMES = ("static", "dynamic", "hardware", "rdma-eager")


def _death_plan(seed=7, **kw):
    return FaultPlan(seed=seed, **kw).rank_death(rank=VICTIM, at_ns=us(40))


def _run_death(scheme="static", plan=None, **kw):
    return run_job(
        _rank_death_program(4, VICTIM), 4, scheme, 8,
        faults=plan if plan is not None else _death_plan(),
        audit=True, ft=True, **kw,
    )


# ----------------------------------------------------------------------
# detection
# ----------------------------------------------------------------------
def test_rank_death_yields_structured_failure_within_budget():
    r = _run_death("static")
    assert len(r.failures) == 1
    f = r.failures[0]
    assert isinstance(f, RankFailure)
    assert f.rank == VICTIM
    assert f.detected_by != VICTIM
    assert f.died_ns == us(40)
    assert f.detected_ns > f.died_ns
    assert f.detection_latency_ns == f.detected_ns - f.died_ns
    assert f.detection_latency_ns <= FTConfig().detection_budget_ns
    assert f.suspect_rounds >= 1
    assert f.dedup_key() == ("rank", VICTIM)
    d = f.to_dict()
    assert d["kind"] == "rank-death"
    assert d["detection_latency_ns"] == f.detection_latency_ns


def test_infinite_retry_detects_via_heartbeat():
    """With the default (infinite) transport retry the transport never
    confirms anything — detection is the heartbeat detector's alone."""
    f = _run_death("static").failures[0]
    assert f.cause == "heartbeat-timeout"


def test_finite_retry_detects_via_transport_exhaustion_and_faster():
    slow = _run_death("static").failures[0]
    fast = _run_death(
        "static", plan=_death_plan(transport_retry_limit=3)
    ).failures[0]
    assert fast.cause == "transport-retry-exceeded"
    assert fast.detected_ns < slow.detected_ns


def test_heartbeat_only_detection_when_transport_is_silent():
    """Survivors only *receive* from the victim: no transport traffic
    toward the corpse, so explicit pings are the only liveness probe."""

    def prog(ep):
        if ep.rank == VICTIM:
            yield from ep.compute(us(10_000))  # killed long before this
            return None
        req = yield from ep.irecv(source=VICTIM, capacity=64)
        st = yield from ep.wait(req)
        return st.error

    r = run_job(prog, 4, "static", 8, faults=_death_plan(),
                audit=True, ft=True)
    f = r.failures[0]
    assert f.cause == "heartbeat-timeout"
    assert r.ft.pings_sent > 0
    survivors = [x for i, x in enumerate(r.rank_results) if i != VICTIM]
    assert survivors == [PROC_FAILED] * 3


def test_ft_stats_exposed_on_job_result():
    r = _run_death("dynamic")
    stats = r.ft.stats()
    assert stats["dead"] == [VICTIM]
    assert stats["suspicions"] >= 1
    assert stats["proc_failed_requests"] >= 1


# ----------------------------------------------------------------------
# ULFM propagation: PROC_FAILED, zero hung ranks, revoke/shrink
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_no_rank_hangs_and_pending_requests_fail(scheme):
    r = _run_death(scheme)
    assert len(r.failures) == 1
    for rank, res in enumerate(r.rank_results):
        if rank == VICTIM:
            assert res is None  # killed, returned nothing
            continue
        # sends and recvs aimed at the corpse completed with PROC_FAILED;
        # the survivor-only ring completed cleanly
        assert res["send_error"] == PROC_FAILED
        assert res["recv_error"] == PROC_FAILED
        assert res["ring_error"] is None


def test_revoke_shrink_and_degraded_continuation():
    """After detection the survivors revoke the world communicator,
    shrink it, and finish a collective on the survivor group."""

    def prog(ep):
        comm = world(ep)
        if ep.rank == VICTIM:
            yield from ep.compute(us(10_000))
            return None
        req = yield from ep.isend(VICTIM, 50_000)
        st = yield from ep.wait(req)
        assert st.error == PROC_FAILED
        comm.revoke()
        assert comm.revoked
        try:
            yield from comm.isend((ep.rank + 1) % 4, 4)
            revoked_raise = False
        except CommRevokedError:
            revoked_raise = True
        assert comm.failed_ranks() == [VICTIM]
        shrunk = comm.shrink()
        assert shrunk.size == 3 and VICTIM not in shrunk.group
        total = yield from shrunk.allreduce(size=8, value=1,
                                            op=lambda a, b: a + b)
        return (revoked_raise, total)

    r = run_job(prog, 4, "static", 8, faults=_death_plan(),
                audit=True, ft=True)
    for rank, res in enumerate(r.rank_results):
        if rank != VICTIM:
            assert res == (True, 3)


def test_shrink_without_ft_keeps_full_group():
    def prog(ep):
        comm = world(ep)
        assert comm.failed_ranks() == []
        shrunk = comm.shrink()
        assert shrunk.group == comm.group
        yield from ep.compute(10)

    run_job(prog, 2, "static", 4, config=TestbedConfig(nodes=2))


# ----------------------------------------------------------------------
# the no-ft contrast: same plan, pre-ft failure modes
# ----------------------------------------------------------------------
def test_without_ft_the_watchdog_catches_the_death():
    with pytest.raises(InvariantViolation, match="progress-watchdog"):
        run_job(_rank_death_program(4, VICTIM), 4, "static", 8,
                faults=_death_plan(), audit=True)


def test_without_ft_or_audit_the_hung_check_catches_it():
    plan = _death_plan(transport_retry_limit=3)

    def prog(ep):
        if ep.rank == VICTIM:
            yield from ep.compute(us(10_000))
            return None
        # recv-only: no error completion ever reaches a survivor, so
        # nothing raises and the agenda simply drains with live ranks
        st = yield from ep.recv(source=VICTIM, capacity=64)
        return st.error

    with pytest.raises(RuntimeError, match="deadlock"):
        run_job(prog, 4, "static", 8, faults=plan)


# ----------------------------------------------------------------------
# dedup (satellite: O(n^2) failure collection -> dedup_key set)
# ----------------------------------------------------------------------
def test_rank_failure_recorded_once_despite_many_observers():
    """Every survivor observes the same death (failed requests, failed
    pending signals, the manager's own record): JobResult.failures must
    still carry exactly one record per dead rank."""
    r = _run_death("hardware")
    assert len(r.failures) == 1
    assert r.ft.proc_failed >= 3  # many observations, one record


def test_cm_exhaustion_failure_deduped_across_both_waiters():
    """Both ends of the pair wait on the same doomed CM signal; the
    shared ConnectionFailure must be recorded once, not per waiter."""

    def prog(ep):
        peer = 1 - ep.rank
        rreq = yield from ep.irecv(source=peer, capacity=64)
        sreq = yield from ep.isend(peer, 4)
        yield from ep.waitall([rreq, sreq])

    policy = RecoveryPolicy(max_attempts=3, base_delay_ns=us(50),
                            max_delay_ns=us(2000), jitter_ns=us(10))
    r = run_job(prog, 2, "static", 4, config=TestbedConfig(nodes=2),
                on_demand=True,
                cm_chaos={"loss_prob": 0.999, "policy": policy, "seed": 1})
    assert not r.completed
    assert len(r.failures) == 1
    f = r.failures[0]
    assert f.cause == "cm-setup-timeout"
    assert f.attempts == policy.max_attempts
    assert f.dedup_key() == ("connection", 0, 1, 0)


# ----------------------------------------------------------------------
# control-plane chaos
# ----------------------------------------------------------------------
def _cm_chaos_job(tag, cluster=None, **chaos):
    def prog(ep):
        peer = 1 - ep.rank
        rreq = yield from ep.irecv(source=peer, capacity=64, tag=tag)
        yield from ep.send(peer, 4, tag=tag, payload=ep.rank)
        st = yield from ep.wait(rreq)
        return st.payload

    return run_job(prog, 2, "static", 4, config=TestbedConfig(nodes=2),
                   on_demand=True, cm_chaos=chaos or None, cluster=cluster)


def test_cm_chaos_lossy_setup_retries_then_connects():
    # seed 2: the pair's first exchange draw is ~0.086 < 0.9 -> lost
    r = _cm_chaos_job(0, loss_prob=0.9, delay_ns=us(100), seed=2)
    assert r.completed
    assert r.rank_results == [1, 0]
    s = r.tracer.summary()
    assert s.get("cm.setup_lost", 0) >= 1
    assert s.get("cm.setup_retry", 0) >= 1


def test_cm_chaos_is_deterministic():
    a = _cm_chaos_job(0, loss_prob=0.5, delay_ns=us(120), seed=9)
    b = _cm_chaos_job(0, loss_prob=0.5, delay_ns=us(120), seed=9)
    assert a.elapsed_ns == b.elapsed_ns
    assert json.dumps(a.tracer.summary(), sort_keys=True) == \
        json.dumps(b.tracer.summary(), sort_keys=True)


def test_cm_chaos_needs_on_demand():
    def prog(ep):
        yield from ep.compute(10)

    with pytest.raises(ValueError, match="on-demand"):
        run_job(prog, 2, "static", 4, config=TestbedConfig(nodes=2),
                cm_chaos={"loss_prob": 0.1})


def test_cm_chaos_rejects_bad_parameters():
    cluster = Cluster(TestbedConfig(nodes=2))
    cluster.launch(2, make_scheme("static"), prepost=4, on_demand=True)
    with pytest.raises(ValueError):
        cluster.cm.configure_chaos(loss_prob=1.0)
    with pytest.raises(ValueError):
        cluster.cm.configure_chaos(delay_ns=-1)


# ----------------------------------------------------------------------
# watchdog grace during recovery backoff (satellite)
# ----------------------------------------------------------------------
def test_watchdog_tolerates_long_recovery_backoff():
    """A backoff window longer than the watchdog's quiet bound must not
    false-trip it: the auditor now treats an active RecoveryManager
    window as progress-pending-by-design."""

    def prog(ep):
        if ep.rank == 0:
            yield from ep.compute(us(50))  # send lands mid-outage
            yield from ep.send(1, 4, tag=0, payload=0)
            st = yield from ep.recv(source=1, capacity=64, tag=0)
            return st.payload
        st = yield from ep.recv(source=0, capacity=64, tag=0)
        yield from ep.send(0, 4, tag=0, payload=1)
        return st.payload

    # outage outlives the transport budget; the reconnect backoff (6 ms)
    # dwarfs the watchdog quiet bound (5 ms)
    plan = (FaultPlan(seed=3, transport_timeout_ns=us(40),
                      transport_retry_limit=2)
            .link_flap(lid=1, at_ns=us(30), duration_ns=us(8000)))
    policy = RecoveryPolicy(max_attempts=6, base_delay_ns=us(6000),
                            backoff_factor=2.0, max_delay_ns=us(20000),
                            jitter_ns=us(10), seed=0)
    r = run_job(prog, 2, "static", 4, config=TestbedConfig(nodes=2),
                faults=plan, audit=True, recovery=policy)
    assert r.completed
    assert r.recovery.summary()["completed"] >= 1


# ----------------------------------------------------------------------
# FTConfig validation
# ----------------------------------------------------------------------
def test_ft_config_validates():
    with pytest.raises(ValueError):
        FTConfig(heartbeat_interval_ns=0).validate()
    with pytest.raises(ValueError):
        FTConfig(confirmations=-1).validate()
    cfg = FTConfig()
    assert cfg.detection_budget_ns > cfg.suspect_timeout_ns


def test_rank_death_plan_spec_roundtrip():
    plan = _death_plan()
    again = FaultPlan.from_spec(plan.to_spec())
    ev = again.events[0]
    assert ev.kind == "rank_death" and ev.rank == VICTIM
    assert ev.at_ns == us(40)


# ----------------------------------------------------------------------
# inertness: disabled == bit-identical to the pre-ft fabric
# ----------------------------------------------------------------------
def test_ft_disabled_is_bit_identity_inert():
    def run_plain():
        return run_job(_rank_death_program(4, VICTIM), 4, "dynamic", 8)

    # the program "as written" (no death): victim receives and replies
    before_armed = run_plain()
    armed = run_job(_rank_death_program(4, VICTIM), 4, "dynamic", 8,
                    faults=_death_plan(), audit=True, ft=True)
    assert armed.failures and armed.ft is not None
    after = run_plain()
    assert after.ft is None
    assert after.elapsed_ns == before_armed.elapsed_ns
    assert after.rank_finish_ns == before_armed.rank_finish_ns
    assert json.dumps(after.fc_dict(), sort_keys=True) == \
        json.dumps(before_armed.fc_dict(), sort_keys=True)


def test_cm_chaos_unarmed_is_bit_identity_inert():
    before = _cm_chaos_job(0)
    chaotic = _cm_chaos_job(0, loss_prob=0.9, delay_ns=us(100), seed=3)
    after = _cm_chaos_job(0)
    assert before.completed and chaotic.completed and after.completed
    assert after.elapsed_ns == before.elapsed_ns
    assert json.dumps(after.fc_dict(), sort_keys=True) == \
        json.dumps(before.fc_dict(), sort_keys=True)
    assert chaotic.elapsed_ns > before.elapsed_ns  # proof it engaged
