"""Tests for memory semantics: RDMA write / read and protection checks."""

import pytest

from repro.ib import IBConfig, Opcode, QPState, RecvWR, SendWR, WCStatus
from repro.ib.mr import MRError, RemoteAccessError
from tests.ib_helpers import build_pair


def run(sim):
    sim.run(max_events=2_000_000)


def test_rdma_write_lands_in_remote_mr_without_recv_wqe():
    sim, _, hcas, qp0, qp1, cq0, cq1 = build_pair()
    mr = hcas[1].reg_mr(4096)
    qp0.post_send(
        SendWR(
            wr_id="w",
            opcode=Opcode.RDMA_WRITE,
            length=1024,
            payload="zero-copy!",
            remote_addr=mr.addr + 100,
            rkey=mr.rkey,
        )
    )
    run(sim)
    assert cq0.poll()[0].ok
    assert cq1.poll() == []  # one-sided: transparent at the target
    assert mr.load(mr.addr + 100) == "zero-copy!"
    assert qp1.posted_recvs == 0


def test_rdma_write_bad_rkey_is_remote_access_error():
    sim, _, hcas, qp0, qp1, cq0, cq1 = build_pair()
    hcas[1].reg_mr(4096)
    qp0.post_send(
        SendWR(
            wr_id="w",
            opcode=Opcode.RDMA_WRITE,
            length=64,
            payload="x",
            remote_addr=0xDEAD,
            rkey=999_999_999,
        )
    )
    run(sim)
    wc = cq0.poll()[0]
    assert wc.status is WCStatus.REMOTE_ACCESS_ERROR
    assert qp0.state is QPState.ERROR


def test_rdma_write_out_of_bounds_rejected():
    sim, _, hcas, qp0, qp1, cq0, cq1 = build_pair()
    mr = hcas[1].reg_mr(1000)
    qp0.post_send(
        SendWR(
            wr_id="w",
            opcode=Opcode.RDMA_WRITE,
            length=500,
            payload="x",
            remote_addr=mr.addr + 600,  # 600+500 > 1000
            rkey=mr.rkey,
        )
    )
    run(sim)
    assert cq0.poll()[0].status is WCStatus.REMOTE_ACCESS_ERROR


def test_rdma_read_fetches_remote_data():
    sim, _, hcas, qp0, qp1, cq0, cq1 = build_pair()
    mr = hcas[1].reg_mr(4096)
    mr.store(mr.addr, "remote-data")
    qp0.post_send(
        SendWR(
            wr_id="rd",
            opcode=Opcode.RDMA_READ,
            length=2048,
            remote_addr=mr.addr,
            rkey=mr.rkey,
        )
    )
    run(sim)
    wc = cq0.poll()[0]
    assert wc.ok
    assert wc.opcode is Opcode.RDMA_READ
    assert wc.data == "remote-data"
    assert wc.byte_len == 2048


def test_rdma_read_bad_rkey_errors():
    sim, _, hcas, qp0, qp1, cq0, cq1 = build_pair()
    qp0.post_send(
        SendWR(wr_id="rd", opcode=Opcode.RDMA_READ, length=8, remote_addr=1, rkey=42)
    )
    run(sim)
    assert cq0.poll()[0].status is WCStatus.REMOTE_ACCESS_ERROR


def test_send_and_rdma_interleave_in_order():
    """SEND after RDMA_WRITE on the same QP must observe the written data
    (ordered RC channel) — the property the zero-copy rendezvous FIN
    message relies on."""
    sim, _, hcas, qp0, qp1, cq0, cq1 = build_pair()
    mr = hcas[1].reg_mr(65536)
    qp1.post_recv(RecvWR(wr_id="fin", capacity=64))
    observed = {}

    qp0.post_send(
        SendWR(
            wr_id="data",
            opcode=Opcode.RDMA_WRITE,
            length=32768,
            payload="payload",
            remote_addr=mr.addr,
            rkey=mr.rkey,
        )
    )
    qp0.post_send(SendWR(wr_id="fin", opcode=Opcode.SEND, length=16, payload="FIN"))

    # Snapshot MR content at the instant the FIN arrives.
    orig_push = cq1.push

    def snoop(wc):
        if wc.is_recv:
            observed["at_fin"] = mr.load(mr.addr)
        orig_push(wc)

    cq1.push = snoop
    run(sim)
    assert observed["at_fin"] == "payload"


def test_deregistered_mr_rejects_rdma():
    sim, _, hcas, qp0, qp1, cq0, cq1 = build_pair()
    mr = hcas[1].reg_mr(4096)
    hcas[1].dereg_mr(mr)
    qp0.post_send(
        SendWR(
            wr_id="w",
            opcode=Opcode.RDMA_WRITE,
            length=8,
            payload="x",
            remote_addr=mr.addr,
            rkey=mr.rkey,
        )
    )
    run(sim)
    assert cq0.poll()[0].status is WCStatus.REMOTE_ACCESS_ERROR


def test_double_deregistration_raises():
    sim, _, hcas, *_ = build_pair()
    mr = hcas[0].reg_mr(4096)
    hcas[0].dereg_mr(mr)
    with pytest.raises(MRError):
        hcas[0].dereg_mr(mr)


def test_registration_accounting():
    sim, _, hcas, *_ = build_pair()
    t = hcas[0].mrs
    base = t.registered_bytes
    mr1 = hcas[0].reg_mr(10_000)
    mr2 = hcas[0].reg_mr(20_000)
    assert t.registered_bytes == base + 30_000
    assert t.peak_registered_bytes >= base + 30_000
    hcas[0].dereg_mr(mr1)
    assert t.registered_bytes == base + 20_000
    hcas[0].dereg_mr(mr2)
    assert t.registered_bytes == base


def test_registration_cost_scales_with_pages():
    cfg = IBConfig()
    one_page = cfg.registration_ns(100)
    many_pages = cfg.registration_ns(100 * cfg.page_bytes)
    assert many_pages > one_page
    assert many_pages - one_page == 99 * cfg.reg_per_page_ns


def test_check_remote_raises_for_unknown_rkey():
    sim, _, hcas, *_ = build_pair()
    with pytest.raises(RemoteAccessError):
        hcas[0].mrs.check_remote(123456, 0, 8)


def test_register_zero_bytes_rejected():
    sim, _, hcas, *_ = build_pair()
    with pytest.raises(MRError):
        hcas[0].reg_mr(0)
