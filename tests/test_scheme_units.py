"""Direct unit tests of the scheme policy objects (no cluster involved)."""

import pytest

from repro.core import (
    ALL_SCHEMES,
    DynamicScheme,
    HardwareScheme,
    SchemeName,
    StaticScheme,
    make_scheme,
)
from repro.core.base import FlowControlScheme
from repro.mpi.protocol import Header, MsgKind


class FakeEndpoint:
    class config:
        rdma_control_bufs = 8

    def _post_recv_vbuf(self, conn):
        conn.recv_posted += 1


class FakeConn:
    """Just enough Connection surface for the policy hooks."""

    def __init__(self):
        self.endpoint = FakeEndpoint()
        self.credits = 0
        self.prepost_target = 0
        self.headroom = 0
        self.recv_posted = 0
        self.pending_credit_return = 0
        self.rdma_eager = False
        self.stats = type("S", (), {"max_prepost": 0})()
        self.qp = type("Q", (), {"set_initial_credit_estimate": lambda *_: None})()

    def set_prepost_target(self, n):
        self.prepost_target = n
        self.stats.max_prepost = max(self.stats.max_prepost, n)

    def refill_recv_buffers(self):
        posted = 0
        while self.recv_posted < self.prepost_target + self.headroom:
            self.recv_posted += 1
            posted += 1
        return posted


def header(seq, backlog=False):
    return Header(kind=MsgKind.EAGER, src=0, dst=1, seq=seq, went_backlog=backlog)


# ----------------------------------------------------------------------
def test_scheme_names_and_registry():
    assert [s.value for s in ALL_SCHEMES] == ["hardware", "static", "dynamic"]
    for name in ALL_SCHEMES:
        scheme = make_scheme(name)
        assert isinstance(scheme, FlowControlScheme)
        assert scheme.name is name


def test_static_credit_gate():
    s = StaticScheme()
    conn = FakeConn()
    s.setup_connection(conn, 3)
    assert conn.credits == 3
    assert conn.recv_posted == 3 + s.optimistic_headroom
    assert s.try_consume_credit(conn)
    assert s.try_consume_credit(conn)
    assert s.try_consume_credit(conn)
    assert not s.try_consume_credit(conn)  # exhausted
    s.on_credits_received(conn, 2)
    assert conn.credits == 2


def test_static_ecm_threshold_exact():
    s = StaticScheme(ecm_threshold=5)
    conn = FakeConn()
    s.setup_connection(conn, 10)
    conn.pending_credit_return = 4
    assert not s.should_send_ecm(conn)
    conn.pending_credit_return = 5
    assert s.should_send_ecm(conn)


def test_hardware_never_gates():
    h = HardwareScheme()
    conn = FakeConn()
    h.setup_connection(conn, 2)
    for _ in range(100):
        assert h.try_consume_credit(conn)
    assert not h.should_send_ecm(conn)
    h.on_credits_received(conn, 5)
    assert conn.credits == 0  # no credit state at all


def test_dynamic_doubles_on_feedback():
    d = DynamicScheme()
    conn = FakeConn()
    d.setup_connection(conn, 1)
    grown = d.on_recv_header(conn, header(seq=0, backlog=True))
    assert conn.prepost_target == 2
    assert grown == 1
    assert conn.pending_credit_return == 1  # new buffer -> new credit


def test_dynamic_rate_limit_skips_stale_flags():
    d = DynamicScheme()  # rate_limited=True by default
    conn = FakeConn()
    d.setup_connection(conn, 1)
    d.on_recv_header(conn, header(seq=0, backlog=True))  # -> 2, barrier=seq 2
    d.on_recv_header(conn, header(seq=1, backlog=True))  # stale: ignored
    assert conn.prepost_target == 2
    d.on_recv_header(conn, header(seq=5, backlog=True))  # past barrier -> 4
    assert conn.prepost_target == 4


def test_dynamic_without_rate_limit_compounds():
    d = DynamicScheme(rate_limited=False)
    conn = FakeConn()
    d.setup_connection(conn, 1)
    for seq in range(4):
        d.on_recv_header(conn, header(seq=seq, backlog=True))
    assert conn.prepost_target == 16  # 1 -> 2 -> 4 -> 8 -> 16


def test_dynamic_linear_policy():
    d = DynamicScheme(exponential=False, growth_step=3, rate_limited=False)
    conn = FakeConn()
    d.setup_connection(conn, 2)
    d.on_recv_header(conn, header(seq=0, backlog=True))
    assert conn.prepost_target == 5


def test_dynamic_capped_at_max():
    d = DynamicScheme(max_prepost=4, rate_limited=False)
    conn = FakeConn()
    d.setup_connection(conn, 1)
    for seq in range(10):
        d.on_recv_header(conn, header(seq=seq, backlog=True))
    assert conn.prepost_target == 4


def test_dynamic_no_growth_without_flag():
    d = DynamicScheme()
    conn = FakeConn()
    d.setup_connection(conn, 1)
    for seq in range(20):
        assert d.on_recv_header(conn, header(seq=seq, backlog=False)) == 0
    assert conn.prepost_target == 1


def test_dynamic_decay_halves_after_quiet_streak():
    d = DynamicScheme(decay_enabled=True, decay_idle_messages=10,
                      rate_limited=False)
    conn = FakeConn()
    d.setup_connection(conn, 8)
    for seq in range(10):
        d.on_recv_header(conn, header(seq=seq, backlog=False))
    assert conn.prepost_target == 4
    # max_prepost statistic keeps the high-water mark
    assert conn.stats.max_prepost == 8


def test_make_scheme_kwargs_forwarding():
    s = make_scheme("static", ecm_threshold=9)
    assert s.ecm_threshold == 9
    d = make_scheme("dynamic", growth_step=7, exponential=False)
    assert d.growth_step == 7 and not d.exponential
    h = make_scheme("hardware", arm_e2e_gate=True)
    assert h.arm_e2e_gate
    assert make_scheme(SchemeName.DYNAMIC).name is SchemeName.DYNAMIC
