"""Tests for MPI derived datatypes."""

import pytest
from hypothesis import given, strategies as st

from repro.mpi.datatypes import (
    BYTE,
    DOUBLE,
    Datatype,
    DatatypeError,
    INT,
    pack_cost_ns,
    typed_size,
)


def test_predefined_scalars():
    assert BYTE.size == 1 and BYTE.contiguous
    assert INT.size == 4
    assert DOUBLE.size == DOUBLE.extent == 8


def test_contiguous_constructor():
    row = Datatype.contiguous_of(100, DOUBLE)
    assert row.size == 800
    assert row.extent == 800
    assert row.contiguous


def test_vector_strided_column():
    # a column of a 100x100 double matrix: 100 blocks of 1, stride 100
    col = Datatype.vector_of(100, 1, 100, DOUBLE)
    assert col.size == 800
    assert col.extent == (99 * 100 + 1) * 8
    assert not col.contiguous


def test_vector_degenerate_is_contiguous():
    v = Datatype.vector_of(10, 4, 4, DOUBLE)  # stride == blocklength
    assert v.contiguous
    assert v.size == v.extent == 10 * 4 * 8


def test_vector_overlap_rejected():
    with pytest.raises(DatatypeError):
        Datatype.vector_of(3, 4, 2, DOUBLE)


def test_indexed_blocks():
    t = Datatype.indexed_of([(2, 0), (3, 10)], INT)
    assert t.size == 5 * 4
    assert t.extent == 13 * 4
    assert not t.contiguous


def test_indexed_adjacent_blocks_contiguous():
    t = Datatype.indexed_of([(2, 0), (3, 2)], INT)
    assert t.contiguous
    assert t.size == t.extent == 20


def test_indexed_overlap_rejected():
    with pytest.raises(DatatypeError):
        Datatype.indexed_of([(4, 0), (2, 2)], INT)


def test_indexed_empty():
    t = Datatype.indexed_of([], INT)
    assert t.size == 0 and t.contiguous


def test_typed_size_and_pack_cost():
    col = Datatype.vector_of(64, 1, 64, DOUBLE)
    assert typed_size(10, col) == 10 * 64 * 8
    assert pack_cost_ns(10, col, memcpy_bytes_per_ns=2.0) == 2560
    row = Datatype.contiguous_of(64, DOUBLE)
    assert pack_cost_ns(10, row, memcpy_bytes_per_ns=2.0) == 0


def test_negative_counts_rejected():
    with pytest.raises(DatatypeError):
        typed_size(-1, INT)
    with pytest.raises(DatatypeError):
        Datatype.contiguous_of(-1, INT)


def test_nested_composition():
    face = Datatype.vector_of(16, 5, 64, DOUBLE)  # boundary plane layout
    volume = Datatype.contiguous_of(64, face)
    assert volume.size == 64 * face.size
    assert not volume.contiguous


@given(count=st.integers(0, 1000), bl=st.integers(0, 16),
       extra=st.integers(0, 64))
def test_vector_size_extent_invariants(count, bl, extra):
    stride = bl + extra  # never overlapping
    t = Datatype.vector_of(count, bl, stride, DOUBLE)
    assert t.size == count * bl * 8
    assert t.extent >= t.size
    if count and bl:
        assert t.contiguous == (extra == 0 or count == 1)


def test_workload_usage_with_endpoint():
    """Datatypes plug into the size-based API naturally."""
    from tests.mpi_helpers import run2

    column = Datatype.vector_of(128, 1, 128, DOUBLE)

    def prog(mpi):
        nbytes = typed_size(4, column)
        pack = pack_cost_ns(4, column, mpi.config.memcpy_bytes_per_ns)
        if mpi.rank == 0:
            yield from mpi.compute(pack)  # gather the strided columns
            yield from mpi.send(1, size=nbytes, payload="cols")
        else:
            st_ = yield from mpi.recv(source=0, capacity=nbytes)
            yield from mpi.compute(pack)  # scatter into place
            assert st_.size == 4 * 128 * 8

    run2(prog)
