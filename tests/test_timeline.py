"""Tests for the run-forensics helpers (repro.analysis.timeline)."""

from repro.analysis.timeline import (
    fabric_utilisation,
    flow_control_timeline,
    rank_activity,
)
from repro.cluster import TestbedConfig, run_job


def traced_flood():
    def prog(mpi):
        if mpi.rank == 0:
            reqs = []
            for i in range(30):
                r = yield from mpi.isend(1, size=100, payload=i)
                reqs.append(r)
            yield from mpi.waitall(reqs)
        else:
            for i in range(30):
                yield from mpi.recv(source=0, capacity=256)
                yield from mpi.compute(5_000)

    return run_job(prog, 2, "static", prepost=4,
                   config=TestbedConfig(nodes=2), trace=True)


def test_fabric_utilisation_counts_pairs():
    r = traced_flood()
    util = fabric_utilisation(r)
    assert (0, 1) in util
    assert util[(0, 1)].messages >= 30
    assert util[(0, 1)].payload_bytes >= 30 * 100


def test_rank_activity_table():
    r = traced_flood()
    table = rank_activity(r)
    assert table.value("rank0", "sent_bytes") >= 3000
    assert table.value("rank1", "recvd_bytes") >= 3000
    assert 0.0 <= table.value("rank1", "wait_share_%") <= 100.0
    assert "rank0" in table.render()


def test_flow_control_timeline_orders_by_stall():
    r = traced_flood()
    table = flow_control_timeline(r, top=4)
    stalls = [row[1][0] for row in table.rows]
    assert stalls == sorted(stalls, reverse=True)
    # the flooded connection tops the list with real backlog traffic
    top_name, top_vals = table.rows[0]
    assert top_name == "0->1"
    assert table.value("0->1", "backlogged") > 0
