"""The connection-recovery subsystem (repro.recovery).

Matrix (the ISSUE acceptance grid): three schemes x three fatal modes
(RNR retry budget, transport retry budget, permanent link loss) x
recovery {on, off}.  With recovery on and a *healing* fault, every
scheme finishes with a delivered multiset identical to the fault-free
run (reusing the differential fuzzer's comparator) under the runtime
auditor; with recovery off — or a fault that never heals — the job
reports structured :class:`ConnectionFailure` records promptly instead
of hanging until the progress watchdog.

Plus the satellite units: the error-completion dispatch path, the
recovery-aware repost path, the adaptive RNR backoff ladder, and the
zero-cost-when-disabled guarantee.
"""

import pytest

from repro.check import fuzz
from repro.cluster import Cluster, TestbedConfig
from repro.cluster.job import run_job
from repro.core import make_scheme
from repro.faults import FaultPlan
from repro.faults.scenarios import SCENARIOS as CHAOS_SCENARIOS
from repro.ib import IBConfig, Opcode, QPState, SendWR, WCStatus
from repro.recovery import ConnectionFailure, RecoveryPolicy
from repro.sim.units import us
from tests.ib_helpers import build_pair

SCHEMES = ("hardware", "static", "dynamic")

#: Progress-watchdog bound (5 ms): a "prompt" failure must beat this by
#: a wide margin, or the old hang-until-watchdog behaviour is back.
WATCHDOG_NS = 5_000_000


def _link_down_spec(seed: int, heal: bool = True) -> dict:
    """A fuzz spec whose link outage exhausts the transport retry budget
    (RETRY_EXCEEDED mid-stream).  ``heal=False`` makes the outage outlive
    any reconnect budget as well."""
    spec = fuzz.generate_spec(seed, "link-down")
    if not heal:
        spec = dict(spec)
        spec["faults"] = dict(spec["faults"])
        spec["faults"]["events"] = [
            dict(ev, duration_ns=10**12) for ev in spec["faults"]["events"]
        ]
    return spec


def _fault_free(spec: dict) -> dict:
    clean = dict(spec)
    clean["faults"] = None
    clean["recovery"] = False
    return clean


# ----------------------------------------------------------------------
# the matrix: recovery ON, healing faults -> fault-free delivery
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("seed", [5, 7])  # seed 5 is the 3-rank
# rendezvous-heavy regression that caught the credit-less backlog stall
def test_link_down_recovery_matches_fault_free_delivery(scheme, seed):
    spec = _link_down_spec(seed)
    faulty = fuzz.run_spec(spec, scheme)
    clean = fuzz.run_spec(_fault_free(spec), scheme)
    assert clean["ok"], clean
    assert faulty["ok"], faulty  # auditor armed inside run_spec
    assert faulty["violations"] == 0
    # run_spec returns the delivered multiset in canonical sorted order,
    # so list equality IS multiset equality.
    assert faulty["delivered"] == clean["delivered"]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_rnr_budget_recovery_matches_fault_free_delivery(scheme):
    # The RNR axis: a descheduled receiver against a finite RNR retry
    # count.  Only the hardware scheme actually goes fatal (credits spare
    # the user-level schemes), but the matrix runs all three.
    sc = CHAOS_SCENARIOS["retry-budget"]
    cfg = sc.make_config()
    cfg.nodes = sc.nranks
    clean = run_job(sc.make_program(), sc.nranks, scheme, sc.prepost,
                    config=cfg)
    cured = run_job(sc.make_program(), sc.nranks, scheme, sc.prepost,
                    config=sc.make_config(), faults=sc.make_plan(7),
                    recovery=True)
    assert clean.completed and cured.completed
    if scheme == "hardware":
        assert cured.recovery.recoveries_completed >= 1
        assert cured.recovery.messages_replayed >= 1


# ----------------------------------------------------------------------
# the matrix: recovery OFF -> prompt structured failure, never a hang
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", SCHEMES)
def test_link_down_without_recovery_fails_promptly(scheme):
    # The regression for the original bug: a fatal completion used to be
    # swallowed by the MPI completion loop, leaking the vbuf and hanging
    # the job until the progress watchdog called it "deadlock".  The
    # dispatch path must now surface the real WC status, fast.
    sc = CHAOS_SCENARIOS["link-down-permanent"]
    cfg = TestbedConfig(nodes=sc.nranks)
    result = run_job(sc.make_program(), sc.nranks, scheme, sc.prepost,
                     config=cfg, faults=sc.make_plan(7))
    assert not result.completed
    assert result.failures
    f = result.failures[0]
    assert isinstance(f, ConnectionFailure)
    assert f.cause == WCStatus.RETRY_EXCEEDED.value  # the *real* cause
    assert {f.rank, f.peer} == {0, 1}
    assert f.attempts == 0  # no recovery manager -> nothing was attempted
    assert f.to_dict()["cause"] == f.cause  # JSON-ready record
    # Promptness: the transport ladder exhausts within a few hundred us;
    # anything near the watchdog bound means we hung first.
    assert result.elapsed_ns < WATCHDOG_NS // 2


def test_rnr_budget_without_recovery_fails_with_rnr_cause():
    sc = CHAOS_SCENARIOS["retry-budget"]
    result = run_job(sc.make_program(), sc.nranks, "hardware", sc.prepost,
                     config=sc.make_config(), faults=sc.make_plan(7))
    assert not result.completed
    assert result.failures[0].cause == WCStatus.RNR_RETRY_EXCEEDED.value
    assert result.elapsed_ns < WATCHDOG_NS


# ----------------------------------------------------------------------
# the matrix: permanent loss -> recovery budget exhausts structurally
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", SCHEMES)
def test_permanent_link_down_exhausts_recovery_budget(scheme):
    sc = CHAOS_SCENARIOS["link-down-permanent"]
    plan = (FaultPlan(seed=7, transport_timeout_ns=us(40),
                      transport_retry_limit=4)
            .link_flap(lid=1, at_ns=us(100), duration_ns=10**12))
    policy = RecoveryPolicy(max_attempts=3, base_delay_ns=us(20),
                            max_delay_ns=us(200), jitter_ns=us(5))
    result = run_job(sc.make_program(), sc.nranks, scheme, sc.prepost,
                     config=TestbedConfig(nodes=sc.nranks), faults=plan,
                     recovery=policy)
    assert not result.completed
    f = result.failures[0]
    assert f.attempts == policy.max_attempts  # the budget, not the watchdog
    assert result.recovery.summary()["failed_pairs"] >= 1


@pytest.mark.parametrize("scheme", SCHEMES)
def test_permanent_link_down_fuzz_spec_reports_connection_failure(scheme):
    # Same axis through the fuzz harness (auditor armed): a never-healing
    # outage must come back as a structured connection-failure record,
    # not an invariant violation or a livelock.
    res = fuzz.run_spec(_link_down_spec(7, heal=False), scheme)
    assert not res["ok"]
    assert res["kind"] == "connection-failure", res


# ----------------------------------------------------------------------
# satellite: the repost path is recovery-aware
# ----------------------------------------------------------------------
def test_refill_recv_buffers_tolerates_error_qp():
    cluster = Cluster(TestbedConfig(nodes=2))
    cluster.launch(2, make_scheme("static"), prepost=5)
    ep0, ep1 = cluster.endpoints[0], cluster.endpoints[1]
    conn01, conn10 = ep0.connections[1], ep1.connections[0]
    population = conn01.recv_posted
    assert population > 0

    conn01.qp.force_error()
    assert conn01.qp.state is QPState.ERROR
    # The old repost path called qp.post_recv unconditionally, which
    # raises in ERROR state; the recovery-aware gate returns 0 instead.
    assert conn01.refill_recv_buffers() == 0

    # Reclaim the flushed completions the way the manager does, then
    # re-arm the pair: the population comes back to the full budget.
    for wc in ep0.cq.poll():
        if not wc.ok:
            ep0._reclaim_error_wc(wc)
    conn10.qp.force_error()
    for wc in ep1.cq.poll():
        if not wc.ok:
            ep1._reclaim_error_wc(wc)
    for conn, peer_conn in ((conn01, conn10), (conn10, conn01)):
        conn.qp.reset()
    conn01.qp.connect(ep1.hca.lid, conn10.qp.qp_num)
    conn10.qp.connect(ep0.hca.lid, conn01.qp.qp_num)
    assert conn01.refill_recv_buffers() > 0
    assert conn01.recv_posted == population


def test_error_wc_without_recovery_reclaims_send_pool():
    # The other half of the original bug: the fatal send's vbuf must be
    # released on the error path (it used to leak).
    from repro.ib import WC
    from repro.recovery import ConnectionFailedError

    cluster = Cluster(TestbedConfig(nodes=2))
    cluster.launch(2, make_scheme("static"), prepost=5)
    ep = cluster.endpoints[0]
    conn = ep.connections[1]
    assert ep.pool.try_acquire()
    ep._send_ctx["wr-x"] = ("eager", conn, None, None)
    in_use = ep.pool.in_use
    wc = WC(wr_id="wr-x", status=WCStatus.RETRY_EXCEEDED,
            opcode=Opcode.SEND, qp_num=conn.qp.qp_num, peer=conn.peer)
    with pytest.raises(ConnectionFailedError) as err:
        ep._handle_error_wc(wc)
    assert err.value.failure.cause == WCStatus.RETRY_EXCEEDED.value
    assert ep.pool.in_use == in_use - 1  # vbuf released, not leaked
    assert "wr-x" not in ep._send_ctx


# ----------------------------------------------------------------------
# satellite: adaptive RNR backoff (ib.types knobs)
# ----------------------------------------------------------------------
def _time_to_rnr_fatal(factor: float, cap_ns: int) -> int:
    cfg = IBConfig(rnr_retry_count=3, rnr_backoff_factor=factor,
                   rnr_backoff_max_ns=cap_ns)
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)
    # No receive buffer at qp1: every attempt RNR-NAKs until the budget
    # (3 retries) is spent and the WR completes RNR_RETRY_EXCEEDED.
    qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=64, payload=0))
    sim.run(max_events=100_000)
    (wc,) = cq0.poll()
    assert wc.status is WCStatus.RNR_RETRY_EXCEEDED
    return sim.now


def test_rnr_backoff_ladder_stretches_time_to_fatal():
    base = IBConfig().rnr_timer_ns
    flat = _time_to_rnr_fatal(1.0, cap_ns=us(100_000))
    doubling = _time_to_rnr_fatal(2.0, cap_ns=us(100_000))
    # Waits: flat = b + b + b; doubling = b + 2b + 4b  ->  exactly +4b
    # (the NAK round-trips are identical, and the sim is deterministic).
    assert doubling - flat == 4 * base


def test_rnr_backoff_cap_clamps_to_base_timer():
    flat = _time_to_rnr_fatal(1.0, cap_ns=us(100_000))
    base = IBConfig().rnr_timer_ns
    capped = _time_to_rnr_fatal(2.0, cap_ns=base)  # cap == base: no-op
    assert capped == flat


def test_rnr_backoff_resets_after_delivery():
    cfg = IBConfig(rnr_backoff_factor=2.0, rnr_backoff_max_ns=us(100_000))
    sim, _, _, qp0, qp1, cq0, cq1 = build_pair(cfg)
    from repro.ib import RecvWR

    qp0.post_send(SendWR(wr_id="a", opcode=Opcode.SEND, length=64, payload=0))
    # Let two NAK cycles escalate the wait, then post the buffer.
    sim.schedule(2 * cfg.rnr_timer_ns + us(1), qp1.post_recv,
                 RecvWR(wr_id="r0", capacity=2048))
    sim.run(max_events=100_000)
    assert cq0.poll()[0].ok
    escalated_naks = qp0.rnr_naks_received
    assert escalated_naks >= 2

    # A fresh message starts back at the base timer: one NAK cycle plus
    # the base wait delivers it, with no residue from the first ladder
    # (the buffer appears mid-wait, well after arrival, so exactly one
    # NAK fires and the retry waits the *base* timer, not 8x it).
    start = sim.now
    qp0.post_send(SendWR(wr_id="b", opcode=Opcode.SEND, length=64, payload=1))
    sim.schedule(cfg.rnr_timer_ns // 2, qp1.post_recv,
                 RecvWR(wr_id="r1", capacity=2048))
    sim.run(max_events=100_000)
    assert cq0.poll()[0].ok
    assert qp0.rnr_naks_received == escalated_naks + 1
    assert sim.now - start < 2 * cfg.rnr_timer_ns


# ----------------------------------------------------------------------
# satellite: zero cost when disabled / inert when unused
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", SCHEMES)
def test_recovery_is_inert_on_clean_runs(scheme):
    sc = CHAOS_SCENARIOS["link-down-permanent"]  # fault-free program reuse
    off = run_job(sc.make_program(), sc.nranks, scheme, sc.prepost,
                  config=TestbedConfig(nodes=sc.nranks))
    on = run_job(sc.make_program(), sc.nranks, scheme, sc.prepost,
                 config=TestbedConfig(nodes=sc.nranks), recovery=True)
    assert off.elapsed_ns == on.elapsed_ns  # bit-identical timeline
    assert off.fc_dict() == on.fc_dict()
    assert on.recovery.summary()["recoveries"] == 0
    assert off.recovery is None


def test_recovery_failures_are_deterministic():
    sc = CHAOS_SCENARIOS["link-down-permanent"]

    def once():
        r = run_job(sc.make_program(), sc.nranks, "dynamic", sc.prepost,
                    config=TestbedConfig(nodes=sc.nranks),
                    faults=sc.make_plan(7))
        return [f.to_dict() for f in r.failures], r.elapsed_ns

    assert once() == once()
