"""Differential fuzz smoke test (ISSUE 3 satellite).

25 seeded random workloads, each run under all three flow-control schemes
with the invariant auditor armed, alternating the two fault scenarios the
paper's robustness story cares about: a stalled receiver (slow consumer)
and a lossy fabric window.  The schemes must deliver identical message
multisets — the paper's claim that they differ *only* in buffer
management — with zero invariant violations.
"""

import pytest

from repro.check import fuzz

SCENARIOS = ("receiver-stall", "lossy-window")


@pytest.mark.parametrize("k", range(25))
def test_schemes_agree_under_faults(k):
    scenario = SCENARIOS[k % 2]
    spec = fuzz.generate_spec(1000 + k, scenario)
    comparison = fuzz.compare_schemes(spec)
    assert comparison["failure"] is None, comparison["failure"]
    results = comparison["results"]
    base = results["hardware"]["delivered"]
    assert len(base) == len(spec["messages"])
    for name in ("static", "dynamic"):
        assert results[name]["delivered"] == base
        assert results[name]["violations"] == 0


def test_fuzz_sweep_is_deterministic():
    """The ``--check`` property: two identical sweeps agree bit-for-bit."""
    a = fuzz.run_fuzz(seed=50, runs=4, out_dir="", log=None)
    b = fuzz.run_fuzz(seed=50, runs=4, out_dir="", log=None)
    assert a["digests"] == b["digests"]
    assert a["failures"] == b["failures"] == []


def test_replay_of_passing_spec_reports_clean():
    spec = fuzz.generate_spec(60, "lossy-window")
    artifact = {"version": fuzz.SPEC_VERSION, "schemes": list(fuzz.DEFAULT_SCHEMES),
                "spec": spec}
    comparison = fuzz.replay(artifact, log=None)
    assert comparison["failure"] is None
